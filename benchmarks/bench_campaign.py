#!/usr/bin/env python3
"""Fault-campaign benchmark: fork-from-checkpoint vs from-scratch.

Times an N-injection common-cause campaign over each kernel two ways:

* ``scratch`` — every injection re-simulates from cycle 0 (the
  pre-checkpoint cost, O(N*T)),
* ``fork``    — one golden run drops checkpoints every K cycles; each
  injection restores the nearest one and simulates only the suffix,
  with convergence early-exit for masked faults (O(T + N*K)).

Every forked :class:`repro.fault.InjectionResult` is asserted
field-for-field identical to its from-scratch counterpart before any
timing is reported — a fast wrong verdict would be worthless.  The
report goes to ``BENCH_campaign.json`` at the repo root;
``--min-speedup X`` turns the bench into a CI gate that exits
non-zero when the aggregate speedup falls below ``X``.

Usage:
    PYTHONPATH=src python benchmarks/bench_campaign.py
        [--kernels K ...] [--injections N] [--checkpoint-every N]
        [--quick] [--min-speedup X] [--out FILE]

``--quick`` restricts the run to the countnegative kernel, for CI.
The checkpoint cadence defaults to ~1/25th of the fault-free run
(floor 200 cycles), which keeps the golden run's snapshot-encoding
overhead well below the per-injection simulation it saves.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
import time

from bench_common import metric_fields
from repro.fault import run_ccf_campaign, shared_address_config, spread_cycles
from repro.soc.experiment import run_redundant
from repro.workloads import program as build_program

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
OUT_PATH = REPO_ROOT / "BENCH_campaign.json"

DEFAULT_KERNELS = ("countnegative", "matrix1")
QUICK_KERNELS = ("countnegative",)
MAX_CYCLES = 200_000
#: Floor for the automatic checkpoint cadence (run_cycles // 25).
MIN_CADENCE = 200


def bench_kernel(name, injections, cadence_override):
    prog = build_program(name)
    config = shared_address_config()
    probe = run_redundant(prog, benchmark=name, config=config,
                          max_cycles=MAX_CYCLES)
    cycles = spread_cycles(probe.cycles, injections)
    cadence = cadence_override or max(MIN_CADENCE, probe.cycles // 25)

    scratch_start = time.perf_counter()
    scratch = run_ccf_campaign(prog, cycles, config=config,
                               max_cycles=MAX_CYCLES)
    scratch_s = time.perf_counter() - scratch_start

    fork_start = time.perf_counter()
    fork = run_ccf_campaign(prog, cycles, config=config,
                            max_cycles=MAX_CYCLES,
                            checkpoint_every=cadence)
    fork_s = time.perf_counter() - fork_start

    # Correctness first: bit-identical per injection, or no timing claims.
    assert len(fork.injections) == len(scratch.injections)
    for a, b in zip(scratch.injections, fork.injections):
        assert dataclasses.asdict(a) == dataclasses.asdict(b), \
            "fork diverged at cycle=%d:\n scratch: %r\n fork:    %r" \
            % (a.fault_cycle, a, b)
    assert scratch.silent_despite_diversity == 0

    # With no injections both campaigns are a near-empty golden pass;
    # the ratio of two trivial wall times is noise, not a speedup —
    # report the shared skip shape (see bench_common) instead.
    speedup = scratch_s / fork_s if injections else None
    print("%-14s inj=%-3d every=%-5d scratch %6.2fs  fork %6.2fs  "
          "(%s; masked=%d detected=%d)"
          % (name, injections, cadence, scratch_s, fork_s,
             "%.2fx" % speedup if speedup is not None else "n/a",
             fork.masked, fork.detected))
    return {
        "kernel": name,
        "run_cycles": probe.cycles,
        "injections": injections,
        "checkpoint_every": cadence,
        "scratch_seconds": round(scratch_s, 3),
        "fork_seconds": round(fork_s, 3),
        **metric_fields("speedup",
                        round(speedup, 2) if speedup is not None
                        else None,
                        None if injections else "no-injections"),
        "masked": fork.masked,
        "detected": fork.detected,
        "silent_ccf": fork.silent_ccf,
        "silent_despite_diversity": fork.silent_despite_diversity,
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kernels", nargs="+",
                        default=list(DEFAULT_KERNELS),
                        help="kernels to campaign over (default: %s)"
                        % " ".join(DEFAULT_KERNELS))
    parser.add_argument("--injections", type=int, default=None,
                        metavar="N",
                        help="injection instants per kernel "
                             "(default: 12; 16 under --quick, where "
                             "more injections amortize the one golden "
                             "run further)")
    parser.add_argument("--checkpoint-every", type=int, default=None,
                        metavar="N",
                        help="checkpoint cadence (default: "
                             "run_cycles // 25, floor %d)" % MIN_CADENCE)
    parser.add_argument("--quick", action="store_true",
                        help="CI subset: %s only"
                        % " ".join(QUICK_KERNELS))
    parser.add_argument("--min-speedup", type=float, default=None,
                        metavar="X",
                        help="exit non-zero if aggregate speedup < X")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="report path (default: BENCH_campaign.json "
                             "at the repo root)")
    args = parser.parse_args()
    out_path = pathlib.Path(args.out) if args.out else OUT_PATH
    kernels = list(QUICK_KERNELS) if args.quick else args.kernels
    injections = args.injections if args.injections is not None \
        else (16 if args.quick else 12)

    print("common-cause campaign, %d injection(s)/kernel, "
          "max_cycles=%d%s" % (injections, MAX_CYCLES,
                               " (quick)" if args.quick else ""))
    rows = [bench_kernel(name, injections, args.checkpoint_every)
            for name in kernels]

    scratch_total = sum(row["scratch_seconds"] for row in rows)
    fork_total = sum(row["fork_seconds"] for row in rows)
    speedup = scratch_total / fork_total if injections else None
    print("exactness: fork == scratch field-for-field on all %d "
          "injection(s)" % (len(rows) * injections))
    print("aggregate speedup %s (scratch %.2fs, fork %.2fs)"
          % ("%.1fx" % speedup if speedup is not None else "n/a",
             scratch_total, fork_total))

    report = {
        "kernels": rows,
        "injections_per_kernel": injections,
        "max_cycles": MAX_CYCLES,
        "quick": bool(args.quick),
        "scratch_seconds": round(scratch_total, 3),
        "fork_seconds": round(fork_total, 3),
        **metric_fields("speedup",
                        round(speedup, 2) if speedup is not None
                        else None,
                        None if injections else "no-injections"),
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print("wrote %s" % out_path)

    if args.min_speedup is not None:
        if speedup is None:
            print("FAIL: cannot gate on --min-speedup with no "
                  "injections measured", file=sys.stderr)
            return 1
        if speedup < args.min_speedup:
            print("FAIL: speedup %.1fx below required %.1fx"
                  % (speedup, args.min_speedup), file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
