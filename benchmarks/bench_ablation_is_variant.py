"""Ablation — per-stage IS vs the fetched-not-retired fallback.

Paper III-B.2: the per-stage signature distinguishes cores that hold
the same instructions in different stages; the fallback (a FIFO of
fetched-but-not-retired instructions) cannot, so it reports at least as
many instruction-signature matches — more false positives.
"""

import pytest

from repro.core.signatures import IsVariant, SignatureConfig
from repro.soc.config import SocConfig
from repro.soc.experiment import run_redundant
from repro.workloads import program

from conftest import save_and_print

WORKLOADS = ("cubic", "md5", "countnegative")


def run_variant(name: str, variant: IsVariant):
    cfg = SocConfig(signature=SignatureConfig(is_variant=variant))
    return run_redundant(program(name), benchmark=name, config=cfg)


def sweep():
    out = {}
    for name in WORKLOADS:
        out[name] = {variant: run_variant(name, variant)
                     for variant in IsVariant}
    return out


def test_is_variant_ablation(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["IS variant ablation (no-instr-div / no-div cycles)", "",
             "  %-15s %22s %22s" % ("benchmark", "per-stage",
                                    "in-flight fallback")]
    for name, by_variant in results.items():
        per_stage = by_variant[IsVariant.PER_STAGE]
        inflight = by_variant[IsVariant.INFLIGHT]
        lines.append("  %-15s %12d /%8d %12d /%8d"
                     % (name,
                        per_stage.no_instruction_diversity_cycles,
                        per_stage.no_diversity_cycles,
                        inflight.no_instruction_diversity_cycles,
                        inflight.no_diversity_cycles))
    save_and_print("ablation_is_variant.txt", "\n".join(lines))

    for name, by_variant in results.items():
        per_stage = by_variant[IsVariant.PER_STAGE]
        inflight = by_variant[IsVariant.INFLIGHT]
        # The fallback can only be weaker (>= matches), never stronger.
        assert inflight.no_instruction_diversity_cycles >= \
            per_stage.no_instruction_diversity_cycles
        assert inflight.no_diversity_cycles >= \
            per_stage.no_diversity_cycles
