#!/usr/bin/env python3
"""Runtime benchmark: sweep configurations and execution tiers.

Part 1 — sweep engine.  Times a fixed 6-kernel mini Table I sweep
(12 cells, 24 runs) through three configurations:

* ``serial``   — ``jobs=1``, cache disabled (the reference path),
* ``parallel`` — ``--jobs`` workers (default: let the engine decide,
  which clamps to serial on hosts without real parallelism), cold
  cache,
* ``warm``     — same cache directory again, so every run is a hit.

Part 2 — execution tiers (:mod:`repro.engine`).  Times the same
kernels serially under the ``reference`` interpreter and the ``fast``
block-compiled tier (best-of-N per point to resist scheduler noise),
asserts the two produce field-for-field identical results, and records
per-kernel and aggregate speedups plus the fast tier's hit rate and
deopt rate.

Results are written to ``BENCH_runtime.json`` at the repo root,
including the machine's honest ``cpu_count``, the ``effective_jobs``
the engine actually used, and a ``serial_fallback`` flag.  When the
"parallel" pass fell back to the serial code path (1 effective
worker), ``parallel_speedup`` is reported as ``null`` rather than a
meaningless ~1.0x comparison of the same code path against itself,
and a ``parallel_speedup_skipped: "single-cpu"`` field names the
reason explicitly so downstream tooling can distinguish "not
measured" from "missing"; the field is absent when a real speedup
was measured (the shared skip-field convention — see
:mod:`bench_common`).  All passes must agree cell-for-cell; the bench fails
otherwise.

Usage:
    PYTHONPATH=src python benchmarks/bench_runtime.py [--jobs N]
        [--kernels cosf countnegative] [--out FILE] [--quick]
        [--min-speedup X] [--max-deopt-rate X] [--profile FILE]

``--kernels`` swaps the fixed 6-kernel set for a subset; the report
records which set ran.  ``--quick`` is the CI shape: engine-tier
comparison only, over a 2-kernel subset.  ``--min-speedup`` /
``--max-deopt-rate`` turn the report into a gate (non-zero exit when
the fast tier regresses).  ``--profile`` additionally records one
profiled fast-tier pass per kernel as a Chrome ``about://tracing``
trace (``repro.telemetry.Tracer`` spans: platform build, program
load, cycle loop, metrics collection — each tagged with the engine).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import pathlib
import tempfile
import time

from bench_common import metric_fields
from repro.runner import ParallelSweep
from repro.workloads import all_names

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
OUT_PATH = REPO_ROOT / "BENCH_runtime.json"

#: The six fastest kernels (so the bench stays under a minute) across
#: distinct categories; fixed so timings are comparable over time.
MINI_SWEEP_KERNELS = ("cosf", "ludcmp", "fft", "countnegative",
                      "recursion", "sha")
MINI_SWEEP_STAGGERS = (0, 100)
#: The ``--quick`` (CI) subset: one arithmetic and one control-heavy
#: kernel keep the signal while staying under a minute on one CPU.
QUICK_KERNELS = ("cosf", "countnegative")


def _rows_as_dicts(rows):
    return {name: [dataclasses.asdict(cell) for cell in cells]
            for name, cells in rows.items()}


def _timed_sweep(kernels, jobs, cache_dir, use_cache=True):
    sweep = ParallelSweep(jobs=jobs, use_cache=use_cache,
                          cache_dir=cache_dir)
    start = time.perf_counter()
    rows = sweep.run_table(kernels,
                           stagger_values=MINI_SWEEP_STAGGERS)
    return time.perf_counter() - start, _rows_as_dicts(rows), sweep


# -- execution-tier comparison ------------------------------------------------

class _SocGrab:
    """``soc_hook`` that keeps the SoC so engine stats survive the run."""

    soc = None

    def __call__(self, soc):
        self.soc = soc


def _timed_run(program, kernel, stagger, engine, repeats,
               tracer=None):
    """Best-of-``repeats`` wall time for one redundant run.

    Returns ``(seconds, result_dict, cycles, engine_stats)`` — stats
    from the last repetition (they are deterministic, only the wall
    time varies).
    """
    from repro.soc.experiment import run_redundant
    best = None
    result = None
    grab = _SocGrab()
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_redundant(program, benchmark=kernel,
                               stagger_nops=stagger, engine=engine,
                               soc_hook=grab, tracer=tracer)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    stats = grab.soc.engine_stats
    return (best, dataclasses.asdict(result), result.cycles,
            stats.as_dict() if stats is not None else None)


def _bench_engines(kernels, staggers, repeats):
    """Reference vs fast tier, serially, per (kernel, stagger) point."""
    from repro.workloads import program as build_program
    per_kernel = {}
    ref_total = fast_total = 0.0
    cycles_total = 0
    deopts = fast_issues = ref_issues = fast_cycles = 0
    delegations = recompilations = superblock_links = 0
    deopt_reasons = {}
    for kernel in kernels:
        prog = build_program(kernel)
        ref_s = fast_s = 0.0
        kernel_cycles = 0
        hit_num = hit_den = kernel_deopts = 0
        kernel_reasons = {}
        for stagger in staggers:
            rs, ref_result, cycles, _ = _timed_run(
                prog, kernel, stagger, "reference", repeats)
            fs, fast_result, _, stats = _timed_run(
                prog, kernel, stagger, "fast", repeats)
            assert fast_result == ref_result, \
                "fast tier diverged from reference on %s stagger=%d" \
                % (kernel, stagger)
            assert stats is not None \
                and stats["fallback_reason"] is None, \
                "fast tier fell back on %s: %s" % (kernel, stats)
            ref_s += rs
            fast_s += fs
            kernel_cycles += cycles
            kernel_deopts += stats["deopts"]
            hit_num += stats["issue_fast"]
            hit_den += stats["issue_fast"] + stats["issue_ref"]
            deopts += stats["deopts"]
            fast_issues += stats["issue_fast"]
            ref_issues += stats["issue_ref"]
            fast_cycles += stats["fast_cycles"]
            delegations += stats["delegations"]
            recompilations += stats["recompilations"]
            superblock_links += stats["superblock_links"]
            for reason, count in stats["deopt_reasons"].items():
                kernel_reasons[reason] = \
                    kernel_reasons.get(reason, 0) + count
        ref_total += ref_s
        fast_total += fast_s
        cycles_total += kernel_cycles
        per_kernel[kernel] = {
            "reference_seconds": round(ref_s, 3),
            "fast_seconds": round(fast_s, 3),
            "speedup": round(ref_s / fast_s, 3),
            "cycles": kernel_cycles,
            "tier_hit_rate": round(hit_num / hit_den, 6) if hit_den
            else 0.0,
            "deopts": kernel_deopts,
            "deopt_rate": round(kernel_deopts / kernel_cycles, 6)
            if kernel_cycles else 0.0,
            "deopt_reasons": dict(sorted(kernel_reasons.items())),
        }
        for reason, count in kernel_reasons.items():
            deopt_reasons[reason] = \
                deopt_reasons.get(reason, 0) + count
        print("engine %-14s ref %6.2fs  fast %6.2fs  %5.2fx  "
              "hit %6.2f%%  deopts %d"
              % (kernel, ref_s, fast_s, ref_s / fast_s,
                 100.0 * per_kernel[kernel]["tier_hit_rate"],
                 kernel_deopts))
    issued = fast_issues + ref_issues
    return {
        "engine": "fast",
        "staggers": list(staggers),
        "repeats": repeats,
        "per_kernel": per_kernel,
        "reference_seconds": round(ref_total, 3),
        "fast_seconds": round(fast_total, 3),
        "speedup": round(ref_total / fast_total, 3),
        "cycles": cycles_total,
        "reference_cycles_per_second": round(
            cycles_total / ref_total) if ref_total else None,
        "fast_cycles_per_second": round(
            cycles_total / fast_total) if fast_total else None,
        "tier_hit_rate": round(fast_issues / issued, 6) if issued
        else 0.0,
        "deopts": deopts,
        "deopt_rate": round(deopts / fast_cycles, 6) if fast_cycles
        else 0.0,
        "delegations": delegations,
        "recompilations": recompilations,
        "superblock_links": superblock_links,
        "deopt_reasons": dict(sorted(deopt_reasons.items())),
        "bit_identical": True,
    }


def _profile_engines(kernels, staggers, path):
    """One profiled fast-tier pass per point, saved as a Chrome trace."""
    from repro.telemetry import Tracer
    from repro.workloads import program as build_program
    tracer = Tracer()
    for kernel in kernels:
        prog = build_program(kernel)
        for stagger in staggers:
            for engine in ("reference", "fast"):
                _timed_run(prog, kernel, stagger, engine, repeats=1,
                           tracer=tracer)
    tracer.save(path)
    print("profile trace written to %s (%d spans)"
          % (path, len(tracer)))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="workers for the parallel pass (default: "
                             "let the engine decide; it clamps to "
                             "serial when cpu_count <= %d)"
                        % ParallelSweep.SERIAL_FALLBACK_CPUS)
    parser.add_argument("--kernels", nargs="+", default=None,
                        metavar="K",
                        help="kernel subset to sweep (default: the "
                             "fixed 6-kernel mini set)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="report path (default: BENCH_runtime.json "
                             "at the repo root)")
    parser.add_argument("--quick", action="store_true",
                        help="CI shape: engine-tier comparison only, "
                             "over a 2-kernel subset")
    parser.add_argument("--repeats", type=int, default=3, metavar="N",
                        help="best-of-N timing for the engine "
                             "comparison (default: 3)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless the fast tier's aggregate "
                             "speedup over reference is at least X")
    parser.add_argument("--max-deopt-rate", type=float, default=None,
                        metavar="X",
                        help="fail if the fast tier's deopts-per-cycle "
                             "rate exceeds X")
    parser.add_argument("--profile", default=None, metavar="FILE",
                        help="record one profiled pass per point as a "
                             "Chrome about://tracing trace")
    args = parser.parse_args()
    kernels = tuple(args.kernels
                    or (QUICK_KERNELS if args.quick
                        else MINI_SWEEP_KERNELS))
    out_path = pathlib.Path(args.out) if args.out else OUT_PATH

    missing = set(kernels) - set(all_names())
    assert not missing, "unknown bench kernels: %s" % sorted(missing)
    runs = len(kernels) * len(MINI_SWEEP_STAGGERS) * 2

    repeats = max(1, 2 if args.quick and args.repeats == 3
                  else args.repeats)
    engine_report = _bench_engines(kernels, MINI_SWEEP_STAGGERS,
                                   repeats)
    print("engine aggregate: %.2fx speedup, tier hit rate %.2f%%, "
          "deopt rate %.4f%%"
          % (engine_report["speedup"],
             100.0 * engine_report["tier_hit_rate"],
             100.0 * engine_report["deopt_rate"]))
    print("engine deopt reasons: %s"
          % (" ".join("%s=%d" % item for item in
                      engine_report["deopt_reasons"].items())
             or "(none)"))
    if args.profile:
        _profile_engines(kernels, MINI_SWEEP_STAGGERS, args.profile)

    if args.quick:
        report = {
            "quick": True,
            "kernels": list(kernels),
            "stagger_values": list(MINI_SWEEP_STAGGERS),
            "cpu_count": os.cpu_count(),
            "engine": engine_report,
        }
        out_path.write_text(json.dumps(report, indent=2) + "\n")
        print("wrote %s" % out_path)
        return _gate(args, engine_report)

    print("mini sweep: %d kernels x %d staggers = %d runs"
          % (len(kernels), len(MINI_SWEEP_STAGGERS), runs))

    serial_s, serial_rows, _ = _timed_sweep(kernels, jobs=1,
                                            cache_dir=None,
                                            use_cache=False)
    print("serial (jobs=1, no cache):    %6.2fs" % serial_s)

    with tempfile.TemporaryDirectory() as tmp:
        parallel_s, parallel_rows, par_sweep = _timed_sweep(
            kernels, jobs=args.jobs, cache_dir=tmp)
        effective_jobs = par_sweep.jobs
        serial_fallback = par_sweep.serial_fallback \
            or effective_jobs == 1
        print("parallel (jobs=%d, cold):      %6.2fs%s"
              % (effective_jobs, parallel_s,
                 " [serial fallback]" if serial_fallback else ""))
        warm_s, warm_rows, warm_sweep = _timed_sweep(kernels,
                                                     jobs=args.jobs,
                                                     cache_dir=tmp)
        print("warm cache (jobs=%d):          %6.2fs"
              % (effective_jobs, warm_s))
        assert warm_sweep.cache.hits == runs, \
            "warm pass expected %d hits, got %d" \
            % (runs, warm_sweep.cache.hits)

    assert parallel_rows == serial_rows, \
        "parallel sweep diverged from serial"
    assert warm_rows == serial_rows, "cached sweep diverged from serial"
    print("determinism: serial == parallel == warm, cell-for-cell")

    # With one effective worker, "parallel" ran the exact same serial
    # in-process loop as the reference pass: a speedup number would
    # compare the code path against itself and land arbitrarily close
    # to 1.0x either side (BENCH_runtime.json once claimed 0.973 with
    # "jobs: 4" on a 1-CPU host).  Report null instead.
    parallel_speedup = (None if serial_fallback
                        else round(serial_s / parallel_s, 3))
    report = {
        "kernels": list(kernels),
        "stagger_values": list(MINI_SWEEP_STAGGERS),
        "runs": runs,
        "cpu_count": os.cpu_count(),
        "jobs_requested": args.jobs,
        "effective_jobs": effective_jobs,
        "serial_fallback": serial_fallback,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "warm_cache_seconds": round(warm_s, 3),
        # Why parallel_speedup is null, when it is (see module
        # docstring); the _skipped field is absent on hosts with real
        # parallelism.
        **metric_fields("parallel_speedup", parallel_speedup,
                        "single-cpu" if serial_fallback else None),
        "warm_cache_speedup": round(serial_s / warm_s, 3),
        "seconds_per_run_serial": round(serial_s / runs, 4),
        "engine": engine_report,
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    if parallel_speedup is None:
        print("parallel speedup n/a (serial fallback: 1 effective "
              "worker is the same code path), warm-cache speedup "
              "%.2fx (cpu_count=%s)"
              % (report["warm_cache_speedup"], report["cpu_count"]))
    else:
        print("parallel speedup %.2fx, warm-cache speedup %.2fx "
              "(cpu_count=%s)"
              % (parallel_speedup, report["warm_cache_speedup"],
                 report["cpu_count"]))
    print("wrote %s" % out_path)
    return _gate(args, engine_report)


def _gate(args, engine_report) -> int:
    """Turn the engine report into an exit code per the gate flags."""
    status = 0
    if args.min_speedup is not None \
            and engine_report["speedup"] < args.min_speedup:
        print("FAIL: fast-tier speedup %.2fx below the %.2fx floor"
              % (engine_report["speedup"], args.min_speedup))
        status = 1
    if args.max_deopt_rate is not None \
            and engine_report["deopt_rate"] > args.max_deopt_rate:
        print("FAIL: fast-tier deopt rate %.4f%% above the %.4f%% "
              "ceiling" % (100.0 * engine_report["deopt_rate"],
                           100.0 * args.max_deopt_rate))
        status = 1
    return status


if __name__ == "__main__":
    import sys
    sys.exit(main())
