#!/usr/bin/env python3
"""Sweep-engine runtime benchmark: serial vs parallel vs warm cache.

Times a fixed 6-kernel mini Table I sweep (12 cells, 24 runs) through
three configurations of the sweep engine:

* ``serial``   — ``jobs=1``, cache disabled (the reference path),
* ``parallel`` — ``--jobs`` workers (default: let the engine decide,
  which clamps to serial on hosts without real parallelism), cold
  cache,
* ``warm``     — same cache directory again, so every run is a hit.

Results are written to ``BENCH_runtime.json`` at the repo root,
including the machine's honest ``cpu_count``, the ``effective_jobs``
the engine actually used, and a ``serial_fallback`` flag.  When the
"parallel" pass fell back to the serial code path (1 effective
worker), ``parallel_speedup`` is reported as ``null`` rather than a
meaningless ~1.0x comparison of the same code path against itself.
The three passes must agree cell-for-cell; the bench fails otherwise.

Usage:
    PYTHONPATH=src python benchmarks/bench_runtime.py [--jobs N]
        [--kernels cosf countnegative] [--out FILE]

``--kernels`` swaps the fixed 6-kernel set for a subset (CI times a
2-kernel sweep to stay fast); the report records which set ran.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import pathlib
import tempfile
import time

from repro.runner import ParallelSweep
from repro.workloads import all_names

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
OUT_PATH = REPO_ROOT / "BENCH_runtime.json"

#: The six fastest kernels (so the bench stays under a minute) across
#: distinct categories; fixed so timings are comparable over time.
MINI_SWEEP_KERNELS = ("cosf", "ludcmp", "fft", "countnegative",
                      "recursion", "sha")
MINI_SWEEP_STAGGERS = (0, 100)


def _rows_as_dicts(rows):
    return {name: [dataclasses.asdict(cell) for cell in cells]
            for name, cells in rows.items()}


def _timed_sweep(kernels, jobs, cache_dir, use_cache=True):
    sweep = ParallelSweep(jobs=jobs, use_cache=use_cache,
                          cache_dir=cache_dir)
    start = time.perf_counter()
    rows = sweep.run_table(kernels,
                           stagger_values=MINI_SWEEP_STAGGERS)
    return time.perf_counter() - start, _rows_as_dicts(rows), sweep


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="workers for the parallel pass (default: "
                             "let the engine decide; it clamps to "
                             "serial when cpu_count <= %d)"
                        % ParallelSweep.SERIAL_FALLBACK_CPUS)
    parser.add_argument("--kernels", nargs="+", default=None,
                        metavar="K",
                        help="kernel subset to sweep (default: the "
                             "fixed 6-kernel mini set)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="report path (default: BENCH_runtime.json "
                             "at the repo root)")
    args = parser.parse_args()
    kernels = tuple(args.kernels or MINI_SWEEP_KERNELS)
    out_path = pathlib.Path(args.out) if args.out else OUT_PATH

    missing = set(kernels) - set(all_names())
    assert not missing, "unknown bench kernels: %s" % sorted(missing)
    runs = len(kernels) * len(MINI_SWEEP_STAGGERS) * 2

    print("mini sweep: %d kernels x %d staggers = %d runs"
          % (len(kernels), len(MINI_SWEEP_STAGGERS), runs))

    serial_s, serial_rows, _ = _timed_sweep(kernels, jobs=1,
                                            cache_dir=None,
                                            use_cache=False)
    print("serial (jobs=1, no cache):    %6.2fs" % serial_s)

    with tempfile.TemporaryDirectory() as tmp:
        parallel_s, parallel_rows, par_sweep = _timed_sweep(
            kernels, jobs=args.jobs, cache_dir=tmp)
        effective_jobs = par_sweep.jobs
        serial_fallback = par_sweep.serial_fallback \
            or effective_jobs == 1
        print("parallel (jobs=%d, cold):      %6.2fs%s"
              % (effective_jobs, parallel_s,
                 " [serial fallback]" if serial_fallback else ""))
        warm_s, warm_rows, warm_sweep = _timed_sweep(kernels,
                                                     jobs=args.jobs,
                                                     cache_dir=tmp)
        print("warm cache (jobs=%d):          %6.2fs"
              % (effective_jobs, warm_s))
        assert warm_sweep.cache.hits == runs, \
            "warm pass expected %d hits, got %d" \
            % (runs, warm_sweep.cache.hits)

    assert parallel_rows == serial_rows, \
        "parallel sweep diverged from serial"
    assert warm_rows == serial_rows, "cached sweep diverged from serial"
    print("determinism: serial == parallel == warm, cell-for-cell")

    # With one effective worker, "parallel" ran the exact same serial
    # in-process loop as the reference pass: a speedup number would
    # compare the code path against itself and land arbitrarily close
    # to 1.0x either side (BENCH_runtime.json once claimed 0.973 with
    # "jobs: 4" on a 1-CPU host).  Report null instead.
    parallel_speedup = (None if serial_fallback
                        else round(serial_s / parallel_s, 3))
    report = {
        "kernels": list(kernels),
        "stagger_values": list(MINI_SWEEP_STAGGERS),
        "runs": runs,
        "cpu_count": os.cpu_count(),
        "jobs_requested": args.jobs,
        "effective_jobs": effective_jobs,
        "serial_fallback": serial_fallback,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "warm_cache_seconds": round(warm_s, 3),
        "parallel_speedup": parallel_speedup,
        "warm_cache_speedup": round(serial_s / warm_s, 3),
        "seconds_per_run_serial": round(serial_s / runs, 4),
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    if parallel_speedup is None:
        print("parallel speedup n/a (serial fallback: 1 effective "
              "worker is the same code path), warm-cache speedup "
              "%.2fx (cpu_count=%s)"
              % (report["warm_cache_speedup"], report["cpu_count"]))
    else:
        print("parallel speedup %.2fx, warm-cache speedup %.2fx "
              "(cpu_count=%s)"
              % (parallel_speedup, report["warm_cache_speedup"],
                 report["cpu_count"]))
    print("wrote %s" % out_path)


if __name__ == "__main__":
    main()
