#!/usr/bin/env python3
"""Static-analysis benchmark: absint throughput + pre-filter yield.

Two figures, both CI-gated:

* ``absint``    — wall time for a full lint of every kernel with
  masking proofs on (``lint_workload(name, prove_masking=True)``:
  strided-interval solve, masking-liveness solve, proof annotation,
  all L001-L013 rules).  The gate ``--max-seconds X`` fails the run
  when the *total* across all kernels exceeds ``X`` — the lint CI job
  runs this on every push, so it has to stay cheap.
* ``prefilter`` — the fraction of Monte-Carlo trials the static
  masking proofs resolve with *no access-log lookup at all*
  (``status == STATUS_STATIC``).  The proofs only pay their way if
  they retire a real share of the campaign, so ``--min-static-frac F``
  fails the run when the aggregate fraction over the sampled
  campaigns falls below ``F``.

Before the fractions are reported, each gated campaign is re-run with
``static_prefilter=False`` and the classification columns are
asserted identical — the pre-filter may only move trials between
resolution paths, never change a verdict.

The report goes to ``BENCH_lint.json`` at the repo root.

Usage:
    PYTHONPATH=src python benchmarks/bench_lint.py
        [--kernels K ...] [--trials N] [--max-seconds X]
        [--min-static-frac F] [--seed N] [--quick] [--out FILE]

``--quick`` restricts the campaign phase to countnegative with fewer
trials, for CI; the absint phase always covers every kernel (that is
the thing being gated).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from bench_common import metric_fields
from repro.lint import lint_workload
from repro.montecarlo import BatchedCampaign
from repro.workloads import all_names, program as build_program

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
OUT_PATH = REPO_ROOT / "BENCH_lint.json"

DEFAULT_KERNELS = ("countnegative", "fac")
QUICK_KERNELS = ("countnegative",)
MAX_CYCLES = 200_000


def bench_absint():
    """Full lint with proofs over every kernel, timed per kernel."""
    rows = []
    total_start = time.perf_counter()
    for name in sorted(all_names()):
        start = time.perf_counter()
        report = lint_workload(name, prove_masking=True)
        seconds = time.perf_counter() - start
        rows.append({
            "kernel": name,
            "seconds": round(seconds, 4),
            "findings": len(report.diagnostics),
            "suppressed": len(report.suppressed),
        })
    total_s = time.perf_counter() - total_start
    print("absint: %d kernels linted with proofs in %.2fs "
          "(slowest: %s %.3fs)"
          % (len(rows), total_s,
             *max(((r["kernel"], r["seconds"]) for r in rows),
                  key=lambda kv: kv[1])))
    return rows, total_s


def bench_prefilter(name, kind, trials, seed):
    """One campaign with the pre-filter on, checked against off."""
    prog = build_program(name)
    campaign = BatchedCampaign(prog, benchmark=name,
                               max_cycles=MAX_CYCLES)
    sample = (campaign.sample_transient if kind == "transient"
              else campaign.sample_ccf)
    batch = sample(trials, seed=seed)
    start = time.perf_counter()
    result = campaign.run(batch, jobs=1, seed=seed)
    seconds = time.perf_counter() - start

    # Correctness: the pre-filter must not change a single verdict.
    control = BatchedCampaign(prog, benchmark=name,
                              max_cycles=MAX_CYCLES,
                              static_prefilter=False)
    control_batch = (control.sample_transient if kind == "transient"
                     else control.sample_ccf)(trials, seed=seed)
    control_result = control.run(control_batch, jobs=1, seed=seed)
    assert control_result.static == 0
    assert batch.counts() == control_batch.counts(), \
        "%s/%s: pre-filter changed campaign verdicts" % (name, kind)
    assert batch.column("classification") \
        == control_batch.column("classification"), \
        "%s/%s: pre-filter changed a per-trial verdict" % (name, kind)

    frac = result.static / trials
    print("prefilter: %-14s kind=%-9s trials=%-5d static=%d (%.0f%%) "
          "analytic=%d simulated=%d  %.2fs"
          % (name, kind, trials, result.static, 100.0 * frac,
             result.analytic, result.simulated, seconds))
    return {
        "kernel": name,
        "kind": kind,
        "trials": trials,
        "static": result.static,
        "analytic": result.analytic,
        "simulated": result.simulated,
        "static_fraction": round(frac, 4),
        "seconds": round(seconds, 3),
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kernels", nargs="+",
                        default=list(DEFAULT_KERNELS),
                        help="kernels for the pre-filter campaigns "
                             "(default: %s)" % " ".join(DEFAULT_KERNELS))
    parser.add_argument("--trials", type=int, default=None, metavar="N",
                        help="Monte-Carlo trials per (kernel, kind) "
                             "(default: 256; 96 under --quick)")
    parser.add_argument("--max-seconds", type=float, default=None,
                        metavar="X",
                        help="exit non-zero if the full-kernel absint "
                             "pass takes longer than X seconds")
    parser.add_argument("--min-static-frac", type=float, default=None,
                        metavar="F",
                        help="exit non-zero if the static pre-filter "
                             "resolves less than fraction F of the "
                             "sampled trials")
    parser.add_argument("--seed", type=int, default=0, metavar="N",
                        help="campaign RNG seed (default: 0)")
    parser.add_argument("--quick", action="store_true",
                        help="CI subset: %s only, fewer trials"
                        % " ".join(QUICK_KERNELS))
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="report path (default: BENCH_lint.json "
                             "at the repo root)")
    args = parser.parse_args()
    out_path = pathlib.Path(args.out) if args.out else OUT_PATH
    kernels = list(QUICK_KERNELS) if args.quick else args.kernels
    trials = args.trials if args.trials is not None \
        else (96 if args.quick else 256)

    absint_rows, absint_s = bench_absint()

    campaigns = [bench_prefilter(name, kind, trials, args.seed)
                 for name in kernels
                 for kind in ("transient", "ccf")]
    static = sum(row["static"] for row in campaigns)
    sampled = sum(row["trials"] for row in campaigns)
    # None (not 0.0) with zero sampled trials: "resolved 0% statically"
    # and "nothing was sampled" must stay distinguishable downstream —
    # the report uses the shared skip shape from bench_common.
    static_frac = static / sampled if sampled else None
    print("aggregate: absint %.2fs over %d kernels; pre-filter "
          "resolved %d/%d trials (%s) without the access log"
          % (absint_s, len(absint_rows), static, sampled,
             "%.0f%%" % (100.0 * static_frac)
             if static_frac is not None else "n/a"))

    report = {
        "absint": {
            "kernels": absint_rows,
            "total_seconds": round(absint_s, 3),
        },
        "prefilter": {
            "campaigns": campaigns,
            "trials_per_campaign": trials,
            "static_trials": static,
            "sampled_trials": sampled,
            **metric_fields("static_fraction",
                            round(static_frac, 4)
                            if static_frac is not None else None,
                            None if sampled else "no-trials"),
        },
        "max_cycles": MAX_CYCLES,
        "seed": args.seed,
        "quick": bool(args.quick),
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print("wrote %s" % out_path)

    failed = False
    if args.max_seconds is not None and absint_s > args.max_seconds:
        print("FAIL: absint pass %.2fs exceeds the %.2fs budget"
              % (absint_s, args.max_seconds), file=sys.stderr)
        failed = True
    if args.min_static_frac is not None:
        if static_frac is None:
            print("FAIL: cannot gate on --min-static-frac with no "
                  "sampled trials", file=sys.stderr)
            failed = True
        elif static_frac < args.min_static_frac:
            print("FAIL: static pre-filter fraction %.2f below "
                  "required %.2f" % (static_frac, args.min_static_frac),
                  file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
