"""CCF coverage — SafeDM's no-false-negative property under injection.

The paper argues (Section III-A) that SafeDM "can only raise false
positives ... but not false negatives": whenever a common-cause fault
could corrupt both cores identically, SafeDM has already reported lack
of diversity.  This bench runs common-cause campaigns on a sound
(private address spaces) and an unsound (shared address space)
redundant deployment and cross-references every silent escape with
SafeDM's verdict at the injection instant.
"""

import pytest

from repro.fault.campaign import run_ccf_campaign, spread_cycles
from repro.fault.injector import shared_address_config
from repro.workloads import program

from conftest import save_and_print

WORKLOAD = "countnegative"
INJECTIONS = 10
STIMULI = [0x5EED, 0xBEEF, 0x70AD]


def campaigns():
    prog = program(WORKLOAD)
    cycles = spread_cycles(13000, INJECTIONS)
    return {
        "private address spaces":
            run_ccf_campaign(prog, cycles, stimuli=STIMULI),
        "shared address space (unsound)":
            run_ccf_campaign(prog, cycles, stimuli=STIMULI,
                             config=shared_address_config()),
    }


def test_ccf_coverage(benchmark):
    results = benchmark.pedantic(campaigns, rounds=1, iterations=1)

    lines = ["Common-cause fault coverage on %r (%d injections each)"
             % (WORKLOAD, INJECTIONS * len(STIMULI)), ""]
    for scenario, result in results.items():
        lines.append("%s:" % scenario)
        lines.append("  " + result.summary())
    lines.append("")
    lines.append("property: silent_despite_diversity == 0 everywhere "
                 "(no false negatives)")
    save_and_print("fault_coverage.txt", "\n".join(lines))

    for scenario, result in results.items():
        # The paper's central safety property.
        assert result.silent_despite_diversity == 0, scenario
        # Everything is accounted for.
        total = (result.masked + result.detected + result.silent_ccf
                 + result.count("hang"))
        assert total == len(result.injections)
    # The sound deployment cannot poison its twin through shared state.
    assert results["private address spaces"].silent_via_shared_state == 0
