"""Ablation — every-cycle vs on-activity DS sampling.

Paper III-B.1 argues for recording port data *every cycle* rather than
only when ports are active: otherwise two cores reading/writing the
same values with different timing (i.e. with staggering, hence with
diversity) would produce identical signatures.  This bench measures the
false-positive inflation of activity-only sampling.
"""

import pytest

from repro.core.signatures import SignatureConfig
from repro.soc.config import SocConfig
from repro.soc.experiment import run_redundant
from repro.workloads import program

from conftest import save_and_print

WORKLOADS = ("cubic", "fft", "bitcount")


def run_mode(name: str, every_cycle: bool, stagger: int = 0):
    cfg = SocConfig(signature=SignatureConfig(
        sample_every_cycle=every_cycle))
    return run_redundant(program(name), benchmark=name, config=cfg,
                         stagger_nops=stagger)


def sweep():
    out = {}
    for name in WORKLOADS:
        out[name] = (run_mode(name, True), run_mode(name, False))
    return out


def staggering_blindness():
    """The paper's exact scenario, in isolation: both cores move the
    same values through the ports, one core a cycle later (staggered,
    hence diverse).  Every-cycle sampling sees the staggering;
    activity-only sampling does not."""
    from repro.core.signatures import DataSignatureUnit
    outcomes = {}
    for every_cycle in (True, False):
        config = SignatureConfig(num_ports=4, ds_depth=7,
                                 sample_every_cycle=every_cycle)
        a = DataSignatureUnit(config)
        b = DataSignatureUnit(config)
        idle = [(0, 0)] * 4
        blind_cycles = 0
        for step in range(64):
            value = [(1, 0x1000 + step), (0, 0), (0, 0), (0, 0)]
            # a is one cycle ahead of b with the identical value stream
            a.sample(value if step % 2 == 0 else idle)
            b.sample(idle if step % 2 == 0 else
                     [(1, 0x1000 + step - 1), (0, 0), (0, 0), (0, 0)])
            if a.equal(b):
                blind_cycles += 1
        outcomes[every_cycle] = blind_cycles
    return outcomes


def test_sampling_ablation(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    blindness = staggering_blindness()

    lines = ["DS sampling ablation (no-data-div cycles)", "",
             "  %-12s %14s %18s" % ("benchmark", "every cycle",
                                    "activity only")]
    for name, (every, activity) in results.items():
        lines.append("  %-12s %14d %18d"
                     % (name, every.no_data_diversity_cycles,
                        activity.no_data_diversity_cycles))
    lines.append("")
    lines.append("staggered-identical-stream microbenchmark "
                 "(cycles reported as matching):")
    lines.append("  every-cycle sampling : %d" % blindness[True])
    lines.append("  activity-only        : %d" % blindness[False])
    lines.append("")
    lines.append("note: on full kernels the two modes trade off in both")
    lines.append("directions (activity-only also *retains* stale")
    lines.append("address samples longer); the paper's argument is the")
    lines.append("staggering blindness isolated above.")
    save_and_print("ablation_sampling.txt", "\n".join(lines))

    # The paper's claim: staggered identical streams are invisible to
    # activity-only sampling but visible to every-cycle sampling.
    assert blindness[True] == 0
    assert blindness[False] >= 32  # blind on every synchronised step
    # And the mode choice measurably changes full-kernel results.
    assert any(e.no_data_diversity_cycles != a.no_data_diversity_cycles
               for e, a in results.values())
