"""Table II — classification of non-lockstepped redundancy techniques.

The paper's Table II is a taxonomy; this bench regenerates it and
*backs each class with a measurement* on the same workload:

* diversity unaware — plain redundancy: zero overhead, but no
  diversity evidence at all;
* diversity enforced (intrusive) — SafeDE and software staggering:
  diversity guaranteed (zero-staggering eliminated) at the cost of
  stall cycles and run-time overhead;
* diversity monitored (non-intrusive, this work) — SafeDM: zero
  run-time overhead, full diversity evidence.
"""

import pytest

from repro.analysis.tables import format_table2
from repro.baselines.safede import run_with_enforcement
from repro.baselines.sw_stagger import run_with_sw_staggering
from repro.soc.mpsoc import MPSoC
from repro.workloads import program

from conftest import save_and_print

WORKLOAD = "countnegative"


def run_unaware():
    soc = MPSoC()
    soc.safedm.enabled = False
    soc.start_redundant(program(WORKLOAD))
    soc.run()
    return soc


def run_safedm():
    soc = MPSoC()
    soc.start_redundant(program(WORKLOAD))
    soc.run()
    return soc


def run_safede():
    soc = MPSoC()
    soc.start_redundant(program(WORKLOAD))
    enforcer = run_with_enforcement(soc, threshold=50)
    return soc, enforcer


def run_sw_stagger():
    soc = MPSoC()
    soc.start_redundant(program(WORKLOAD))
    staggerer = run_with_sw_staggering(soc, threshold=50,
                                       check_interval=100)
    return soc, staggerer


def test_table2_regeneration(benchmark):
    unaware = run_unaware()
    monitored = benchmark.pedantic(run_safedm, rounds=1, iterations=1)
    enforced, enforcer = run_safede()
    sw, staggerer = run_sw_stagger()

    baseline_cycles = unaware.cycle
    results = {
        "Diversity unaware": {
            "run cycles": baseline_cycles,
            "diversity evidence": "none (CCF risk invisible)",
        },
        "Diversity enforced (intrusive)": {
            "SafeDE run cycles": "%d (+%.1f%%)" % (
                enforced.cycle,
                100.0 * (enforced.cycle - baseline_cycles)
                / baseline_cycles),
            "SafeDE stall cycles": enforcer.stats.stall_cycles,
            "SW-stagger run cycles": "%d (+%.1f%%)" % (
                sw.cycle,
                100.0 * (sw.cycle - baseline_cycles) / baseline_cycles),
            "residual zero-staggering (SafeDE)":
                enforced.safedm.instruction_diff.stats
                .zero_staggering_cycles,
        },
        "Diversity monitored (non-intrusive)": {
            "run cycles": "%d (+0.0%%)" % monitored.cycle,
            "no-diversity cycles flagged":
                monitored.safedm.stats.no_diversity_cycles,
            "zero-staggering cycles flagged":
                monitored.safedm.instruction_diff.stats
                .zero_staggering_cycles,
        },
    }
    save_and_print("table2.txt", format_table2(results))

    # --- shape assertions ---
    # SafeDM is non-intrusive: identical cycle count to unaware.
    assert monitored.cycle == baseline_cycles
    # Enforcement is intrusive: it costs cycles and stalls.
    assert enforced.cycle > baseline_cycles
    assert enforcer.stats.stall_cycles > 0
    assert sw.cycle > baseline_cycles
    # Enforcement achieves its goal: (almost) no zero staggering.
    assert (enforced.safedm.instruction_diff.stats.zero_staggering_cycles
            < monitored.safedm.instruction_diff.stats
            .zero_staggering_cycles + 1)
