#!/usr/bin/env python3
"""Monte-Carlo campaign benchmark: batched SoA vs per-trial campaigns.

Times an N-trial common-cause Monte-Carlo campaign three ways:

* ``scratch``  — the per-trial baseline: each trial is its own
  :func:`repro.fault.run_ccf_campaign` call with no checkpoints at
  the API's default (reference) tier — what a naive Monte-Carlo
  harness over the pre-existing interface costs — so every trial
  pays a fresh golden run plus a full corrupted run (measured on a
  small subset and reported per-trial; ``--baseline-engine`` changes
  the tier),
* ``fork``     — one golden run with checkpoints, then per-trial
  scalar :func:`inject_common_cause` through a shared
  :class:`ForkEngine` (the pre-batching fast path),
* ``batched``  — :class:`repro.montecarlo.BatchedCampaign`: one
  instrumented golden run, analytic classification of provably-masked
  trials, forked simulation only for the live rest.

Before any timing is reported, a stride-sampled subset of the batched
trials is reconstituted as scalar :class:`InjectionResult` objects and
asserted field-for-field identical (``dataclasses.asdict``) to the
per-trial fork path on the same faults — the fork loop doubles as the
``fork`` baseline timing.  The scratch subset is asserted the same
way, which doubles as a cross-tier equivalence check when the two
sides run different engine tiers.  The batched figure includes the
golden-run cost, so the reported speedup is end-to-end, not marginal.

The report goes to ``BENCH_montecarlo.json`` at the repo root;
``--min-speedup X`` turns the bench into a CI gate that exits
non-zero when the aggregate batched-vs-scratch speedup falls below
``X``.  The scratch baseline is the honest comparison for "what a
naive Monte-Carlo harness would cost"; the fork baseline is reported
alongside so the win over the previous best path is visible too.

Usage:
    PYTHONPATH=src python benchmarks/bench_montecarlo.py
        [--kernels K ...] [--trials N] [--baseline-trials N]
        [--checkpoint-every N] [--engine TIER] [--baseline-engine
        TIER] [--jobs N] [--quick] [--min-speedup X] [--seed N]
        [--out FILE]

``--quick`` restricts the run to the countnegative kernel with fewer
trials, for CI.  ``--baseline-trials 0`` skips the expensive scratch
baseline; the report then carries the shared skip-field shape
(``"speedup_vs_scratch": null`` plus
``"speedup_vs_scratch_skipped": "no-baseline-trials"`` — see
:mod:`bench_common`) instead of a fabricated rate.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
import time

from bench_common import metric_fields
from repro.fault import (
    ForkEngine,
    inject_common_cause,
    run_ccf_campaign,
    shared_address_config,
)
from repro.montecarlo import BatchedCampaign
from repro.workloads import program as build_program

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
OUT_PATH = REPO_ROOT / "BENCH_montecarlo.json"

DEFAULT_KERNELS = ("countnegative", "matrix1")
QUICK_KERNELS = ("countnegative",)
MAX_CYCLES = 200_000
#: How many batched trials the scalar-equivalence check replays
#: (stride-sampled across the batch, so it sees analytic and
#: simulated rows, masked and live alike).
CHECK_TRIALS = 24


def bench_kernel(name, trials, baseline_trials, cadence_override,
                 engine, baseline_engine, jobs, seed):
    prog = build_program(name)
    config = shared_address_config()

    # -- batched: golden + classify + simulate, end to end ------------
    campaign = BatchedCampaign(prog, benchmark=name, config=config,
                               max_cycles=MAX_CYCLES,
                               checkpoint_every=cadence_override or 0,
                               engine=engine)
    batched_start = time.perf_counter()
    batch = campaign.sample_ccf(trials, seed=seed)
    result = campaign.run(batch, jobs=jobs, seed=seed)
    batched_s = time.perf_counter() - batched_start
    base = campaign.artifact.base

    # -- correctness first: batched rows == scalar fork path ----------
    # The same loop is the fork-baseline timing: one shared golden
    # artifact, per-trial scalar injection through a ForkEngine.
    stride = max(1, trials // CHECK_TRIALS)
    sampled = list(range(0, trials, stride))
    fork = ForkEngine(prog, base, config=config)
    fork_start = time.perf_counter()
    for i in sampled:
        scalar = inject_common_cause(
            prog, int(batch.columns["cycle"][i]),
            int(batch.columns["stimulus"][i]), base.checksum,
            config=config, max_cycles=MAX_CYCLES, fork=fork,
            engine=engine)
        got = dataclasses.asdict(batch.result(i))
        want = dataclasses.asdict(scalar)
        assert got == want, \
            "batched diverged from scalar at trial %d:\n batched: %r" \
            "\n scalar:  %r" % (i, got, want)
    fork_s = time.perf_counter() - fork_start

    # -- scratch baseline: per-trial run_ccf_campaign, no forking,
    # at the pre-existing API's tier (results are bit-identical
    # across tiers, so the assert below still must hold).
    # ``--baseline-trials 0`` skips the baseline entirely — each
    # scratch trial costs two full simulations — and the report
    # marks the scratch metrics as skipped instead of inventing a
    # rate from zero samples. ----------------------------------------
    scratch_start = time.perf_counter()
    for i in range(baseline_trials):
        scratch = run_ccf_campaign(
            prog, [int(batch.columns["cycle"][i])],
            stimuli=[int(batch.columns["stimulus"][i])],
            config=config, max_cycles=MAX_CYCLES,
            engine=baseline_engine)
        got = dataclasses.asdict(batch.result(i))
        want = dataclasses.asdict(scratch.injections[0])
        assert got == want, \
            "batched diverged from scratch at trial %d:\n batched: " \
            "%r\n scratch: %r" % (i, got, want)
    scratch_s = time.perf_counter() - scratch_start

    batched_rate = trials / batched_s
    fork_rate = len(sampled) / fork_s
    scratch_rate = (baseline_trials / scratch_s if baseline_trials
                    else None)
    speedup = batched_rate / scratch_rate if scratch_rate else None
    speedup_fork = batched_rate / fork_rate
    counts = batch.counts()
    scratch_note = ("scratch %.3fs/trial" % (1.0 / scratch_rate)
                    if scratch_rate else "scratch skipped")
    scratch_x = "%.1fx scratch" % speedup if speedup else "n/a scratch"
    print("%-14s trials=%-6d every=%-5d batched %6.2fs (%.1f/s)  "
          "fork %.3fs/trial  %s  (%s, %.1fx fork)"
          % (name, trials, campaign.checkpoint_every, batched_s,
             batched_rate, 1.0 / fork_rate, scratch_note,
             scratch_x, speedup_fork))
    assert counts["silent_despite_diversity"] == 0
    return {
        "kernel": name,
        "run_cycles": base.end_cycle,
        "trials": trials,
        "checkpoint_every": campaign.checkpoint_every,
        "analytic": result.analytic,
        "simulated": result.simulated,
        "counts": counts,
        "golden_seconds": round(result.golden_wall_s, 3),
        "classify_seconds": round(result.classify_wall_s, 3),
        "simulate_seconds": round(result.simulate_wall_s, 3),
        "batched_seconds": round(batched_s, 3),
        "batched_trials_per_s": round(batched_rate, 2),
        "checked_trials": len(sampled),
        "fork_seconds_per_trial": round(1.0 / fork_rate, 4),
        "fork_trials_per_s": round(fork_rate, 2),
        "baseline_trials": baseline_trials,
        **metric_fields("scratch_seconds_per_trial",
                        round(1.0 / scratch_rate, 4) if scratch_rate
                        else None,
                        None if baseline_trials
                        else "no-baseline-trials"),
        **metric_fields("scratch_trials_per_s",
                        round(scratch_rate, 2) if scratch_rate
                        else None,
                        None if baseline_trials
                        else "no-baseline-trials"),
        **metric_fields("speedup_vs_scratch",
                        round(speedup, 2) if speedup else None,
                        None if baseline_trials
                        else "no-baseline-trials"),
        "speedup_vs_fork": round(speedup_fork, 2),
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kernels", nargs="+",
                        default=list(DEFAULT_KERNELS),
                        help="kernels to campaign over (default: %s)"
                        % " ".join(DEFAULT_KERNELS))
    parser.add_argument("--trials", type=int, default=None, metavar="N",
                        help="Monte-Carlo trials per kernel "
                             "(default: 2000; 1000 under --quick)")
    parser.add_argument("--baseline-trials", type=int, default=5,
                        metavar="N",
                        help="trials timed through the per-trial "
                             "scratch path (default: 5 — each costs a "
                             "full golden run plus a corrupted run)")
    parser.add_argument("--checkpoint-every", type=int, default=None,
                        metavar="N",
                        help="checkpoint cadence (default: "
                             "run_cycles // 25, floor 200)")
    parser.add_argument("--engine", default="fast",
                        choices=("reference", "fast"),
                        help="execution tier for the batched campaign "
                             "and the fork baseline (default: fast)")
    parser.add_argument("--baseline-engine", default="reference",
                        choices=("reference", "fast"),
                        help="execution tier for the scratch "
                             "baseline (default: reference — "
                             "run_ccf_campaign's own default, i.e. "
                             "the pre-existing per-trial path as "
                             "users invoke it)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for live trials "
                             "(default: 1; results are identical "
                             "regardless)")
    parser.add_argument("--seed", type=int, default=0, metavar="N",
                        help="campaign RNG seed (default: 0)")
    parser.add_argument("--quick", action="store_true",
                        help="CI subset: %s only, fewer trials"
                        % " ".join(QUICK_KERNELS))
    parser.add_argument("--min-speedup", type=float, default=None,
                        metavar="X",
                        help="exit non-zero if aggregate batched-vs-"
                             "scratch speedup < X")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="report path (default: "
                             "BENCH_montecarlo.json at the repo root)")
    args = parser.parse_args()
    out_path = pathlib.Path(args.out) if args.out else OUT_PATH
    kernels = list(QUICK_KERNELS) if args.quick else args.kernels
    trials = args.trials if args.trials is not None \
        else (1000 if args.quick else 2000)

    print("monte-carlo ccf campaign, %d trial(s)/kernel, engine=%s "
          "(scratch baseline: %s), jobs=%d, max_cycles=%d%s"
          % (trials, args.engine, args.baseline_engine, args.jobs,
             MAX_CYCLES, " (quick)" if args.quick else ""))
    rows = [bench_kernel(name, trials, args.baseline_trials,
                         args.checkpoint_every, args.engine,
                         args.baseline_engine, args.jobs, args.seed)
            for name in kernels]

    batched_rate = (sum(row["trials"] for row in rows)
                    / sum(row["batched_seconds"] for row in rows))
    baseline_total = sum(row["baseline_trials"] for row in rows)
    scratch_rate = (baseline_total
                    / sum(row["baseline_trials"]
                          * row["scratch_seconds_per_trial"]
                          for row in rows
                          if row["baseline_trials"])
                    if baseline_total else None)
    fork_rate = (sum(row["checked_trials"] for row in rows)
                 / sum(row["checked_trials"]
                       * row["fork_seconds_per_trial"]
                       for row in rows))
    speedup = batched_rate / scratch_rate if scratch_rate else None
    speedup_fork = batched_rate / fork_rate
    checked = sum(row["checked_trials"] + row["baseline_trials"]
                  for row in rows)
    print("exactness: batched == scalar field-for-field on %d sampled "
          "trial(s)" % checked)
    scratch_part = ("%.2f scratch (%.1fx)" % (scratch_rate, speedup)
                    if scratch_rate else "scratch skipped")
    print("aggregate %.1f trials/s batched vs %s and %.1f fork (%.1fx)"
          % (batched_rate, scratch_part, fork_rate, speedup_fork))

    report = {
        "kernels": rows,
        "trials_per_kernel": trials,
        "max_cycles": MAX_CYCLES,
        "engine": args.engine,
        "baseline_engine": args.baseline_engine,
        "jobs": args.jobs,
        "seed": args.seed,
        "quick": bool(args.quick),
        "batched_trials_per_s": round(batched_rate, 2),
        **metric_fields("scratch_trials_per_s",
                        round(scratch_rate, 2) if scratch_rate
                        else None,
                        None if baseline_total
                        else "no-baseline-trials"),
        "fork_trials_per_s": round(fork_rate, 2),
        **metric_fields("speedup_vs_scratch",
                        round(speedup, 2) if speedup else None,
                        None if baseline_total
                        else "no-baseline-trials"),
        "speedup_vs_fork": round(speedup_fork, 2),
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print("wrote %s" % out_path)

    if args.min_speedup is not None:
        if speedup is None:
            print("FAIL: cannot gate on --min-speedup with the "
                  "scratch baseline skipped (--baseline-trials 0)",
                  file=sys.stderr)
            return 1
        if speedup < args.min_speedup:
            print("FAIL: speedup %.1fx below required %.1fx"
                  % (speedup, args.min_speedup), file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
