#!/usr/bin/env python3
"""Redundancy-scheme matrix benchmark: coverage x latency x hardware.

Runs the same common-cause fault campaign against every redundancy
scheme (SafeDM pair, lockstep, TMR, multi-pair, DME) and reports, per
scheme and kernel: CCF coverage, mean detection latency, run cycles,
and the modeled hardware cost.  The report goes to
``BENCH_schemes.json`` at the repo root.

The bench doubles as the scheme-framework acceptance harness:

* the **lockstep gate** (always on) fails the run if lockstep ever
  misses an unmasked CCF — identical replicas compared commit-by-
  commit have no masking window, so a silent trial there means the
  classification plumbing is broken, not the scheme;
* ``--safedm-sweep`` re-runs every kernel under ``scheme="safedm"``
  and asserts the result field-for-field identical to the legacy
  (scheme-less) ``run_redundant``, on both execution tiers;
* ``--dme-sweep`` checks, for every kernel, that the DME trail build
  is CFG-isomorphic to the leading build and that a full run under
  the DME scheme reaches the same architectural output as SafeDM.

Usage:
    PYTHONPATH=src python benchmarks/bench_schemes.py
        [--kernels K ...] [--schemes S ...] [--faults N] [--quick]
        [--safedm-sweep] [--dme-sweep] [--out FILE]

``--quick`` restricts the matrix to the cosf kernel with 2 faults and
turns on both sweeps, for CI.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
import time

from bench_common import metric_fields
from repro.schemes import SCHEME_KINDS, SchemeSpec
from repro.schemes.dme import dme_transform_report
from repro.schemes.matrix import matrix_table, run_scheme_trials
from repro.soc.experiment import run_redundant
from repro.workloads import all_names, program as build_program

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
OUT_PATH = REPO_ROOT / "BENCH_schemes.json"

DEFAULT_KERNELS = ("binarysearch", "bitonic", "cosf")
QUICK_KERNELS = ("cosf",)
DEFAULT_STIMULI = (0x5EED,)
MAX_CYCLES = 2_000_000


def bench_matrix(kernels, schemes, num_faults):
    """The coverage matrix proper: every scheme over every kernel."""
    rows = []
    for kernel in kernels:
        prog = build_program(kernel)
        kernel_rows = []
        for kind in schemes:
            start = time.perf_counter()
            row = run_scheme_trials(kind, prog, benchmark=kernel,
                                    num_faults=num_faults,
                                    stimuli=DEFAULT_STIMULI,
                                    max_cycles=MAX_CYCLES)
            elapsed = time.perf_counter() - start
            payload = row.to_dict()
            payload["kernel"] = kernel
            payload["wall_seconds"] = round(elapsed, 3)
            kernel_rows.append((row, payload))
        print("%s:" % kernel)
        print(matrix_table([row for row, _ in kernel_rows]))
        rows.extend(kernel_rows)
    return rows


def lockstep_gate(rows):
    """Lockstep must detect 100% of unmasked CCFs, everywhere."""
    missed = [payload for row, payload in rows
              if row.scheme == "lockstep" and row.silent]
    for payload in missed:
        print("FAIL: lockstep let %d CCF(s) escape on %s"
              % (payload["silent"], payload["kernel"]),
              file=sys.stderr)
    return not missed


def safedm_sweep():
    """scheme="safedm" == legacy run_redundant, every kernel, both
    tiers.  Returns (kernels_checked, mismatches)."""
    mismatches = []
    names = all_names()
    for kernel in names:
        prog = build_program(kernel)
        for engine in ("reference", "fast"):
            legacy = run_redundant(prog, benchmark=kernel,
                                   engine=engine,
                                   max_cycles=MAX_CYCLES)
            scheme = run_redundant(prog, benchmark=kernel,
                                   engine=engine, scheme="safedm",
                                   max_cycles=MAX_CYCLES)
            a = dataclasses.asdict(legacy)
            b = dataclasses.asdict(scheme)
            a.pop("scheme_stats"), b.pop("scheme_stats")
            if a != b:
                diff = sorted(k for k in a if a[k] != b[k])
                mismatches.append((kernel, engine, diff))
                print("FAIL: safedm != legacy on %s (%s): %s"
                      % (kernel, engine, diff), file=sys.stderr)
    print("safedm bit-identity: %d/%d kernel x tier combinations "
          "identical" % (2 * len(names) - len(mismatches),
                         2 * len(names)))
    return len(names), mismatches


def dme_sweep():
    """DME trail build is CFG-isomorphic and reaches the same final
    architectural state, every kernel."""
    spec = SchemeSpec(kind="dme")
    failures = []
    names = all_names()
    remapped_total = 0
    for kernel in names:
        prog = build_program(kernel)
        report = dme_transform_report(kernel, spec, prog.base)
        remapped_total += report.words_remapped
        if not report.cfg_isomorphic:
            failures.append((kernel, "cfg-not-isomorphic"))
            print("FAIL: DME transform broke the CFG of %s" % kernel,
                  file=sys.stderr)
            continue
        plain = run_redundant(prog, benchmark=kernel, scheme="safedm",
                              max_cycles=MAX_CYCLES)
        dme = run_redundant(prog, benchmark=kernel, scheme="dme",
                            max_cycles=MAX_CYCLES)
        outs = dme.scheme_stats["outputs"]
        if not dme.finished:
            failures.append((kernel, "dme-run-hung"))
            print("FAIL: DME run of %s did not finish" % kernel,
                  file=sys.stderr)
        elif outs[0] != outs[1] \
                or outs[0] != plain.scheme_stats["outputs"][0]:
            failures.append((kernel, "final-state-divergence"))
            print("FAIL: DME trail of %s diverged: %r vs plain %r"
                  % (kernel, outs, plain.scheme_stats["outputs"][0]),
                  file=sys.stderr)
    print("dme equivalence: %d/%d kernels isomorphic and "
          "state-identical (%d words remapped in total)"
          % (len(names) - len(failures), len(names), remapped_total))
    return len(names), failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kernels", nargs="+",
                        default=list(DEFAULT_KERNELS),
                        help="kernels to campaign over (default: %s)"
                        % " ".join(DEFAULT_KERNELS))
    parser.add_argument("--schemes", nargs="+",
                        default=list(SCHEME_KINDS),
                        choices=list(SCHEME_KINDS),
                        help="schemes to compare (default: all)")
    parser.add_argument("--faults", type=int, default=4, metavar="N",
                        help="fault instants per scheme x kernel "
                             "(default: 4; 2 under --quick)")
    parser.add_argument("--quick", action="store_true",
                        help="CI subset: %s only, 2 faults, both "
                             "sweeps on" % " ".join(QUICK_KERNELS))
    parser.add_argument("--safedm-sweep", action="store_true",
                        help="assert scheme='safedm' == legacy "
                             "run_redundant on every kernel, both "
                             "tiers")
    parser.add_argument("--dme-sweep", action="store_true",
                        help="assert the DME build of every kernel is "
                             "CFG-isomorphic and state-identical")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="report path (default: BENCH_schemes.json "
                             "at the repo root)")
    args = parser.parse_args()
    out_path = pathlib.Path(args.out) if args.out else OUT_PATH
    kernels = list(QUICK_KERNELS) if args.quick else args.kernels
    num_faults = 2 if args.quick and args.faults == 4 else args.faults
    run_safedm = args.safedm_sweep or args.quick
    run_dme = args.dme_sweep or args.quick

    print("scheme matrix: %s x %s, %d fault(s) each"
          % (" ".join(kernels), " ".join(args.schemes), num_faults))
    rows = bench_matrix(kernels, args.schemes, num_faults)
    gate_ok = lockstep_gate(rows)

    report = {
        "kernels": kernels,
        "schemes": list(args.schemes),
        "faults_per_cell": num_faults,
        "stimuli": list(DEFAULT_STIMULI),
        "quick": bool(args.quick),
        "matrix": [payload for _, payload in rows],
        "lockstep_gate_passed": gate_ok,
    }

    if run_safedm:
        checked, mismatches = safedm_sweep()
        report.update(metric_fields(
            "safedm_identical_kernels",
            checked if not mismatches else checked - len(mismatches)))
        report["safedm_mismatches"] = [
            {"kernel": k, "engine": e, "fields": d}
            for k, e, d in mismatches]
        gate_ok = gate_ok and not mismatches
    else:
        report.update(metric_fields("safedm_identical_kernels", None,
                                    "sweep-not-requested"))

    if run_dme:
        checked, failures = dme_sweep()
        report.update(metric_fields(
            "dme_equivalent_kernels", checked - len(failures)))
        report["dme_failures"] = [{"kernel": k, "reason": r}
                                  for k, r in failures]
        gate_ok = gate_ok and not failures
    else:
        report.update(metric_fields("dme_equivalent_kernels", None,
                                    "sweep-not-requested"))

    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print("wrote %s" % out_path)
    if not gate_ok:
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
