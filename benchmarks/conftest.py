"""Shared helpers for the benchmark harness.

Every paper table/figure has one ``bench_*.py`` here.  Each bench both
*regenerates the paper's rows* (printed and saved under
``benchmarks/out/``) and times a representative unit of work through
pytest-benchmark.

Set ``SAFEDM_FULL_TABLE1=1`` to sweep all 29 benchmarks in
``bench_table1``; the default sweeps a category-representative subset
to keep a full bench run in minutes.
"""

from __future__ import annotations

import os
import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: Category-representative subset used by default for Table I.
TABLE1_SUBSET = (
    "binarysearch",   # search
    "bitcount",       # bitops
    "bsort",          # sort
    "cubic",          # ALU-dense math (the paper's no-div champion)
    "fft",            # dsp
    "matrix1",        # linear algebra
    "md5",            # crypto
    "pm",             # the timing-anomaly benchmark
    "recursion",      # stack-heavy
)


def full_table1() -> bool:
    return os.environ.get("SAFEDM_FULL_TABLE1", "") == "1"


def save_and_print(name: str, text: str):
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / name
    path.write_text(text)
    print()
    print("=" * 72)
    print(text)
    print("(saved to %s)" % path)
