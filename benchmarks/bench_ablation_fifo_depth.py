"""Ablation — DS FIFO depth n (paper III-B.1: 'implementation specific').

A deeper window holds address-bearing port samples longer, so fewer
cycles look non-diverse; the cost is linear area growth (see
bench_overheads).  Sweeps n on the ALU-dense ``cubic`` kernel where the
effect is largest.
"""

import pytest

from repro.core.overheads import estimate
from repro.core.signatures import SignatureConfig
from repro.soc.config import SocConfig
from repro.soc.experiment import run_redundant
from repro.workloads import program

from conftest import save_and_print

DEPTHS = (3, 7, 14, 28)
WORKLOAD = "cubic"


def run_depth(depth: int):
    cfg = SocConfig(signature=SignatureConfig(ds_depth=depth))
    return run_redundant(program(WORKLOAD), benchmark=WORKLOAD,
                         config=cfg)


def sweep():
    return {depth: run_depth(depth) for depth in DEPTHS}


def test_fifo_depth_ablation(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["DS FIFO depth ablation on %r" % WORKLOAD, "",
             "  %4s %12s %14s %8s" % ("n", "no-div cyc",
                                      "no-data-div cyc", "LUTs")]
    for depth, result in results.items():
        area = estimate(SignatureConfig(ds_depth=depth)).luts
        lines.append("  %4d %12d %14d %8d"
                     % (depth, result.no_diversity_cycles,
                        result.no_data_diversity_cycles, area))
    save_and_print("ablation_fifo_depth.txt", "\n".join(lines))

    nodiv = [results[d].no_diversity_cycles for d in DEPTHS]
    # Deeper windows never report more lack of data diversity.
    nodata = [results[d].no_data_diversity_cycles for d in DEPTHS]
    assert all(a >= b for a, b in zip(nodata, nodata[1:]))
    assert nodiv[0] >= nodiv[-1]
    # All runs completed and the effect is visible at the extremes.
    assert all(r.finished for r in results.values())
    assert results[3].no_data_diversity_cycles > \
        results[28].no_data_diversity_cycles
