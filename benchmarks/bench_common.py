"""Shared report conventions for the ``BENCH_*.json`` writers.

Every benchmark writes a JSON report consumed by CI gates and by
humans diffing runs over time.  A metric that *could not be measured*
must be distinguishable from one that was measured and happened to be
small — ``BENCH_runtime.json`` once claimed a 0.973x "parallel
speedup" that was really the serial code path timed against itself on
a 1-CPU host.  The canonical shape, used by every writer:

* measured —   ``{"<metric>": <value>}`` and no ``_skipped`` key;
* skipped  —   ``{"<metric>": null, "<metric>_skipped": "<reason>"}``
  where the reason is a short machine-readable slug
  (``"single-cpu"``, ``"no-baseline-trials"``, ...).

Downstream tooling can then treat ``metric is None`` as "not
measured", read the adjacent ``_skipped`` field for why, and never
confuse either with a measured-but-disappointing number.
"""

from __future__ import annotations


def metric_fields(metric: str, value, skipped_reason=None) -> dict:
    """Canonical measured/skipped field pair for one report metric.

    Returns ``{metric: value}`` when ``skipped_reason`` is None, else
    ``{metric: None, metric + "_skipped": skipped_reason}`` (the
    value is dropped — a skipped metric never carries a number).
    """
    if skipped_reason is not None:
        return {metric: None, "%s_skipped" % metric: skipped_reason}
    return {metric: value}
