"""Ablation — the three reporting modes (paper III-B.3).

Measures detection latency (cycle of the first interrupt) and
interrupt volume for interrupt-on-first vs interrupt-on-threshold vs
polling, on the kernel with the most diversity loss.
"""

import pytest

from repro.core.monitor import ReportingMode
from repro.soc.mpsoc import MPSoC
from repro.workloads import program

from conftest import save_and_print

WORKLOAD = "cubic"


def run_mode(mode: ReportingMode, threshold: int = 1):
    soc = MPSoC(mode=mode, threshold=threshold)
    first_irq = []
    soc.safedm.irq.subscribe(lambda cycle: first_irq.append(cycle))
    soc.start_redundant(program(WORKLOAD))
    soc.run()
    return {
        "cycles": soc.cycle,
        "no_div": soc.safedm.stats.no_diversity_cycles,
        "interrupts": soc.safedm.stats.interrupts_raised,
        "first_irq_cycle": first_irq[0] if first_irq else None,
    }


def sweep():
    return {
        "polling": run_mode(ReportingMode.POLLING),
        "interrupt_first": run_mode(ReportingMode.INTERRUPT_FIRST),
        "threshold_100": run_mode(ReportingMode.INTERRUPT_THRESHOLD,
                                  threshold=100),
        "threshold_5000": run_mode(ReportingMode.INTERRUPT_THRESHOLD,
                                   threshold=5000),
    }


def test_reporting_mode_ablation(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["Reporting-mode ablation on %r" % WORKLOAD, "",
             "  %-16s %10s %12s %16s"
             % ("mode", "irqs", "no-div cyc", "first-irq cycle")]
    for mode, result in results.items():
        lines.append("  %-16s %10d %12d %16s"
                     % (mode, result["interrupts"], result["no_div"],
                        result["first_irq_cycle"]))
    save_and_print("ablation_modes.txt", "\n".join(lines))

    # Monitoring itself is identical in every mode.
    no_div = {r["no_div"] for r in results.values()}
    assert len(no_div) == 1
    cycles = {r["cycles"] for r in results.values()}
    assert len(cycles) == 1  # reporting never perturbs execution
    # Polling never interrupts; interrupt-first fires earliest.
    assert results["polling"]["interrupts"] == 0
    assert results["interrupt_first"]["interrupts"] == 1
    assert results["interrupt_first"]["first_irq_cycle"] <= \
        results["threshold_100"]["first_irq_cycle"]
    assert results["threshold_100"]["first_irq_cycle"] <= \
        results["threshold_5000"]["first_irq_cycle"]
