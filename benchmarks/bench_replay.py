#!/usr/bin/env python3
"""Capture/replay benchmark: N-point monitor sweep, 1 simulation.

Times a 16-point episode-threshold sweep (``interrupt_threshold``,
thresholds 1..16) over one kernel two ways:

* ``live``   — one full simulation per point (the pre-replay cost),
* ``replay`` — one captured simulation plus a
  :class:`repro.replay.ReplayEngine` replay per point.

Every replayed result is asserted field-for-field identical to its
live counterpart before any timing is reported — a fast wrong answer
would be worthless.  The report goes to ``BENCH_replay.json`` at the
repo root; ``--min-speedup X`` turns the bench into a CI gate that
exits non-zero below ``X``.

Usage:
    PYTHONPATH=src python benchmarks/bench_replay.py [--kernel K]
        [--points N] [--max-cycles N] [--quick] [--min-speedup X]
        [--out FILE]

``--quick`` truncates the simulation (max_cycles=6000) while keeping
all 16 points, for CI.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
import time

from bench_common import metric_fields
from repro.core.monitor import ReportingMode
from repro.replay import ReplayEngine
from repro.soc.experiment import run_redundant, run_redundant_captured
from repro.workloads import program as build_program

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
OUT_PATH = REPO_ROOT / "BENCH_replay.json"

QUICK_MAX_CYCLES = 6000


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kernel", default="cosf",
                        help="kernel to sweep (default: cosf)")
    parser.add_argument("--points", type=int, default=16, metavar="N",
                        help="threshold points to sweep (default: 16)")
    parser.add_argument("--max-cycles", type=int, default=2_000_000)
    parser.add_argument("--quick", action="store_true",
                        help="CI subset: truncate the simulation to "
                             "%d cycles (all points kept)"
                        % QUICK_MAX_CYCLES)
    parser.add_argument("--min-speedup", type=float, default=None,
                        metavar="X",
                        help="exit non-zero if replay speedup < X")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="report path (default: BENCH_replay.json "
                             "at the repo root)")
    args = parser.parse_args()
    out_path = pathlib.Path(args.out) if args.out else OUT_PATH
    max_cycles = QUICK_MAX_CYCLES if args.quick else args.max_cycles
    thresholds = list(range(1, args.points + 1))
    mode = ReportingMode.INTERRUPT_THRESHOLD
    prog = build_program(args.kernel)

    print("%s: %d-point threshold sweep, max_cycles=%d%s"
          % (args.kernel, len(thresholds), max_cycles,
             " (quick)" if args.quick else ""))

    # Live pass: one full simulation per point.
    live_results = []
    live_start = time.perf_counter()
    for threshold in thresholds:
        live_results.append(run_redundant(
            prog, benchmark=args.kernel, mode=mode,
            threshold=threshold, max_cycles=max_cycles))
    live_s = time.perf_counter() - live_start
    print("live   (%d simulations):     %6.2fs"
          % (len(thresholds), live_s))

    # Replay pass: capture once, replay every point.
    capture_start = time.perf_counter()
    _, trace = run_redundant_captured(
        prog, benchmark=args.kernel, mode=mode,
        threshold=thresholds[0], max_cycles=max_cycles)
    capture_s = time.perf_counter() - capture_start
    engine = ReplayEngine(trace)
    replay_start = time.perf_counter()
    replay_results = [engine.run_result(mode=mode, threshold=threshold)
                      for threshold in thresholds]
    replay_s = time.perf_counter() - replay_start
    print("replay (1 capture + %d pts): %6.2fs  (capture %.2fs, "
          "replays %.3fs)" % (len(thresholds),
                              capture_s + replay_s, capture_s,
                              replay_s))

    # Correctness first: bit-identical per point, or no timing claims.
    for threshold, live, replayed in zip(thresholds, live_results,
                                         replay_results):
        assert dataclasses.asdict(live) == dataclasses.asdict(replayed), \
            "replay diverged at threshold=%d:\n live:   %r\n replay: %r" \
            % (threshold, live, replayed)
    print("exactness: replayed == live for all %d points"
          % len(thresholds))

    speedup = live_s / (capture_s + replay_s)
    trace_bytes = trace.byte_size()
    report = {
        "kernel": args.kernel,
        "points": len(thresholds),
        "thresholds": thresholds,
        "mode": mode.value,
        "max_cycles": max_cycles,
        "cycles": trace.meta.cycles,
        "quick": bool(args.quick),
        "live_seconds": round(live_s, 3),
        "capture_seconds": round(capture_s, 3),
        "replay_seconds": round(replay_s, 4),
        "speedup": round(speedup, 2),
        "trace_bytes": trace_bytes,
        # A zero-cycle capture has no meaningful per-cycle density;
        # report the shared skip shape (see bench_common) rather than
        # clamping the divisor.
        **metric_fields("trace_bytes_per_cycle",
                        round(trace_bytes / trace.meta.cycles, 2)
                        if trace.meta.cycles else None,
                        None if trace.meta.cycles else "empty-trace"),
        "accounting_passes": engine.accounting_passes,
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print("speedup %.1fx (%d-cycle trace, %d KiB)"
          % (speedup, trace.meta.cycles, trace_bytes // 1024))
    print("wrote %s" % out_path)

    if args.min_speedup is not None and speedup < args.min_speedup:
        print("FAIL: speedup %.1fx below required %.1fx"
              % (speedup, args.min_speedup), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
