"""Ablation — store-buffer coalescing and the pm timing anomaly.

Paper Section V-C explains the `pm` exception at 1,000-nop staggering
through store-buffer coalescing: the delayed core's stores pile up
behind the busy bus and merge per cache line, so it completes its store
bursts with fewer transactions and catches up.  This bench quantifies
the mechanism on the store-burst-heavy ``pm`` kernel by toggling
coalescing and measuring run time, store transactions, and the
staggered pair's zero-staggering residue.
"""

import pytest

from repro.cpu.core import CoreConfig
from repro.soc.config import SocConfig
from repro.soc.mpsoc import MPSoC
from repro.workloads import program

from conftest import save_and_print

WORKLOAD = "pm"
STAGGERS = (0, 100, 1000)


def run_config(coalesce: bool, stagger: int):
    cfg = SocConfig(core=CoreConfig(store_buffer_coalesce=coalesce))
    soc = MPSoC(config=cfg)
    soc.start_redundant(program(WORKLOAD), stagger_nops=stagger)
    soc.run()
    return {
        "cycles": soc.cycle,
        "zero_stag":
            soc.safedm.instruction_diff.stats.zero_staggering_cycles,
        "no_div": soc.safedm.stats.no_diversity_cycles,
        "store_txns": sum(c.store_buffer.stats.transactions
                          for c in soc.cores),
        "coalesced": sum(c.store_buffer.stats.coalesced
                         for c in soc.cores),
    }


def sweep():
    return {(coalesce, stagger): run_config(coalesce, stagger)
            for coalesce in (True, False)
            for stagger in STAGGERS}


def test_store_buffer_ablation(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["Store-buffer coalescing ablation on %r" % WORKLOAD, "",
             "  %-10s %8s %9s %10s %10s %10s"
             % ("coalesce", "stagger", "cycles", "store txn",
                "coalesced", "zero-stag")]
    for (coalesce, stagger), r in results.items():
        lines.append("  %-10s %8d %9d %10d %10d %10d"
                     % (coalesce, stagger, r["cycles"],
                        r["store_txns"], r["coalesced"], r["zero_stag"]))
    save_and_print("ablation_store_buffer.txt", "\n".join(lines))

    for stagger in STAGGERS:
        with_c = results[(True, stagger)]
        without_c = results[(False, stagger)]
        # Coalescing strictly reduces bus write traffic...
        assert with_c["store_txns"] < without_c["store_txns"]
        assert with_c["coalesced"] > 0
        assert without_c["coalesced"] == 0
        # ...and never slows the run down.
        assert with_c["cycles"] <= without_c["cycles"]
