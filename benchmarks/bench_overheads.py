"""Section V-D — SafeDM area and power overheads.

Regenerates the paper's reported numbers from the calibrated analytical
model (4,000 LUTs = 3.4% of the MPSoC; +0.019 W on a >2 W baseline) and
extrapolates over the implementation-specific parameters the paper
leaves open (DS FIFO depth, monitored ports).
"""

import pytest

from repro.core.overheads import (
    BASELINE_MPSOC_LUTS,
    BASELINE_MPSOC_WATTS,
    PAPER_CONFIG,
    estimate,
    sweep_ds_depth,
)
from repro.core.signatures import SignatureConfig

from conftest import save_and_print


def overhead_report():
    lines = ["SafeDM overheads (paper Section V-D)", ""]
    paper_point = estimate(PAPER_CONFIG)
    lines.append("paper design point (4 ports, n=7, 2-wide 7-stage IS):")
    lines.append("  LUTs : %5d (paper: 4,000)  -> %.1f%% of the %d-LUT "
                 "MPSoC (paper: 3.4%%)"
                 % (paper_point.luts, paper_point.area_percent,
                    BASELINE_MPSOC_LUTS))
    lines.append("  power: %.3f W (paper: 0.019 W) -> %.2f%% of the "
                 "%.1f W baseline (paper: <1%%)"
                 % (paper_point.watts, paper_point.power_percent,
                    BASELINE_MPSOC_WATTS))
    lines.append("")
    lines.append("DS depth sweep (n is 'implementation specific'):")
    lines.append("  %6s %8s %8s %9s" % ("n", "LUTs", "area%", "watts"))
    for report in sweep_ds_depth([3, 5, 7, 10, 14, 21, 28]):
        lines.append("  %6d %8d %7.1f%% %8.4f"
                     % (report.config.ds_depth, report.luts,
                        report.area_percent, report.watts))
    lines.append("")
    lines.append("monitored-port sweep:")
    lines.append("  %6s %8s %8s" % ("ports", "LUTs", "area%"))
    for ports in (2, 4, 6, 8):
        report = estimate(SignatureConfig(num_ports=ports))
        lines.append("  %6d %8d %7.1f%%"
                     % (ports, report.luts, report.area_percent))
    return "\n".join(lines), paper_point


def test_overheads_regeneration(benchmark):
    text, paper_point = benchmark.pedantic(overhead_report, rounds=1,
                                           iterations=1)
    save_and_print("overheads.txt", text)

    assert paper_point.luts == 4000
    assert abs(paper_point.area_percent - 3.4) < 0.05
    assert abs(paper_point.watts - 0.019) < 1e-9
    assert paper_point.power_percent < 1.0
