"""Table I — per-benchmark zero-staggering / no-diversity cycles.

Regenerates the paper's main result: for each TACLe benchmark and each
initial staggering (0 / 100 / 1,000 / 10,000 nops), the number of
cycles with zero staggering and the number of cycles SafeDM reports no
diversity, following the paper's repetition protocol (max over runs).

Expected shape (paper Section V-C): counts concentrate in the 0-nop
column, decay by 100 nops and essentially vanish at 10,000 nops, with
ALU-dense kernels (cubic) at the top and occasional timing-anomaly
exceptions (pm).  Absolute values are smaller than the paper's because
the workloads are scaled down (see DESIGN.md).
"""

import pytest

from repro.analysis.stats import monotonic_decay, summarize_sweep
from repro.analysis.tables import format_table1, format_table1_csv
from repro.soc.experiment import PAPER_STAGGER_VALUES, run_row
from repro.workloads import TACLE_KERNELS, program

from conftest import TABLE1_SUBSET, full_table1, save_and_print

_ROWS_CACHE = {}


def table1_rows():
    if not _ROWS_CACHE:
        names = TACLE_KERNELS if full_table1() else TABLE1_SUBSET
        for name in names:
            _ROWS_CACHE[name] = run_row(program(name), name,
                                        stagger_values=PAPER_STAGGER_VALUES)
    return _ROWS_CACHE


def test_table1_regeneration(benchmark):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)

    text = [format_table1(rows, PAPER_STAGGER_VALUES), ""]
    for nops in PAPER_STAGGER_VALUES:
        summary = summarize_sweep(rows, nops)
        text.append(
            "%6d nops: mean zero-stag %8.1f  mean no-div %8.1f  "
            "(benchmarks with counts: %d / %d)"
            % (nops, summary.mean_zero_staggering,
               summary.mean_no_diversity,
               summary.benchmarks_with_no_div, summary.benchmarks))
    decay = monotonic_decay(rows, PAPER_STAGGER_VALUES)
    exceptions = [n for n, ok in decay.items() if not ok]
    text.append("")
    text.append("decay exceptions (paper's pm-style anomalies): %s"
                % (exceptions or "none"))
    save_and_print("table1.txt", "\n".join(text))
    save_and_print("table1.csv", format_table1_csv(rows,
                                                   PAPER_STAGGER_VALUES))

    # --- shape assertions (the reproduction criteria) ---
    s0 = summarize_sweep(rows, 0)
    s10000 = summarize_sweep(rows, 10000)
    # counts concentrate at 0 nops and essentially vanish at 10,000
    assert s0.total_no_diversity > s10000.total_no_diversity
    assert s10000.benchmarks_with_no_div <= max(1, s0.benchmarks // 4)
    # every run completed
    for cells in rows.values():
        for cell in cells:
            assert all(r.finished for r in cell.runs)
