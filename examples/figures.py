#!/usr/bin/env python3
"""Regenerate the paper's figures as structural self-descriptions.

Figures 1-4 of the paper are schematics, not data plots; each module in
this reproduction can describe its own structure, so the "figures" are
regenerated from the live objects:

* Fig. 1 — lockstepped core (repro.baselines.lockstep)
* Fig. 2a/2b — Data / Instruction signature layout (repro.core.signatures)
* Fig. 3 — MPSoC with SafeDM (repro.soc)
* Fig. 4 — SafeDM internal blocks (repro.core.monitor)
"""

from repro.baselines.lockstep import LockstepComparator
from repro.core.history import HistoryModule
from repro.core.monitor import DiversityMonitor
from repro.core.signatures import (
    DataSignatureUnit,
    InstructionSignatureUnit,
    SignatureConfig,
)
from repro.soc import MPSoC


def main():
    print("Fig. 1 — the baseline SafeDM replaces")
    print("-" * 60)
    print(LockstepComparator(stagger=2).describe())
    print()

    config = SignatureConfig()
    print("Fig. 2a — Data Signature layout "
          "(m=%d ports, n=%d cycles)" % (config.num_ports,
                                         config.ds_depth))
    print("-" * 60)
    print(DataSignatureUnit(config).layout())
    print()
    print("Fig. 2b — Instruction Signature layout "
          "(p=%d wide, o=%d stages)" % (config.pipeline_width,
                                        config.pipeline_stages))
    print("-" * 60)
    print(InstructionSignatureUnit(config).layout())
    print()

    print("Fig. 3 — MPSoC schematic with SafeDM")
    print("-" * 60)
    print(MPSoC().describe())
    print()

    print("Fig. 4 — SafeDM internal block diagram")
    print("-" * 60)
    monitor = DiversityMonitor(history=HistoryModule())
    print(monitor.block_diagram())


if __name__ == "__main__":
    main()
