#!/usr/bin/env python3
"""The ASIL-D safety concept of paper Section III-A, end to end.

A critical task (think: braking) runs every 50 ms, redundantly on two
non-lockstepped cores, with SafeDM in interrupt-on-threshold mode.
When SafeDM flags too much lack of diversity, the RTOS *drops the job*
— the same action as on a detected error — and the FTTI tracker checks
that the drops never exhaust the 200 ms fault-tolerant time interval.

Two tasks are shown: one on a memory-rich kernel (naturally diverse,
no drops) and one on the ALU-dense ``cubic`` kernel with a threshold
low enough to trip (every job drops — an FTTI hazard the safety
engineer must resolve by raising the threshold or adding staggering).
"""

from repro.rtos import PeriodicTask, RedundantJobRunner
from repro.workloads import program


def run_task(name, kernel, threshold, jobs, ftti_ms=200.0):
    task = PeriodicTask(name=name, program=program(kernel),
                        period_ms=50.0, ftti_ms=ftti_ms,
                        diversity_threshold=threshold)
    runner = RedundantJobRunner(task)
    runner.run(jobs)
    print("task %r on kernel %r (threshold %d no-div cycles):"
          % (name, kernel, threshold))
    for outcome in runner.outcomes:
        verdict = "DROPPED (diversity interrupt)" if outcome.dropped \
            else "completed, output=%#x" % outcome.output
        print("  job %d @ %4.0f ms: %s  [no-div cycles: %d]"
              % (outcome.index, outcome.index * task.period_ms, verdict,
                 outcome.no_diversity_cycles))
    print("  FTTI verdict: %s -> %s"
          % (runner.tracker.summary(),
             "SAFE" if runner.tracker.safe else "HAZARD"))
    print()
    return runner


def main():
    # A memory-rich kernel is naturally diverse: jobs complete.
    braking = run_task("braking", "countnegative", threshold=500,
                       jobs=5)
    assert braking.tracker.safe

    # The ALU-dense kernel trips a tight threshold on every job: with a
    # 200 ms FTTI (budget: 3 consecutive drops) five straight drops are
    # a hazard the safety analysis must catch.
    steering = run_task("steering", "cubic", threshold=100, jobs=5)
    assert not steering.tracker.safe

    # The fix the paper suggests: treat the lack of diversity like an
    # error *rate* problem — here, accept the benchmark's benign no-div
    # level by setting the threshold above its natural ceiling.
    tuned = run_task("steering (tuned threshold)", "cubic",
                     threshold=50_000, jobs=5)
    assert tuned.tracker.safe


if __name__ == "__main__":
    main()
