#!/usr/bin/env python3
"""Common-cause fault campaign: why diversity evidence matters.

Injects state-modulated common-cause faults (both cores hit by the same
physical disturbance) across a redundant run, under two deployments:

* private address spaces (the sound software-redundancy setup), and
* a shared address space (a misconfigured redundancy whose replicas
  are genuinely identical — the CCF-vulnerable case SafeDM exists to
  flag).

Every *silent* escape (matching-but-wrong outputs from identical
corruption) is cross-referenced with SafeDM's verdict at the injection
instant: the paper's no-false-negative property requires each one to
fall in a cycle SafeDM had already flagged as lacking diversity.
"""

from repro.fault import (
    run_ccf_campaign,
    shared_address_config,
    spread_cycles,
)
from repro.workloads import program


def report(label, result):
    print("%s:" % label)
    print("  %s" % result.summary())
    for injection in result.injections:
        if injection.classification != "silent_ccf":
            continue
        print("  silent escape at cycle %d: identical_effects=%s "
              "SafeDM diversity verdict=%s"
              % (injection.fault_cycle, injection.effects_identical,
                 injection.diversity_at_injection))
    print()


def main():
    prog = program("countnegative")
    cycles = spread_cycles(13000, 12)
    stimuli = [0x5EED, 0xBEEF, 0x70AD]

    private = run_ccf_campaign(prog, cycles, stimuli=stimuli)
    report("private address spaces (sound redundancy)", private)

    shared = run_ccf_campaign(prog, cycles, stimuli=stimuli,
                              config=shared_address_config())
    report("shared address space (CCF-vulnerable)", shared)

    print("no-false-negative property "
          "(silent escapes in SafeDM-diverse cycles):")
    print("  private: %d   shared: %d   (must both be 0)"
          % (private.silent_despite_diversity,
             shared.silent_despite_diversity))
    assert private.silent_despite_diversity == 0
    assert shared.silent_despite_diversity == 0


if __name__ == "__main__":
    main()
