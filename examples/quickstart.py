#!/usr/bin/env python3
"""Quickstart: run a program redundantly under SafeDM and read it out.

Builds the 2-core NOEL-V-like MPSoC, assembles a small bare-metal
program, runs it redundantly on both cores, and reads SafeDM's verdicts
both through the Python API and through the APB register file (the way
a host/RTOS would).
"""

from repro.core import apb_regs
from repro.isa import assemble
from repro.soc import MPSoC


PROGRAM = """
# Compute sum of squares 1..50, store the result at 0(gp).
_start:
    li s1, 50           # n
    li s0, 0            # accumulator
loop:
    mul t0, s1, s1
    add s0, s0, t0
    sd s0, 0(gp)        # running result (memory traffic -> diversity)
    addi s1, s1, -1
    bnez s1, loop
    sd s0, 0(gp)
    ebreak
"""


def main():
    soc = MPSoC()
    print(soc.describe())
    print()

    program = assemble(PROGRAM, base=soc.config.text_base)
    soc.start_redundant(program)
    cycles = soc.run()

    # Architectural results: both cores computed the same checksum in
    # their own private data regions.
    expected = sum(i * i for i in range(1, 51))
    for core_id in soc.monitored:
        value = soc.memory.read(soc.config.data_base(core_id), 8)
        print("core %d result: %d (expected %d)"
              % (core_id, value, expected))
        assert value == expected

    # SafeDM verdicts via the Python API.
    stats = soc.safedm.stats
    diff = soc.safedm.instruction_diff.stats
    print()
    print("ran %d cycles" % cycles)
    print("cycles without diversity : %d (%.2f%%)"
          % (stats.no_diversity_cycles,
             100.0 * stats.no_diversity_cycles / stats.sampled_cycles))
    print("cycles at zero staggering: %d" % diff.zero_staggering_cycles)

    # The same counters through the APB slave, as the RTOS would.
    print()
    print("APB readout:")
    print("  NODIV     = %d" % soc.apb_read(apb_regs.NODIV))
    print("  ZERO_STAG = %d" % soc.apb_read(apb_regs.ZERO_STAG))
    print("  CYCLES    = %d" % soc.apb_read(apb_regs.CYCLES_LO))
    print()
    print(soc.safedm.block_diagram())


if __name__ == "__main__":
    main()
