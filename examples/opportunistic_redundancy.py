#!/usr/bin/env python3
"""Opportunistic redundancy on a 4-core platform.

The paper's conclusions motivate "designs with independent cores that
can be used for lockstepped execution opportunistically only when
needed".  This example shows both operating points of such a platform:

* **performance mode** — all four cores run independent work (four
  different kernels), no redundancy, full throughput;
* **safety mode** — the same four cores regroup into two redundant
  pairs, each watched by its own SafeDM instance over APB.

With DCLS the second mode would be the only one available (the shadow
cores are wired down); with SafeDM the trade is a scheduling decision.
"""

from repro.core import apb_regs
from repro.soc.config import SocConfig
from repro.soc.mpsoc import MPSoC
from repro.workloads import program, workload


def four_core_config():
    return SocConfig(num_cores=4,
                     data_bases=(0x4000_0000, 0x5000_0000,
                                 0x6000_0000, 0x7000_0000))


def performance_mode():
    """Four independent kernels, one per core: maximum throughput."""
    kernels = ["bitonic", "countnegative", "bitcount", "isqrt"]
    soc = MPSoC(config=four_core_config())
    entries = []
    for index, name in enumerate(kernels):
        prog = program(name, base=0x0001_0000 + 0x0001_0000 * index)
        soc.load(prog)
        entries.append(prog.entry)
    for core_id, entry in enumerate(entries):
        soc.start_core(core_id, entry)
    while not all(core.finished for core in soc.cores):
        soc.step()
    print("performance mode: 4 independent kernels "
          "(%s)" % ", ".join(kernels))
    for core_id, name in enumerate(kernels):
        got = soc.memory.read(soc.config.data_base(core_id), 8)
        expected = workload(name).expected_checksum
        status = "ok" if got == expected else "MISMATCH"
        print("  core %d: %-14s result %s" % (core_id, name, status))
    print("  total: %d cycles, %d instructions committed"
          % (soc.cycle, sum(c.stats.committed for c in soc.cores)))
    print()


def safety_mode():
    """Two redundant pairs, each under its own SafeDM."""
    soc = MPSoC(config=four_core_config(),
                monitor_pairs=((0, 1), (2, 3)))
    soc.start_redundant(program("bitonic"), pair=0)
    soc.start_redundant(program("countnegative", base=0x0003_0000),
                        pair=1)
    soc.run()
    print("safety mode: 2 redundant pairs under 2 SafeDM instances")
    for index, (pair, base) in enumerate(zip(soc.monitor_pairs,
                                             soc._slave_bases)):
        nodiv = soc.apb.read(base + apb_regs.NODIV)
        zstag = soc.apb.read(base + apb_regs.ZERO_STAG)
        print("  pair %d (cores %d,%d): no-div=%d zero-stag=%d "
              "(via APB at %#x)"
              % (index, pair[0], pair[1], nodiv, zstag, base))
    print("  total: %d cycles" % soc.cycle)


def main():
    performance_mode()
    safety_mode()


if __name__ == "__main__":
    main()
