#!/usr/bin/env python3
"""Redundant pair under staggering: one Table I row, end to end.

Runs a TACLe kernel redundantly at each of the paper's initial
staggering values, prints the resulting Zero-stag / No-div cells, the
no-diversity episode histogram from the History module, and dumps a
GTKWave-compatible VCD of the monitor signals for the 0-nop run.

Usage:  python examples/redundant_pair.py [kernel] [--vcd out.vcd]
"""

import argparse

from repro.soc import MPSoC
from repro.soc.experiment import PAPER_STAGGER_VALUES, run_cell
from repro.trace import monitor_vcd
from repro.workloads import all_names, program


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("kernel", nargs="?", default="cubic",
                        choices=all_names())
    parser.add_argument("--vcd", default=None,
                        help="write the 0-nop run's monitor VCD here")
    args = parser.parse_args()

    prog = program(args.kernel)
    print("Table I row for %r:" % args.kernel)
    print("  %10s %12s %10s" % ("staggering", "zero stag", "no div"))
    for nops in PAPER_STAGGER_VALUES:
        cell = run_cell(prog, args.kernel, nops)
        print("  %7d nops %12d %10d"
              % (nops, cell.zero_staggering_cycles,
                 cell.no_diversity_cycles))

    # Episode histogram of the 0-nop run (the History module view).
    soc = MPSoC(history_bin_size=4, history_bins=12)
    soc.start_redundant(prog)
    soc.run()
    hist = soc.safedm.history.histograms["no_diversity"]
    print()
    print("no-diversity episode histogram (0 nops, bin size %d):"
          % hist.bin_size)
    for (low, high), count in zip(hist.bin_ranges(), hist.bins):
        if count == 0:
            continue
        label = "%d-%s cycles" % (low, high if high else "inf")
        print("  %-16s %6d episodes  %s"
              % (label, count, "#" * min(count, 60)))
    print("  longest episode: %d cycles" % hist.longest)

    if args.vcd:
        soc = MPSoC()
        soc.start_redundant(prog)
        vcd = monitor_vcd(soc)
        vcd.save(args.vcd)
        print()
        print("monitor waveform written to %s" % args.vcd)


if __name__ == "__main__":
    main()
