#!/usr/bin/env python3
"""Full Table I sweep: all 29 TACLe kernels x 4 staggering setups.

Reproduces the paper's main table with the full repetition protocol
(arbiter variants for 0 nops; both late-core choices for staggered
runs; max over runs per cell).  Runs are fanned out across worker
processes and cached by content, so a repeated sweep is nearly
instant; results are bit-for-bit identical to the serial path.

Usage:
    python examples/table1_sweep.py                # all 29 kernels
    python examples/table1_sweep.py cubic pm md5   # selected kernels
    python examples/table1_sweep.py --csv out.csv  # also write CSV
    python examples/table1_sweep.py --jobs 1       # serial reference
    python examples/table1_sweep.py --no-cache     # force re-simulation
"""

import argparse
import time

from repro.analysis.stats import monotonic_decay, summarize_sweep
from repro.analysis.tables import format_table1, format_table1_csv
from repro.runner import ParallelSweep
from repro.soc.experiment import PAPER_STAGGER_VALUES
from repro.workloads import all_names


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("kernels", nargs="*", default=None,
                        help="kernel names (default: all 29)")
    parser.add_argument("--csv", default=None,
                        help="also write the table as CSV")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (default: all cores; "
                             "1 = serial in-process)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not populate the run cache")
    args = parser.parse_args()

    names = args.kernels or all_names()
    unknown = set(names) - set(all_names())
    if unknown:
        parser.error("unknown kernels: %s" % ", ".join(sorted(unknown)))

    start = time.time()
    sweep = ParallelSweep(jobs=args.jobs, use_cache=not args.no_cache,
                          progress=True)
    rows = sweep.run_table(names, stagger_values=PAPER_STAGGER_VALUES)

    print()
    print(format_table1(rows, PAPER_STAGGER_VALUES))
    print()
    for nops in PAPER_STAGGER_VALUES:
        summary = summarize_sweep(rows, nops)
        print("%6d nops: max zero-stag %7d  max no-div %7d  "
              "benchmarks with no-div: %2d/%d"
              % (nops, summary.max_zero_staggering,
                 summary.max_no_diversity,
                 summary.benchmarks_with_no_div, summary.benchmarks))
    exceptions = [n for n, ok in
                  monotonic_decay(rows, PAPER_STAGGER_VALUES).items()
                  if not ok]
    print()
    print("decay exceptions (pm-style timing anomalies): %s"
          % (", ".join(exceptions) if exceptions else "none"))
    print("total wall time: %.1fs" % (time.time() - start))

    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(format_table1_csv(rows, PAPER_STAGGER_VALUES))
        print("CSV written to %s" % args.csv)


if __name__ == "__main__":
    main()
