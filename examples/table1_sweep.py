#!/usr/bin/env python3
"""Full Table I sweep: all 29 TACLe kernels x 4 staggering setups.

Reproduces the paper's main table with the full repetition protocol
(arbiter variants for 0 nops; both late-core choices for staggered
runs; max over runs per cell).  Takes a few minutes in full mode.

Usage:
    python examples/table1_sweep.py                # all 29 kernels
    python examples/table1_sweep.py cubic pm md5   # selected kernels
    python examples/table1_sweep.py --csv out.csv  # also write CSV
"""

import argparse
import sys
import time

from repro.analysis.stats import monotonic_decay, summarize_sweep
from repro.analysis.tables import format_table1, format_table1_csv
from repro.soc.experiment import PAPER_STAGGER_VALUES, run_row
from repro.workloads import all_names, program


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("kernels", nargs="*", default=None,
                        help="kernel names (default: all 29)")
    parser.add_argument("--csv", default=None,
                        help="also write the table as CSV")
    args = parser.parse_args()

    names = args.kernels or all_names()
    unknown = set(names) - set(all_names())
    if unknown:
        parser.error("unknown kernels: %s" % ", ".join(sorted(unknown)))

    rows = {}
    start = time.time()
    for index, name in enumerate(names, start=1):
        row_start = time.time()
        rows[name] = run_row(program(name), name,
                             stagger_values=PAPER_STAGGER_VALUES)
        print("[%2d/%d] %-16s done in %5.1fs"
              % (index, len(names), name, time.time() - row_start),
              file=sys.stderr)

    print()
    print(format_table1(rows, PAPER_STAGGER_VALUES))
    print()
    for nops in PAPER_STAGGER_VALUES:
        summary = summarize_sweep(rows, nops)
        print("%6d nops: max zero-stag %7d  max no-div %7d  "
              "benchmarks with no-div: %2d/%d"
              % (nops, summary.max_zero_staggering,
                 summary.max_no_diversity,
                 summary.benchmarks_with_no_div, summary.benchmarks))
    exceptions = [n for n, ok in
                  monotonic_decay(rows, PAPER_STAGGER_VALUES).items()
                  if not ok]
    print()
    print("decay exceptions (pm-style timing anomalies): %s"
          % (", ".join(exceptions) if exceptions else "none"))
    print("total wall time: %.1fs" % (time.time() - start))

    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(format_table1_csv(rows, PAPER_STAGGER_VALUES))
        print("CSV written to %s" % args.csv)


if __name__ == "__main__":
    main()
