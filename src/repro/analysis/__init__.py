"""Result analysis: table formatters and sweep statistics."""

from .stats import (
    SweepSummary,
    monotonic_decay,
    run_statistics,
    summarize_sweep,
)
from .tables import (
    TABLE2_CLASSES,
    format_table1,
    format_table1_csv,
    format_table2,
)

__all__ = [
    "SweepSummary",
    "TABLE2_CLASSES",
    "format_table1",
    "format_table1_csv",
    "format_table2",
    "monotonic_decay",
    "run_statistics",
    "summarize_sweep",
]
