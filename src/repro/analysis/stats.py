"""Run-level statistics over experiment results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..soc.experiment import CellResult, RunResult


@dataclass
class SweepSummary:
    """Aggregates of one staggering setup across benchmarks."""

    stagger_nops: int
    benchmarks: int
    total_zero_staggering: int
    total_no_diversity: int
    max_zero_staggering: int
    max_no_diversity: int
    benchmarks_with_zero_stag: int
    benchmarks_with_no_div: int

    @property
    def mean_zero_staggering(self) -> float:
        return self.total_zero_staggering / self.benchmarks \
            if self.benchmarks else 0.0

    @property
    def mean_no_diversity(self) -> float:
        return self.total_no_diversity / self.benchmarks \
            if self.benchmarks else 0.0


def summarize_sweep(rows: Dict[str, List[CellResult]],
                    stagger_nops: int) -> SweepSummary:
    """Aggregate one Table I column across all benchmarks."""
    cells = []
    for cell_list in rows.values():
        for cell in cell_list:
            if cell.stagger_nops == stagger_nops:
                cells.append(cell)
    zero = [c.zero_staggering_cycles for c in cells]
    nodiv = [c.no_diversity_cycles for c in cells]
    return SweepSummary(
        stagger_nops=stagger_nops,
        benchmarks=len(cells),
        total_zero_staggering=sum(zero),
        total_no_diversity=sum(nodiv),
        max_zero_staggering=max(zero) if zero else 0,
        max_no_diversity=max(nodiv) if nodiv else 0,
        benchmarks_with_zero_stag=sum(1 for z in zero if z > 0),
        benchmarks_with_no_div=sum(1 for n in nodiv if n > 0),
    )


def monotonic_decay(rows: Dict[str, List[CellResult]],
                    stagger_values: Sequence[int] = (0, 100, 1000, 10000)
                    ) -> Dict[str, bool]:
    """Per-benchmark check of the paper's headline trend.

    "generally, when increasing initial staggering, the cycles with
    zero staggering and no diversity quickly decrease and tend to
    vanish" — with occasional exceptions (the pm timing anomaly).
    Returns benchmark -> True when the 10000-nop column is no larger
    than the 0-nop column for both counters.
    """
    verdicts = {}
    for benchmark, cells in rows.items():
        by_nops = {c.stagger_nops: c for c in cells}
        first = by_nops.get(stagger_values[0])
        last = by_nops.get(stagger_values[-1])
        if first is None or last is None:
            continue
        verdicts[benchmark] = (
            last.zero_staggering_cycles <= first.zero_staggering_cycles
            and last.no_diversity_cycles <= first.no_diversity_cycles)
    return verdicts


def exact_quantile(values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile (inclusive), no interpolation.

    ``q`` in [0, 1]; rank ``ceil(q * n)`` clamped to [1, n] — the
    classic "smallest value with at least a fraction q of the sample
    at or below it".  Exact on small samples (no interpolation means a
    returned quantile is always an observed value), which is what the
    Monte-Carlo summaries need for bit-identical determinism checks.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile fraction must be within [0, 1]")
    if not values:
        raise ValueError("exact_quantile of an empty sample")
    import math
    ordered = sorted(values)
    # Round before ceiling: binary floats make q*n land epsilon above
    # exact integers (0.1 * 30 == 3.0000000000000004), which would
    # otherwise shift the rank up by one.
    rank = math.ceil(round(q * len(ordered), 9))
    index = max(1, min(len(ordered), rank))
    return ordered[index - 1]


def bootstrap_ci(values: Sequence[float], statistic=None,
                 n_boot: int = 1000, alpha: float = 0.05,
                 seed: int = 0) -> "Dict[str, float]":
    """Percentile-bootstrap confidence interval for a statistic.

    Resamples ``values`` with replacement ``n_boot`` times using a
    dedicated ``random.Random(seed)`` (deterministic, and isolated
    from any global RNG state), applies ``statistic`` (default: mean)
    to each resample and returns the empirical
    ``[alpha/2, 1 - alpha/2]`` percentile interval via
    :func:`exact_quantile`.  Pure Python on purpose: the tier-1 suite
    exercises it without numpy.
    """
    import random
    if not values:
        raise ValueError("bootstrap_ci of an empty sample")
    if statistic is None:
        def statistic(sample):
            return sum(sample) / len(sample)
    rng = random.Random(seed)
    size = len(values)
    replicates = []
    for _ in range(n_boot):
        sample = [values[rng.randrange(size)] for _ in range(size)]
        replicates.append(statistic(sample))
    return {
        "point": statistic(list(values)),
        "low": exact_quantile(replicates, alpha / 2.0),
        "high": exact_quantile(replicates, 1.0 - alpha / 2.0),
        "n_boot": n_boot,
        "alpha": alpha,
    }


def run_statistics(runs: List[RunResult]) -> Dict[str, float]:
    """Basic aggregates over a list of runs."""
    if not runs:
        return {}
    return {
        "runs": len(runs),
        "mean_cycles": sum(r.cycles for r in runs) / len(runs),
        "mean_committed": sum(r.committed for r in runs) / len(runs),
        "mean_ipc": sum(r.ipc for r in runs) / len(runs),
        "mean_zero_staggering": sum(r.zero_staggering_cycles
                                    for r in runs) / len(runs),
        "mean_no_diversity": sum(r.no_diversity_cycles
                                 for r in runs) / len(runs),
        "all_finished": float(all(r.finished for r in runs)),
    }
