"""Formatters for the paper's tables.

Table I: per-benchmark "Zero stag" / "No div" cycle counts under each
initial-staggering setup.  Table II: the taxonomy of non-lockstepped
redundancy techniques.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..soc.experiment import CellResult

#: Taxonomy underlying Table II (class -> representative techniques).
TABLE2_CLASSES = {
    "Diversity unaware": [
        "redundant multithreading [23], [26]",
        "cross-core redundancy [10], [17], [19]",
        "partial redundancy [9], [18]",
        "software-only replication [11], [20], [24], [27]-[30]",
    ],
    "Diversity enforced (intrusive)": [
        "software staggering [3] (repro.baselines.sw_stagger)",
        "SafeDE hardware staggering [4] (repro.baselines.safede)",
    ],
    "Diversity monitored (non-intrusive)": [
        "SafeDM — this work (repro.core.monitor)",
    ],
}


def format_table1(rows: Dict[str, List[CellResult]],
                  stagger_values: Sequence[int] = (0, 100, 1000, 10000)
                  ) -> str:
    """Render Table I from per-benchmark cell results.

    ``rows`` maps benchmark name to its list of :class:`CellResult`
    (one per staggering value, in order).
    """
    header_top = ["Staggering".ljust(15)]
    header_bot = ["Benchmark".ljust(15)]
    for nops in stagger_values:
        header_top.append(("%d nops" % nops).center(17))
        header_bot.append("Zero stag".rjust(9) + "No div".rjust(8))
    lines = [" | ".join(header_top), " | ".join(header_bot),
             "-" * (15 + len(stagger_values) * 20)]
    for benchmark, cells in rows.items():
        parts = [benchmark.ljust(15)]
        by_nops = {c.stagger_nops: c for c in cells}
        for nops in stagger_values:
            cell = by_nops.get(nops)
            if cell is None:
                parts.append("?".rjust(9) + "?".rjust(8))
            else:
                parts.append(str(cell.zero_staggering_cycles).rjust(9)
                             + str(cell.no_diversity_cycles).rjust(8))
        lines.append(" | ".join(parts))
    return "\n".join(lines)


def format_table1_csv(rows: Dict[str, List[CellResult]],
                      stagger_values: Sequence[int] = (0, 100, 1000,
                                                       10000)) -> str:
    """CSV rendering of Table I (for EXPERIMENTS.md and plotting)."""
    header = ["benchmark"]
    for nops in stagger_values:
        header.append("zero_stag_%d" % nops)
        header.append("no_div_%d" % nops)
    lines = [",".join(header)]
    for benchmark, cells in rows.items():
        by_nops = {c.stagger_nops: c for c in cells}
        parts = [benchmark]
        for nops in stagger_values:
            cell = by_nops.get(nops)
            parts.append(str(cell.zero_staggering_cycles if cell else ""))
            parts.append(str(cell.no_diversity_cycles if cell else ""))
        lines.append(",".join(parts))
    return "\n".join(lines)


def format_table2(results: Dict[str, Dict[str, object]] = None) -> str:
    """Render Table II, optionally annotated with measured behaviour.

    ``results`` maps class name to a dict of measured annotations (e.g.
    intrusiveness, residual no-diversity cycles) produced by the
    Table II benchmark.
    """
    lines = ["Classification of non-lockstepped redundant execution "
             "techniques for CPUs (Table II):", ""]
    for klass, techniques in TABLE2_CLASSES.items():
        lines.append(klass)
        for tech in techniques:
            lines.append("  - %s" % tech)
        if results and klass in results:
            for key, value in results[klass].items():
                lines.append("    measured %s: %s" % (key, value))
        lines.append("")
    return "\n".join(lines)
