"""SafeDE-style hardware staggering enforcement (paper reference [4]).

The *diversity enforced (intrusive)* column of the paper's Table II: a
hardware module that tracks the commit-count difference between head
and trail cores and **stalls the trail core** whenever its staggering
drops below a programmed threshold.  Unlike SafeDM it perturbs the
execution, and it requires both cores to execute identical instruction
streams (the constraint the paper criticises).

The module integrates with the MPSoC as a per-cycle hook that asserts a
stall line into the trail core.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SafeDeStats:
    cycles: int = 0
    stall_cycles: int = 0
    min_observed_stagger: int = 1 << 62

    @property
    def intrusiveness(self) -> float:
        """Fraction of cycles the trail core was forcibly stalled."""
        return self.stall_cycles / self.cycles if self.cycles else 0.0


class SafeDeEnforcer:
    """Stall-based staggering enforcement between two cores."""

    def __init__(self, threshold: int = 20, head: int = 0, trail: int = 1):
        if threshold < 1:
            raise ValueError("staggering threshold must be >= 1")
        self.threshold = threshold
        self.head = head
        self.trail = trail
        self.diff = 0  # head commits minus trail commits
        self.stats = SafeDeStats()

    def sample(self, head_commits: int, trail_commits: int) -> bool:
        """Clock one cycle; returns True if the trail core must stall.

        The stall decision uses the *current* staggering: when the
        trail core has caught up to within ``threshold`` committed
        instructions of the head core, it is held.
        """
        self.diff += head_commits - trail_commits
        stats = self.stats
        stats.cycles += 1
        if self.diff < stats.min_observed_stagger:
            stats.min_observed_stagger = self.diff
        stall = self.diff < self.threshold
        if stall:
            stats.stall_cycles += 1
        return stall

    def reset(self):
        self.diff = 0
        self.stats = SafeDeStats()


def run_with_enforcement(soc, max_cycles: int = 2_000_000,
                         threshold: int = 20):
    """Run an :class:`~repro.soc.mpsoc.MPSoC` under SafeDE enforcement.

    The trail core (monitored core 1) is stalled — its ``step`` is
    skipped — whenever the enforcer demands it.  SafeDM still observes
    both cores, so the run also quantifies the *residual* lack of
    diversity under enforcement.  Returns the enforcer.
    """
    enforcer = SafeDeEnforcer(threshold=threshold,
                              head=soc.monitored[0],
                              trail=soc.monitored[1])
    head = soc.cores[enforcer.head]
    trail = soc.cores[enforcer.trail]
    stall_next = False
    start = soc.cycle
    while soc.cycle - start < max_cycles:
        if head.finished and trail.finished:
            break
        cycle = soc.cycle
        if not head.finished:
            head.step(cycle)
        else:
            head.commits_this_cycle = 0
        # Once the head finishes, enforcement lifts (nothing to trail).
        if not trail.finished and (not stall_next or head.finished):
            trail.step(cycle)
        else:
            trail.commits_this_cycle = 0
            trail.hold = True
        soc.bus.step(cycle)
        if not (head.finished or trail.finished):
            soc.safedm.observe(cycle, head, trail)
        stall_next = enforcer.sample(head.commits_this_cycle,
                                     trail.commits_this_cycle)
        soc.cycle += 1
    soc.safedm.finish()
    return enforcer
