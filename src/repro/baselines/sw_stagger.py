"""Software-only staggering enforcement (paper reference [3]).

The software counterpart of SafeDE: the trail thread periodically reads
both progress counters and spin-waits until its lag exceeds the
threshold.  Here the "instrumentation" is modelled at the platform
level: every ``check_interval`` committed instructions the trail core
is held until the staggering exceeds the threshold — mirroring the
checkpoint-based monitoring loop of the software scheme, including its
coarser granularity (and hence higher overhead) compared to SafeDE.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SwStaggerStats:
    cycles: int = 0
    stall_cycles: int = 0
    checkpoints: int = 0

    @property
    def intrusiveness(self) -> float:
        return self.stall_cycles / self.cycles if self.cycles else 0.0


class SoftwareStaggerer:
    """Checkpoint-based software staggering model."""

    def __init__(self, threshold: int = 50, check_interval: int = 100):
        self.threshold = threshold
        self.check_interval = check_interval
        self.diff = 0
        self._trail_since_check = 0
        self._holding = False
        self.stats = SwStaggerStats()

    def sample(self, head_commits: int, trail_commits: int) -> bool:
        """Clock one cycle; True when the trail thread is spin-waiting."""
        self.diff += head_commits - trail_commits
        self._trail_since_check += trail_commits
        self.stats.cycles += 1
        if self._holding:
            # Spin-wait until the lag is large enough again.
            if self.diff >= self.threshold:
                self._holding = False
            else:
                self.stats.stall_cycles += 1
                return True
            return False
        if self._trail_since_check >= self.check_interval:
            self._trail_since_check = 0
            self.stats.checkpoints += 1
            if self.diff < self.threshold:
                self._holding = True
                self.stats.stall_cycles += 1
                return True
        return False

    def reset(self):
        self.diff = 0
        self._trail_since_check = 0
        self._holding = False
        self.stats = SwStaggerStats()


def run_with_sw_staggering(soc, max_cycles: int = 2_000_000,
                           threshold: int = 50,
                           check_interval: int = 100):
    """Run an MPSoC under software staggering; returns the staggerer."""
    staggerer = SoftwareStaggerer(threshold=threshold,
                                  check_interval=check_interval)
    head = soc.cores[soc.monitored[0]]
    trail = soc.cores[soc.monitored[1]]
    stall_next = False
    start = soc.cycle
    while soc.cycle - start < max_cycles:
        if head.finished and trail.finished:
            break
        cycle = soc.cycle
        if not head.finished:
            head.step(cycle)
        else:
            head.commits_this_cycle = 0
        if not trail.finished and (not stall_next or head.finished):
            trail.step(cycle)
        else:
            trail.commits_this_cycle = 0
            trail.hold = True
        soc.bus.step(cycle)
        if not (head.finished or trail.finished):
            soc.safedm.observe(cycle, head, trail)
        stall_next = staggerer.sample(head.commits_this_cycle,
                                      trail.commits_this_cycle)
        soc.cycle += 1
    soc.safedm.finish()
    return staggerer
