"""Diversity-unaware plain redundancy (paper Table II, first column).

Plain redundant execution with output comparison and *no* diversity
mechanism at all — the class of techniques ([9]-[11], [17], [19], [20],
[23], [24], [26]-[30]) that detects independent faults but cannot
mitigate Common Cause Failures: when a single fault produces identical
errors in both cores, the outputs still match and the failure escapes.

Used by the fault-injection campaign (`repro.fault`) to quantify the
CCF escapes SafeDM would have flagged.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RedundancyOutcome:
    """Verdict of one diversity-unaware redundant run."""

    output0: int
    output1: int
    golden: int

    @property
    def outputs_match(self) -> bool:
        return self.output0 == self.output1

    @property
    def correct(self) -> bool:
        return self.output0 == self.golden and self.output1 == self.golden

    @property
    def detected(self) -> bool:
        """Plain redundancy detects a fault only via output mismatch."""
        return not self.outputs_match

    @property
    def silent_failure(self) -> bool:
        """Identical but wrong outputs — the CCF escape."""
        return self.outputs_match and not self.correct


def compare_outputs(output0: int, output1: int,
                    golden: int) -> RedundancyOutcome:
    """Classify a redundant run's outputs against the golden result."""
    return RedundancyOutcome(output0=output0, output1=output1,
                             golden=golden)
