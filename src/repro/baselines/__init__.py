"""Baseline redundancy techniques (paper Table II columns)."""

from .lockstep import LockstepComparator, LockstepStats
from .safede import SafeDeEnforcer, SafeDeStats, run_with_enforcement
from .sw_stagger import (
    SoftwareStaggerer,
    SwStaggerStats,
    run_with_sw_staggering,
)
from .unaware import RedundancyOutcome, compare_outputs

__all__ = [
    "LockstepComparator",
    "LockstepStats",
    "RedundancyOutcome",
    "SafeDeEnforcer",
    "SafeDeStats",
    "SoftwareStaggerer",
    "SwStaggerStats",
    "compare_outputs",
    "run_with_enforcement",
    "run_with_sw_staggering",
]
