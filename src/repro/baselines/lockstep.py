"""Dual-Core LockStep (DCLS) reference model (paper Fig. 1).

The classical ASIL-D solution SafeDM replaces: a visible head core plus
a hidden shadow core executing the same inputs a fixed number of cycles
later, with output comparison.  The shadow core is not usable for
independent work — the cost SafeDM's non-lockstepped scheme avoids.

This model rides on top of two :class:`repro.cpu.core.Core` instances:
the shadow core starts ``stagger`` cycles after the head core, and the
comparator checks the *delayed* head-commit stream against the shadow
commit stream, flagging any mismatch as a detected error.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Tuple


@dataclass
class LockstepStats:
    compared: int = 0
    mismatches: int = 0
    first_mismatch_cycle: int = -1


class LockstepComparator:
    """Delayed commit-stream comparator of a DCLS pair.

    Feed per-cycle commit words of head and shadow cores; the head
    stream is delayed by the configured staggering before comparison.
    By construction (fixed staggering), the two cores never hold the
    same state simultaneously — diversity is guaranteed, which is why
    DCLS needs no diversity monitor.
    """

    def __init__(self, stagger: int = 2, equivalent=None):
        if stagger < 1:
            raise ValueError("DCLS staggering must be >= 1 cycle")
        self.stagger = stagger
        #: Optional item-equivalence predicate.  Items that compare
        #: unequal but satisfy the predicate do not count as
        #: mismatches — used by :mod:`repro.schemes.lockstep` to
        #: tolerate the replicas' data-region address delta.
        self.equivalent = equivalent
        self.stats = LockstepStats()
        self._head_delay: Deque[Tuple[int, ...]] = deque(
            [()] * stagger, maxlen=stagger)
        self._head_stream: List[int] = []
        self._shadow_stream: List[int] = []

    def sample(self, cycle: int, head_commits: Tuple[int, ...],
               shadow_commits: Tuple[int, ...]):
        """Clock one cycle of commit activity from both cores."""
        delayed = self._head_delay[0]
        self._head_delay.append(tuple(head_commits))
        self._head_stream.extend(delayed)
        self._shadow_stream.extend(shadow_commits)
        # Compare as far as both streams go.
        matched = min(len(self._head_stream), len(self._shadow_stream))
        equivalent = self.equivalent
        for i in range(matched):
            self.stats.compared += 1
            head = self._head_stream[i]
            shadow = self._shadow_stream[i]
            if head != shadow and not (equivalent is not None
                                       and equivalent(head, shadow)):
                self.stats.mismatches += 1
                if self.stats.first_mismatch_cycle < 0:
                    self.stats.first_mismatch_cycle = cycle
        del self._head_stream[:matched]
        del self._shadow_stream[:matched]

    def flush(self, cycle: int):
        """Drain the delay line at end of run.

        The last ``stagger`` cycles of head commits are still queued in
        the delay FIFO when the cores finish; deliver them so the final
        commits get compared.  Any leftover stream imbalance afterwards
        (the replicas committed different instruction *counts* — e.g. a
        corruption changed one replica's path length) is itself a
        detected divergence.
        """
        for _ in range(self.stagger):
            self.sample(cycle, (), ())
        residue = len(self._head_stream) + len(self._shadow_stream)
        if residue:
            self.stats.compared += residue
            self.stats.mismatches += residue
            if self.stats.first_mismatch_cycle < 0:
                self.stats.first_mismatch_cycle = cycle
            del self._head_stream[:]
            del self._shadow_stream[:]

    @property
    def error_detected(self) -> bool:
        return self.stats.mismatches > 0

    def describe(self) -> str:
        """Fig. 1-style schematic."""
        return "\n".join([
            "Lockstepped core (per Fig. 1):",
            "  inputs --+--------------> [ head core ] ----> outputs",
            "           |                                       |",
            "           +--[delay %d]--> [ shadow core ] --> [compare]"
            % self.stagger,
            "  shadow core is invisible at user level; a mismatch on",
            "  the compare raises the error signal",
        ])
