"""Flat backing memory.

Functional state of the whole SoC lives here: the timing models in
:mod:`repro.mem.cache` and :mod:`repro.mem.bus` only decide *when* an
access completes, while data correctness always comes from this memory.
That split (functional memory + tag-only timing caches) is a standard
simulator construction and is what lets the reproduction run millions of
cycles in pure Python.
"""

from __future__ import annotations

from typing import Dict

PAGE_BITS = 12
PAGE_SIZE = 1 << PAGE_BITS
PAGE_MASK = PAGE_SIZE - 1


class MemoryError_(Exception):
    """Raised on misaligned or out-of-range accesses."""


class Memory:
    """Sparse paged byte-addressable memory (allocate-on-touch)."""

    def __init__(self):
        self._pages: Dict[int, bytearray] = {}
        #: Per-page write counters; lets fetch-side decode caches
        #: validate in O(1) that a cached instruction page is unchanged
        #: (self-modifying or reloaded code invalidates naturally).
        self.page_versions: Dict[int, int] = {}

    def _page(self, address: int) -> bytearray:
        key = address >> PAGE_BITS
        page = self._pages.get(key)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[key] = page
        return page

    # -- bulk access ------------------------------------------------------

    def load_blob(self, address: int, blob: bytes):
        """Copy ``blob`` into memory starting at ``address``."""
        versions = self.page_versions
        offset = 0
        while offset < len(blob):
            page = self._page(address + offset)
            start = (address + offset) & PAGE_MASK
            chunk = min(PAGE_SIZE - start, len(blob) - offset)
            page[start:start + chunk] = blob[offset:offset + chunk]
            key = (address + offset) >> PAGE_BITS
            versions[key] = versions.get(key, 0) + 1
            offset += chunk

    def read_blob(self, address: int, size: int) -> bytes:
        """Read ``size`` raw bytes starting at ``address``."""
        out = bytearray()
        offset = 0
        while offset < size:
            page = self._page(address + offset)
            start = (address + offset) & PAGE_MASK
            chunk = min(PAGE_SIZE - start, size - offset)
            out += page[start:start + chunk]
            offset += chunk
        return bytes(out)

    # -- scalar access ------------------------------------------------------

    def read(self, address: int, size: int) -> int:
        """Read an unsigned little-endian value of ``size`` bytes."""
        if address & (size - 1):
            raise MemoryError_("misaligned read of %d bytes at %#x"
                               % (size, address))
        page = self._page(address)
        start = address & PAGE_MASK
        return int.from_bytes(page[start:start + size], "little")

    def write(self, address: int, value: int, size: int):
        """Write an unsigned little-endian value of ``size`` bytes."""
        if address & (size - 1):
            raise MemoryError_("misaligned write of %d bytes at %#x"
                               % (size, address))
        page = self._page(address)
        start = address & PAGE_MASK
        page[start:start + size] = (value & ((1 << (8 * size)) - 1)
                                    ).to_bytes(size, "little")
        key = address >> PAGE_BITS
        versions = self.page_versions
        versions[key] = versions.get(key, 0) + 1

    def read_word(self, address: int) -> int:
        """Read a 32-bit instruction word (instruction-fetch fast path)."""
        if address & 3:
            raise MemoryError_("misaligned read of 4 bytes at %#x"
                               % address)
        page = self._pages.get(address >> PAGE_BITS)
        if page is None:
            page = self._page(address)
        start = address & PAGE_MASK
        return int.from_bytes(page[start:start + 4], "little")

    def touched_pages(self) -> int:
        """Number of allocated 4 KiB pages (for tests and stats)."""
        return len(self._pages)

    # -- snapshot protocol ------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "pages": {key: bytes(page)
                      for key, page in self._pages.items()},
            "versions": dict(self.page_versions),
        }

    def load_state_dict(self, state):
        pages = {}
        for key, page in state["pages"].items():
            if len(page) != PAGE_SIZE:
                raise ValueError("snapshot page has %d bytes, expected %d"
                                 % (len(page), PAGE_SIZE))
            pages[int(key)] = bytearray(page)
        self._pages = pages
        self.page_versions = {int(key): int(version)
                              for key, version in state["versions"].items()}
