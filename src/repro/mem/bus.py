"""AHB bus model with round-robin arbitration and an integrated shared L2.

The paper's key observation — that redundant execution diverges
*naturally* — hinges on exactly this component: when both cores miss
their L1s in the same cycle, the bus grants one of them first and delays
the other, which breaks zero staggering ("One core is granted access
first and gets its load served whereas the other is delayed").  The
shared L2 also lets a *trailing* core run faster than the head core on
the same instruction stream (the head core warms L2 instruction lines),
which is how trailing cores occasionally catch up.

The model is deliberately transaction-level: one outstanding transaction
occupies the bus for a number of cycles derived from whether it hits the
shared L2 or goes to the memory controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .cache import Cache, CacheConfig


@dataclass
class BusTiming:
    """Service latencies, in bus cycles, for one granted transaction."""

    #: Grant + address phase overhead.
    grant: int = 1
    #: Line transfer on the 128-bit AHB (32-byte line = 2 beats).
    transfer: int = 2
    #: L2 lookup latency on a hit.
    l2_hit: int = 4
    #: Additional latency to the memory controller on an L2 miss.
    l2_miss: int = 18
    #: Single-beat store (write-through traffic).
    store: int = 2


@dataclass
class BusRequest:
    """One master's pending transaction.

    ``complete_cycle`` is valid once ``granted`` is True; the request is
    finished when the SoC cycle reaches it.
    """

    master: int
    address: int
    is_store: bool = False
    is_ifetch: bool = False
    issue_cycle: int = 0
    granted: bool = False
    complete_cycle: int = -1
    l2_hit: Optional[bool] = None

    def done(self, cycle: int) -> bool:
        return self.granted and cycle >= self.complete_cycle


@dataclass
class BusStats:
    """Aggregate transaction counters."""

    transactions: int = 0
    store_transactions: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    busy_cycles: int = 0
    contended_grants: int = 0
    #: Cycles requests spent queued before their grant (arbitration +
    #: bus-occupancy wait, summed over all granted transactions).
    grant_wait_cycles: int = 0

    def to_metrics(self, registry, labels=()):
        """Bridge the arbiter counters into a telemetry registry."""
        for name, value in (
                ("transactions", self.transactions),
                ("store_transactions", self.store_transactions),
                ("l2_hits", self.l2_hits),
                ("l2_misses", self.l2_misses),
                ("busy_cycles", self.busy_cycles),
                ("contended_grants", self.contended_grants),
                ("grant_wait_cycles", self.grant_wait_cycles)):
            registry.counter("repro_bus_%s_total" % name,
                             labels).inc(value)


class AhbBus:
    """Single-outstanding-transaction AHB with round-robin arbitration."""

    def __init__(self, num_masters: int = 2,
                 timing: Optional[BusTiming] = None,
                 l2_config: Optional[CacheConfig] = None,
                 rr_start: int = 0):
        self.num_masters = num_masters
        self.timing = timing or BusTiming()
        self.l2 = Cache(l2_config or CacheConfig(size=65536, line_size=32,
                                                 ways=8, name="l2"))
        self.stats = BusStats()
        self._queue: List[BusRequest] = []
        self._inflight: Optional[BusRequest] = None
        #: Initial round-robin position (the experiment protocol varies
        #: this across "repeated runs"; see repro.soc.experiment).
        self.rr_start = rr_start % num_masters
        self._rr_next = self.rr_start

    # -- master interface -------------------------------------------------

    def request(self, req: BusRequest) -> BusRequest:
        """Enqueue ``req``; completion is observable via ``req.done()``."""
        self._queue.append(req)
        return req

    def request_line(self, master: int, address: int, cycle: int,
                     is_ifetch: bool = False) -> BusRequest:
        """Convenience: enqueue a line-fill read."""
        return self.request(BusRequest(master=master,
                                       address=self.l2.line_address(address),
                                       is_ifetch=is_ifetch,
                                       issue_cycle=cycle))

    def request_store(self, master: int, address: int,
                      cycle: int) -> BusRequest:
        """Convenience: enqueue a write-through store beat."""
        return self.request(BusRequest(master=master, address=address,
                                       is_store=True, issue_cycle=cycle))

    # -- per-cycle behaviour -------------------------------------------------

    def step(self, cycle: int):
        """Advance the bus one cycle: retire and grant transactions."""
        if self._inflight is not None:
            self.stats.busy_cycles += 1
            if cycle >= self._inflight.complete_cycle:
                self._inflight = None
        if self._inflight is None and self._queue:
            self._grant(cycle)

    def _grant(self, cycle: int):
        queue = self._queue
        if len(queue) == 1:
            # Overwhelmingly common case (write-through stores trickle
            # out one at a time): a singleton queue needs no eligibility
            # scan and no arbitration — the round-robin pick is the
            # request itself and no contention is recorded, exactly as
            # the general path below would conclude.
            req = queue[0]
            if req.issue_cycle > cycle:
                return
            del queue[0]
        else:
            eligible = [r for r in queue if r.issue_cycle <= cycle]
            if not eligible:
                return
            if len(eligible) > 1:
                self.stats.contended_grants += 1
            req = self._pick_round_robin(eligible)
            queue.remove(req)
        self.stats.grant_wait_cycles += cycle - req.issue_cycle
        req.granted = True
        req.complete_cycle = cycle + self._service_time(req)
        self._inflight = req
        self._rr_next = (req.master + 1) % self.num_masters

    def _pick_round_robin(self, eligible: List[BusRequest]) -> BusRequest:
        for offset in range(self.num_masters):
            master = (self._rr_next + offset) % self.num_masters
            for req in eligible:
                if req.master == master:
                    return req
        return eligible[0]

    def _service_time(self, req: BusRequest) -> int:
        t = self.timing
        self.stats.transactions += 1
        if req.is_store:
            self.stats.store_transactions += 1
            # Stores allocate in L2 (write-allocate L2 keeps later loads
            # from the same line fast, mirroring GRLIB's shared L2).
            hit = self.l2.lookup(req.address)
            req.l2_hit = hit
            if hit:
                self.stats.l2_hits += 1
                return t.grant + t.store
            self.stats.l2_misses += 1
            self.l2.fill(req.address)
            return t.grant + t.store + t.l2_miss // 2
        hit = self.l2.lookup(req.address)
        req.l2_hit = hit
        if hit:
            self.stats.l2_hits += 1
            return t.grant + t.l2_hit + t.transfer
        self.stats.l2_misses += 1
        self.l2.fill(req.address)
        return t.grant + t.l2_hit + t.l2_miss + t.transfer

    # -- introspection ---------------------------------------------------------

    @property
    def busy(self) -> bool:
        """True while a transaction occupies the bus."""
        return self._inflight is not None

    def pending_requests(self) -> int:
        return len(self._queue) + (1 if self._inflight else 0)

    def reset(self):
        """Clear queues and L2 (between experiment runs)."""
        self._queue.clear()
        self._inflight = None
        self._rr_next = self.rr_start
        self.l2.invalidate_all()

    # -- snapshot protocol ------------------------------------------------

    def state_dict(self, ctx) -> dict:
        from ..checkpoint import stats_state
        return {
            "queue": [ctx.intern(req) for req in self._queue],
            "inflight": (None if self._inflight is None
                         else ctx.intern(self._inflight)),
            "rr_start": self.rr_start,
            "rr_next": self._rr_next,
            "l2": self.l2.state_dict(),
            "stats": stats_state(self.stats),
        }

    def load_state_dict(self, state, ctx):
        from ..checkpoint import load_stats_state
        self._queue = [ctx.resolve(index) for index in state["queue"]]
        inflight = state["inflight"]
        self._inflight = None if inflight is None else ctx.resolve(inflight)
        self.rr_start = int(state["rr_start"]) % self.num_masters
        self._rr_next = int(state["rr_next"]) % self.num_masters
        self.l2.load_state_dict(state["l2"])
        load_stats_state(self.stats, state["stats"])
