"""APB peripheral bus model.

SafeDM attaches to the MPSoC as an APB slave (paper Section IV-B); this
module provides the slave protocol surface: a slave exposes 32-bit
registers at word-aligned offsets, and the bridge routes reads/writes by
address range.  The model is functional (single-cycle), which matches
how the paper uses APB — configuration and result readout, never on the
critical path of the monitored cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


class ApbError(Exception):
    """Raised on access to an unmapped address or a bad offset."""


class ApbSlave:
    """Base class for APB slaves.

    Subclasses implement :meth:`read_register` / :meth:`write_register`
    taking a word-aligned byte offset within the slave's window.
    """

    #: Size of the slave's address window in bytes.
    window = 0x100

    def read_register(self, offset: int) -> int:
        raise ApbError("read of unimplemented register %#x" % offset)

    def write_register(self, offset: int, value: int):
        raise ApbError("write of unimplemented register %#x" % offset)


@dataclass
class _Mapping:
    base: int
    slave: ApbSlave
    name: str


class ApbBridge:
    """AHB-to-APB bridge: address-decoded access to attached slaves."""

    def __init__(self, base: int = 0xFC00_0000):
        self.base = base
        self._mappings: List[_Mapping] = []

    def attach(self, slave: ApbSlave, offset: int, name: str = "") -> int:
        """Attach ``slave`` at ``base+offset``; returns its absolute base."""
        base = self.base + offset
        for m in self._mappings:
            if base < m.base + m.slave.window and m.base < base + slave.window:
                raise ApbError("APB window overlap at %#x" % base)
        self._mappings.append(_Mapping(base=base, slave=slave,
                                       name=name or type(slave).__name__))
        return base

    def _decode(self, address: int) -> Tuple[ApbSlave, int]:
        for m in self._mappings:
            if m.base <= address < m.base + m.slave.window:
                return m.slave, address - m.base
        raise ApbError("no APB slave at %#x" % address)

    def read(self, address: int) -> int:
        """32-bit APB read."""
        if address & 3:
            raise ApbError("misaligned APB read at %#x" % address)
        slave, offset = self._decode(address)
        return slave.read_register(offset) & 0xFFFFFFFF

    def write(self, address: int, value: int):
        """32-bit APB write."""
        if address & 3:
            raise ApbError("misaligned APB write at %#x" % address)
        slave, offset = self._decode(address)
        slave.write_register(offset, value & 0xFFFFFFFF)

    def slaves(self) -> Dict[str, int]:
        """Mapping of slave name to absolute base address."""
        return {m.name: m.base for m in self._mappings}
