"""Core-local store buffer with same-line coalescing.

NOEL-V's L1 data cache is write-through, so every store becomes bus
traffic.  A small store buffer decouples the pipeline from the bus; when
the bus is busy, stores to the same cache line merge into a single
transaction.  This coalescing is the mechanism behind the paper's ``pm``
timing anomaly: a *delayed* core finds the bus occupied by the head
core, its stores coalesce, and it ends up finishing its store burst in
fewer transactions than the head core did — fast enough to catch up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .bus import AhbBus, BusRequest


@dataclass
class StoreEntry:
    """One pending (possibly coalesced) store transaction."""

    line_address: int
    stores: int = 1


@dataclass
class StoreBufferStats:
    stores_accepted: int = 0
    coalesced: int = 0
    transactions: int = 0
    full_stalls: int = 0

    def to_metrics(self, registry, labels=()):
        """Bridge the store-buffer counters into a telemetry registry."""
        for name, value in (("stores_accepted", self.stores_accepted),
                            ("coalesced", self.coalesced),
                            ("transactions", self.transactions),
                            ("full_stalls", self.full_stalls)):
            registry.counter("repro_storebuf_%s_total" % name,
                             labels).inc(value)


class StoreBuffer:
    """FIFO of pending store transactions for one core."""

    def __init__(self, master: int, bus: AhbBus, depth: int = 4,
                 coalesce: bool = True):
        self.master = master
        self.bus = bus
        self.depth = depth
        self.coalesce = coalesce
        self.stats = StoreBufferStats()
        self._entries: List[StoreEntry] = []
        self._inflight: Optional[BusRequest] = None

    # -- pipeline interface ---------------------------------------------------

    def push(self, address: int, cycle: int) -> bool:
        """Accept a store from the pipeline.

        Returns False (pipeline must stall and retry) when the buffer is
        full and the store cannot coalesce.
        """
        line = self.bus.l2.line_address(address)
        if self.coalesce:
            # Merge with any entry not yet on the bus for the same line.
            for entry in self._entries:
                if entry.line_address == line:
                    entry.stores += 1
                    self.stats.stores_accepted += 1
                    self.stats.coalesced += 1
                    return True
        if len(self._entries) >= self.depth:
            self.stats.full_stalls += 1
            return False
        self._entries.append(StoreEntry(line_address=line))
        self.stats.stores_accepted += 1
        return True

    def contains_line(self, address: int) -> bool:
        """True if a pending store targets the line of ``address``.

        Loads use this for store-to-load ordering: a load to a line with
        a pending store waits for the drain (the functional value is
        already in memory, so only timing is affected).
        """
        line = self.bus.l2.line_address(address)
        if self._inflight is not None and self._inflight.address == line:
            return True
        return any(entry.line_address == line for entry in self._entries)

    # -- per-cycle behaviour -------------------------------------------------

    def step(self, cycle: int):
        """Drain one transaction at a time through the bus."""
        if self._inflight is not None and self._inflight.done(cycle):
            self._inflight = None
        if self._inflight is None and self._entries:
            entry = self._entries.pop(0)
            self.stats.transactions += 1
            self._inflight = self.bus.request_store(self.master,
                                                    entry.line_address,
                                                    cycle)

    @property
    def empty(self) -> bool:
        return not self._entries and self._inflight is None

    @property
    def occupancy(self) -> int:
        return len(self._entries) + (1 if self._inflight else 0)

    def occupancy_view(self):
        """Read-only occupancy probe view: the live pending-entry list.

        Companion to :meth:`repro.mem.cache.Cache.tag_view`: the
        execution engine binds the list once and checks depth and
        line-coalescing occupancy in-line (``self._inflight`` is read
        through the buffer attribute, since its identity changes every
        drain).  The list identity is stable until
        :meth:`load_state_dict` replaces it.
        """
        return self._entries

    def reset(self):
        self._entries.clear()
        self._inflight = None

    # -- snapshot protocol ------------------------------------------------

    def state_dict(self, ctx) -> dict:
        from ..checkpoint import stats_state
        return {
            "entries": [[entry.line_address, entry.stores]
                        for entry in self._entries],
            "inflight": (None if self._inflight is None
                         else ctx.intern(self._inflight)),
            "stats": stats_state(self.stats),
        }

    def load_state_dict(self, state, ctx):
        from ..checkpoint import load_stats_state
        self._entries = [StoreEntry(line_address=int(line),
                                    stores=int(stores))
                         for line, stores in state["entries"]]
        inflight = state["inflight"]
        self._inflight = None if inflight is None else ctx.resolve(inflight)
        load_stats_state(self.stats, state["stats"])
