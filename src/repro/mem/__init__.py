"""Memory hierarchy substrate: functional memory, timing caches, AHB/APB."""

from .apb import ApbBridge, ApbError, ApbSlave
from .bus import AhbBus, BusRequest, BusStats, BusTiming
from .cache import Cache, CacheConfig, CacheStats
from .memory import Memory, MemoryError_
from .store_buffer import StoreBuffer, StoreBufferStats

__all__ = [
    "AhbBus",
    "ApbBridge",
    "ApbError",
    "ApbSlave",
    "BusRequest",
    "BusStats",
    "BusTiming",
    "Cache",
    "CacheConfig",
    "CacheStats",
    "Memory",
    "MemoryError_",
    "StoreBuffer",
    "StoreBufferStats",
]
