"""Tag-only set-associative cache timing model.

Caches in this simulator track which lines are present (tags + LRU) and
answer hit/miss; the data itself always lives in the functional
:class:`~repro.mem.memory.Memory`.  This matches what SafeDM needs: the
monitor observes *when* pipelines stall and *which values* flow through
register ports, and both are fully determined by hit/miss timing plus
functional data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass
class CacheConfig:
    """Geometry of one cache level."""

    size: int = 4096
    line_size: int = 32
    ways: int = 2
    name: str = "cache"

    def __post_init__(self):
        if self.line_size & (self.line_size - 1):
            raise ValueError("line_size must be a power of two")
        if self.size % (self.line_size * self.ways):
            raise ValueError("size must be a multiple of line_size*ways")

    @property
    def num_sets(self) -> int:
        return self.size // (self.line_size * self.ways)


@dataclass
class CacheStats:
    """Hit/miss counters."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def to_metrics(self, registry, labels=()):
        """Bridge the hit/miss counters into a telemetry registry."""
        registry.counter("repro_cache_hits_total", labels).inc(self.hits)
        registry.counter("repro_cache_misses_total",
                         labels).inc(self.misses)
        registry.gauge("repro_cache_miss_rate",
                       labels).set(self.miss_rate)


class Cache:
    """LRU set-associative tag store."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        # Per-set list of tags in LRU order (index 0 = most recent).
        self._sets: List[List[int]] = [[] for _ in range(config.num_sets)]
        self._set_shift = config.line_size.bit_length() - 1
        self._set_mask = config.num_sets - 1

    def _locate(self, address: int):
        line = address >> self._set_shift
        return self._sets[line & self._set_mask], line

    def line_address(self, address: int) -> int:
        """Line-aligned address containing ``address``."""
        return address & ~(self.config.line_size - 1)

    def lookup(self, address: int) -> bool:
        """True if the line holding ``address`` is present (updates LRU)."""
        tags, tag = self._locate(address)
        if tag in tags:
            tags.remove(tag)
            tags.insert(0, tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def probe(self, address: int) -> bool:
        """Like :meth:`lookup` but with no LRU or counter side effects."""
        tags, tag = self._locate(address)
        return tag in tags

    def tag_view(self):
        """Cheap read-only tag-probe view: ``(sets, shift, mask)``.

        ``sets`` is the live per-set tag-list structure (index 0 = most
        recent); for an address, its line is ``address >> shift`` and
        its set is ``sets[line & mask]``.  The execution engine binds
        this view once and probes tags in-line in generated code instead
        of paying a method call per access.  Callers must treat the view
        as read-only except when reproducing :meth:`lookup` exactly
        (MRU move plus hit/miss counters) — the identity of the inner
        lists is stable until :meth:`load_state_dict` replaces them.
        """
        return self._sets, self._set_shift, self._set_mask

    def fill(self, address: int):
        """Allocate the line holding ``address`` (LRU eviction)."""
        tags, tag = self._locate(address)
        if tag in tags:
            tags.remove(tag)
        tags.insert(0, tag)
        if len(tags) > self.config.ways:
            tags.pop()

    def invalidate_all(self):
        """Drop all lines (used between experiment runs)."""
        for tags in self._sets:
            tags.clear()

    def resident_lines(self) -> int:
        """Number of valid lines currently cached."""
        return sum(len(tags) for tags in self._sets)

    # -- snapshot protocol ------------------------------------------------

    def state_dict(self) -> dict:
        from ..checkpoint import stats_state
        return {
            "sets": [list(tags) for tags in self._sets],
            "stats": stats_state(self.stats),
        }

    def load_state_dict(self, state):
        from ..checkpoint import load_stats_state
        sets = state["sets"]
        if len(sets) != self.config.num_sets:
            raise ValueError("snapshot has %d sets for %s, expected %d"
                             % (len(sets), self.config.name,
                                self.config.num_sets))
        self._sets = [[int(tag) for tag in tags] for tags in sets]
        load_stats_state(self.stats, state["stats"])
