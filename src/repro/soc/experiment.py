"""Redundant-execution experiment protocol (paper Section V-B).

Reproduces the paper's measurement procedure:

* *Without staggering* — both cores start the program in the same cycle.
* *With staggering* — the late core first executes 100 / 1,000 / 10,000
  nops; runs are repeated with each core taking the late role.

For every run we record the number of cycles with zero staggering
(commit difference of 0 at program level) and the number of cycles in
which SafeDM reports no diversity (both signatures equal), i.e. the two
columns of the paper's Table I.  Like the paper, a table cell reports
the *maximum* across the repeated runs.

The FPGA platform has run-to-run variation; this simulator is
deterministic, so "repeated runs" vary controlled initial conditions
instead: the bus arbiter's starting round-robin position and (for the
staggered experiments) which core starts late.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..core.monitor import ReportingMode
from ..isa.program import Program
from ..trace.stream_trace import StreamRecorder, TraceMeta
from .config import SocConfig
from .mpsoc import MPSoC

#: The initial staggering values evaluated in the paper.
PAPER_STAGGER_VALUES = (0, 100, 1000, 10000)


@dataclass
class RunResult:
    """Outcome of one redundant run."""

    benchmark: str
    stagger_nops: int
    late_core: int
    cycles: int
    committed: int
    zero_staggering_cycles: int
    no_diversity_cycles: int
    no_data_diversity_cycles: int
    no_instruction_diversity_cycles: int
    interrupts: int
    finished: bool
    ipc: float
    #: Redundancy scheme the run executed under (trailing, defaulted:
    #: results serialized before the scheme framework stay loadable).
    scheme: str = "safedm"
    #: Scheme-specific checker stats (``None`` on the legacy path).
    scheme_stats: Optional[dict] = None

    def summary(self) -> str:
        return ("%s nops=%d late=%d: cycles=%d zero_stag=%d no_div=%d"
                % (self.benchmark, self.stagger_nops, self.late_core,
                   self.cycles, self.zero_staggering_cycles,
                   self.no_diversity_cycles))


@dataclass
class CellResult:
    """One Table I cell: max across repeated runs."""

    benchmark: str
    stagger_nops: int
    zero_staggering_cycles: int
    no_diversity_cycles: int
    runs: List[RunResult] = field(default_factory=list)


def run_redundant(program: Program, benchmark: str = "program",
                  stagger_nops: int = 0, late_core: int = 1,
                  config: Optional[SocConfig] = None,
                  mode: ReportingMode = ReportingMode.POLLING,
                  threshold: int = 1,
                  max_cycles: int = 2_000_000,
                  rr_start: int = 0,
                  soc_hook: Optional[Callable[[MPSoC], None]] = None,
                  metrics=None, tracer=None, capture=None,
                  checkpoint_every: int = 0, on_checkpoint=None,
                  resume_from=None, engine: str = "reference",
                  scheme=None) -> RunResult:
    """Run ``program`` redundantly on a fresh MPSoC and report counters.

    ``metrics`` (a :class:`repro.telemetry.MetricsRegistry`) receives
    per-cycle diversity verdicts plus the end-of-run state of every
    layer; ``tracer`` (a :class:`repro.telemetry.Tracer`) receives
    spans for platform build, program load, and the cycle loop.  Both
    are purely observational: counters in the returned
    :class:`RunResult` are bit-identical with or without them.

    ``capture`` (a :class:`repro.trace.StreamRecorder`) taps the raw
    per-cycle signature streams for later replay — see
    :func:`run_redundant_captured` and :mod:`repro.replay`.  Also
    observational.

    ``checkpoint_every``/``on_checkpoint`` forward to
    :meth:`MPSoC.run`: the callback receives the SoC at every cadence
    multiple (snapshot it via ``soc.snapshot()``).  ``resume_from`` (a
    :class:`repro.checkpoint.Snapshot`) restores a previous run's state
    instead of loading the program; counters and the cycle budget are
    then *absolute* — the returned result equals the uninterrupted
    run's.  Per-cycle metrics attachment is skipped on resume (the
    end-of-run collection still reports full totals); resuming under
    ``capture`` is unsupported since the stream's prefix is gone.

    ``engine`` selects the execution tier (:mod:`repro.engine`):
    ``"reference"`` is the interpreter, ``"fast"`` the block-compiled
    tier.  Every counter in the result — and every observable reached
    through ``metrics``/``capture``/checkpoints — is bit-identical
    between the two; the engine's own statistics are left on
    ``soc.engine_stats`` and exported with ``collect_metrics``.  On a
    resumed run the program text is already in restored memory, so the
    fast tier builds its plan lazily from there.

    ``scheme`` (a kind name, :class:`repro.schemes.SchemeSpec`, or
    scheme instance) runs the program under that redundancy scheme
    instead of the plain monitored pair; ``None`` keeps the historical
    path bit-for-bit, and the ``safedm`` scheme reproduces its
    counters exactly.  Capture and resume are monitored-pair features
    and are rejected together with an explicit scheme.
    """
    if tracer is None:
        from ..telemetry import NULL_TRACER
        tracer = NULL_TRACER
    if scheme is not None:
        if resume_from is not None:
            raise ValueError("scheme runs do not support resume_from")
        if capture is not None:
            raise ValueError("stream capture is defined for the"
                             " monitored pair; capture with"
                             " scheme=None instead")
        return _run_scheme(program, benchmark, scheme, stagger_nops,
                           late_core, config, mode, threshold,
                           max_cycles, rr_start, soc_hook, metrics,
                           tracer, checkpoint_every, on_checkpoint,
                           engine)
    if resume_from is not None and capture is not None:
        raise ValueError("cannot capture a resumed run: the signature "
                         "stream before the checkpoint was not recorded")
    with tracer.span("soc_build", benchmark=benchmark):
        soc = MPSoC(config=config, mode=mode, threshold=threshold,
                    rr_start=rr_start)
    if resume_from is not None:
        with tracer.span("restore_checkpoint", benchmark=benchmark,
                         cycle=resume_from.meta.cycle):
            soc.load_state_dict(resume_from.state)
    else:
        with tracer.span("load_program", benchmark=benchmark,
                         stagger_nops=stagger_nops):
            soc.start_redundant(program, late_core=late_core,
                                stagger_nops=stagger_nops)
    if soc_hook is not None:
        soc_hook(soc)
    if metrics is not None and resume_from is None:
        soc.attach_telemetry(metrics)
    if capture is not None:
        # The preload set by start_redundant (program-level staggering
        # correction) is part of the stream a replay must reproduce.
        capture.diff_preload = soc.safedm.instruction_diff.diff
        soc.safedm.attach_capture(capture)
    from ..engine import run_soc
    with tracer.span("cycle_loop", benchmark=benchmark,
                     stagger_nops=stagger_nops, late_core=late_core,
                     rr_start=rr_start, engine=engine):
        budget = max(0, max_cycles - soc.cycle)
        run_soc(soc, engine,
                program=program if resume_from is None else None,
                max_cycles=budget, checkpoint_every=checkpoint_every,
                on_checkpoint=on_checkpoint)
        cycles = soc.cycle
    if metrics is not None:
        with tracer.span("collect_metrics", benchmark=benchmark):
            soc.collect_metrics(metrics)
    stats = soc.safedm.stats
    diff_stats = soc.safedm.instruction_diff.stats
    finished = all(soc.cores[idx].finished for idx in soc.monitored)
    committed = sum(soc.cores[idx].stats.committed
                    for idx in soc.monitored)
    core0 = soc.cores[soc.monitored[0]]
    return RunResult(
        benchmark=benchmark,
        stagger_nops=stagger_nops,
        late_core=late_core,
        cycles=cycles,
        committed=committed,
        zero_staggering_cycles=diff_stats.zero_staggering_cycles,
        no_diversity_cycles=stats.no_diversity_cycles,
        no_data_diversity_cycles=stats.no_data_diversity_cycles,
        no_instruction_diversity_cycles=(
            stats.no_instruction_diversity_cycles),
        interrupts=stats.interrupts_raised,
        finished=finished,
        ipc=core0.stats.ipc,
    )


def _run_scheme(program: Program, benchmark: str, scheme,
                stagger_nops: int, late_core: int,
                config: Optional[SocConfig], mode: ReportingMode,
                threshold: int, max_cycles: int, rr_start: int,
                soc_hook, metrics, tracer, checkpoint_every: int,
                on_checkpoint, engine: str) -> RunResult:
    """The scheme-framework half of :func:`run_redundant`."""
    from ..schemes import make_scheme
    sch = make_scheme(scheme)
    with tracer.span("soc_build", benchmark=benchmark,
                     scheme=sch.kind):
        soc = sch.build(config, mode=mode, threshold=threshold,
                        rr_start=rr_start)
    with tracer.span("load_program", benchmark=benchmark,
                     stagger_nops=stagger_nops, scheme=sch.kind):
        sch.start(soc, program, stagger_nops=stagger_nops,
                  late_core=late_core, benchmark=benchmark)
    if soc_hook is not None:
        soc_hook(soc)
    if metrics is not None:
        soc.attach_telemetry(metrics)
    from ..engine import run_soc
    with tracer.span("cycle_loop", benchmark=benchmark,
                     stagger_nops=stagger_nops, late_core=late_core,
                     rr_start=rr_start, engine=engine,
                     scheme=sch.kind):
        run_soc(soc, engine, program=sch.plan_program(program),
                max_cycles=max(0, max_cycles - soc.cycle),
                checkpoint_every=checkpoint_every,
                on_checkpoint=on_checkpoint)
        cycles = soc.cycle
    sch.finish(soc)
    if metrics is not None:
        with tracer.span("collect_metrics", benchmark=benchmark):
            soc.collect_metrics(metrics)
            sch.to_metrics(metrics, soc)
    watched = sch.watched()
    stats = soc.safedm.stats
    diff_stats = soc.safedm.instruction_diff.stats
    finished = all(soc.cores[idx].finished for idx in watched)
    committed = sum(soc.cores[idx].stats.committed for idx in watched)
    return RunResult(
        benchmark=benchmark,
        stagger_nops=stagger_nops,
        late_core=late_core,
        cycles=cycles,
        committed=committed,
        zero_staggering_cycles=diff_stats.zero_staggering_cycles,
        no_diversity_cycles=stats.no_diversity_cycles,
        no_data_diversity_cycles=stats.no_data_diversity_cycles,
        no_instruction_diversity_cycles=(
            stats.no_instruction_diversity_cycles),
        interrupts=stats.interrupts_raised,
        finished=finished,
        ipc=soc.cores[watched[0]].stats.ipc,
        scheme=sch.kind,
        scheme_stats=sch.result(soc),
    )


def run_redundant_captured(program: Program, benchmark: str = "program",
                           stagger_nops: int = 0, late_core: int = 1,
                           config: Optional[SocConfig] = None,
                           mode: ReportingMode = ReportingMode.POLLING,
                           threshold: int = 1,
                           max_cycles: int = 2_000_000,
                           rr_start: int = 0, metrics=None, tracer=None,
                           sim_key: str = "", engine: str = "reference"):
    """:func:`run_redundant` plus raw-stream capture.

    Returns ``(result, trace)`` where ``trace`` is a
    :class:`repro.trace.StreamTrace` holding everything
    :mod:`repro.replay` needs to recompute the monitor side of
    ``result`` — bit-identical — for *any* monitor configuration.
    """
    recorder = StreamRecorder()
    result = run_redundant(program, benchmark=benchmark,
                           stagger_nops=stagger_nops,
                           late_core=late_core, config=config, mode=mode,
                           threshold=threshold, max_cycles=max_cycles,
                           rr_start=rr_start, metrics=metrics,
                           tracer=tracer, capture=recorder,
                           engine=engine)
    trace = recorder.to_trace(TraceMeta(
        benchmark=benchmark,
        stagger_nops=stagger_nops,
        late_core=late_core,
        rr_start=rr_start,
        max_cycles=max_cycles,
        cycles=result.cycles,
        committed=result.committed,
        finished=result.finished,
        ipc=result.ipc,
        sim_key=sim_key,
    ))
    return result, trace


def run_cell(program: Program, benchmark: str, stagger_nops: int,
             config: Optional[SocConfig] = None,
             max_cycles: int = 2_000_000,
             engine: str = "reference") -> CellResult:
    """Run the paper's repetition protocol for one Table I cell.

    Without staggering: repeated runs varying the arbiter start (the
    paper runs 4 times).  With staggering: one run per late-core choice
    (the paper runs "one with one core starting first, and another one
    with the other core starting first").
    """
    runs: List[RunResult] = []
    if stagger_nops == 0:
        for rr_start in (0, 1):
            runs.append(run_redundant(program, benchmark=benchmark,
                                      stagger_nops=0, config=config,
                                      max_cycles=max_cycles,
                                      rr_start=rr_start, engine=engine))
    else:
        for late_core in (0, 1):
            runs.append(run_redundant(program, benchmark=benchmark,
                                      stagger_nops=stagger_nops,
                                      late_core=late_core, config=config,
                                      max_cycles=max_cycles,
                                      engine=engine))
    return CellResult(
        benchmark=benchmark,
        stagger_nops=stagger_nops,
        zero_staggering_cycles=max(r.zero_staggering_cycles for r in runs),
        no_diversity_cycles=max(r.no_diversity_cycles for r in runs),
        runs=runs,
    )


def run_row(program: Program, benchmark: str,
            stagger_values: Sequence[int] = PAPER_STAGGER_VALUES,
            config: Optional[SocConfig] = None,
            max_cycles: int = 2_000_000,
            engine: str = "reference") -> List[CellResult]:
    """Run one full Table I row (all staggering setups)."""
    return [run_cell(program, benchmark, nops, config=config,
                     max_cycles=max_cycles, engine=engine)
            for nops in stagger_values]
