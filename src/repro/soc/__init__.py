"""MPSoC platform: cores + bus + SafeDM, and the experiment protocol."""

from .config import SocConfig
from .experiment import (
    PAPER_STAGGER_VALUES,
    CellResult,
    RunResult,
    run_cell,
    run_redundant,
    run_row,
)
from .loader import LoaderError, build_nop_sled, load_program
from .mpsoc import MPSoC

__all__ = [
    "CellResult",
    "LoaderError",
    "MPSoC",
    "PAPER_STAGGER_VALUES",
    "RunResult",
    "SocConfig",
    "build_nop_sled",
    "load_program",
    "run_cell",
    "run_redundant",
    "run_row",
]
