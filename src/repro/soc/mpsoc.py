"""The MPSoC: cores + caches + AHB/L2 + APB + SafeDM (paper Section IV).

:class:`MPSoC` owns the functional memory, the shared bus (with the L2
inside it), the cores, the APB bridge, and the SafeDM instance wired to
cores 0 and 1.  Its :meth:`step`/:meth:`run` methods advance the whole
platform cycle by cycle; SafeDM observes the cores *after* they have
been stepped each cycle, exactly like the hardware samples pipeline
registers on the clock edge.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.apb_regs import SafeDmApbSlave
from ..core.history import HistoryModule
from ..core.monitor import DiversityMonitor, ReportingMode
from ..cpu.core import Core
from ..isa.program import Program
from ..mem.apb import ApbBridge
from ..mem.bus import AhbBus
from ..mem.memory import Memory
from .config import SocConfig
from .loader import build_nop_sled, load_program


class MPSoC:
    """A NOEL-V-like multicore with SafeDM attached over APB.

    One SafeDM instance watches exactly one pair of cores; larger
    multicores (the paper's contribution list mentions a 4-core
    Gaisler platform) instantiate one monitor per redundant pair via
    ``monitor_pairs``.  ``soc.safedm`` is the first pair's monitor.
    """

    def __init__(self, config: Optional[SocConfig] = None,
                 mode: ReportingMode = ReportingMode.POLLING,
                 threshold: int = 1,
                 history_bin_size: int = 1,
                 history_bins: int = 32,
                 monitor_pairs=((0, 1),),
                 rr_start: int = 0):
        self.config = config or SocConfig()
        cfg = self.config
        for pair in monitor_pairs:
            if len(pair) != 2 or not all(0 <= c < cfg.num_cores
                                         for c in pair):
                raise ValueError("bad monitored pair %r" % (pair,))
        self.memory = Memory()
        self.bus = AhbBus(num_masters=cfg.num_cores,
                          timing=cfg.bus_timing, l2_config=cfg.l2,
                          rr_start=rr_start)
        self.cores: List[Core] = [
            Core(core_id, self.bus, self.memory, config=cfg.core)
            for core_id in range(cfg.num_cores)
        ]
        self.monitor_pairs = tuple(tuple(pair) for pair in monitor_pairs)
        self.monitors: List[DiversityMonitor] = []
        self.apb = ApbBridge(base=cfg.apb_base)
        self._slave_bases: List[int] = []
        self._apb_slaves: List[SafeDmApbSlave] = []
        for index, pair in enumerate(self.monitor_pairs):
            history = HistoryModule(bin_size=history_bin_size,
                                    num_bins=history_bins)
            monitor = DiversityMonitor(config=cfg.signature, mode=mode,
                                       threshold=threshold,
                                       history=history)
            self.monitors.append(monitor)
            slave = SafeDmApbSlave(monitor)
            self._apb_slaves.append(slave)
            base = self.apb.attach(slave, 0x100 * index,
                                   "safedm%d" % index)
            self._slave_bases.append(base)
        #: First pair's monitor (the common single-pair case).
        self.safedm = self.monitors[0]
        self.safedm_base = self._slave_bases[0]
        self.cycle = 0
        #: First monitored core pair (back-compat convenience).
        self.monitored = self.monitor_pairs[0]
        #: Set by :func:`repro.engine.run_soc` (None until a run).
        self.engine_stats = None
        #: Pairs whose cores share one per-PC decode cache (see
        #: :meth:`start_redundant`); serialized so restores re-link.
        self._shared_fetch_pairs = set()
        #: Sample each monitor only while its pair is fully live.
        self.gate_monitor_on_finish = True
        #: Scheme check hooks, fired every cycle after the monitor taps
        #: (see :meth:`add_scheme_tap`).  Unlike monitors, scheme taps
        #: are not gated on finish: checkers like the lockstep
        #: comparator must see the head core's final commits while the
        #: shadow is still draining.
        self._scheme_taps = []
        #: Override of which cores' completion ends :meth:`run` (set by
        #: a :class:`repro.schemes.base.RedundancyScheme`; ``None``
        #: keeps the monitored-pair default).
        self.watched_cores = None
        # Pre-bound (monitor, core, core) taps: the per-cycle loop must
        # not re-index cores or build generator expressions every cycle.
        self._taps = tuple(
            (monitor, self.cores[pair[0]], self.cores[pair[1]])
            for monitor, pair in zip(self.monitors, self.monitor_pairs))

    def add_scheme_tap(self, tap):
        """Register a per-cycle scheme check hook.

        ``tap(cycle)`` fires once per :meth:`step`, after the cores and
        bus have advanced and the monitors have sampled — the same
        clock edge the monitors observe, so a checker reads exactly the
        state a hardware comparator would latch.
        """
        self._scheme_taps.append(tap)

    def _watched_indices(self):
        """Core ids whose completion ends :meth:`run`."""
        if self.watched_cores is not None:
            return tuple(self.watched_cores)
        return tuple(dict.fromkeys(
            idx for pair in self.monitor_pairs for idx in pair))

    # -- program setup ------------------------------------------------------

    def load(self, program: Program):
        """Load a shared text image."""
        load_program(self.memory, program)

    def start_core(self, core_id: int, entry: int,
                   stagger_nops: int = 0) -> int:
        """Point a core at ``entry``, optionally behind a nop sled.

        Registers are initialised to the bare-metal convention the
        workload kernels rely on: ``gp`` = core-private data base,
        ``sp`` = top of the core-private stack, ``tp`` = core id.
        Returns the number of sled instructions the core will commit
        before reaching the program.
        """
        cfg = self.config
        start_pc = entry
        sled_count = 0
        if stagger_nops:
            sled_base = cfg.sled_base + core_id * 0x0008_0000
            start_pc, sled_count = build_nop_sled(self.memory, sled_base,
                                                  stagger_nops, entry)
        core = self.cores[core_id]
        core.reset(entry=start_pc)
        core.regfile.write(3, cfg.data_base(core_id))   # gp
        core.regfile.write(2, cfg.stack_top(core_id))   # sp
        core.regfile.write(4, core_id)                  # tp
        # The paper's cores enter the measured region straight out of a
        # synchronization loop, i.e. with the first instruction line hot;
        # warm it so cycle 0 starts with live pipelines, not a cold stall.
        core.icache.fill(start_pc)
        self.bus.l2.fill(self.bus.l2.line_address(start_pc))
        return sled_count

    def start_redundant(self, program: Program, late_core: int = 1,
                        stagger_nops: int = 0, pair: int = 0):
        """Start monitored pair ``pair`` on the same program.

        ``late_core`` executes ``stagger_nops`` no-ops before entering
        the program; SafeDM's staggering counter is preloaded so that it
        reads *program-level* staggering (the sled commits would
        otherwise offset the commit difference).
        """
        self.load(program)
        cores = self.monitor_pairs[pair]
        monitor = self.monitors[pair]
        extra = 0
        for core_id in cores:
            nops = stagger_nops if core_id == late_core else 0
            count = self.start_core(core_id, program.entry,
                                    stagger_nops=nops)
            if core_id == late_core:
                extra = count
        if extra:
            # The late core commits the sled instructions on top of the
            # program; preload so diff==0 means equal *program* progress.
            preload = extra if late_core == cores[1] else -extra
            monitor.instruction_diff.diff = preload
        # Redundant cores run the same text image, so their per-PC
        # decode caches would hold the same entries twice; share one
        # dict instead.  Entries stay page-version checked, so a write
        # by either core invalidates for both — exactly as two private
        # caches would behave, minus the duplicate decode work.
        a, b = cores
        self.cores[b]._fetch_cache = self.cores[a]._fetch_cache
        self._shared_fetch_pairs.add((a, b))

    # -- simulation loop ---------------------------------------------------------

    def step(self):
        """Advance the platform one clock cycle."""
        cycle = self.cycle
        for core in self.cores:
            if not core.finished:
                core.step(cycle)
            else:
                core.commits_this_cycle = 0
        self.bus.step(cycle)
        gate = self.gate_monitor_on_finish
        for monitor, core_a, core_b in self._taps:
            if not gate or not (core_a.finished or core_b.finished):
                monitor.observe(cycle, core_a, core_b)
        staps = self._scheme_taps
        if staps:
            for tap in staps:
                tap(cycle)
        self.cycle = cycle + 1

    def _monitor_active(self, pair) -> bool:
        if not self.gate_monitor_on_finish:
            return True
        return not any(self.cores[idx].finished for idx in pair)

    def run(self, max_cycles: int = 2_000_000, checkpoint_every: int = 0,
            on_checkpoint=None) -> int:
        """Run until every monitored core finishes (or ``max_cycles``).

        With ``checkpoint_every`` > 0 and an ``on_checkpoint`` callback,
        the callback receives this SoC whenever ``cycle`` reaches a
        multiple of the cadence (checkpoint-taking lives in a separate
        loop so the common path stays hot-loop tight).  Returns the
        number of cycles simulated.
        """
        start = self.cycle
        watched = [self.cores[idx] for idx in self._watched_indices()]
        step = self.step
        limit = start + max_cycles
        if checkpoint_every > 0 and on_checkpoint is not None:
            while self.cycle < limit:
                if all(core.finished for core in watched):
                    break
                step()
                if self.cycle % checkpoint_every == 0:
                    on_checkpoint(self)
        else:
            while self.cycle < limit:
                if all(core.finished for core in watched):
                    break
                step()
        for monitor in self.monitors:
            monitor.finish()
        return self.cycle - start

    # -- snapshot protocol ------------------------------------------------

    def state_dict(self) -> dict:
        """Serialize the whole platform (children recurse; shared
        bus-request identity goes through one SnapshotContext)."""
        from ..checkpoint import SnapshotContext
        ctx = SnapshotContext()
        state = {
            "cycle": self.cycle,
            "gate_monitor_on_finish": self.gate_monitor_on_finish,
            "shared_fetch_pairs": sorted(self._shared_fetch_pairs),
            "memory": self.memory.state_dict(),
            "cores": [core.state_dict(ctx) for core in self.cores],
            "bus": self.bus.state_dict(ctx),
            "monitors": [monitor.state_dict()
                         for monitor in self.monitors],
            "apb_slaves": [slave.state_dict()
                           for slave in self._apb_slaves],
        }
        # Emitted after the children so every holder has interned.
        state["requests"] = ctx.request_table()
        return state

    def load_state_dict(self, state):
        """Restore a :meth:`state_dict` into this (same-config) SoC."""
        from ..checkpoint import RestoreContext
        if len(state["cores"]) != len(self.cores):
            raise ValueError("snapshot has %d cores, this SoC has %d"
                             % (len(state["cores"]), len(self.cores)))
        if len(state["monitors"]) != len(self.monitors):
            raise ValueError("snapshot monitor count mismatch")
        ctx = RestoreContext(state["requests"])
        self.cycle = int(state["cycle"])
        self.gate_monitor_on_finish = bool(state["gate_monitor_on_finish"])
        # Memory first: core restore re-decodes fetch caches from it.
        self.memory.load_state_dict(state["memory"])
        for core, entry in zip(self.cores, state["cores"]):
            core.load_state_dict(entry, ctx)
        self.bus.load_state_dict(state["bus"], ctx)
        for monitor, entry in zip(self.monitors, state["monitors"]):
            monitor.load_state_dict(entry)
        for slave, entry in zip(self._apb_slaves, state["apb_slaves"]):
            slave.load_state_dict(entry)
        # Re-establish decode-cache sharing (per-core restore above
        # rebuilt private dicts).  Old snapshots lack the key.
        self._shared_fetch_pairs = {
            tuple(pair) for pair in state.get("shared_fetch_pairs", ())}
        for a, b in sorted(self._shared_fetch_pairs):
            merged = self.cores[a]._fetch_cache
            for pc, entry in self.cores[b]._fetch_cache.items():
                merged.setdefault(pc, entry)
            self.cores[b]._fetch_cache = merged

    def snapshot(self, benchmark: str = "program",
                 checkpoint_every: int = 0, sim_key: str = ""):
        """Convenience: the current state as a codec-ready Snapshot."""
        from ..checkpoint import CheckpointMeta, Snapshot
        return Snapshot(self.state_dict(),
                        CheckpointMeta(benchmark=benchmark,
                                       cycle=self.cycle,
                                       checkpoint_every=checkpoint_every,
                                       sim_key=sim_key))

    # -- telemetry -----------------------------------------------------------------

    def attach_telemetry(self, registry):
        """Bind each monitor's per-cycle verdict counters to ``registry``.

        Purely observational, like SafeDM itself: attaching telemetry
        never changes a simulated cycle or a reproduced counter.  A
        disabled registry (``NULL_REGISTRY``) attaches nothing — the
        per-cycle loop keeps its no-telemetry shape instead of calling
        no-op metrics every cycle.
        """
        if not getattr(registry, "enabled", True):
            return
        for pair, monitor in enumerate(self.monitors):
            monitor.attach_metrics(registry, pair=pair)

    def collect_metrics(self, registry):
        """Fold the whole platform's state into ``registry``
        (see :func:`repro.telemetry.collect_soc`)."""
        from ..telemetry import collect_soc
        collect_soc(self, registry)

    # -- host access (the paper's testbench role) ---------------------------------

    def apb_read(self, offset: int) -> int:
        """Read a SafeDM APB register by byte offset."""
        return self.apb.read(self.safedm_base + offset)

    def apb_write(self, offset: int, value: int):
        """Write a SafeDM APB register by byte offset."""
        self.apb.write(self.safedm_base + offset, value)

    def describe(self) -> str:
        """Fig. 3-style schematic."""
        return self.config.describe()
