"""MPSoC configuration (paper Section IV-A).

The modelled platform mirrors the Cobham Gaisler NOEL-V MPSoC: two
dual-issue 7-stage RV64 cores with private L1s, a shared L2 behind a
128-bit AHB, a memory controller, and SafeDM attached through an APB
bridge.  Address-space layout follows the paper's software-redundancy
setup: both cores execute the *same text image* while each owns a
private data/stack region (redundant threads "have different address
spaces", which is one of the natural diversity sources).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..core.signatures import SignatureConfig
from ..cpu.core import CoreConfig
from ..mem.bus import BusTiming
from ..mem.cache import CacheConfig
from ..schemes.spec import SchemeSpec

#: Default per-core data-region layout: core ``i`` owns the region at
#: ``DEFAULT_DATA_BASE + i * DATA_REGION_STRIDE``.  The two-core
#: default ``data_bases`` below is the ``i = 0, 1`` prefix of this
#: progression; wider platforms derive the remaining bases from it.
DEFAULT_DATA_BASE = 0x4000_0000
DATA_REGION_STRIDE = 0x1000_0000


def derived_data_bases(num_cores: int) -> Tuple[int, ...]:
    """The default private data-region base for each of ``num_cores``."""
    return tuple(DEFAULT_DATA_BASE + i * DATA_REGION_STRIDE
                 for i in range(num_cores))


@dataclass
class SocConfig:
    """Full platform configuration."""

    num_cores: int = 2
    core: CoreConfig = field(default_factory=CoreConfig)
    bus_timing: BusTiming = field(default_factory=BusTiming)
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        size=65536, line_size=32, ways=8, name="l2"))
    signature: SignatureConfig = field(default_factory=SignatureConfig)

    #: Shared text image base (identical across cores).
    text_base: int = 0x0001_0000
    #: Per-core private data region bases (the gp register at start).
    data_bases: Tuple[int, ...] = (0x4000_0000, 0x5000_0000)
    #: Size of each core's private data region; sp starts at its top.
    data_size: int = 0x0010_0000
    #: Base address where per-core staggering nop sleds are emitted.
    sled_base: int = 0x0010_0000
    #: APB bridge base address.
    apb_base: int = 0xFC00_0000
    #: Redundancy-scheme spec this platform runs under (``None`` means
    #: the plain monitored pair).  Part of the simulation cache key.
    scheme: Optional[SchemeSpec] = None

    def __post_init__(self):
        if self.num_cores < 2:
            raise ValueError("the monitored platform needs >= 2 cores")
        self.data_bases = tuple(self.data_bases)
        if len(self.data_bases) < self.num_cores:
            # Derive the missing bases when the configured ones are a
            # prefix of the default progression; a *custom* layout that
            # names too few regions is a real inconsistency — guessing
            # the rest could silently alias a deliberate mapping.
            if self.data_bases != derived_data_bases(
                    len(self.data_bases)):
                raise ValueError(
                    "inconsistent data_bases override: %d cores but"
                    " only %d custom bases %s — name one region per"
                    " core, or leave data_bases at its default to"
                    " derive them"
                    % (self.num_cores, len(self.data_bases),
                       tuple(hex(b) for b in self.data_bases)))
            self.data_bases = derived_data_bases(self.num_cores)
        for base in self.data_bases:
            if base + self.data_size > self.apb_base:
                raise ValueError(
                    "data region at %#x (+%#x) overlaps the APB space"
                    " at %#x" % (base, self.data_size, self.apb_base))
        if self.text_base % 8:
            raise ValueError("text base must be 8-byte aligned")

    def data_base(self, core_id: int) -> int:
        return self.data_bases[core_id]

    def stack_top(self, core_id: int) -> int:
        # Keep 16-byte alignment, leave a redzone word at the very top.
        return self.data_bases[core_id] + self.data_size - 16

    def describe(self) -> str:
        """Fig. 3-style schematic of the platform."""
        core_lines = "\n".join(
            "  | NOEL-V core %d: %d-wide, 7-stage | L1I %dKB | L1D %dKB |"
            % (cid, self.core.issue_width, self.core.l1i.size // 1024,
               self.core.l1d.size // 1024)
            for cid in range(self.num_cores))
        return "\n".join([
            "MPSoC schematic (per Fig. 3):",
            core_lines,
            "  |---------------- AHB 128-bit ----------------|",
            "  | shared L2 %dKB | memory controller | APB bridge |"
            % (self.l2.size // 1024),
            "  APB: SafeDM (signature generator, comparators,",
            "       instruction diff, history, APB logic)",
        ])
