"""Bare-metal program loading and staggering sleds.

The paper loads each benchmark on both cores, synchronizes the cores so
they start in the same cycle, and (for the staggered experiments) makes
one core "first execute a number of nop (no-operation) instructions
before it runs the actual program".  This module reproduces both: the
shared text image is placed once, and per-core nop sleds ending in a
jump to the entry point are emitted at core-private text addresses.
"""

from __future__ import annotations

from ..isa.encoder import encode
from ..isa.instruction import Instruction
from ..isa.opcodes import NOP_WORD, SPECS
from ..isa.program import Program
from ..mem.memory import Memory


class LoaderError(ValueError):
    pass


def load_program(memory: Memory, program: Program):
    """Copy a :class:`Program` image into the SoC memory."""
    for base, blob in program.image.items():
        memory.load_blob(base, blob)


def build_nop_sled(memory: Memory, sled_base: int, nops: int,
                   entry: int):
    """Emit ``nops`` no-ops followed by a jump to ``entry``.

    Returns ``(start_pc, instruction_count)``: the staggered core's
    reset PC and how many instructions the sled commits (needed to
    preload the staggering counter).  With ``nops == 0`` no sled is
    emitted and ``(entry, 0)`` is returned — the core starts on the
    program immediately.
    """
    if nops < 0:
        raise LoaderError("negative nop count")
    if nops == 0:
        return entry, 0
    blob = bytearray(NOP_WORD.to_bytes(4, "little") * nops)
    jump_pc = sled_base + 4 * nops
    offset = entry - jump_pc
    if -(1 << 20) <= offset < (1 << 20):
        jump = encode(Instruction(SPECS["jal"], rd=0, imm=offset))
        blob += jump.to_bytes(4, "little")
        count = nops + 1
    else:
        # Out of JAL range: lui+jalr through t6 (x31).
        hi = (entry + 0x800) >> 12
        lo = entry - (hi << 12)
        blob += encode(Instruction(SPECS["lui"], rd=31,
                                   imm=(hi << 12) & 0xFFFFF000)
                       ).to_bytes(4, "little")
        blob += encode(Instruction(SPECS["jalr"], rd=0, rs1=31, imm=lo)
                       ).to_bytes(4, "little")
        count = nops + 2
    memory.load_blob(sled_base, bytes(blob))
    return sled_base, count
