"""Workload registry: the 29 TACLe-suite kernels of the paper's Table I.

Each kernel lives in :mod:`repro.workloads.tacle` as a module exporting
``NAME``, ``CATEGORY``, ``DESCRIPTION`` and ``SOURCE`` (assembly text in
the :mod:`repro.workloads.dsl` conventions).  This registry assembles
and caches them.

These are from-scratch reimplementations of the TACLe benchmark
*algorithms* at simulation-friendly sizes, not the TACLe C sources; see
DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..isa.assembler import assemble
from ..isa.program import Program

#: Module names under repro.workloads.tacle, in the paper's Table I order.
TACLE_KERNELS = (
    "binarysearch", "bitcount", "bitonic", "bsort", "complex_updates",
    "cosf", "countnegative", "cubic", "deg2rad", "fac", "fft",
    "filterbank", "fir2dim", "iir", "insertsort", "isqrt", "jfdctint",
    "lms", "ludcmp", "matrix1", "md5", "minver", "pm", "prime",
    "quicksort", "rad2deg", "recursion", "sha", "st",
)

DEFAULT_TEXT_BASE = 0x0001_0000


@dataclass
class Workload:
    """One registered kernel."""

    name: str
    category: str
    description: str
    source: str
    #: Expected checksum at 0(gp), or None if only determinism is checked.
    expected_checksum: Optional[int] = None

    def assemble(self, base: int = DEFAULT_TEXT_BASE) -> Program:
        return assemble(self.source, base=base)


class WorkloadRegistry:
    """Lazy-loading registry of the kernel modules."""

    def __init__(self):
        self._workloads: Dict[str, Workload] = {}
        self._programs: Dict[tuple, Program] = {}

    def names(self) -> List[str]:
        return list(TACLE_KERNELS)

    def get(self, name: str) -> Workload:
        if name not in self._workloads:
            if name not in TACLE_KERNELS:
                raise KeyError("unknown workload %r (known: %s)"
                               % (name, ", ".join(TACLE_KERNELS)))
            module = importlib.import_module(
                "repro.workloads.tacle.%s" % name)
            self._workloads[name] = Workload(
                name=module.NAME,
                category=module.CATEGORY,
                description=module.DESCRIPTION,
                source=module.SOURCE,
                expected_checksum=getattr(module, "EXPECTED_CHECKSUM",
                                          None),
            )
        return self._workloads[name]

    def program(self, name: str,
                base: int = DEFAULT_TEXT_BASE) -> Program:
        """Assembled (and cached) program image for ``name``."""
        key = (name, base)
        if key not in self._programs:
            self._programs[key] = self.get(name).assemble(base=base)
        return self._programs[key]


#: Process-wide registry instance.
REGISTRY = WorkloadRegistry()


def workload(name: str) -> Workload:
    """Shorthand for ``REGISTRY.get(name)``."""
    return REGISTRY.get(name)


def program(name: str, base: int = DEFAULT_TEXT_BASE) -> Program:
    """Shorthand for ``REGISTRY.program(name)``."""
    return REGISTRY.program(name, base=base)


def all_names() -> List[str]:
    """All Table I benchmark names, in paper order."""
    return list(TACLE_KERNELS)
