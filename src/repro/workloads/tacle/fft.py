"""fft — 64-point radix-2 fixed-point FFT.

Iterative decimation-in-time FFT in Q16.16 with rodata twiddle tables
(shared, read-only — like the compiled TACLe binary's constant pools).
The bit-reverse permutation table is also precomputed into rodata.
"""

import math

from ..dsl import lcg_reference, lcg_setup, lcg_step, store_result

NAME = "fft"
CATEGORY = "dsp"
DESCRIPTION = "64-point Q16.16 radix-2 FFT of an LCG-generated signal"

N = 64
LOG2N = 6
SEED = 0xFF7

MASK = (1 << 64) - 1


def _signed(value: int) -> int:
    return value - (1 << 64) if value & (1 << 63) else value


def _sra16(value: int) -> int:
    return (_signed(value & MASK) >> 16) & MASK


def _tables():
    half = N // 2
    cos_tab = [round(math.cos(2 * math.pi * i / N) * 65536)
               for i in range(half)]
    sin_tab = [round(math.sin(2 * math.pi * i / N) * 65536)
               for i in range(half)]
    rev = []
    for i in range(N):
        r = 0
        for b in range(LOG2N):
            if i & (1 << b):
                r |= 1 << (LOG2N - 1 - b)
        rev.append(r)
    return cos_tab, sin_tab, rev


COS_TAB, SIN_TAB, REV_TAB = _tables()


def _reference() -> int:
    stream = lcg_reference(SEED, N)
    # Low 16 bits of each sample, sign-extended (matches slli/srai 48).
    xr = []
    for v in stream:
        lo = v & 0xFFFF
        xr.append((lo - 0x10000 if lo >= 0x8000 else lo) & MASK)
    xi = [0] * N
    # Bit-reverse permutation.
    for i in range(N):
        r = REV_TAB[i]
        if r > i:
            xr[i], xr[r] = xr[r], xr[i]
            xi[i], xi[r] = xi[r], xi[i]
    # Butterflies.
    length = 2
    while length <= N:
        half = length // 2
        step = N // length
        for k in range(0, N, length):
            for j in range(half):
                tw = j * step
                wr = COS_TAB[tw] & MASK
                wi = (-SIN_TAB[tw]) & MASK
                a, b = k + j, k + j + half
                tr = (_sra16(_signed(wr) * _signed(xr[b]))
                      - _sra16(_signed(wi) * _signed(xi[b]))) & MASK
                ti = (_sra16(_signed(wr) * _signed(xi[b]))
                      + _sra16(_signed(wi) * _signed(xr[b]))) & MASK
                xr[b] = (xr[a] - tr) & MASK
                xi[b] = (xi[a] - ti) & MASK
                xr[a] = (xr[a] + tr) & MASK
                xi[a] = (xi[a] + ti) & MASK
        length *= 2
    checksum = 0
    for i in range(N):
        checksum = (checksum + xr[i] + 3 * xi[i]) & MASK
    return checksum


EXPECTED_CHECKSUM = _reference()


def _dwords(values):
    return ", ".join(str(v & MASK) for v in values)


# Layout: XR at 64(gp), XI at 64+8N(gp).
SOURCE = f"""
.equ N, {N}
.equ XR, 64
.equ XI, {64 + 8 * N}
_start:
    # --- fill xr with signed 16-bit samples, xi with zero ---
{lcg_setup(SEED)}
    li t0, 0
    addi t1, gp, XR
    li t5, XI
    add t2, gp, t5
fill:
{lcg_step('t3')}
    slli t3, t3, 48
    srai t3, t3, 48     # low 16 bits, sign-extended
    sd t3, 0(t1)
    sd x0, 0(t2)
    addi t1, t1, 8
    addi t2, t2, 8
    addi t0, t0, 1
    li t4, N
    blt t0, t4, fill

    # --- bit-reverse permutation via rodata table ---
    la s1, rev_tab
    li s2, 0            # i
bitrev:
    slli t0, s2, 3
    add t1, s1, t0
    ld t2, 0(t1)        # r = rev[i]
    ble t2, s2, no_swap
    # swap xr[i]<->xr[r], xi[i]<->xi[r]
    addi t3, gp, XR
    slli t4, s2, 3
    add t4, t3, t4      # &xr[i]
    slli t5, t2, 3
    add t5, t3, t5      # &xr[r]
    ld t0, 0(t4)
    ld t1, 0(t5)
    sd t1, 0(t4)
    sd t0, 0(t5)
    li t6, XI-XR
    add t4, t4, t6
    add t5, t5, t6
    ld t0, 0(t4)
    ld t1, 0(t5)
    sd t1, 0(t4)
    sd t0, 0(t5)
no_swap:
    addi s2, s2, 1
    li t0, N
    blt s2, t0, bitrev

    # --- butterfly stages ---
    li s1, 2            # length
stage_loop:
    srli s2, s1, 1      # half
    li t0, N
    div s3, t0, s1      # step
    li s4, 0            # k
k_loop:
    li s5, 0            # j
j_loop:
    mul t0, s5, s3      # tw index
    slli t0, t0, 3
    la t1, cos_tab
    add t1, t1, t0
    ld s6, 0(t1)        # wr
    la t1, sin_tab
    add t1, t1, t0
    ld s7, 0(t1)
    neg s7, s7          # wi = -sin
    add t0, s4, s5      # a
    add t1, t0, s2      # b
    addi t2, gp, XR
    slli t3, t0, 3
    add t3, t2, t3      # &xr[a]
    slli t4, t1, 3
    add t4, t2, t4      # &xr[b]
    ld t5, 0(t4)        # xr[b]
    li t6, XI-XR
    add t4, t4, t6      # &xi[b]
    ld t6, 0(t4)        # xi[b]
    # tr = (wr*xrb - wi*xib) >> 16 ; ti = (wr*xib + wi*xrb) >> 16
    mul a0, s6, t5
    srai a0, a0, 16
    mul a1, s7, t6
    srai a1, a1, 16
    sub a0, a0, a1      # tr
    mul a1, s6, t6
    srai a1, a1, 16
    mul a2, s7, t5
    srai a2, a2, 16
    add a1, a1, a2      # ti
    # update
    ld t5, 0(t3)        # xr[a]
    sub a2, t5, a0
    add t5, t5, a0
    sd t5, 0(t3)        # xr[a] += tr
    li a3, XI-XR
    add a4, t3, a3      # &xi[a]
    slli a5, t1, 3
    addi a6, gp, XR
    add a5, a6, a5      # &xr[b]
    sd a2, 0(a5)        # xr[b] = xra - tr
    ld t5, 0(a4)        # xi[a]
    sub a2, t5, a1
    add t5, t5, a1
    sd t5, 0(a4)        # xi[a] += ti
    add a5, a5, a3      # &xi[b]
    sd a2, 0(a5)
    addi s5, s5, 1
    blt s5, s2, j_loop
    add s4, s4, s1
    li t0, N
    blt s4, t0, k_loop
    slli s1, s1, 1
    li t0, N
    ble s1, t0, stage_loop

    # --- checksum: sum xr[i] + 3*xi[i] ---
    li s0, 0
    li s2, 0
    addi s3, gp, XR
check:
    ld t0, 0(s3)
    add s0, s0, t0
    li t1, XI-XR
    add t2, s3, t1
    ld t0, 0(t2)
    slli t1, t0, 1
    add t0, t0, t1
    add s0, s0, t0
    addi s3, s3, 8
    addi s2, s2, 1
    li t3, N
    blt s2, t3, check
{store_result('s0')}

.align 3
cos_tab:
    .dword {_dwords(COS_TAB)}
sin_tab:
    .dword {_dwords(SIN_TAB)}
rev_tab:
    .dword {_dwords(REV_TAB)}
"""
