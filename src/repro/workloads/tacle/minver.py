"""minver — small matrix inversion (Gauss-Jordan).

Inverts a 6x6 diagonally-dominant Q16.16 matrix via Gauss-Jordan on an
augmented [A | I] matrix, repeated for 3 matrices.  Division per pivot
column, mul/sub row updates — the TACLe ``minver`` profile.
"""

from ..dsl import lcg_reference, lcg_setup, lcg_step, store_result

NAME = "minver"
CATEGORY = "linear-algebra"
DESCRIPTION = "Gauss-Jordan inversion of 3 6x6 Q16.16 matrices"

N = 6
MATRICES = 3
SEED = 0x319E6
SHIFT = 47  # 17-bit entries

MASK = (1 << 64) - 1
ONE = 1 << 16


def _signed(value: int) -> int:
    return value - (1 << 64) if value & (1 << 63) else value


def _sra16(value: int) -> int:
    return (_signed(value & MASK) >> 16) & MASK


def _sdiv(a: int, b: int) -> int:
    a, b = _signed(a), _signed(b)
    if b == 0:
        return MASK
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return q & MASK


def _reference() -> int:
    checksum = 0
    stream = lcg_reference(SEED, MATRICES * N * N, shift=SHIFT)
    for m in range(MATRICES):
        vals = stream[m * N * N:(m + 1) * N * N]
        # Augmented [A | I], row-major, 2N columns.
        aug = [[0] * (2 * N) for _ in range(N)]
        for i in range(N):
            for j in range(N):
                aug[i][j] = vals[i * N + j]
            aug[i][i] = (aug[i][i] + N * (1 << 19)) & MASK
            aug[i][N + i] = ONE
        for k in range(N):
            piv = aug[k][k]
            for j in range(2 * N):
                aug[k][j] = _sdiv((_signed(aug[k][j]) << 16) & MASK, piv)
            for i in range(N):
                if i == k:
                    continue
                factor = aug[i][k]
                for j in range(2 * N):
                    prod = _sra16(_signed(factor) * _signed(aug[k][j]))
                    aug[i][j] = (aug[i][j] - prod) & MASK
        for i in range(N):
            for j in range(N):
                checksum = (checksum
                            + (i + 2 * j + 1)
                            * _signed(aug[i][N + j])) & MASK
    return checksum


EXPECTED_CHECKSUM = _reference()

SOURCE = f"""
.equ N, {N}
.equ N2, {2 * N}
.equ MATS, {MATRICES}
.equ AUG, 64            # N x 2N dwords
_start:
{lcg_setup(SEED)}
    li s0, 0            # checksum
    li s8, 0            # matrix counter
mat_loop:
    # --- build augmented [A|I] with a dominant diagonal ---
    li t0, 0            # i
build_i:
    li t1, 0            # j
build_j:
    li t2, N2
    mul t3, t0, t2
    add t3, t3, t1
    slli t3, t3, 3
    addi t4, gp, AUG
    add t4, t4, t3      # &aug[i][j]
    li t5, N
    bge t1, t5, ident_part
{lcg_step('t6', shift=SHIFT)}
    bne t0, t1, store_elem
    li t5, {N * (1 << 19)}
    add t6, t6, t5      # diagonal dominance
store_elem:
    sd t6, 0(t4)
    j build_next
ident_part:
    sub t5, t1, t0
    li t6, N
    bne t5, t6, store_zero
    li t5, {ONE}
    sd t5, 0(t4)
    j build_next
store_zero:
    sd x0, 0(t4)
build_next:
    addi t1, t1, 1
    li t2, N2
    blt t1, t2, build_j
    addi t0, t0, 1
    li t2, N
    blt t0, t2, build_i

    # --- Gauss-Jordan ---
    li s1, 0            # k
gj_k:
    # pivot = aug[k][k]
    li t0, N2
    mul t1, s1, t0
    add t1, t1, s1
    slli t1, t1, 3
    addi t2, gp, AUG
    add t1, t2, t1
    ld s5, 0(t1)        # pivot
    # normalise row k
    li s2, 0            # j
norm_j:
    li t0, N2
    mul t1, s1, t0
    add t1, t1, s2
    slli t1, t1, 3
    addi t2, gp, AUG
    add t1, t2, t1
    ld t3, 0(t1)
    slli t3, t3, 16
    div t3, t3, s5
    sd t3, 0(t1)
    addi s2, s2, 1
    li t0, N2
    blt s2, t0, norm_j
    # eliminate other rows
    li s3, 0            # i
elim_i:
    beq s3, s1, elim_next
    li t0, N2
    mul t1, s3, t0
    add t1, t1, s1
    slli t1, t1, 3
    addi t2, gp, AUG
    add t1, t2, t1
    ld s6, 0(t1)        # factor = aug[i][k]
    li s2, 0            # j
elim_j:
    li t0, N2
    mul t1, s1, t0
    add t1, t1, s2
    slli t1, t1, 3
    addi t2, gp, AUG
    add t1, t2, t1
    ld t3, 0(t1)        # aug[k][j]
    mul t3, s6, t3
    srai t3, t3, 16
    li t0, N2
    mul t1, s3, t0
    add t1, t1, s2
    slli t1, t1, 3
    add t1, t2, t1
    ld t4, 0(t1)
    sub t4, t4, t3
    sd t4, 0(t1)
    addi s2, s2, 1
    li t0, N2
    blt s2, t0, elim_j
elim_next:
    addi s3, s3, 1
    li t0, N
    blt s3, t0, elim_i
    addi s1, s1, 1
    li t0, N
    blt s1, t0, gj_k

    # --- fold the inverse (right half) into the checksum ---
    li t0, 0            # i
cs_i:
    li t1, 0            # j
cs_j:
    li t2, N2
    mul t3, t0, t2
    add t3, t3, t1
    addi t3, t3, N
    slli t3, t3, 3
    addi t4, gp, AUG
    add t4, t4, t3
    ld t5, 0(t4)
    slli t6, t1, 1
    add t6, t6, t0
    addi t6, t6, 1      # i + 2j + 1
    mul t5, t5, t6
    add s0, s0, t5
    addi t1, t1, 1
    li t2, N
    blt t1, t2, cs_j
    addi t0, t0, 1
    li t2, N
    blt t0, t2, cs_i

    addi s8, s8, 1
    li t0, MATS
    blt s8, t0, mat_loop
{store_result('s0')}
"""
