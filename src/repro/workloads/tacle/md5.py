"""md5 — the MD5 message digest over a pseudo-random message.

Full 64-round MD5 compression, 12 blocks (768 message bytes).  The
round constants K, per-round rotations R and message-index table G live
in rodata; the message buffer is rebuilt per block in the private arena.
"""

import math

from ..dsl import lcg_reference, lcg_setup, lcg_step, store_result

NAME = "md5"
CATEGORY = "crypto"
DESCRIPTION = "MD5 compression of 12 LCG-generated 64-byte blocks"

BLOCKS = 12
SEED = 0x3D5
SHIFT = 32  # 32-bit message words

M32 = 0xFFFFFFFF
MASK = (1 << 64) - 1

K_TAB = [int(abs(math.sin(i + 1)) * (1 << 32)) & M32 for i in range(64)]
R_TAB = ([7, 12, 17, 22] * 4) + ([5, 9, 14, 20] * 4) \
    + ([4, 11, 16, 23] * 4) + ([6, 10, 15, 21] * 4)
G_TAB = ([i for i in range(16)]
         + [(5 * i + 1) % 16 for i in range(16, 32)]
         + [(3 * i + 5) % 16 for i in range(32, 48)]
         + [(7 * i) % 16 for i in range(48, 64)])

INIT = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476)


def _rotl32(x: int, s: int) -> int:
    x &= M32
    return ((x << s) | (x >> (32 - s))) & M32


def _reference() -> int:
    stream = lcg_reference(SEED, BLOCKS * 16, shift=SHIFT)
    h0, h1, h2, h3 = INIT
    for blk in range(BLOCKS):
        m = [v & M32 for v in stream[blk * 16:(blk + 1) * 16]]
        a, b, c, d = h0, h1, h2, h3
        for i in range(64):
            if i < 16:
                f = (b & c) | (~b & d)
            elif i < 32:
                f = (d & b) | (~d & c)
            elif i < 48:
                f = b ^ c ^ d
            else:
                f = c ^ (b | ~d)
            f &= M32
            x = (a + f + K_TAB[i] + m[G_TAB[i]]) & M32
            a, d, c, b = d, c, b, (b + _rotl32(x, R_TAB[i])) & M32
        h0 = (h0 + a) & M32
        h1 = (h1 + b) & M32
        h2 = (h2 + c) & M32
        h3 = (h3 + d) & M32
    return (h0 + 3 * h1 + 5 * h2 + 7 * h3) & MASK


EXPECTED_CHECKSUM = _reference()


def _dwords(values):
    return ", ".join(str(v & MASK) for v in values)


SOURCE = f"""
.equ BLOCKS, {BLOCKS}
.equ MSG, 64            # 16 message words (dword slots)
.equ M32HI, 0xFFFFFFFF
_start:
{lcg_setup(SEED)}
    # h0..h3 in s1..s4
    li s1, {INIT[0]}
    li s2, {INIT[1]}
    li s3, {INIT[2]}
    li s4, {INIT[3]}
    li s8, 0            # block counter
block_loop:
    # --- fill 16 message words ---
    li t0, 0
    addi t1, gp, MSG
fill:
{lcg_step('t2', shift=SHIFT)}
    sd t2, 0(t1)
    addi t1, t1, 8
    addi t0, t0, 1
    li t3, 16
    blt t0, t3, fill

    # --- 64 rounds; a,b,c,d in a0..a3 ---
    mv a0, s1
    mv a1, s2
    mv a2, s3
    mv a3, s4
    li s5, 0            # round i
round_loop:
    li t5, 16
    blt s5, t5, f_round0
    li t5, 32
    blt s5, t5, f_round1
    li t5, 48
    blt s5, t5, f_round2
    # round 3: f = c ^ (b | ~d)
    not t0, a3
    or t0, a1, t0
    xor t0, a2, t0
    j f_done
f_round0:               # f = (b & c) | (~b & d)
    and t0, a1, a2
    not t1, a1
    and t1, t1, a3
    or t0, t0, t1
    j f_done
f_round1:               # f = (d & b) | (~d & c)
    and t0, a3, a1
    not t1, a3
    and t1, t1, a2
    or t0, t0, t1
    j f_done
f_round2:               # f = b ^ c ^ d
    xor t0, a1, a2
    xor t0, t0, a3
f_done:
    li t6, M32HI
    and t0, t0, t6
    # x = a + f + K[i] + M[G[i]]
    slli t1, s5, 3
    la t2, k_tab
    add t2, t2, t1
    ld t3, 0(t2)        # K[i]
    la t2, g_tab
    add t2, t2, t1
    ld t4, 0(t2)        # G[i]
    slli t4, t4, 3
    addi t2, gp, MSG
    add t2, t2, t4
    ld t4, 0(t2)        # M[G[i]]
    add t0, t0, a0
    add t0, t0, t3
    add t0, t0, t4
    and t0, t0, t6      # x (32-bit)
    # rot = R[i]; b' = b + rotl32(x, rot)
    la t2, r_tab
    add t2, t2, t1
    ld t3, 0(t2)        # rot
    sll t4, t0, t3
    li t5, 32
    sub t5, t5, t3
    srl t0, t0, t5
    or t0, t4, t0
    and t0, t0, t6
    add t0, a1, t0
    and t0, t0, t6      # new b
    # rotate (a,b,c,d) <- (d, new_b, b, c)
    mv t4, a3           # temp = d
    mv a3, a2
    mv a2, a1
    mv a1, t0
    mv a0, t4
    addi s5, s5, 1
    li t5, 64
    blt s5, t5, round_loop

    li t6, M32HI
    add s1, s1, a0
    and s1, s1, t6
    add s2, s2, a1
    and s2, s2, t6
    add s3, s3, a2
    and s3, s3, t6
    add s4, s4, a3
    and s4, s4, t6
    addi s8, s8, 1
    li t0, BLOCKS
    blt s8, t0, block_loop

    # checksum = h0 + 3*h1 + 5*h2 + 7*h3
    mv s0, s1
    li t0, 3
    mul t1, s2, t0
    add s0, s0, t1
    li t0, 5
    mul t1, s3, t0
    add s0, s0, t1
    li t0, 7
    mul t1, s4, t0
    add s0, s0, t1
{store_result('s0')}

.align 3
k_tab:
    .dword {_dwords(K_TAB)}
r_tab:
    .dword {_dwords(R_TAB)}
g_tab:
    .dword {_dwords(G_TAB)}
"""
