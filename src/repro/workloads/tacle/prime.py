"""prime — primality counting by trial division.

Counts primes below 600 with odd-divisor trial division; dominated by
the iterative divider (``rem``), like the TACLe original.
"""

from ..dsl import store_result

NAME = "prime"
CATEGORY = "math"
DESCRIPTION = "count primes < 600 via trial division"

LIMIT = 600

MASK = (1 << 64) - 1


def _reference() -> int:
    count = 0
    total = 0
    for n in range(2, LIMIT):
        if n == 2:
            prime = True
        elif n % 2 == 0:
            prime = False
        else:
            prime = True
            d = 3
            while d * d <= n:
                if n % d == 0:
                    prime = False
                    break
                d += 2
        if prime:
            count += 1
            total = (total + n) & MASK
    return (total + count * 1000003) & MASK


EXPECTED_CHECKSUM = _reference()

SOURCE = f"""
.equ LIMIT, {LIMIT}
.equ PRIMES, 64
_start:
    li s1, 0            # count
    li s2, 2            # n
    addi s4, gp, PRIMES # output cursor
n_loop:
    li t0, 2
    bne s2, t0, check_even
    j is_prime          # 2 is prime
check_even:
    andi t0, s2, 1
    beqz t0, not_prime
    li s3, 3            # d
d_loop:
    mul t0, s3, s3
    bgt t0, s2, is_prime
    rem t1, s2, s3
    beqz t1, not_prime
    addi s3, s3, 2
    j d_loop
is_prime:
    addi s1, s1, 1
    sd s2, 0(s4)        # record the prime
    addi s4, s4, 8
not_prime:
    addi s2, s2, 1
    li t0, LIMIT
    blt s2, t0, n_loop
    # total = sum of recorded primes (read back from memory)
    li s0, 0
    li t0, 0
    addi t1, gp, PRIMES
sum_loop:
    ld t2, 0(t1)
    add s0, s0, t2
    addi t1, t1, 8
    addi t0, t0, 1
    blt t0, s1, sum_loop
    li t0, 1000003
    mul t0, s1, t0
    add s0, s0, t0
{store_result('s0')}
"""
