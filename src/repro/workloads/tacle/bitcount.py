"""bitcount — population count of a pseudo-random stream.

TACLe's ``bitcount`` exercises several bit-counting strategies; this
version uses Kernighan's clear-lowest-set-bit loop over 800 LCG values,
a register-only (no-memory) inner loop.
"""

from ..dsl import lcg_reference, lcg_setup, lcg_step, store_result

NAME = "bitcount"
CATEGORY = "bitops"
DESCRIPTION = "Kernighan popcount of 800 16-bit values"

COUNT = 800
SEED = 0xB17C
SHIFT = 48


def _reference() -> int:
    total = 0
    for value in lcg_reference(SEED, COUNT, shift=SHIFT):
        total += bin(value).count("1")
    return total & ((1 << 64) - 1)


EXPECTED_CHECKSUM = _reference()

SOURCE = f"""
.equ K, {COUNT}
_start:
{lcg_setup(SEED)}
    li s0, 0            # total bit count
    li s1, 0            # value counter
    li s2, K
value_loop:
{lcg_step('t0', shift=SHIFT)}
pop_loop:
    beqz t0, pop_done
    addi t1, t0, -1
    and t0, t0, t1      # clear lowest set bit
    addi s0, s0, 1
    j pop_loop
pop_done:
    addi s1, s1, 1
    blt s1, s2, value_loop
{store_result('s0')}
"""
