"""bsort — bubble sort with early exit.

Classic TACLe bubble sort; the early-exit flag makes late passes cheap.
"""

from ..dsl import lcg_reference, lcg_setup, lcg_step, store_result

NAME = "bsort"
CATEGORY = "sort"
DESCRIPTION = "bubble sort (early exit) of 72 LCG-generated values"

N = 72
SEED = 0xB508


def _reference() -> int:
    arr = list(lcg_reference(SEED, N))
    arr.sort()
    checksum = 0
    for index, value in enumerate(arr):
        checksum += (index + 1) * value
    return checksum & ((1 << 64) - 1)


EXPECTED_CHECKSUM = _reference()

SOURCE = f"""
.equ N, {N}
.equ ARR, 64
_start:
{lcg_setup(SEED)}
    li t0, 0
    addi t1, gp, ARR
fill:
{lcg_step('t2')}
    sd t2, 0(t1)
    addi t1, t1, 8
    addi t0, t0, 1
    li t3, N
    blt t0, t3, fill

    # --- bubble passes ---
    li s1, N            # remaining length
pass_loop:
    li s2, 0            # swapped flag
    li s3, 1            # index
    addi s4, gp, ARR    # ptr to arr[index-1]
inner:
    ld t0, 0(s4)
    ld t1, 8(s4)
    bleu t0, t1, no_swap
    sd t1, 0(s4)
    sd t0, 8(s4)
    li s2, 1
no_swap:
    addi s4, s4, 8
    addi s3, s3, 1
    blt s3, s1, inner
    addi s1, s1, -1
    beqz s2, sorted     # early exit when no swaps
    li t2, 1
    bgt s1, t2, pass_loop
sorted:

    # --- weighted checksum ---
    li s0, 0
    li t0, 0
    addi t1, gp, ARR
check:
    ld t2, 0(t1)
    addi t3, t0, 1
    mul t2, t2, t3
    add s0, s0, t2
    addi t1, t1, 8
    addi t0, t0, 1
    li t4, N
    blt t0, t4, check
{store_result('s0')}
"""
