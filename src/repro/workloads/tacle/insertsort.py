"""insertsort — insertion sort."""

from ..dsl import lcg_reference, lcg_setup, lcg_step, store_result

NAME = "insertsort"
CATEGORY = "sort"
DESCRIPTION = "insertion sort of 96 LCG-generated values"

N = 96
SEED = 0x1452

MASK = (1 << 64) - 1


def _reference() -> int:
    arr = list(lcg_reference(SEED, N))
    arr.sort()
    checksum = 0
    for index, value in enumerate(arr):
        checksum = (checksum + (index + 1) * value) & MASK
    return checksum


EXPECTED_CHECKSUM = _reference()

SOURCE = f"""
.equ N, {N}
.equ ARR, 64
_start:
{lcg_setup(SEED)}
    li t0, 0
    addi t1, gp, ARR
fill:
{lcg_step('t2')}
    sd t2, 0(t1)
    addi t1, t1, 8
    addi t0, t0, 1
    li t3, N
    blt t0, t3, fill

    # --- insertion sort ---
    li s1, 1            # i
outer:
    slli t0, s1, 3
    addi t1, gp, ARR
    add t0, t1, t0
    ld s2, 0(t0)        # key = arr[i]
    addi s3, t0, -8     # ptr to arr[j], j = i-1
inner:
    blt s3, t1, place   # j < 0
    ld t2, 0(s3)
    bleu t2, s2, place  # arr[j] <= key
    sd t2, 8(s3)        # shift right
    addi s3, s3, -8
    j inner
place:
    sd s2, 8(s3)
    addi s1, s1, 1
    li t3, N
    blt s1, t3, outer

    # --- weighted checksum ---
    li s0, 0
    li t0, 0
    addi t1, gp, ARR
check:
    ld t2, 0(t1)
    addi t3, t0, 1
    mul t2, t2, t3
    add s0, s0, t2
    addi t1, t1, 8
    addi t0, t0, 1
    li t4, N
    blt t0, t4, check
{store_result('s0')}
"""
