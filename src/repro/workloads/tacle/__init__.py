"""TACLe-suite kernel reimplementations (one module per benchmark)."""
