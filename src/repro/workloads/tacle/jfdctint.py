"""jfdctint — integer 8x8 forward DCT over pixel blocks.

The JPEG forward DCT expressed as two 8x8 matrix products
(out = C . block . C^T) in Q14 arithmetic, over 3 blocks.  The cosine
matrix lives in rodata like the compiled version's constant tables.
"""

import math

from ..dsl import lcg_reference, lcg_setup, lcg_step, store_result

NAME = "jfdctint"
CATEGORY = "media"
DESCRIPTION = "integer 8x8 forward DCT of 3 pixel blocks"

BLOCKS = 3
SEED = 0x3FDC
SHIFT = 56  # 8-bit pixels

MASK = (1 << 64) - 1


def _signed(value: int) -> int:
    return value - (1 << 64) if value & (1 << 63) else value


def _cos_matrix():
    mat = []
    for k in range(8):
        scale = math.sqrt(0.25) if k else math.sqrt(0.125)
        for n in range(8):
            mat.append(round(scale * math.cos(math.pi * (2 * n + 1) * k
                                              / 16) * 16384))
    return mat


C = _cos_matrix()


def _reference() -> int:
    checksum = 0
    stream = lcg_reference(SEED, BLOCKS * 64, shift=SHIFT)
    for b in range(BLOCKS):
        block = stream[b * 64:(b + 1) * 64]
        # tmp = C . block  (Q14 * int -> >>14)
        tmp = [0] * 64
        for i in range(8):
            for j in range(8):
                acc = 0
                for k in range(8):
                    acc += C[i * 8 + k] * block[k * 8 + j]
                tmp[i * 8 + j] = (acc >> 14) & MASK
        # out = tmp . C^T
        for i in range(8):
            for j in range(8):
                acc = 0
                for k in range(8):
                    acc += _signed(tmp[i * 8 + k]) * C[j * 8 + k]
                out = (acc >> 14) & MASK
                checksum = (checksum + out * (i + 2 * j + 1)) & MASK
    return checksum


EXPECTED_CHECKSUM = _reference()

SOURCE = f"""
.equ BLOCKS, {BLOCKS}
.equ BLK, 64
.equ TMP, {64 + 8 * 64}
_start:
{lcg_setup(SEED)}
    li s0, 0                # checksum
    li s8, 0                # block counter
block_loop:
    # --- fill one 8x8 block with 8-bit pixels ---
    li t0, 0
    addi t1, gp, BLK
fill:
{lcg_step('t2', shift=SHIFT)}
    sd t2, 0(t1)
    addi t1, t1, 8
    addi t0, t0, 1
    li t3, 64
    blt t0, t3, fill

    # --- tmp = C . block, >>14 ---
    li s1, 0                # i
t_i:
    li s2, 0                # j
t_j:
    li s4, 0                # acc
    li s3, 0                # k
t_k:
    slli t0, s1, 3
    add t0, t0, s3          # i*8+k
    slli t0, t0, 3
    la t1, cos_tab
    add t1, t1, t0
    ld t2, 0(t1)            # C[i][k]
    slli t3, s3, 3
    add t3, t3, s2          # k*8+j
    slli t3, t3, 3
    addi t4, gp, BLK
    add t4, t4, t3
    ld t5, 0(t4)            # block[k][j]
    mul t2, t2, t5
    add s4, s4, t2
    addi s3, s3, 1
    li t6, 8
    blt s3, t6, t_k
    srai s4, s4, 14
    slli t0, s1, 3
    add t0, t0, s2
    slli t0, t0, 3
    li t1, TMP
    add t1, gp, t1
    add t1, t1, t0
    sd s4, 0(t1)
    addi s2, s2, 1
    li t6, 8
    blt s2, t6, t_j
    addi s1, s1, 1
    li t6, 8
    blt s1, t6, t_i

    # --- out = tmp . C^T, >>14, accumulate checksum in s0 ---
    li s1, 0                # i
o_i:
    li s2, 0                # j
o_j:
    li s4, 0                # acc
    li s3, 0                # k
o_k:
    slli t0, s1, 3
    add t0, t0, s3          # i*8+k
    slli t0, t0, 3
    li t1, TMP
    add t1, gp, t1
    add t1, t1, t0
    ld t2, 0(t1)            # tmp[i][k]
    slli t3, s2, 3
    add t3, t3, s3          # j*8+k
    slli t3, t3, 3
    la t4, cos_tab
    add t4, t4, t3
    ld t5, 0(t4)            # C[j][k]
    mul t2, t2, t5
    add s4, s4, t2
    addi s3, s3, 1
    li t6, 8
    blt s3, t6, o_k
    srai s4, s4, 14
    slli t0, s2, 1
    add t0, t0, s1
    addi t0, t0, 1          # i + 2*j + 1
    mul t0, s4, t0
    add s0, s0, t0
    addi s2, s2, 1
    li t6, 8
    blt s2, t6, o_j
    addi s1, s1, 1
    li t6, 8
    blt s1, t6, o_i

    addi s8, s8, 1
    li t0, BLOCKS
    blt s8, t0, block_loop
{store_result('s0')}

.align 3
cos_tab:
    .dword {", ".join(str(v & MASK) for v in C)}
"""
