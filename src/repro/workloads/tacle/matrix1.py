"""matrix1 — dense integer matrix multiply.

C = A x B over 14x14 integer matrices.
"""

from ..dsl import lcg_reference, lcg_setup, lcg_step, store_result

NAME = "matrix1"
CATEGORY = "linear-algebra"
DESCRIPTION = "14x14 integer matrix multiplication"

N = 14
SEED = 0x3A71
SHIFT = 48  # 16-bit entries

MASK = (1 << 64) - 1


def _reference() -> int:
    stream = lcg_reference(SEED, 2 * N * N, shift=SHIFT)
    a = stream[:N * N]
    b = stream[N * N:]
    checksum = 0
    for i in range(N):
        for j in range(N):
            acc = 0
            for k in range(N):
                acc = (acc + a[i * N + k] * b[k * N + j]) & MASK
            checksum = (checksum + acc * (i + j + 1)) & MASK
    return checksum


EXPECTED_CHECKSUM = _reference()

SOURCE = f"""
.equ N, {N}
.equ A, 64
.equ B, {64 + 8 * N * N}
.equ C, {64 + 16 * N * N}
_start:
{lcg_setup(SEED)}
    li t0, 0
    addi t1, gp, A
fill:                       # A then B, contiguous
{lcg_step('t2', shift=SHIFT)}
    sd t2, 0(t1)
    addi t1, t1, 8
    addi t0, t0, 1
    li t3, 2*N*N
    blt t0, t3, fill

    li s0, 0                # checksum
    li s1, 0                # i
mi_loop:
    li s2, 0                # j
mj_loop:
    li s4, 0                # acc
    li s3, 0                # k
mk_loop:
    li t0, N
    mul t1, s1, t0
    add t1, t1, s3
    slli t1, t1, 3
    addi t2, gp, A
    add t2, t2, t1
    ld t3, 0(t2)            # a[i][k]
    li t0, N
    mul t1, s3, t0
    add t1, t1, s2
    slli t1, t1, 3
    li t4, B
    add t2, gp, t4
    add t2, t2, t1
    ld t4, 0(t2)            # b[k][j]
    mul t3, t3, t4
    add s4, s4, t3
    addi s3, s3, 1
    li t5, N
    blt s3, t5, mk_loop
    # store c[i][j] and fold into checksum
    li t0, N
    mul t1, s1, t0
    add t1, t1, s2
    slli t1, t1, 3
    li t2, C
    add t2, gp, t2
    add t2, t2, t1
    sd s4, 0(t2)
    add t0, s1, s2
    addi t0, t0, 1
    mul t0, s4, t0
    add s0, s0, t0
    addi s2, s2, 1
    li t6, N
    blt s2, t6, mj_loop
    addi s1, s1, 1
    li t6, N
    blt s1, t6, mi_loop
{store_result('s0')}
"""
