"""pm — pattern matching over a byte text.

Horspool search of 4 patterns over a 1 KiB text, preceded by the
store-burst phases that give ``pm`` its character in the paper: the
text build and a normalization copy produce long runs of stores whose
same-line coalescing in the store buffer is exactly the mechanism
behind the paper's ``pm`` timing anomaly.
"""

from ..dsl import lcg_reference, lcg_setup, lcg_step, store_result

NAME = "pm"
CATEGORY = "search"
DESCRIPTION = "Horspool search of 4 patterns over a 1 KiB text"

TEXT_LEN = 1024
PAT_LEN = 8
NUM_PATS = 4
SEED = 0x93A7
ALPHABET = 16  # text bytes in [0,16): guarantees frequent matches

MASK = (1 << 64) - 1


def _text():
    return [v & (ALPHABET - 1)
            for v in lcg_reference(SEED, TEXT_LEN, shift=57)]


def _reference() -> int:
    text = _text()
    # Normalization copy (matches the asm: t2 = (t + 1) & 0xF).
    norm = [(b + 1) & 0xF for b in text]
    checksum = 0
    for p in range(NUM_PATS):
        start = 97 * p + 11
        pattern = norm[start:start + PAT_LEN]
        # Horspool bad-character table.
        shift = [PAT_LEN] * 256
        for i in range(PAT_LEN - 1):
            shift[pattern[i]] = PAT_LEN - 1 - i
        pos = 0
        matches = 0
        first = -1
        while pos <= TEXT_LEN - PAT_LEN:
            i = PAT_LEN - 1
            while i >= 0 and norm[pos + i] == pattern[i]:
                i -= 1
            if i < 0:
                matches += 1
                if first < 0:
                    first = pos
                pos += 1
            else:
                pos += shift[norm[pos + PAT_LEN - 1]]
        checksum = (checksum + matches * 1000003 + first) & MASK
    return checksum


EXPECTED_CHECKSUM = _reference()

# Layout (byte arrays): TEXT, NORM, SHIFT table (256 dwords), PATTERN.
SOURCE = f"""
.equ TLEN, {TEXT_LEN}
.equ PLEN, {PAT_LEN}
.equ NPATS, {NUM_PATS}
.equ TEXT, 64
.equ NORM, {64 + TEXT_LEN}
.equ SHIFTT, {64 + 2 * TEXT_LEN}
.equ PAT, {64 + 2 * TEXT_LEN + 8 * 256}
_start:
{lcg_setup(SEED)}
    # --- build text: store burst no.1 ---
    li t0, 0
    addi t1, gp, TEXT
tfill:
{lcg_step('t2', shift=57)}
    andi t2, t2, {ALPHABET - 1}
    sb t2, 0(t1)
    addi t1, t1, 1
    addi t0, t0, 1
    li t4, TLEN
    blt t0, t4, tfill

    # --- normalization copy: store burst no.2 ---
    li t0, 0
    addi t1, gp, TEXT
    li t5, NORM
    add t5, gp, t5
nfill:
    lbu t2, 0(t1)
    addi t2, t2, 1
    andi t2, t2, 0xF
    sb t2, 0(t5)
    addi t1, t1, 1
    addi t5, t5, 1
    addi t0, t0, 1
    li t4, TLEN
    blt t0, t4, nfill

    li s0, 0            # checksum
    li s8, 0            # pattern index
pat_loop:
    # --- copy the pattern from norm[97p+11 ..] ---
    li t0, 97
    mul t0, t0, s8
    addi t0, t0, 11
    li t1, NORM
    add t1, gp, t1
    add t1, t1, t0      # &norm[start]
    li t2, PAT
    add t2, gp, t2
    li t3, 0
pcopy:
    lbu t4, 0(t1)
    sb t4, 0(t2)
    addi t1, t1, 1
    addi t2, t2, 1
    addi t3, t3, 1
    li t5, PLEN
    blt t3, t5, pcopy

    # --- bad-character table: store burst no.3 (256 dwords) ---
    li t0, 0
    li t1, SHIFTT
    add t1, gp, t1
    li t2, PLEN
sinit:
    sd t2, 0(t1)
    addi t1, t1, 8
    addi t0, t0, 1
    li t3, 256
    blt t0, t3, sinit
    li t0, 0            # i
supd:
    li t1, PAT
    add t1, gp, t1
    add t1, t1, t0
    lbu t2, 0(t1)       # pattern[i]
    slli t2, t2, 3
    li t3, SHIFTT
    add t3, gp, t3
    add t3, t3, t2
    li t4, PLEN-1
    sub t4, t4, t0
    sd t4, 0(t3)
    addi t0, t0, 1
    li t5, PLEN-1
    blt t0, t5, supd

    # --- Horspool scan ---
    li s1, 0            # pos
    li s2, 0            # matches
    li s3, -1           # first match position
scan:
    li t0, TLEN-PLEN
    bgt s1, t0, scan_done
    li s4, PLEN-1       # i
cmp_loop:
    bltz s4, hit
    li t1, NORM
    add t1, gp, t1
    add t1, t1, s1
    add t1, t1, s4
    lbu t2, 0(t1)       # norm[pos+i]
    li t3, PAT
    add t3, gp, t3
    add t3, t3, s4
    lbu t4, 0(t3)       # pattern[i]
    bne t2, t4, miss
    addi s4, s4, -1
    j cmp_loop
hit:
    addi s2, s2, 1
    bgez s3, hit_not_first
    mv s3, s1
hit_not_first:
    addi s1, s1, 1
    j scan
miss:
    li t1, NORM
    add t1, gp, t1
    add t1, t1, s1
    lbu t2, PLEN-1(t1)  # norm[pos+PLEN-1]
    slli t2, t2, 3
    li t3, SHIFTT
    add t3, gp, t3
    add t3, t3, t2
    ld t4, 0(t3)
    add s1, s1, t4
    j scan
scan_done:
    li t0, 1000003
    mul t0, s2, t0
    add t0, t0, s3
    add s0, s0, t0
    addi s8, s8, 1
    li t1, NPATS
    blt s8, t1, pat_loop
{store_result('s0')}
"""
