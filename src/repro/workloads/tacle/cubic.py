"""cubic — cube-root solving via Newton iteration.

TACLe's ``cubic`` solves cubic equations; this version runs Newton's
method for the real cube root of 90 Q16.16 targets, 10 iterations each.
Almost purely register arithmetic (mul/div chains) — the paper's
highest no-diversity benchmark has exactly this profile.
"""

from ..dsl import lcg_reference, lcg_setup, lcg_step, store_result

NAME = "cubic"
CATEGORY = "math"
DESCRIPTION = "Newton cube roots of 90 Q16.16 targets, 10 iterations"

COUNT = 90
ITERS = 10
SEED = 0xC0B1C

MASK = (1 << 64) - 1
ONE = 1 << 16


def _signed(value: int) -> int:
    return value - (1 << 64) if value & (1 << 63) else value


def _sra16(value: int) -> int:
    return (_signed(value) >> 16) & MASK


def _sdiv(a: int, b: int) -> int:
    """RISC-V div: truncate toward zero."""
    a, b = _signed(a), _signed(b)
    if b == 0:
        return MASK
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return q & MASK


def _reference() -> int:
    checksum = 0
    for raw in lcg_reference(SEED, COUNT):
        target = raw % (63 * ONE) + ONE          # T in [1, 64) Q16.16
        x = (target // 3 + ONE) & MASK           # initial guess
        for _ in range(ITERS):
            x2 = _sra16(x * x)
            x3 = _sra16(x2 * x)
            f = (x3 - target) & MASK
            fp = (3 * x2) & MASK
            dx = _sdiv((_signed(f) << 16) & MASK, fp)
            x = (x - dx) & MASK
        checksum = (checksum + x) & MASK
    return checksum


EXPECTED_CHECKSUM = _reference()

SOURCE = f"""
.equ K, {COUNT}
.equ ITERS, {ITERS}
.equ OUT, 64
_start:
{lcg_setup(SEED)}
    li s1, 0            # equation counter
    li s2, K
    addi s8, gp, OUT    # output cursor
eq_loop:
{lcg_step('t0')}
    li t1, {63 * ONE}
    remu t0, t0, t1
    li t1, {ONE}
    add s3, t0, t1      # target T
    # initial guess x = T/3 + 1.0
    li t1, 3
    div s4, s3, t1
    li t1, {ONE}
    add s4, s4, t1
    li s5, ITERS
newton:
    mul t1, s4, s4
    srai t1, t1, 16     # x2
    mul t2, t1, s4
    srai t2, t2, 16     # x3
    sub t3, t2, s3      # f = x3 - T
    slli t4, t1, 1
    add t4, t4, t1      # fp = 3*x2
    slli t3, t3, 16
    div t5, t3, t4      # dx = (f<<16)/fp
    sub s4, s4, t5
    addi s5, s5, -1
    bnez s5, newton
    sd s4, 0(s8)        # record the root
    addi s8, s8, 8
    addi s1, s1, 1
    blt s1, s2, eq_loop
    # checksum = sum of recorded roots
    li s0, 0
    li t0, 0
    addi t1, gp, OUT
sum_loop:
    ld t2, 0(t1)
    add s0, s0, t2
    addi t1, t1, 8
    addi t0, t0, 1
    li t3, K
    blt t0, t3, sum_loop
{store_result('s0')}
"""
