"""complex_updates — complex multiply-accumulate (DSPstone kernel).

``c[i] += a[i] * b[i]`` over complex fixed-point (Q16.16) vectors,
repeated for several passes.
"""

from ..dsl import lcg_reference, lcg_setup, lcg_step, store_result

NAME = "complex_updates"
CATEGORY = "dsp"
DESCRIPTION = "complex MAC over 192 Q16.16 pairs, 4 passes"

N = 192
PASSES = 4
SEED = 0xC0F1
SHIFT = 42  # 22-bit magnitudes keep Q16.16 products in range

MASK = (1 << 64) - 1


def _sra16(value: int) -> int:
    """Arithmetic >>16 on a 64-bit two's-complement value."""
    if value & (1 << 63):
        value -= 1 << 64
    return (value >> 16) & MASK


def _reference() -> int:
    stream = lcg_reference(SEED, 6 * N, shift=SHIFT)
    a = [(stream[6 * i], stream[6 * i + 1]) for i in range(N)]
    b = [(stream[6 * i + 2], stream[6 * i + 3]) for i in range(N)]
    c = [[stream[6 * i + 4], stream[6 * i + 5]] for i in range(N)]
    for _ in range(PASSES):
        for i in range(N):
            ar, ai = a[i]
            br, bi = b[i]
            re = (_sra16(ar * br) - _sra16(ai * bi)) & MASK
            im = (_sra16(ar * bi) + _sra16(ai * br)) & MASK
            c[i][0] = (c[i][0] + re) & MASK
            c[i][1] = (c[i][1] + im) & MASK
    checksum = 0
    for re, im in c:
        checksum = (checksum + re + 3 * im) & MASK
    return checksum


EXPECTED_CHECKSUM = _reference()

# Layout: interleaved records of 6 dwords: ar ai br bi cr ci.
SOURCE = f"""
.equ N, {N}
.equ PASSES, {PASSES}
.equ REC, 48            # bytes per record
.equ DATA, 64
_start:
{lcg_setup(SEED)}
    li t0, 0
    addi t1, gp, DATA
fill:                   # 6 dwords per record
{lcg_step('t2', shift=SHIFT)}
    sd t2, 0(t1)
    addi t1, t1, 8
    addi t0, t0, 1
    li t3, N*6
    blt t0, t3, fill

    li s8, PASSES
pass_loop:
    li s1, 0            # record index
    addi s2, gp, DATA
mac_loop:
    ld t0, 0(s2)        # ar
    ld t1, 8(s2)        # ai
    ld t2, 16(s2)       # br
    ld t3, 24(s2)       # bi
    mul t4, t0, t2      # ar*br
    srai t4, t4, 16
    mul t5, t1, t3      # ai*bi
    srai t5, t5, 16
    sub t4, t4, t5      # re
    mul t5, t0, t3      # ar*bi
    srai t5, t5, 16
    mul t6, t1, t2      # ai*br
    srai t6, t6, 16
    add t5, t5, t6      # im
    ld t0, 32(s2)       # cr
    add t0, t0, t4
    sd t0, 32(s2)
    ld t1, 40(s2)       # ci
    add t1, t1, t5
    sd t1, 40(s2)
    addi s2, s2, REC
    addi s1, s1, 1
    li t6, N
    blt s1, t6, mac_loop
    addi s8, s8, -1
    bnez s8, pass_loop

    # --- checksum: sum cr + 3*ci ---
    li s0, 0
    li s1, 0
    addi s2, gp, DATA
check:
    ld t0, 32(s2)
    add s0, s0, t0
    ld t1, 40(s2)
    slli t2, t1, 1
    add t1, t1, t2      # 3*ci
    add s0, s0, t1
    addi s2, s2, REC
    addi s1, s1, 1
    li t3, N
    blt s1, t3, check
{store_result('s0')}
"""
