"""fac — recursive factorial.

Exercises call/return and the core-private stack (``sp`` differs across
the redundant copies, so every frame access carries address diversity).
"""

from ..dsl import store_result

NAME = "fac"
CATEGORY = "recursion"
DESCRIPTION = "recursive n! for n=0..11, repeated 20 times"

MAX_N = 11
REPS = 20

MASK = (1 << 64) - 1


def _reference() -> int:
    import math
    checksum = 0
    for _ in range(REPS):
        for n in range(MAX_N + 1):
            checksum = (checksum + math.factorial(n)) & MASK
    return checksum


EXPECTED_CHECKSUM = _reference()

SOURCE = f"""
.equ MAXN, {MAX_N}
.equ REPS, {REPS}
_start:
    li s0, 0            # checksum
    li s1, 0            # rep counter
rep_loop:
    li s2, 0            # n
n_loop:
    mv a0, s2
    call fac
    add s0, s0, a0
    addi s2, s2, 1
    li t0, MAXN
    ble s2, t0, n_loop
    addi s1, s1, 1
    li t0, REPS
    blt s1, t0, rep_loop
{store_result('s0')}

fac:                    # a0 = n -> a0 = n!
    li t0, 2
    blt a0, t0, fac_base
    addi sp, sp, -16
    sd ra, 8(sp)
    sd a0, 0(sp)
    addi a0, a0, -1
    call fac
    ld t1, 0(sp)
    mul a0, a0, t1
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
fac_base:
    li a0, 1
    ret
"""
