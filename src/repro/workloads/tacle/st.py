"""st — statistics: mean, variance, covariance of two series.

Two 400-element series; integer means (div), sum of squared deviations
(mul), covariance accumulation — the TACLe ``st`` pipeline.
"""

from ..dsl import lcg_reference, lcg_setup, lcg_step, store_result

NAME = "st"
CATEGORY = "math"
DESCRIPTION = "mean/variance/covariance of two 400-element series"

N = 400
SEED = 0x57A7
SHIFT = 48  # 16-bit samples

MASK = (1 << 64) - 1


def _reference() -> int:
    stream = lcg_reference(SEED, 2 * N, shift=SHIFT)
    a = stream[0::2]
    b = stream[1::2]
    mean_a = sum(a) // N
    mean_b = sum(b) // N
    var_a = 0
    var_b = 0
    cov = 0
    for i in range(N):
        da = a[i] - mean_a
        db = b[i] - mean_b
        var_a = (var_a + da * da) & MASK
        var_b = (var_b + db * db) & MASK
        cov = (cov + da * db) & MASK
    var_a = (var_a // N) & MASK
    var_b = (var_b // N) & MASK
    # Signed cov // N with RISC-V truncation.
    cov_s = cov - (1 << 64) if cov & (1 << 63) else cov
    q = abs(cov_s) // N
    if cov_s < 0:
        q = -q
    cov = q & MASK
    return (mean_a + 3 * mean_b + 5 * var_a + 7 * var_b + 11 * cov) & MASK


EXPECTED_CHECKSUM = _reference()

# Layout: interleaved (a, b) dword pairs.
SOURCE = f"""
.equ N, {N}
.equ DATA, 64
_start:
{lcg_setup(SEED)}
    li t0, 0
    addi t1, gp, DATA
fill:                   # interleaved a[i], b[i]
{lcg_step('t2', shift=SHIFT)}
    sd t2, 0(t1)
    addi t1, t1, 8
    addi t0, t0, 1
    li t3, 2*N
    blt t0, t3, fill

    # --- means ---
    li s1, 0            # sum a
    li s2, 0            # sum b
    li t0, 0
    addi t1, gp, DATA
sum_loop:
    ld t2, 0(t1)
    add s1, s1, t2
    ld t3, 8(t1)
    add s2, s2, t3
    addi t1, t1, 16
    addi t0, t0, 1
    li t4, N
    blt t0, t4, sum_loop
    li t5, N
    div s1, s1, t5      # mean a
    div s2, s2, t5      # mean b

    # --- variances and covariance ---
    li s3, 0            # var a acc
    li s4, 0            # var b acc
    li s5, 0            # cov acc
    li t0, 0
    addi t1, gp, DATA
dev_loop:
    ld t2, 0(t1)
    sub t2, t2, s1      # da
    ld t3, 8(t1)
    sub t3, t3, s2      # db
    mul t4, t2, t2
    add s3, s3, t4
    mul t4, t3, t3
    add s4, s4, t4
    mul t4, t2, t3
    add s5, s5, t4
    addi t1, t1, 16
    addi t0, t0, 1
    li t5, N
    blt t0, t5, dev_loop
    li t5, N
    div s3, s3, t5
    div s4, s4, t5
    div s5, s5, t5

    # checksum = mean_a + 3*mean_b + 5*var_a + 7*var_b + 11*cov
    mv s0, s1
    li t0, 3
    mul t1, s2, t0
    add s0, s0, t1
    li t0, 5
    mul t1, s3, t0
    add s0, s0, t1
    li t0, 7
    mul t1, s4, t0
    add s0, s0, t1
    li t0, 11
    mul t1, s5, t0
    add s0, s0, t1
{store_result('s0')}
"""
