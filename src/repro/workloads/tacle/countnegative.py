"""countnegative — count negatives and sum a matrix.

TACLe's ``countnegative`` walks a matrix computing the count of
negative elements and the sum per quadrant; this version walks a
20x40 matrix of signed 32-bit values.
"""

from ..dsl import lcg_reference, lcg_setup, lcg_step, store_result

NAME = "countnegative"
CATEGORY = "matrix"
DESCRIPTION = "negative count + sum over a 20x40 int32 matrix"

ROWS = 20
COLS = 40
SEED = 0xC947

MASK = (1 << 64) - 1


def _reference() -> int:
    values = lcg_reference(SEED, ROWS * COLS, shift=31)  # 33-bit values
    count = 0
    total = 0
    for raw in values:
        value = raw & 0xFFFFFFFF
        if value & 0x80000000:
            value -= 1 << 32
            count += 1
        total = (total + value) & MASK
    return (total + 1000003 * count) & MASK


EXPECTED_CHECKSUM = _reference()

SOURCE = f"""
.equ N, {ROWS * COLS}
.equ ARR, 64
_start:
{lcg_setup(SEED)}
    li t0, 0
    addi t1, gp, ARR
fill:                       # store as 32-bit words (signed on reload)
{lcg_step('t2', shift=31)}
    sw t2, 0(t1)
    addi t1, t1, 4
    addi t0, t0, 1
    li t3, N
    blt t0, t3, fill

    li s0, 0                # sum
    li s1, 0                # negative count
    li t0, 0
    addi t1, gp, ARR
scan:
    lw t2, 0(t1)            # sign-extending load
    add s0, s0, t2
    bgez t2, not_neg
    addi s1, s1, 1
not_neg:
    addi t1, t1, 4
    addi t0, t0, 1
    li t3, N
    blt t0, t3, scan

    li t4, 1000003
    mul t4, t4, s1
    add s0, s0, t4
{store_result('s0')}
"""
