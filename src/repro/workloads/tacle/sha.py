"""sha — SHA-1 compression over a pseudo-random message.

Full 80-round SHA-1 with the 16-to-80-word message schedule kept in the
private arena, over 3 blocks.
"""

from ..dsl import lcg_reference, lcg_setup, lcg_step, store_result

NAME = "sha"
CATEGORY = "crypto"
DESCRIPTION = "SHA-1 compression of 3 LCG-generated 64-byte blocks"

BLOCKS = 3
SEED = 0x54A1
SHIFT = 32

M32 = 0xFFFFFFFF
MASK = (1 << 64) - 1

H_INIT = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)
K_ROUND = (0x5A827999, 0x6ED9EBA1, 0x8F1BBCDC, 0xCA62C1D6)


def _rotl32(x: int, s: int) -> int:
    x &= M32
    return ((x << s) | (x >> (32 - s))) & M32


def _reference() -> int:
    stream = lcg_reference(SEED, BLOCKS * 16, shift=SHIFT)
    h = list(H_INIT)
    for blk in range(BLOCKS):
        w = [v & M32 for v in stream[blk * 16:(blk + 1) * 16]]
        for t in range(16, 80):
            w.append(_rotl32(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16],
                             1))
        a, b, c, d, e = h
        for t in range(80):
            if t < 20:
                f = (b & c) | (~b & d)
            elif t < 40:
                f = b ^ c ^ d
            elif t < 60:
                f = (b & c) | (b & d) | (c & d)
            else:
                f = b ^ c ^ d
            f &= M32
            temp = (_rotl32(a, 5) + f + e + K_ROUND[t // 20] + w[t]) & M32
            e, d, c, b, a = d, c, _rotl32(b, 30), a, temp
        h = [(x + y) & M32 for x, y in zip(h, (a, b, c, d, e))]
    return (h[0] + 3 * h[1] + 5 * h[2] + 7 * h[3] + 11 * h[4]) & MASK


EXPECTED_CHECKSUM = _reference()

SOURCE = f"""
.equ BLOCKS, {BLOCKS}
.equ W, 64              # 80 dword slots
.equ M32HI, 0xFFFFFFFF
_start:
{lcg_setup(SEED)}
    li s1, {H_INIT[0]}
    li s2, {H_INIT[1]}
    li s3, {H_INIT[2]}
    li s4, {H_INIT[3]}
    li s5, {H_INIT[4]}
    li s8, 0            # block counter
block_loop:
    # --- 16 message words ---
    li t0, 0
    addi t1, gp, W
fill:
{lcg_step('t2', shift=SHIFT)}
    sd t2, 0(t1)
    addi t1, t1, 8
    addi t0, t0, 1
    li t3, 16
    blt t0, t3, fill
    # --- schedule expansion w[16..79] ---
    li t0, 16
expand:
    slli t1, t0, 3
    addi t2, gp, W
    add t1, t2, t1      # &w[t]
    ld t3, -24(t1)      # w[t-3]
    ld t4, -64(t1)      # w[t-8]
    xor t3, t3, t4
    ld t4, -112(t1)     # w[t-14]
    xor t3, t3, t4
    ld t4, -128(t1)     # w[t-16]
    xor t3, t3, t4
    li t6, M32HI
    and t3, t3, t6
    slli t4, t3, 1
    srli t3, t3, 31
    or t3, t4, t3
    and t3, t3, t6      # rotl1
    sd t3, 0(t1)
    addi t0, t0, 1
    li t5, 80
    blt t0, t5, expand

    # --- 80 rounds; a..e in a0..a4 ---
    mv a0, s1
    mv a1, s2
    mv a2, s3
    mv a3, s4
    mv a4, s5
    li s6, 0            # t
round_loop:
    li t5, 20
    blt s6, t5, f_ch
    li t5, 40
    blt s6, t5, f_parity
    li t5, 60
    blt s6, t5, f_maj
f_parity:               # f = b ^ c ^ d (rounds 20-39 and 60-79)
    xor t0, a1, a2
    xor t0, t0, a3
    j f_done
f_ch:                   # f = (b & c) | (~b & d)
    and t0, a1, a2
    not t1, a1
    and t1, t1, a3
    or t0, t0, t1
    j f_done
f_maj:                  # f = (b&c) | (b&d) | (c&d)
    and t0, a1, a2
    and t1, a1, a3
    or t0, t0, t1
    and t1, a2, a3
    or t0, t0, t1
f_done:
    li t6, M32HI
    and t0, t0, t6
    # K for this quarter (branch ladder; no divider on this path)
    li t5, 20
    blt s6, t5, k_q0
    li t5, 40
    blt s6, t5, k_q1
    li t5, 60
    blt s6, t5, k_q2
    li t3, {K_ROUND[3]}
    j k_done
k_q0:
    li t3, {K_ROUND[0]}
    j k_done
k_q1:
    li t3, {K_ROUND[1]}
    j k_done
k_q2:
    li t3, {K_ROUND[2]}
k_done:
    # temp = rotl5(a) + f + e + K + w[t]
    and t4, a0, t6
    slli t1, t4, 5
    srli t4, t4, 27
    or t1, t1, t4
    and t1, t1, t6      # rotl5(a)
    add t0, t0, t1
    add t0, t0, a4
    add t0, t0, t3
    slli t1, s6, 3
    addi t2, gp, W
    add t2, t2, t1
    ld t3, 0(t2)        # w[t]
    add t0, t0, t3
    and t0, t0, t6      # temp
    # rotate registers
    mv a4, a3           # e = d
    mv a3, a2           # d = c
    and t4, a1, t6
    slli t1, t4, 30
    srli t4, t4, 2
    or t1, t1, t4
    and a2, t1, t6      # c = rotl30(b)
    mv a1, a0           # b = a
    mv a0, t0           # a = temp
    addi s6, s6, 1
    li t5, 80
    blt s6, t5, round_loop

    li t6, M32HI
    add s1, s1, a0
    and s1, s1, t6
    add s2, s2, a1
    and s2, s2, t6
    add s3, s3, a2
    and s3, s3, t6
    add s4, s4, a3
    and s4, s4, t6
    add s5, s5, a4
    and s5, s5, t6
    addi s8, s8, 1
    li t0, BLOCKS
    blt s8, t0, block_loop

    # checksum = h0 + 3h1 + 5h2 + 7h3 + 11h4
    mv s0, s1
    li t0, 3
    mul t1, s2, t0
    add s0, s0, t1
    li t0, 5
    mul t1, s3, t0
    add s0, s0, t1
    li t0, 7
    mul t1, s4, t0
    add s0, s0, t1
    li t0, 11
    mul t1, s5, t0
    add s0, s0, t1
{store_result('s0')}

.align 3
k_tab:
    .dword {K_ROUND[0]}, {K_ROUND[1]}, {K_ROUND[2]}, {K_ROUND[3]}
"""
