"""fir2dim — 2-D FIR (3x3 convolution) over an image.

16x16 input image, 3x3 kernel, 14x14 output (valid region only).
"""

from ..dsl import lcg_reference, lcg_setup, lcg_step, store_result

NAME = "fir2dim"
CATEGORY = "dsp"
DESCRIPTION = "3x3 convolution over a 16x16 image"

DIM = 16
OUT_DIM = DIM - 2
SEED = 0xF12D
SHIFT = 52  # 12-bit pixels

KERNEL = (1, 2, 1, 2, 4, 2, 1, 2, 1)  # Gaussian-ish, fits registers

MASK = (1 << 64) - 1


def _reference() -> int:
    pixels = lcg_reference(SEED, DIM * DIM, shift=SHIFT)
    checksum = 0
    for row in range(OUT_DIM):
        for col in range(OUT_DIM):
            acc = 0
            for kr in range(3):
                for kc in range(3):
                    pixel = pixels[(row + kr) * DIM + (col + kc)]
                    acc += KERNEL[kr * 3 + kc] * pixel
            acc >>= 4
            checksum = (checksum + acc * (row + col + 1)) & MASK
    return checksum


EXPECTED_CHECKSUM = _reference()

SOURCE = f"""
.equ DIM, {DIM}
.equ ODIM, {OUT_DIM}
.equ IMG, 64
.equ KTAB, {64 + 8 * DIM * DIM}
_start:
{lcg_setup(SEED)}
    li t0, 0
    addi t1, gp, IMG
fill:
{lcg_step('t2', shift=SHIFT)}
    sd t2, 0(t1)
    addi t1, t1, 8
    addi t0, t0, 1
    li t3, DIM*DIM
    blt t0, t3, fill
    # copy the kernel constants into the private arena (compiled code
    # would have them in .data); 9 dwords
    la t0, kernel_tab
    li t1, KTAB
    add t1, gp, t1
    li t2, 0
kcopy:
    ld t3, 0(t0)
    sd t3, 0(t1)
    addi t0, t0, 8
    addi t1, t1, 8
    addi t2, t2, 1
    li t4, 9
    blt t2, t4, kcopy

    li s0, 0            # checksum
    li s1, 0            # row
row_loop:
    li s2, 0            # col
col_loop:
    li s3, 0            # acc
    li s4, 0            # kr
kr_loop:
    li s5, 0            # kc
kc_loop:
    add t0, s1, s4      # row+kr
    li t1, DIM
    mul t0, t0, t1
    add t0, t0, s2
    add t0, t0, s5      # + col+kc
    slli t0, t0, 3
    addi t1, gp, IMG
    add t1, t1, t0
    ld t2, 0(t1)        # pixel
    # kernel[kr*3+kc]
    slli t3, s4, 1
    add t3, t3, s4      # kr*3
    add t3, t3, s5
    slli t3, t3, 3
    li t4, KTAB
    add t4, gp, t4
    add t4, t4, t3
    ld t5, 0(t4)
    mul t2, t2, t5
    add s3, s3, t2
    addi s5, s5, 1
    li t6, 3
    blt s5, t6, kc_loop
    addi s4, s4, 1
    li t6, 3
    blt s4, t6, kr_loop
    srai s3, s3, 4
    add t0, s1, s2
    addi t0, t0, 1
    mul t1, s3, t0
    add s0, s0, t1
    addi s2, s2, 1
    li t2, ODIM
    blt s2, t2, col_loop
    addi s1, s1, 1
    li t2, ODIM
    blt s1, t2, row_loop
{store_result('s0')}

.align 3
kernel_tab:
    .dword {", ".join(str(k) for k in KERNEL)}
"""
