"""recursion — naive recursive Fibonacci.

fib(14) by double recursion: ~1,200 calls through the core-private
stack, the deepest call tree in the suite.
"""

from ..dsl import store_result

NAME = "recursion"
CATEGORY = "recursion"
DESCRIPTION = "naive recursive fib(14)"

ARG = 14

MASK = (1 << 64) - 1


def _fib(n: int) -> int:
    return n if n < 2 else _fib(n - 1) + _fib(n - 2)


EXPECTED_CHECKSUM = _fib(ARG) & MASK

SOURCE = f"""
.equ ARG, {ARG}
_start:
    li a0, ARG
    call fib
    mv s0, a0
{store_result('s0')}

fib:                    # a0 = n -> a0 = fib(n)
    li t0, 2
    blt a0, t0, fib_base
    addi sp, sp, -24
    sd ra, 16(sp)
    sd a0, 8(sp)
    addi a0, a0, -1
    call fib
    sd a0, 0(sp)        # fib(n-1)
    ld a0, 8(sp)
    addi a0, a0, -2
    call fib
    ld t1, 0(sp)
    add a0, a0, t1
    ld ra, 16(sp)
    addi sp, sp, 24
    ret
fib_base:
    ret
"""
