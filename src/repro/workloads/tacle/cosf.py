"""cosf — fixed-point cosine via Taylor series.

Replaces TACLe's float ``cosf`` with Q16.16 arithmetic (the model core
is RV64IM, no FPU).  Like the compiled C version, angles are read from
an input array and results written to an output array, so each
evaluation carries pointer traffic through the register ports.
"""

from ..dsl import lcg_reference, lcg_setup, lcg_step, store_result

NAME = "cosf"
CATEGORY = "math"
DESCRIPTION = "Q16.16 Taylor cosine over a 250-entry angle array"

COUNT = 250
SEED = 0xC05F
TWO_PI_Q16 = 411775  # 2*pi in Q16.16

MASK = (1 << 64) - 1


def _sra16(value: int) -> int:
    if value & (1 << 63):
        value -= 1 << 64
    return (value >> 16) & MASK


def _cos_q16(x: int) -> int:
    """1 - x^2/2 + x^4/24 - x^6/720 in Q16.16, with the reciprocals
    folded into Q16 multipliers (1/24 ~ 2731, 1/720 ~ 91) like an
    optimised implementation would (matches the asm)."""
    x2 = _sra16(x * x)
    result = (65536 - (x2 >> 1)) & MASK
    x4 = _sra16(x2 * x2)
    result = (result + ((x4 * 2731) >> 16)) & MASK
    x6 = _sra16(x4 * x2)
    result = (result - ((x6 * 91) >> 16)) & MASK
    return result


def _reference() -> int:
    checksum = 0
    for raw in lcg_reference(SEED, COUNT):
        angle = raw & 0x3FFFF  # 18-bit range (0..4 rad, Q16.16)
        checksum = (checksum + _cos_q16(angle)) & MASK
    return checksum


EXPECTED_CHECKSUM = _reference()

# Layout: IN angles at 64(gp), OUT results at 64+8*COUNT(gp).
SOURCE = f"""
.equ K, {COUNT}
.equ TWO_PI, {TWO_PI_Q16}
.equ IN, 64
.equ OUT, {64 + 8 * COUNT}
_start:
    # --- fill the angle array ---
{lcg_setup(SEED)}
    li t0, 0
    addi t1, gp, IN
fill:
{lcg_step('t2')}
    li t3, 0x3FFFF
    and t2, t2, t3
    sd t2, 0(t1)
    addi t1, t1, 8
    addi t0, t0, 1
    li t4, K
    blt t0, t4, fill

    # --- evaluate cos for each angle ---
    li s1, 0            # index
    addi s2, gp, IN
    li s3, OUT
    add s3, gp, s3
eval_loop:
    ld t0, 0(s2)        # x
    mul t1, t0, t0
    srai t1, t1, 16     # x2
    srli t2, t1, 1      # x2/2
    li t4, 65536
    sub t4, t4, t2
    mul t5, t1, t1
    srai t5, t5, 16     # x4
    li t3, 2731         # 1/24 in Q16
    mul t2, t5, t3
    srli t2, t2, 16
    add t4, t4, t2
    mul t6, t5, t1
    srai t6, t6, 16     # x6
    li t3, 91           # 1/720 in Q16
    mul t2, t6, t3
    srli t2, t2, 16
    sub t4, t4, t2
    sd t4, 0(s3)
    addi s2, s2, 8
    addi s3, s3, 8
    addi s1, s1, 1
    li t0, K
    blt s1, t0, eval_loop

    # --- checksum the output array ---
    li s0, 0
    li s1, 0
    li s3, OUT
    add s3, gp, s3
sum_loop:
    ld t0, 0(s3)
    add s0, s0, t0
    addi s3, s3, 8
    addi s1, s1, 1
    li t1, K
    blt s1, t1, sum_loop
{store_result('s0')}
"""
