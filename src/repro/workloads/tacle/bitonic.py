"""bitonic — bitonic sorting network over 64 elements.

Data-independent control flow (the network shape is fixed), so both
redundant copies execute the exact same instruction stream — the case
the paper's staggering-based competitors rely on.
"""

from ..dsl import lcg_reference, lcg_setup, lcg_step, store_result

NAME = "bitonic"
CATEGORY = "sort"
DESCRIPTION = "bitonic network sort of 64 LCG-generated values"

N = 64
SEED = 0xB170


def _reference() -> int:
    arr = list(lcg_reference(SEED, N))
    arr.sort()
    checksum = 0
    for index, value in enumerate(arr):
        checksum += (index + 1) * value
    return checksum & ((1 << 64) - 1)


EXPECTED_CHECKSUM = _reference()

SOURCE = f"""
.equ N, {N}
.equ ARR, 64
_start:
    # --- fill the array from the LCG ---
{lcg_setup(SEED)}
    li t0, 0
    addi t1, gp, ARR
fill:
{lcg_step('t2')}
    sd t2, 0(t1)
    addi t1, t1, 8
    addi t0, t0, 1
    li t3, N
    blt t0, t3, fill

    # --- bitonic network: for k=2..N step *2, j=k/2..1 step /2 ---
    li s1, 2            # k
k_loop:
    srli s2, s1, 1      # j
j_loop:
    li s3, 0            # i
i_loop:
    xor s4, s3, s2      # l = i ^ j
    ble s4, s3, i_next  # only when l > i
    # load arr[i] and arr[l]
    slli t0, s3, 3
    addi t1, gp, ARR
    add t0, t0, t1
    ld t2, 0(t0)        # arr[i]
    slli t3, s4, 3
    add t3, t3, t1
    ld t4, 0(t3)        # arr[l]
    and t5, s3, s1      # direction = i & k
    beqz t5, ascending
    # descending: swap if arr[i] < arr[l]
    bgeu t2, t4, i_next
    j do_swap
ascending:
    # ascending: swap if arr[i] > arr[l]
    bleu t2, t4, i_next
do_swap:
    sd t4, 0(t0)
    sd t2, 0(t3)
i_next:
    addi s3, s3, 1
    li t6, N
    blt s3, t6, i_loop
    srli s2, s2, 1
    bnez s2, j_loop
    slli s1, s1, 1
    li t6, N
    ble s1, t6, k_loop

    # --- weighted checksum: sum (i+1)*arr[i] ---
    li s0, 0
    li t0, 0
    addi t1, gp, ARR
check:
    ld t2, 0(t1)
    addi t3, t0, 1
    mul t2, t2, t3
    add s0, s0, t2
    addi t1, t1, 8
    addi t0, t0, 1
    li t4, N
    blt t0, t4, check
{store_result('s0')}
"""
