"""lms — least-mean-squares adaptive filter.

8-tap LMS predictor over 250 samples in Q16.16: the filter predicts the
next sample from the previous 8 and adapts its weights by the error.
"""

from ..dsl import lcg_reference, lcg_setup, lcg_step, store_result

NAME = "lms"
CATEGORY = "dsp"
DESCRIPTION = "8-tap Q16.16 LMS adaptive predictor over 250 samples"

TAPS = 8
SAMPLES = 250
SEED = 0x735
SHIFT = 50  # 14-bit samples
MU_SHIFT = 12  # weight update uses (e * x) >> MU_SHIFT >> 16

MASK = (1 << 64) - 1


def _signed(value: int) -> int:
    return value - (1 << 64) if value & (1 << 63) else value


def _reference() -> int:
    x = lcg_reference(SEED, SAMPLES, shift=SHIFT)
    w = [0] * TAPS
    checksum = 0
    for i in range(TAPS, SAMPLES):
        y = 0
        for t in range(TAPS):
            y += _signed(w[t]) * x[i - 1 - t]
        y = (_signed((y & MASK)) >> 16)
        e = x[i] - y
        for t in range(TAPS):
            delta = (e * x[i - 1 - t]) >> (16 + MU_SHIFT)
            w[t] = (_signed(w[t]) + delta) & MASK
        checksum = (checksum + (e & MASK)) & MASK
    return checksum


EXPECTED_CHECKSUM = _reference()

SOURCE = f"""
.equ T, {TAPS}
.equ S, {SAMPLES}
.equ X, 64
.equ W, {64 + 8 * SAMPLES}
_start:
{lcg_setup(SEED)}
    li t0, 0
    addi t1, gp, X
fill:
{lcg_step('t2', shift=SHIFT)}
    sd t2, 0(t1)
    addi t1, t1, 8
    addi t0, t0, 1
    li t3, S
    blt t0, t3, fill
    # zero weights
    li t0, 0
    li t1, W
    add t1, gp, t1
zero_w:
    sd x0, 0(t1)
    addi t1, t1, 8
    addi t0, t0, 1
    li t2, T
    blt t0, t2, zero_w

    li s0, 0            # checksum
    li s1, T            # i
sample_loop:
    # --- y = sum w[t]*x[i-1-t] ---
    li s2, 0            # y accumulator
    li s3, 0            # t
    li t0, W
    add s4, gp, t0      # &w[0]
    addi t0, s1, -1
    slli t0, t0, 3
    addi t1, gp, X
    add s5, t1, t0      # &x[i-1]
predict:
    ld t2, 0(s4)
    ld t3, 0(s5)
    mul t4, t2, t3
    add s2, s2, t4
    addi s4, s4, 8
    addi s5, s5, -8
    addi s3, s3, 1
    li t5, T
    blt s3, t5, predict
    srai s2, s2, 16     # y
    # --- e = x[i] - y ---
    slli t0, s1, 3
    addi t1, gp, X
    add t1, t1, t0
    ld t2, 0(t1)        # x[i]
    sub s6, t2, s2      # e
    # --- weight update ---
    li s3, 0
    li t0, W
    add s4, gp, t0
    addi t0, s1, -1
    slli t0, t0, 3
    addi t1, gp, X
    add s5, t1, t0
update:
    ld t3, 0(s5)        # x[i-1-t]
    mul t4, s6, t3
    srai t4, t4, {16 + MU_SHIFT}
    ld t2, 0(s4)
    add t2, t2, t4
    sd t2, 0(s4)
    addi s4, s4, 8
    addi s5, s5, -8
    addi s3, s3, 1
    li t5, T
    blt s3, t5, update
    add s0, s0, s6
    addi s1, s1, 1
    li t6, S
    blt s1, t6, sample_loop
{store_result('s0')}
"""
