"""ludcmp — LU decomposition and solve.

In-place Doolittle LU of a 10x10 diagonally-dominant Q16.16 matrix,
followed by forward/backward substitution against an LCG right-hand
side.  Division-heavy (one divide per eliminated element).
"""

from ..dsl import lcg_reference, lcg_setup, lcg_step, store_result

NAME = "ludcmp"
CATEGORY = "linear-algebra"
DESCRIPTION = "Q16.16 LU decomposition + solve of a 10x10 system"

N = 10
SEED = 0x74DC
SHIFT = 46  # 18-bit entries

MASK = (1 << 64) - 1
ONE = 1 << 16


def _signed(value: int) -> int:
    return value - (1 << 64) if value & (1 << 63) else value


def _sra16(value: int) -> int:
    return (_signed(value & MASK) >> 16) & MASK


def _sdiv(a: int, b: int) -> int:
    a, b = _signed(a), _signed(b)
    if b == 0:
        return MASK
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return q & MASK


def _reference() -> int:
    stream = lcg_reference(SEED, N * N + N, shift=SHIFT)
    a = [[stream[i * N + j] for j in range(N)] for i in range(N)]
    b = list(stream[N * N:])
    # Diagonal dominance: a[i][i] += N * 2^18 (matches the asm).
    for i in range(N):
        a[i][i] = (a[i][i] + N * (1 << 18)) & MASK
    # Doolittle elimination.
    for k in range(N):
        for i in range(k + 1, N):
            factor = _sdiv((_signed(a[i][k]) << 16) & MASK, a[k][k])
            a[i][k] = factor
            for j in range(k + 1, N):
                prod = _sra16(_signed(factor) * _signed(a[k][j]))
                a[i][j] = (a[i][j] - prod) & MASK
    # Forward substitution: y = L^-1 b (L has unit diagonal).
    y = [0] * N
    for i in range(N):
        acc = _signed(b[i])
        for j in range(i):
            acc -= _signed(_sra16(_signed(a[i][j]) * _signed(y[j])))
        y[i] = acc & MASK
    # Backward substitution: x = U^-1 y.
    x = [0] * N
    for i in range(N - 1, -1, -1):
        acc = _signed(y[i])
        for j in range(i + 1, N):
            acc -= _signed(_sra16(_signed(a[i][j]) * _signed(x[j])))
        x[i] = _sdiv((acc << 16) & MASK, a[i][i])
    checksum = 0
    for i in range(N):
        checksum = (checksum + (i + 1) * _signed(x[i])) & MASK
    return checksum


EXPECTED_CHECKSUM = _reference()

SOURCE = f"""
.equ N, {N}
.equ A, 64
.equ B, {64 + 8 * N * N}
.equ Y, {64 + 8 * N * N + 8 * N}
.equ XV, {64 + 8 * N * N + 16 * N}
_start:
{lcg_setup(SEED)}
    li t0, 0
    addi t1, gp, A
fill:                       # matrix then rhs, contiguous
{lcg_step('t2', shift=SHIFT)}
    sd t2, 0(t1)
    addi t1, t1, 8
    addi t0, t0, 1
    li t3, N*N+N
    blt t0, t3, fill
    # diagonal dominance
    li t0, 0
diag:
    li t1, N+1
    mul t1, t0, t1
    slli t1, t1, 3
    addi t2, gp, A
    add t2, t2, t1
    ld t3, 0(t2)
    li t4, {N * (1 << 18)}
    add t3, t3, t4
    sd t3, 0(t2)
    addi t0, t0, 1
    li t5, N
    blt t0, t5, diag

    # --- elimination ---
    li s1, 0                # k
k_loop:
    addi s2, s1, 1          # i
i_loop:
    li t6, N
    bge s2, t6, k_next
    # factor = (a[i][k] << 16) / a[k][k]
    li t0, N
    mul t1, s2, t0
    add t1, t1, s1
    slli t1, t1, 3
    addi t2, gp, A
    add s4, t2, t1          # &a[i][k]
    ld t3, 0(s4)
    slli t3, t3, 16
    mul t4, s1, t0
    add t4, t4, s1
    slli t4, t4, 3
    add t4, t2, t4
    ld t5, 0(t4)            # a[k][k]
    div s5, t3, t5          # factor
    sd s5, 0(s4)
    # row update
    addi s3, s1, 1          # j
j_loop:
    li t6, N
    bge s3, t6, i_next
    li t0, N
    mul t1, s1, t0
    add t1, t1, s3
    slli t1, t1, 3
    addi t2, gp, A
    add t3, t2, t1
    ld t4, 0(t3)            # a[k][j]
    mul t4, s5, t4
    srai t4, t4, 16
    mul t1, s2, t0
    add t1, t1, s3
    slli t1, t1, 3
    add t3, t2, t1
    ld t5, 0(t3)            # a[i][j]
    sub t5, t5, t4
    sd t5, 0(t3)
    addi s3, s3, 1
    j j_loop
i_next:
    addi s2, s2, 1
    j i_loop
k_next:
    addi s1, s1, 1
    li t6, N-1
    ble s1, t6, k_loop

    # --- forward substitution ---
    li s1, 0                # i
fw_loop:
    li t0, B
    add t0, gp, t0
    slli t1, s1, 3
    add t0, t0, t1
    ld s4, 0(t0)            # acc = b[i]
    li s2, 0                # j
fw_j:
    bge s2, s1, fw_store
    li t0, N
    mul t1, s1, t0
    add t1, t1, s2
    slli t1, t1, 3
    addi t2, gp, A
    add t2, t2, t1
    ld t3, 0(t2)            # a[i][j]
    li t0, Y
    add t0, gp, t0
    slli t1, s2, 3
    add t0, t0, t1
    ld t4, 0(t0)            # y[j]
    mul t3, t3, t4
    srai t3, t3, 16
    sub s4, s4, t3
    addi s2, s2, 1
    j fw_j
fw_store:
    li t0, Y
    add t0, gp, t0
    slli t1, s1, 3
    add t0, t0, t1
    sd s4, 0(t0)
    addi s1, s1, 1
    li t6, N
    blt s1, t6, fw_loop

    # --- backward substitution ---
    li s1, N-1              # i
bw_loop:
    li t0, Y
    add t0, gp, t0
    slli t1, s1, 3
    add t0, t0, t1
    ld s4, 0(t0)            # acc = y[i]
    addi s2, s1, 1          # j
bw_j:
    li t6, N
    bge s2, t6, bw_div
    li t0, N
    mul t1, s1, t0
    add t1, t1, s2
    slli t1, t1, 3
    addi t2, gp, A
    add t2, t2, t1
    ld t3, 0(t2)            # a[i][j]
    li t0, XV
    add t0, gp, t0
    slli t1, s2, 3
    add t0, t0, t1
    ld t4, 0(t0)            # x[j]
    mul t3, t3, t4
    srai t3, t3, 16
    sub s4, s4, t3
    addi s2, s2, 1
    j bw_j
bw_div:
    slli s4, s4, 16
    li t0, N
    mul t1, s1, t0
    add t1, t1, s1
    slli t1, t1, 3
    addi t2, gp, A
    add t2, t2, t1
    ld t3, 0(t2)            # a[i][i]
    div s4, s4, t3
    li t0, XV
    add t0, gp, t0
    slli t1, s1, 3
    add t0, t0, t1
    sd s4, 0(t0)
    addi s1, s1, -1
    bgez s1, bw_loop

    # --- checksum sum (i+1)*x[i] ---
    li s0, 0
    li s1, 0
    li t0, XV
    add s2, gp, t0
cs_loop:
    ld t0, 0(s2)
    addi t1, s1, 1
    mul t0, t0, t1
    add s0, s0, t0
    addi s2, s2, 8
    addi s1, s1, 1
    li t2, N
    blt s1, t2, cs_loop
{store_result('s0')}
"""
