"""quicksort — iterative quicksort with an explicit stack.

Lomuto partition over 192 values; the work-list stack lives in the
private arena (pointer-heavy, like the compiled recursive original).
"""

from ..dsl import lcg_reference, lcg_setup, lcg_step, store_result

NAME = "quicksort"
CATEGORY = "sort"
DESCRIPTION = "iterative quicksort of 192 LCG-generated values"

N = 192
SEED = 0x95011

MASK = (1 << 64) - 1


def _reference() -> int:
    arr = list(lcg_reference(SEED, N))
    arr.sort()
    checksum = 0
    for index, value in enumerate(arr):
        checksum = (checksum + (index + 1) * value) & MASK
    return checksum


EXPECTED_CHECKSUM = _reference()

# Layout: ARR then a stack of (lo, hi) dword pairs.
SOURCE = f"""
.equ N, {N}
.equ ARR, 64
.equ STK, {64 + 8 * N}
_start:
{lcg_setup(SEED)}
    li t0, 0
    addi t1, gp, ARR
fill:
{lcg_step('t2')}
    sd t2, 0(t1)
    addi t1, t1, 8
    addi t0, t0, 1
    li t3, N
    blt t0, t3, fill

    # --- push (0, N-1) ---
    li t0, STK
    add s7, gp, t0      # stack pointer (grows up)
    sd x0, 0(s7)
    li t1, N-1
    sd t1, 8(s7)
    addi s7, s7, 16

work_loop:
    li t0, STK
    add t0, gp, t0
    bleu s7, t0, done   # stack empty
    addi s7, s7, -16
    ld s1, 0(s7)        # lo
    ld s2, 8(s7)        # hi
    bge s1, s2, work_loop

    # --- Lomuto partition: pivot = arr[hi] ---
    addi t0, gp, ARR
    slli t1, s2, 3
    add t1, t0, t1
    ld s3, 0(t1)        # pivot
    addi s4, s1, -1     # i
    mv s5, s1           # j
part_loop:
    bge s5, s2, part_done
    slli t1, s5, 3
    add t1, t0, t1
    ld t2, 0(t1)        # arr[j]
    bgtu t2, s3, part_next
    addi s4, s4, 1
    slli t3, s4, 3
    add t3, t0, t3
    ld t4, 0(t3)        # arr[i]
    sd t2, 0(t3)
    sd t4, 0(t1)
part_next:
    addi s5, s5, 1
    j part_loop
part_done:
    addi s4, s4, 1      # p = i+1
    slli t1, s4, 3
    add t1, t0, t1
    ld t2, 0(t1)        # arr[p]
    slli t3, s2, 3
    add t3, t0, t3
    ld t4, 0(t3)        # arr[hi]
    sd t4, 0(t1)
    sd t2, 0(t3)
    # --- push (lo, p-1) and (p+1, hi) ---
    addi t5, s4, -1
    blt t5, s1, skip_left
    sd s1, 0(s7)
    sd t5, 8(s7)
    addi s7, s7, 16
skip_left:
    addi t5, s4, 1
    bgt t5, s2, skip_right
    sd t5, 0(s7)
    sd s2, 8(s7)
    addi s7, s7, 16
skip_right:
    j work_loop
done:

    # --- weighted checksum ---
    li s0, 0
    li t0, 0
    addi t1, gp, ARR
check:
    ld t2, 0(t1)
    addi t3, t0, 1
    mul t2, t2, t3
    add s0, s0, t2
    addi t1, t1, 8
    addi t0, t0, 1
    li t4, N
    blt t0, t4, check
{store_result('s0')}
"""
