"""isqrt — integer square root (digit-by-digit method).

250 values of 32 bits, 16 iterations each, array-based.
"""

from ..dsl import lcg_reference, lcg_setup, lcg_step, store_result

NAME = "isqrt"
CATEGORY = "math"
DESCRIPTION = "digit-by-digit integer sqrt of 250 32-bit values"

COUNT = 250
SEED = 0x1534
SHIFT = 32  # 32-bit values

MASK = (1 << 64) - 1


def _isqrt(value: int) -> int:
    op = value
    res = 0
    one = 1 << 30
    while one > op:
        one >>= 2
    while one != 0:
        if op >= res + one:
            op -= res + one
            res = (res >> 1) + one
        else:
            res >>= 1
        one >>= 2
    return res


def _reference() -> int:
    checksum = 0
    for value in lcg_reference(SEED, COUNT, shift=SHIFT):
        checksum = (checksum + _isqrt(value)) & MASK
    return checksum


EXPECTED_CHECKSUM = _reference()

SOURCE = f"""
.equ K, {COUNT}
.equ IN, 64
_start:
{lcg_setup(SEED)}
    li t0, 0
    addi t1, gp, IN
fill:
{lcg_step('t2', shift=SHIFT)}
    sd t2, 0(t1)
    addi t1, t1, 8
    addi t0, t0, 1
    li t3, K
    blt t0, t3, fill

    li s0, 0            # checksum
    li s1, 0            # index
    addi s2, gp, IN
val_loop:
    ld t0, 0(s2)        # op
    li t1, 0            # res
    li t2, 1
    slli t2, t2, 30     # one
shrink:
    bleu t2, t0, bits   # while one > op
    srli t2, t2, 2
    j shrink
bits:
    beqz t2, done
    add t3, t1, t2      # res + one
    bltu t0, t3, no_bit
    sub t0, t0, t3
    srli t1, t1, 1
    add t1, t1, t2
    j next_bit
no_bit:
    srli t1, t1, 1
next_bit:
    srli t2, t2, 2
    j bits
done:
    add s0, s0, t1
    addi s2, s2, 8
    addi s1, s1, 1
    li t4, K
    blt s1, t4, val_loop
{store_result('s0')}
"""
