"""rad2deg — radian-to-degree conversion over an array.

Counterpart of :mod:`repro.workloads.tacle.deg2rad`; array-based like
the compiled TACLe version.
"""

from ..dsl import lcg_reference, lcg_setup, lcg_step, store_result

NAME = "rad2deg"
CATEGORY = "math"
DESCRIPTION = "Q16.16 radian-to-degree conversion of a 1000-entry array"

COUNT = 1000
SEED = 0x6AD2
DEG_PER_RAD_Q16 = 3754936  # round(180/pi * 65536)
TWO_PI_Q16 = 411775

MASK = (1 << 64) - 1


def _reference() -> int:
    checksum = 0
    for raw in lcg_reference(SEED, COUNT):
        rad = raw & 0x3FFFF  # 18-bit range (0..4 rad, Q16.16)
        deg = (rad * DEG_PER_RAD_Q16) >> 16
        checksum = (checksum + deg) & MASK
    return checksum


EXPECTED_CHECKSUM = _reference()

SOURCE = f"""
.equ K, {COUNT}
.equ IN, 64
_start:
{lcg_setup(SEED)}
    li t0, 0
    addi t1, gp, IN
fill:
{lcg_step('t2')}
    li t3, 0x3FFFF
    and t2, t2, t3
    sd t2, 0(t1)
    addi t1, t1, 8
    addi t0, t0, 1
    li t4, K
    blt t0, t4, fill

    li s0, 0
    li s1, 0
    addi s2, gp, IN
    li s4, {DEG_PER_RAD_Q16}
conv_loop:
    ld t0, 0(s2)
    mul t1, t0, s4
    srli t1, t1, 16
    add s0, s0, t1
    addi s2, s2, 8
    addi s1, s1, 1
    li t2, K
    blt s1, t2, conv_loop
{store_result('s0')}
"""
