"""deg2rad — degree-to-radian conversion over an array.

Q16.16: rad = deg * (pi/180), converting a 1,000-entry array in place
(array-based like the compiled TACLe version).
"""

from ..dsl import lcg_reference, lcg_setup, lcg_step, store_result

NAME = "deg2rad"
CATEGORY = "math"
DESCRIPTION = "Q16.16 degree-to-radian conversion of a 1000-entry array"

COUNT = 1000
SEED = 0xDE62
PI_OVER_180_Q16 = 1144  # round(pi/180 * 65536)

MASK = (1 << 64) - 1


def _reference() -> int:
    checksum = 0
    for raw in lcg_reference(SEED, COUNT):
        deg = raw & 0x1FFFFFF  # 25-bit range (0..512 degrees, Q16.16)
        rad = (deg * PI_OVER_180_Q16) >> 16
        checksum = (checksum + rad) & MASK
    return checksum


EXPECTED_CHECKSUM = _reference()

SOURCE = f"""
.equ K, {COUNT}
.equ IN, 64
_start:
{lcg_setup(SEED)}
    li t0, 0
    addi t1, gp, IN
fill:
{lcg_step('t2')}
    li t3, 0x1FFFFFF
    and t2, t2, t3
    sd t2, 0(t1)
    addi t1, t1, 8
    addi t0, t0, 1
    li t4, K
    blt t0, t4, fill

    # --- convert in place, accumulating the checksum ---
    li s0, 0
    li s1, 0
    addi s2, gp, IN
    li s4, {PI_OVER_180_Q16}
conv_loop:
    ld t0, 0(s2)
    mul t1, t0, s4
    srli t1, t1, 16
    sd t1, 0(s2)
    add s0, s0, t1
    addi s2, s2, 8
    addi s1, s1, 1
    li t2, K
    blt s1, t2, conv_loop
{store_result('s0')}
"""
