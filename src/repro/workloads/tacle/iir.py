"""iir — cascaded biquad IIR filter.

Two direct-form-I biquad sections in Q16.16 over 800 samples.
Coefficients are chosen for stability; state lives in memory like the
compiled TACLe version (loads/stores every sample).
"""

from ..dsl import lcg_reference, lcg_setup, lcg_step, store_result

NAME = "iir"
CATEGORY = "dsp"
DESCRIPTION = "2-section Q16.16 biquad IIR over 800 samples"

SAMPLES = 800
SEED = 0x112
SHIFT = 50  # 14-bit inputs

# Q16.16 coefficients (b0, b1, b2, a1, a2) per section; |poles| < 1.
SECTIONS = (
    (13107, 26214, 13107, -19661, 6554),   # lowpass-ish
    (19661, -13107, 19661, 13107, -9830),  # another stable section
)

MASK = (1 << 64) - 1


def _signed(value: int) -> int:
    return value - (1 << 64) if value & (1 << 63) else value


def _sra16(value: int) -> int:
    return (_signed(value & MASK) >> 16) & MASK


def _reference() -> int:
    stream = lcg_reference(SEED, SAMPLES, shift=SHIFT)
    checksum = 0
    state = [[0, 0, 0, 0] for _ in SECTIONS]  # x1 x2 y1 y2
    for sample in stream:
        value = sample & MASK
        for index, (b0, b1, b2, a1, a2) in enumerate(SECTIONS):
            x1, x2, y1, y2 = state[index]
            acc = (b0 * _signed(value) + b1 * _signed(x1)
                   + b2 * _signed(x2) - a1 * _signed(y1)
                   - a2 * _signed(y2))
            y = _sra16(acc & MASK)
            state[index] = [value, x1, y, y1]
            value = y
        checksum = (checksum + value) & MASK
    return checksum


EXPECTED_CHECKSUM = _reference()


def _section_asm(index: int, coeffs) -> str:
    """One biquad section: value in a0, state at STATE+32*index(gp)."""
    b0, b1, b2, a1, a2 = coeffs
    base = "STATE+%d" % (32 * index)
    return f"""
    # --- section {index}: state x1 x2 y1 y2 at {base} ---
    li t5, {base}
    add t5, gp, t5
    ld t0, 0(t5)        # x1
    ld t1, 8(t5)        # x2
    ld t2, 16(t5)       # y1
    ld t3, 24(t5)       # y2
    li t4, {b0}
    mul a1, a0, t4
    li t4, {b1}
    mul t6, t0, t4
    add a1, a1, t6
    li t4, {b2}
    mul t6, t1, t4
    add a1, a1, t6
    li t4, {a1}
    mul t6, t2, t4
    sub a1, a1, t6
    li t4, {a2}
    mul t6, t3, t4
    sub a1, a1, t6
    srai a1, a1, 16     # y
    sd a0, 0(t5)        # x1 = value
    sd t0, 8(t5)        # x2 = old x1
    sd a1, 16(t5)       # y1 = y
    sd t2, 24(t5)       # y2 = old y1
    mv a0, a1
"""


SOURCE = f"""
.equ S, {SAMPLES}
.equ STATE, 64
.equ IN, 192
_start:
{lcg_setup(SEED)}
    # zero filter state (4 dwords x 2 sections)
    li t0, 0
    li t1, STATE
    add t1, gp, t1
zero:
    sd x0, 0(t1)
    addi t1, t1, 8
    addi t0, t0, 1
    li t2, 8
    blt t0, t2, zero
    # fill input samples
    li t0, 0
    li t1, IN
    add t1, gp, t1
fill:
{lcg_step('t2', shift=SHIFT)}
    sd t2, 0(t1)
    addi t1, t1, 8
    addi t0, t0, 1
    li t3, S
    blt t0, t3, fill

    li s0, 0            # checksum
    li s1, 0            # sample index
    li s2, IN
    add s2, gp, s2
sample_loop:
    ld a0, 0(s2)
{_section_asm(0, SECTIONS[0])}
{_section_asm(1, SECTIONS[1])}
    add s0, s0, a0
    addi s2, s2, 8
    addi s1, s1, 1
    li t0, S
    blt s1, t0, sample_loop
{store_result('s0')}
"""
