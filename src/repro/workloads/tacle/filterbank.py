"""filterbank — bank of FIR filters (StreamIt kernel).

Two 8-tap FIR filters run over a 160-sample signal; per-filter outputs
are accumulated into separate output rows.
"""

from ..dsl import lcg_reference, lcg_setup, lcg_step, store_result

NAME = "filterbank"
CATEGORY = "dsp"
DESCRIPTION = "2-filter x 8-tap FIR bank over 160 samples"

FILTERS = 2
TAPS = 8
SAMPLES = 160
SEED = 0xF17B
SHIFT = 49  # 15-bit values

MASK = (1 << 64) - 1


def _reference() -> int:
    stream = lcg_reference(SEED, SAMPLES + FILTERS * TAPS, shift=SHIFT)
    x = stream[:SAMPLES]
    coeff = [stream[SAMPLES + f * TAPS:SAMPLES + (f + 1) * TAPS]
             for f in range(FILTERS)]
    checksum = 0
    for f in range(FILTERS):
        acc_sum = 0
        for i in range(TAPS, SAMPLES):
            acc = 0
            for t in range(TAPS):
                acc = (acc + coeff[f][t] * x[i - t]) & MASK
            acc_sum = (acc_sum + (acc >> 16)) & MASK
        checksum = (checksum + (f + 1) * acc_sum) & MASK
    return checksum


EXPECTED_CHECKSUM = _reference()

# Layout: X at 64(gp); COEFF rows after it.
SOURCE = f"""
.equ F, {FILTERS}
.equ T, {TAPS}
.equ S, {SAMPLES}
.equ X, 64
.equ COEFF, {64 + 8 * SAMPLES}
_start:
{lcg_setup(SEED)}
    li t0, 0
    addi t1, gp, X
fill:                       # samples then coefficients, contiguously
{lcg_step('t2', shift=SHIFT)}
    sd t2, 0(t1)
    addi t1, t1, 8
    addi t0, t0, 1
    li t3, S+F*T
    blt t0, t3, fill

    li s0, 0                # checksum
    li s1, 0                # f
filter_loop:
    li s2, 0                # acc_sum
    li s3, T                # i
sample_loop:
    li s4, 0                # acc
    li s5, 0                # t
    # &coeff[f][0]
    li t0, T*8
    mul t1, s1, t0
    li t2, COEFF
    add t1, t1, t2
    add s6, gp, t1
    # &x[i]
    slli t3, s3, 3
    addi t4, gp, X
    add s7, t4, t3
tap_loop:
    ld t0, 0(s6)            # coeff[f][t]
    ld t1, 0(s7)            # x[i-t]
    mul t2, t0, t1
    add s4, s4, t2
    addi s6, s6, 8
    addi s7, s7, -8
    addi s5, s5, 1
    li t3, T
    blt s5, t3, tap_loop
    srli s4, s4, 16
    add s2, s2, s4
    addi s3, s3, 1
    li t3, S
    blt s3, t3, sample_loop
    addi t0, s1, 1
    mul t1, s2, t0          # (f+1) * acc_sum
    add s0, s0, t1
    addi s1, s1, 1
    li t2, F
    blt s1, t2, filter_loop
{store_result('s0')}
"""
