"""binarysearch — repeated binary search over a sorted table.

TACLe's ``binarysearch`` searches a sorted array; this version builds a
512-entry sorted table (``arr[i] = 5*i + 3``) and performs 200 searches
with LCG-generated keys, accumulating the found index (or -1).
"""

from ..dsl import lcg_reference, lcg_setup, lcg_step, store_result

NAME = "binarysearch"
CATEGORY = "search"

N = 768
SEARCHES = 200
SEED = 0xB1A2

DESCRIPTION = ("binary search of %d keys over a %d-entry sorted table"
               % (SEARCHES, N))


def _reference() -> int:
    checksum = 0
    for key_raw in lcg_reference(SEED, SEARCHES):
        key = key_raw & 0xFFF  # 12-bit keys over a table reaching 5*N+3
        lo, hi = 0, N
        found = None
        while lo < hi:
            mid = (lo + hi) // 2
            value = 5 * mid + 3
            if value == key:
                found = mid
                break
            if value < key:
                lo = mid + 1
            else:
                hi = mid
        checksum += found if found is not None else -1
    return checksum & ((1 << 64) - 1)


EXPECTED_CHECKSUM = _reference()

SOURCE = f"""
.equ N, {N}
.equ K, {SEARCHES}
.equ ARR, 64
_start:
    # --- build the sorted table: arr[i] = 5*i + 3 ---
    li t0, 0
    addi t1, gp, ARR
    li t2, 5
init:
    mul t3, t0, t2
    addi t3, t3, 3
    sd t3, 0(t1)
    addi t1, t1, 8
    addi t0, t0, 1
    li t4, N
    blt t0, t4, init

    # --- search loop ---
{lcg_setup(SEED)}
    li s0, 0            # checksum
    li s1, 0            # search counter
    li s2, K
search_loop:
{lcg_step('t0')}
    li t1, 0xFFF
    and t0, t0, t1      # key
    li t2, 0            # lo
    li t3, N            # hi
bs_loop:
    bgeu t2, t3, bs_miss
    add t4, t2, t3
    srli t4, t4, 1      # mid
    slli t5, t4, 3
    addi t6, gp, ARR
    add t5, t5, t6
    ld t5, 0(t5)        # arr[mid]
    beq t5, t0, bs_hit
    bltu t5, t0, bs_right
    mv t3, t4
    j bs_loop
bs_right:
    addi t2, t4, 1
    j bs_loop
bs_hit:
    add s0, s0, t4
    j bs_next
bs_miss:
    addi s0, s0, -1
bs_next:
    addi s1, s1, 1
    blt s1, s2, search_loop
{store_result('s0')}
"""
