"""Workloads: the 29 TACLe-suite kernels used in the paper's Table I."""

from .dsl import ARENA, lcg_reference, lcg_setup, lcg_step, store_result
from .registry import (
    REGISTRY,
    TACLE_KERNELS,
    Workload,
    all_names,
    program,
    workload,
)

__all__ = [
    "ARENA",
    "REGISTRY",
    "TACLE_KERNELS",
    "Workload",
    "all_names",
    "lcg_reference",
    "lcg_setup",
    "lcg_step",
    "program",
    "store_result",
    "workload",
]
