"""Assembly-construction helpers for the TACLe-style kernels.

All kernels follow one bare-metal convention (matching what
:meth:`repro.soc.mpsoc.MPSoC.start_core` sets up):

* ``gp`` — base of the core-private data region.  All mutable data is
  ``gp``-relative, so redundant copies of a kernel naturally use
  different absolute addresses (the paper's "different address spaces"
  diversity source).
* ``sp`` — top of the core-private stack (recursion kernels).
* ``tp`` — core id (unused by kernels; reserved).
* The kernel's final checksum is stored to ``0(gp)``, then the core
  executes ``ebreak`` to halt.
* Data layout: ``0(gp)`` result, ``8..63(gp)`` scratch, arrays from
  ``64(gp)`` up (offset ``ARENA``).

Input data is generated in-kernel from a deterministic 64-bit LCG so
kernels are fully self-contained (TACLe benchmarks are self-contained
for the same reason: "they do not need to read any data from files or
peripherals").
"""

from __future__ import annotations

#: First free gp-relative offset for kernel arrays.
ARENA = 64

#: 64-bit LCG constants (Knuth's MMIX multiplier).
LCG_MUL = 6364136223846793005
LCG_INC = 1442695040888963407


def lcg_setup(seed: int, state: str = "s11", mul: str = "s10",
              inc: str = "s9") -> str:
    """Initialise the in-kernel LCG registers."""
    return "\n".join([
        "    li %s, %d" % (state, seed),
        "    li %s, %d" % (mul, LCG_MUL),
        "    li %s, %d" % (inc, LCG_INC),
    ])


def lcg_step(dst: str, shift: int = 33, state: str = "s11",
             mul: str = "s10", inc: str = "s9") -> str:
    """Advance the LCG and leave ``(state >> shift)`` in ``dst``."""
    return "\n".join([
        "    mul %s, %s, %s" % (state, state, mul),
        "    add %s, %s, %s" % (state, state, inc),
        "    srli %s, %s, %d" % (dst, state, shift),
    ])


def store_result(reg: str = "s0") -> str:
    """Standard kernel epilogue: publish the checksum and halt."""
    return "    sd %s, 0(gp)\n    ebreak" % reg


def lcg_reference(seed: int, count: int, shift: int = 33):
    """Python-side reference of the in-kernel LCG stream."""
    mask = (1 << 64) - 1
    state = seed
    out = []
    for _ in range(count):
        state = (state * LCG_MUL + LCG_INC) & mask
        out.append(state >> shift)
    return out
