"""SafeDM: the paper's contribution — a hardware diversity monitor.

Public surface:

* :class:`DiversityMonitor` + :class:`ReportingMode` -- the monitor
* :class:`SignatureConfig`, :class:`DataSignatureUnit`,
  :class:`InstructionSignatureUnit`, :class:`IsVariant` -- signatures
* :class:`InstructionDiff` -- staggering counter
* :class:`HistoryModule`, :class:`EpisodeHistogram` -- results gathering
* :class:`SafeDmApbSlave` -- APB register file
* :func:`estimate` / :func:`sweep_ds_depth` -- area & power model
"""

from .apb_regs import SafeDmApbSlave, make_monitored_slave
from .fifo import HardwareFifo
from .history import EpisodeHistogram, HistoryModule
from .instruction_diff import InstructionDiff, InstructionDiffStats
from .interrupts import InterruptLine
from .monitor import (
    CycleReport,
    DiversityMonitor,
    MonitorStats,
    ReportingMode,
)
from .overheads import (
    BASELINE_MPSOC_LUTS,
    BASELINE_MPSOC_WATTS,
    PAPER_CONFIG,
    OverheadReport,
    estimate,
    sweep_ds_depth,
)
from .signatures import (
    DataSignatureUnit,
    InstructionSignatureUnit,
    IsVariant,
    SignatureConfig,
)

__all__ = [
    "BASELINE_MPSOC_LUTS",
    "BASELINE_MPSOC_WATTS",
    "CycleReport",
    "DataSignatureUnit",
    "DiversityMonitor",
    "EpisodeHistogram",
    "HardwareFifo",
    "HistoryModule",
    "InstructionDiff",
    "InstructionDiffStats",
    "InstructionSignatureUnit",
    "InterruptLine",
    "IsVariant",
    "MonitorStats",
    "OverheadReport",
    "PAPER_CONFIG",
    "ReportingMode",
    "SafeDmApbSlave",
    "SignatureConfig",
    "estimate",
    "make_monitored_slave",
    "sweep_ds_depth",
]
