"""Analytical area/power model for SafeDM (paper Section V-D).

The paper reports a single synthesized design point on a Kintex
UltraScale KCU105: 4,000 LUTs (3.4% of the baseline MPSoC) and 0.019 W
(on a >2 W baseline).  This model decomposes that cost into its
structural sources — signature FIFO storage, comparators, the
instruction-diff counter and the APB logic — and is *calibrated* so the
paper's design point reproduces exactly.  It then extrapolates to other
FIFO depths/port counts, which the paper leaves "implementation
specific".  The History module is excluded, as in the paper ("without
accounting for the History module that is just added for results
gathering").
"""

from __future__ import annotations

from dataclasses import dataclass

from .signatures import IsVariant, SignatureConfig

#: Baseline MPSoC implied by the paper: 4,000 LUTs == 3.4% overhead.
BASELINE_MPSOC_LUTS = round(4000 / 0.034)
#: Baseline MPSoC power reported as "over 2W".
BASELINE_MPSOC_WATTS = 2.0
#: Paper-reported SafeDM cost.
PAPER_SAFEDM_LUTS = 4000
PAPER_SAFEDM_WATTS = 0.019

# Uncalibrated structural coefficients (LUTs per bit / fixed blocks).
_LUT_PER_FIFO_BIT = 0.65      # SRL-style shift storage + input muxing
_LUT_PER_COMPARE_BIT = 0.34   # wide equality + OR-reduce tree
_LUT_INSTRUCTION_DIFF = 96    # up/down counter + zero detect
_LUT_APB = 240                # APB decode + register mux
_WATT_PER_KBIT = 0.0035       # toggling storage
_WATT_FIXED = 0.002           # clocking + glue


@dataclass
class OverheadReport:
    """Estimated cost of one SafeDM configuration."""

    config: SignatureConfig
    luts: int
    watts: float
    ds_bits_per_core: int
    is_bits_per_core: int

    @property
    def area_percent(self) -> float:
        """Percent LUT overhead over the paper's baseline MPSoC."""
        return 100.0 * self.luts / BASELINE_MPSOC_LUTS

    @property
    def power_percent(self) -> float:
        """Percent power overhead over the paper's baseline MPSoC."""
        return 100.0 * self.watts / BASELINE_MPSOC_WATTS


def _ds_bits(config: SignatureConfig) -> int:
    # (enable + 64-bit value) per entry.
    return config.num_ports * config.ds_depth * 65


def _is_bits(config: SignatureConfig) -> int:
    # (valid + 32-bit encoding) per slot.
    if config.is_variant is IsVariant.INFLIGHT:
        return config.inflight_depth * 33
    return config.pipeline_stages * config.pipeline_width * 33


def _raw_luts(config: SignatureConfig) -> float:
    storage_bits = 2 * (_ds_bits(config) + _is_bits(config))  # both cores
    compare_bits = _ds_bits(config) + _is_bits(config)
    return (storage_bits * _LUT_PER_FIFO_BIT
            + compare_bits * _LUT_PER_COMPARE_BIT
            + _LUT_INSTRUCTION_DIFF + _LUT_APB)


def _raw_watts(config: SignatureConfig) -> float:
    storage_kbits = 2 * (_ds_bits(config) + _is_bits(config)) / 1000.0
    return storage_kbits * _WATT_PER_KBIT + _WATT_FIXED


# Calibration: make the paper's design point exact.  The paper's NOEL-V
# instance monitors 4 register ports with a FIFO depth matching the
# 7-stage pipeline, and a 2-wide, 7-stage instruction signature.
PAPER_CONFIG = SignatureConfig(num_ports=4, ds_depth=7, pipeline_width=2,
                               pipeline_stages=7)
_LUT_SCALE = PAPER_SAFEDM_LUTS / _raw_luts(PAPER_CONFIG)
_WATT_SCALE = PAPER_SAFEDM_WATTS / _raw_watts(PAPER_CONFIG)


def estimate(config: SignatureConfig = PAPER_CONFIG) -> OverheadReport:
    """Estimate SafeDM area/power for ``config``.

    Calibrated so ``estimate(PAPER_CONFIG)`` returns exactly the paper's
    4,000 LUTs / 0.019 W design point.
    """
    return OverheadReport(
        config=config,
        luts=round(_raw_luts(config) * _LUT_SCALE),
        watts=_raw_watts(config) * _WATT_SCALE,
        ds_bits_per_core=_ds_bits(config),
        is_bits_per_core=_is_bits(config),
    )


def sweep_ds_depth(depths, base: SignatureConfig = PAPER_CONFIG):
    """Overhead as a function of the DS FIFO depth ``n``."""
    reports = []
    for depth in depths:
        config = SignatureConfig(
            num_ports=base.num_ports, ds_depth=depth,
            pipeline_width=base.pipeline_width,
            pipeline_stages=base.pipeline_stages,
            is_variant=base.is_variant,
            inflight_depth=base.inflight_depth)
        reports.append(estimate(config))
    return reports
