"""Interrupt line abstraction.

SafeDM "only notifies the RTOS about diversity loss through interrupts"
(paper Section I).  The line carries level-style pending state plus an
edge counter, and accepts any number of subscribed handlers (the RTOS
safety layer in :mod:`repro.rtos` subscribes here).
"""

from __future__ import annotations

from typing import Callable, List


class InterruptLine:
    """A single interrupt request line with subscribers."""

    def __init__(self, name: str = "irq"):
        self.name = name
        self.pending = False
        self.raised_count = 0
        self._handlers: List[Callable[[int], None]] = []

    def subscribe(self, handler: Callable[[int], None]):
        """Register ``handler(cycle)`` to run on every raise edge."""
        self._handlers.append(handler)

    def raise_irq(self, cycle: int):
        """Assert the line (edge counted even if already pending)."""
        self.pending = True
        self.raised_count += 1
        for handler in self._handlers:
            handler(cycle)

    def acknowledge(self):
        """Clear pending state (the RTOS write to the ack register)."""
        self.pending = False

    def reset(self):
        self.pending = False
        self.raised_count = 0

    # -- snapshot protocol ------------------------------------------------

    def state_dict(self) -> dict:
        # Handlers are live wiring, not state; they stay subscribed.
        return {"pending": self.pending,
                "stats": {"raised_count": self.raised_count}}

    def load_state_dict(self, state):
        self.pending = bool(state["pending"])
        self.raised_count = int(state["stats"]["raised_count"])
