"""SafeDM APB slave register file (paper Section IV-B.2).

The monitor is programmed and read out through 32-bit APB registers.
"The rest of the implementation is agnostic of the bus", so this module
is the only place that knows about APB; it wraps a
:class:`~repro.core.monitor.DiversityMonitor`.

Register map (byte offsets from the slave base):

======  ==========  =====================================================
offset  name        contents
======  ==========  =====================================================
0x00    CTRL        bit0 enable; bits[2:1] reporting mode
                    (0 polling, 1 interrupt-first, 2 threshold)
0x04    STATUS      bit0 irq pending; bit1 lack of diversity (last
                    cycle); bit2 zero staggering (last cycle); bit3
                    IS variant (0 per-stage, 1 in-flight, read-only)
0x08    THRESHOLD   no-diversity cycle count that triggers the
                    threshold-mode interrupt
0x0C    NODIV       cycles with no diversity (DS and IS both equal)
0x10    DATA_NODIV  cycles with equal data signatures
0x14    INSTR_NODIV cycles with equal instruction signatures
0x18    STAG_DIFF   current commit difference (two's complement)
0x1C    ZERO_STAG   cycles with zero staggering
0x20    CYCLES_LO   sampled cycles, low word
0x24    CYCLES_HI   sampled cycles, high word
0x28    IRQ_ACK     write 1 to acknowledge the interrupt
0x2C    HIST_SEL    bits[7:0] bin index; bits[9:8] condition
                    (0 no-data-div, 1 no-instr-div, 2 no-div,
                    3 zero-staggering)
0x30    HIST_DATA   episode count of the selected histogram bin
0x34    HIST_CFG    bits[15:0] bin size; bits[31:16] number of bins
0x38    RESET       write 1 to reset all counters and histograms
======  ==========  =====================================================
"""

from __future__ import annotations

from ..mem.apb import ApbError, ApbSlave
from .history import HistoryModule
from .monitor import DiversityMonitor, ReportingMode
from .signatures import IsVariant

CTRL = 0x00
STATUS = 0x04
THRESHOLD = 0x08
NODIV = 0x0C
DATA_NODIV = 0x10
INSTR_NODIV = 0x14
STAG_DIFF = 0x18
ZERO_STAG = 0x1C
CYCLES_LO = 0x20
CYCLES_HI = 0x24
IRQ_ACK = 0x28
HIST_SEL = 0x2C
HIST_DATA = 0x30
HIST_CFG = 0x34
RESET = 0x38

_MODE_ENCODING = {
    ReportingMode.POLLING: 0,
    ReportingMode.INTERRUPT_FIRST: 1,
    ReportingMode.INTERRUPT_THRESHOLD: 2,
}
_MODE_DECODING = {v: k for k, v in _MODE_ENCODING.items()}

_HIST_CONDITIONS = ("no_data_diversity", "no_instruction_diversity",
                    "no_diversity", "zero_staggering")


class SafeDmApbSlave(ApbSlave):
    """APB view onto a :class:`DiversityMonitor`."""

    window = 0x40

    def __init__(self, monitor: DiversityMonitor):
        self.monitor = monitor
        self._hist_select = 0

    # -- reads -------------------------------------------------------------

    def read_register(self, offset: int) -> int:
        monitor = self.monitor
        stats = monitor.stats
        if offset == CTRL:
            value = 1 if monitor.enabled else 0
            value |= _MODE_ENCODING[monitor.mode] << 1
            return value
        if offset == STATUS:
            report = monitor.last_report
            value = 1 if monitor.irq.pending else 0
            if report is not None and not report.diversity:
                value |= 1 << 1
            if report is not None and report.zero_staggering:
                value |= 1 << 2
            if monitor.config.is_variant is IsVariant.INFLIGHT:
                value |= 1 << 3
            return value
        if offset == THRESHOLD:
            return monitor.threshold
        if offset == NODIV:
            return stats.no_diversity_cycles & 0xFFFFFFFF
        if offset == DATA_NODIV:
            return stats.no_data_diversity_cycles & 0xFFFFFFFF
        if offset == INSTR_NODIV:
            return stats.no_instruction_diversity_cycles & 0xFFFFFFFF
        if offset == STAG_DIFF:
            return monitor.instruction_diff.diff & 0xFFFFFFFF
        if offset == ZERO_STAG:
            zs = monitor.instruction_diff.stats.zero_staggering_cycles
            return zs & 0xFFFFFFFF
        if offset == CYCLES_LO:
            return stats.sampled_cycles & 0xFFFFFFFF
        if offset == CYCLES_HI:
            return (stats.sampled_cycles >> 32) & 0xFFFFFFFF
        if offset == HIST_SEL:
            return self._hist_select
        if offset == HIST_DATA:
            return self._histogram_value()
        if offset == HIST_CFG:
            history = monitor.history
            if history is None:
                return 0
            return (history.num_bins << 16) | (history.bin_size & 0xFFFF)
        raise ApbError("SafeDM: read of unmapped register %#x" % offset)

    def _histogram_value(self) -> int:
        history = self.monitor.history
        if history is None:
            return 0
        condition = _HIST_CONDITIONS[(self._hist_select >> 8) & 0x3]
        index = self._hist_select & 0xFF
        bins = history.histograms[condition].bins
        if index >= len(bins):
            return 0
        return bins[index] & 0xFFFFFFFF

    # -- writes -------------------------------------------------------------

    def write_register(self, offset: int, value: int):
        monitor = self.monitor
        if offset == CTRL:
            monitor.enabled = bool(value & 1)
            mode_bits = (value >> 1) & 0x3
            if mode_bits not in _MODE_DECODING:
                raise ApbError("SafeDM: bad reporting mode %d" % mode_bits)
            monitor.mode = _MODE_DECODING[mode_bits]
            return
        if offset == THRESHOLD:
            monitor.threshold = value
            return
        if offset == IRQ_ACK:
            if value & 1:
                monitor.irq.acknowledge()
            return
        if offset == HIST_SEL:
            self._hist_select = value & 0x3FF
            return
        if offset == RESET:
            if value & 1:
                monitor.reset()
            return
        raise ApbError("SafeDM: write of read-only register %#x" % offset)

    # -- snapshot protocol ------------------------------------------------

    def state_dict(self) -> dict:
        # The wrapped monitor snapshots itself; the slave's only own
        # state is the histogram read-out selector.
        return {"hist_select": self._hist_select}

    def load_state_dict(self, state):
        self._hist_select = int(state["hist_select"]) & 0x3FF


def make_monitored_slave(bin_size: int = 1, num_bins: int = 32,
                         **monitor_kwargs):
    """Build a monitor with history plus its APB slave (convenience)."""
    history = HistoryModule(bin_size=bin_size, num_bins=num_bins)
    monitor = DiversityMonitor(history=history, **monitor_kwargs)
    return monitor, SafeDmApbSlave(monitor)
