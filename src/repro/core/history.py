"""History module (paper Section IV-B.4).

Collects how often — and in how long episodes — diversity is lost,
"in a histogram fashion, where the bin sizes can be configured".  One
histogram instance is kept per monitored condition (no data diversity,
no instruction diversity, full lack of diversity, zero staggering).

The paper adds this module for results gathering only; it is excluded
from the deployment area numbers, and :mod:`repro.core.overheads`
follows that convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


class EpisodeHistogram:
    """Histogram of consecutive-cycle episode lengths."""

    __slots__ = ("bin_size", "num_bins", "bins", "total_cycles",
                 "episodes", "longest", "_run")

    def __init__(self, bin_size: int = 1, num_bins: int = 32):
        if bin_size < 1:
            raise ValueError("bin_size must be >= 1")
        self.bin_size = bin_size
        self.num_bins = num_bins
        self.bins: List[int] = [0] * num_bins
        self.total_cycles = 0
        self.episodes = 0
        self.longest = 0
        self._run = 0

    def sample(self, condition: bool):
        """Clock one cycle of the monitored condition."""
        if condition:
            self._run += 1
            self.total_cycles += 1
            if self._run > self.longest:
                self.longest = self._run
        elif self._run:
            self._close_run()

    def _close_run(self):
        index = min((self._run - 1) // self.bin_size, self.num_bins - 1)
        self.bins[index] += 1
        self.episodes += 1
        self._run = 0

    def _close_run_at(self, run: int):
        """Close an episode of externally-tracked length ``run``.

        Used by the fast tier (:mod:`repro.engine.fast`), which keeps
        the running episode length in a local and only reconciles
        ``_run`` at span boundaries.
        """
        index = min((run - 1) // self.bin_size, self.num_bins - 1)
        self.bins[index] += 1
        self.episodes += 1

    def finish(self):
        """Close any open episode (end of run)."""
        if self._run:
            self._close_run()

    def bin_ranges(self):
        """(low, high) cycle range covered by each bin, inclusive."""
        out = []
        for index in range(self.num_bins):
            low = index * self.bin_size + 1
            high = (index + 1) * self.bin_size
            out.append((low, high if index < self.num_bins - 1 else None))
        return out

    def reset(self):
        self.bins = [0] * self.num_bins
        self.total_cycles = 0
        self.episodes = 0
        self.longest = 0
        self._run = 0

    # -- snapshot protocol ------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "run": self._run,
            "stats": {"bins": list(self.bins),
                      "total_cycles": self.total_cycles,
                      "episodes": self.episodes,
                      "longest": self.longest},
        }

    def load_state_dict(self, state):
        stats = state["stats"]
        bins = [int(count) for count in stats["bins"]]
        if len(bins) != self.num_bins:
            raise ValueError("snapshot has %d histogram bins, expected %d"
                             % (len(bins), self.num_bins))
        self._run = int(state["run"])
        self.bins = bins
        self.total_cycles = int(stats["total_cycles"])
        self.episodes = int(stats["episodes"])
        self.longest = int(stats["longest"])


@dataclass
class HistoryModule:
    """The per-condition histograms SafeDM's testbench integration keeps."""

    bin_size: int = 1
    num_bins: int = 32
    histograms: Dict[str, EpisodeHistogram] = field(default_factory=dict)

    CONDITIONS = ("no_data_diversity", "no_instruction_diversity",
                  "no_diversity", "zero_staggering")

    def __post_init__(self):
        for name in self.CONDITIONS:
            self.histograms[name] = EpisodeHistogram(self.bin_size,
                                                     self.num_bins)
        self._bind()

    def _bind(self):
        # Pre-bound histogram references: sample() runs every monitored
        # cycle and must not pay four dict lookups each time.
        self._no_data = self.histograms["no_data_diversity"]
        self._no_instr = self.histograms["no_instruction_diversity"]
        self._no_div = self.histograms["no_diversity"]
        self._zero_stag = self.histograms["zero_staggering"]

    def sample(self, *, no_data_diversity: bool,
               no_instruction_diversity: bool, no_diversity: bool,
               zero_staggering: bool):
        """Clock one cycle of monitor outputs."""
        self._no_data.sample(no_data_diversity)
        self._no_instr.sample(no_instruction_diversity)
        self._no_div.sample(no_diversity)
        self._zero_stag.sample(zero_staggering)

    def finish(self):
        for histogram in self.histograms.values():
            histogram.finish()

    def reset(self):
        for histogram in self.histograms.values():
            histogram.reset()

    # -- snapshot protocol ------------------------------------------------

    def state_dict(self) -> dict:
        return {name: histogram.state_dict()
                for name, histogram in self.histograms.items()}

    def load_state_dict(self, state):
        # Loads *into* the existing histogram objects so the pre-bound
        # references from _bind() stay valid.
        for name, histogram in self.histograms.items():
            histogram.load_state_dict(state[name])
