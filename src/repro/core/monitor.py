"""The Diversity Monitor (paper Sections III-B.3 and IV-B).

Per cycle, SafeDM:

1. clocks each core's Data Signature FIFOs with that core's register-
   port samples (frozen while that core's pipeline holds),
2. clocks each core's Instruction Signature with that core's per-stage
   slots (or the in-flight fallback),
3. compares the two DSs and the two ISs: *lack of diversity* is reported
   only when **both** signatures match,
4. updates the staggering (instruction-diff) counter and the history
   histograms, and
5. applies the configured reporting mode:

   * ``INTERRUPT_FIRST`` — raise the interrupt on the first cycle
     without diversity,
   * ``INTERRUPT_THRESHOLD`` — raise once the cumulative count of
     no-diversity cycles reaches a user-programmed threshold,
   * ``POLLING`` — never interrupt; the OS polls the counters.

SafeDM is purely observational: nothing here stalls or otherwise
affects the monitored cores.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Protocol, Sequence, Tuple

from .history import HistoryModule
from .instruction_diff import InstructionDiff
from .interrupts import InterruptLine
from .signatures import (
    DataSignatureUnit,
    InstructionSignatureUnit,
    IsVariant,
    SignatureConfig,
)


class ReportingMode(enum.Enum):
    """How lack of diversity is reported (paper Section III-B.3)."""

    INTERRUPT_FIRST = "interrupt_first"
    INTERRUPT_THRESHOLD = "interrupt_threshold"
    POLLING = "polling"


class CoreView(Protocol):
    """What SafeDM taps from each monitored core.

    :class:`repro.cpu.core.Core` satisfies this protocol directly.
    """

    hold: bool
    commits_this_cycle: int

    def stage_slots(self) -> Sequence[Sequence[Tuple[int, int]]]: ...

    def inflight_words(self) -> Sequence[int]: ...

    @property
    def regfile(self): ...


@dataclass
class MonitorStats:
    """Cycle counters accumulated by the monitor."""

    sampled_cycles: int = 0
    no_data_diversity_cycles: int = 0
    no_instruction_diversity_cycles: int = 0
    no_diversity_cycles: int = 0
    interrupts_raised: int = 0

    @property
    def diversity_cycles(self) -> int:
        return self.sampled_cycles - self.no_diversity_cycles

    def to_metrics(self, registry, labels=()):
        """Bridge the verdict counters into a telemetry registry.

        Only used when no per-cycle hook was attached (see
        :meth:`DiversityMonitor.attach_metrics`); the two sources are
        mutually exclusive so counts are never doubled.
        """
        registry.counter("repro_monitor_sampled_cycles_total",
                         labels).inc(self.sampled_cycles)
        registry.counter("repro_monitor_no_data_diversity_cycles_total",
                         labels).inc(self.no_data_diversity_cycles)
        registry.counter(
            "repro_monitor_no_instruction_diversity_cycles_total",
            labels).inc(self.no_instruction_diversity_cycles)
        registry.counter("repro_monitor_no_diversity_cycles_total",
                         labels).inc(self.no_diversity_cycles)


@dataclass
class CycleReport:
    """Outcome of one monitored cycle."""

    cycle: int
    data_diversity: bool
    instruction_diversity: bool
    staggering: int

    @property
    def diversity(self) -> bool:
        """Diversity exists if *either* signature differs."""
        return self.data_diversity or self.instruction_diversity

    @property
    def zero_staggering(self) -> bool:
        return self.staggering == 0


class DiversityMonitor:
    """SafeDM: signature generation + comparison + reporting."""

    def __init__(self, config: Optional[SignatureConfig] = None,
                 mode: ReportingMode = ReportingMode.POLLING,
                 threshold: int = 1,
                 history: Optional[HistoryModule] = None):
        self.config = config or SignatureConfig()
        self.mode = mode
        self.threshold = threshold
        self.enabled = True
        self._per_stage = self.config.is_variant is IsVariant.PER_STAGE
        self.ds_units = (DataSignatureUnit(self.config),
                         DataSignatureUnit(self.config))
        self.is_units = (InstructionSignatureUnit(self.config),
                         InstructionSignatureUnit(self.config))
        self.instruction_diff = InstructionDiff()
        self.history = history
        self.irq = InterruptLine("safedm")
        self.stats = MonitorStats()
        # Last-report fields are kept unpacked and materialized into a
        # CycleReport lazily: the hot loop ticks every cycle, but only
        # tracing/APB readers ever look at the report object.
        self._have_report = False
        self._last_cycle = 0
        self._last_data_div = False
        self._last_instr_div = False
        self._last_stagger = 0
        # Optional per-cycle telemetry counters (attach_metrics); the
        # disabled state costs the hot loop one None check per cycle.
        self._mx = None
        # Optional raw-stream capture hook (attach_capture); same
        # disabled-state cost as the telemetry counters.
        self._capture = None

    # -- telemetry -------------------------------------------------------------

    def attach_metrics(self, registry, pair: int = 0):
        """Bind per-cycle verdict counters from ``registry``.

        The counters live in the monitored fast path: each tick costs
        one attribute add per firing verdict.  Attach a fresh registry
        per run; :meth:`reset` detaches (a reset zeroes ``stats`` and
        leaving stale counters bound would desynchronize the two).

        A disabled registry (:data:`repro.telemetry.NULL_REGISTRY`) is
        not attached at all: the per-cycle path then skips the metric
        branch entirely instead of calling four no-op ``inc``\\ s.
        """
        if not getattr(registry, "enabled", True):
            self._mx = None
            return
        labels = (("pair", str(pair)),)
        self._mx = (
            registry.counter("repro_monitor_sampled_cycles_total",
                             labels),
            registry.counter("repro_monitor_no_data_diversity_cycles_total",
                             labels),
            registry.counter(
                "repro_monitor_no_instruction_diversity_cycles_total",
                labels),
            registry.counter("repro_monitor_no_diversity_cycles_total",
                             labels),
        )

    def has_metrics_attached(self) -> bool:
        return self._mx is not None

    # -- capture -----------------------------------------------------------

    def attach_capture(self, recorder):
        """Bind a raw-stream recorder (capture-once / replay-many).

        ``recorder`` (see :class:`repro.trace.stream_trace.
        StreamRecorder`) receives ``record(cycle, core0, core1)`` once
        per observed cycle, *before* the signature units sample — so a
        recorded run holds exactly the streams any monitor
        configuration would have consumed, and :mod:`repro.replay` can
        recompute :class:`MonitorStats` for other configurations
        without re-simulating.  Like :meth:`attach_metrics`, the hook
        is purely observational and is detached by :meth:`reset`.
        """
        self._capture = recorder

    def has_capture_attached(self) -> bool:
        return self._capture is not None

    @property
    def last_report(self) -> Optional[CycleReport]:
        """The most recent cycle's report (None before the first tick)."""
        if not self._have_report:
            return None
        return CycleReport(cycle=self._last_cycle,
                           data_diversity=self._last_data_div,
                           instruction_diversity=self._last_instr_div,
                           staggering=self._last_stagger)

    # -- low-level clocking (used directly by unit tests) ------------------

    def clock_core(self, index: int,
                   port_samples: Sequence[Tuple[int, int]],
                   stage_slots=None, inflight_words=None,
                   hold: bool = False):
        """Clock core ``index``'s signature units for one cycle."""
        self.ds_units[index].sample(port_samples, hold=hold)
        if self.config.is_variant is IsVariant.PER_STAGE:
            if stage_slots is None:
                raise ValueError("PER_STAGE variant needs stage_slots")
            self.is_units[index].sample_stages(stage_slots, hold=hold)
        else:
            if inflight_words is None:
                raise ValueError("INFLIGHT variant needs inflight_words")
            self.is_units[index].sample_inflight(inflight_words, hold=hold)

    def compare(self, cycle: int, commits0: int = 0,
                commits1: int = 0) -> CycleReport:
        """Compare signatures and update counters for one cycle."""
        data_div = not self.ds_units[0].equal(self.ds_units[1])
        instr_div = not self.is_units[0].equal(self.is_units[1])
        self._tick(cycle, data_div, instr_div, commits0, commits1)
        return self.last_report

    # -- high-level per-cycle observation ------------------------------------

    def observe(self, cycle: int, core0: CoreView,
                core1: CoreView) -> None:
        """Tap both cores for one cycle and evaluate diversity.

        This is the per-cycle fast path; the outcome is available via
        :attr:`last_report` and the accumulated :attr:`stats`.
        """
        if not self.enabled:
            return
        if self._capture is not None:
            self._capture.record(cycle, core0, core1)
        ds0, ds1 = self.ds_units
        is0, is1 = self.is_units
        hold0, hold1 = core0.hold, core1.hold
        if not hold0:
            ds0.sample(core0.regfile.port_samples())
        if not hold1:
            ds1.sample(core1.regfile.port_samples())
        if self._per_stage:
            if not hold0:
                is0.sample_stage_words(core0.stage_words())
            if not hold1:
                is1.sample_stage_words(core1.stage_words())
        else:
            if not hold0:
                is0.sample_inflight(core0.inflight_words())
            if not hold1:
                is1.sample_inflight(core1.inflight_words())
        self._tick(cycle, not ds0.equal(ds1), not is0.equal(is1),
                   core0.commits_this_cycle, core1.commits_this_cycle)

    # -- accounting & reporting ------------------------------------------------

    def _tick(self, cycle: int, data_div: bool, instr_div: bool,
              commits0: int, commits1: int):
        """Account one monitored cycle (shared by observe and compare)."""
        diff_unit = self.instruction_diff
        diff_unit.sample(commits0, commits1)
        stats = self.stats
        stats.sampled_cycles += 1
        no_data = not data_div
        no_instr = not instr_div
        no_div = no_data and no_instr
        if no_data:
            stats.no_data_diversity_cycles += 1
        if no_instr:
            stats.no_instruction_diversity_cycles += 1
        if no_div:
            stats.no_diversity_cycles += 1
            self._report_loss(cycle)
        mx = self._mx
        if mx is not None:
            mx[0].inc()
            if no_data:
                mx[1].inc()
            if no_instr:
                mx[2].inc()
            if no_div:
                mx[3].inc()
        diff = diff_unit.diff
        if self.history is not None:
            self.history.sample(no_data_diversity=no_data,
                                no_instruction_diversity=no_instr,
                                no_diversity=no_div,
                                zero_staggering=diff == 0)
        self._have_report = True
        self._last_cycle = cycle
        self._last_data_div = data_div
        self._last_instr_div = instr_div
        self._last_stagger = diff

    def _report_loss(self, cycle: int):
        if self.mode is ReportingMode.POLLING:
            return
        if self.mode is ReportingMode.INTERRUPT_FIRST:
            if not self.irq.pending:
                self._raise(cycle)
            return
        # INTERRUPT_THRESHOLD
        if (self.stats.no_diversity_cycles >= self.threshold
                and not self.irq.pending):
            self._raise(cycle)

    def _raise(self, cycle: int):
        self.stats.interrupts_raised += 1
        self.irq.raise_irq(cycle)

    # -- management -------------------------------------------------------------

    def finish(self):
        """Close open history episodes at end of run."""
        if self.history is not None:
            self.history.finish()

    def reset(self):
        for unit in self.ds_units:
            unit.reset()
        for unit in self.is_units:
            unit.reset()
        self.instruction_diff.reset()
        if self.history is not None:
            self.history.reset()
        self.irq.reset()
        self.stats = MonitorStats()
        self._have_report = False
        self._mx = None
        self._capture = None

    # -- snapshot protocol ------------------------------------------------

    def state_dict(self) -> dict:
        from ..checkpoint import stats_state
        return {
            "enabled": self.enabled,
            "mode": self.mode.value,
            "threshold": self.threshold,
            "ds_units": [unit.state_dict() for unit in self.ds_units],
            "is_units": [unit.state_dict() for unit in self.is_units],
            "instruction_diff": self.instruction_diff.state_dict(),
            "history": (None if self.history is None
                        else self.history.state_dict()),
            "irq": self.irq.state_dict(),
            "have_report": self._have_report,
            "last_cycle": self._last_cycle,
            "last_data_div": self._last_data_div,
            "last_instr_div": self._last_instr_div,
            "last_stagger": self._last_stagger,
            "stats": stats_state(self.stats),
        }

    def load_state_dict(self, state):
        from ..checkpoint import load_stats_state
        self.enabled = bool(state["enabled"])
        self.mode = ReportingMode(state["mode"])
        self.threshold = int(state["threshold"])
        for unit, entry in zip(self.ds_units, state["ds_units"]):
            unit.load_state_dict(entry)
        for unit, entry in zip(self.is_units, state["is_units"]):
            unit.load_state_dict(entry)
        self.instruction_diff.load_state_dict(state["instruction_diff"])
        if self.history is not None:
            if state["history"] is None:
                raise ValueError("snapshot has no history module state")
            self.history.load_state_dict(state["history"])
        self.irq.load_state_dict(state["irq"])
        self._have_report = bool(state["have_report"])
        self._last_cycle = int(state["last_cycle"])
        self._last_data_div = bool(state["last_data_div"])
        self._last_instr_div = bool(state["last_instr_div"])
        self._last_stagger = int(state["last_stagger"])
        load_stats_state(self.stats, state["stats"])

    def block_diagram(self) -> str:
        """Fig. 4-style description of the monitor's internal blocks."""
        cfg = self.config
        lines = [
            "SafeDM internal blocks (per Fig. 4):",
            "  Signature generator:",
            "    core0/core1 Data Signature: %d port FIFOs x depth %d"
            % (cfg.num_ports, cfg.ds_depth),
            "    core0/core1 Instruction Signature: %s" %
            self.is_units[0].layout(),
            "  Comparators: DS0==DS1 (%d bits), IS0==IS1 (%d bits)"
            % (self.ds_units[0].signature_bits(),
               self.is_units[0].signature_bits()),
            "  Instruction diff: commit-difference staggering counter",
            "  History module: %s" %
            ("attached" if self.history is not None else "not attached"),
            "  APB logic: register file (see repro.core.apb_regs)",
            "  Reporting mode: %s (threshold=%d)"
            % (self.mode.value, self.threshold),
        ]
        return "\n".join(lines)
