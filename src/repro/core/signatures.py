"""Data and instruction signature generators (paper Section III-B).

The *Data Signature* (DS) concatenates, for each monitored register
port, the last ``n`` cycles of (enable, value) samples:

    DS = RP_1^1 .. RP_1^n  RP_2^1 .. RP_2^n  ...  RP_m^1 .. RP_m^n

The *Instruction Signature* (IS) concatenates the per-stage instruction
slots of the pipeline:

    IS = I_1^1 .. I_p^1  I_1^2 .. I_p^2  ...  I_1^o .. I_p^o

with a (valid, encoding) pair per slot, so two cores holding the same
instructions but in different stages produce different signatures.  For
cores without all-or-none stage movement the paper's fallback — the
FIFO of fetched-but-not-retired instructions — is available as
``IsVariant.INFLIGHT``.

Implementation note: units expose both a tuple-building ``signature()``
(introspection, tests) and an ``equal()`` fast path used by the
cycle-loop monitor; both views are always consistent.  ``equal()``
compares *rolling digests* maintained incrementally on each sample —
O(1) per cycle instead of re-tupling every FIFO — which is an
observer-side optimization: the digest is a pure function of the
signature contents, so digest equality tracks signature equality (the
full structural comparison is retained as an assert behind
:func:`set_debug_checks` / ``SAFEDM_DEBUG_SIGNATURES=1``).
"""

from __future__ import annotations

import enum
import os
from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

#: When True, every fast-path digest comparison is cross-checked
#: against the full structural signature comparison (slow path).
DEBUG_SIGNATURE_CHECKS = os.environ.get("SAFEDM_DEBUG_SIGNATURES",
                                        "") == "1"


def set_debug_checks(enabled: bool):
    """Enable/disable the fast-path-vs-slow-path equality assert."""
    global DEBUG_SIGNATURE_CHECKS
    DEBUG_SIGNATURE_CHECKS = bool(enabled)


#: Rolling-digest parameters: polynomial hash over per-cycle row
#: hashes, modulo a Mersenne prime (fast reduction, 61-bit space).
_DIGEST_MOD = (1 << 61) - 1
_DIGEST_BASE = 0x9E3779B97F4A7C15 % _DIGEST_MOD


class IsVariant(enum.Enum):
    """Instruction-signature construction variant."""

    #: Per-stage slots (paper's main design; needs group stage movement).
    PER_STAGE = "per_stage"
    #: FIFO of fetched-but-not-retired instructions (paper's fallback).
    INFLIGHT = "inflight"


@dataclass(frozen=True)
class SignatureConfig:
    """Geometry of the signature units for one core.

    ``ds_depth`` is *n* (paper: "depends on the depth of the processor
    pipeline and is implementation specific"); ``num_ports`` is *m*;
    ``pipeline_width`` is *p*; ``pipeline_stages`` is *o*.
    """

    num_ports: int = 4
    ds_depth: int = 7
    pipeline_width: int = 2
    pipeline_stages: int = 7
    is_variant: IsVariant = IsVariant.PER_STAGE
    #: Depth of the fallback in-flight FIFO (width * stages by default).
    inflight_depth: int = 14
    #: Sample ports every cycle (paper design) or only on port activity
    #: (the strawman the paper argues against; used by the sampling
    #: ablation benchmark).
    sample_every_cycle: bool = True


IDLE = (0, 0)


def inflight_from_stage_words(stage_words) -> Tuple[int, ...]:
    """In-flight instruction window derived from per-stage occupancy.

    The INFLIGHT fallback's fetched-but-not-retired FIFO is exactly the
    pipeline contents read deepest-stage-first
    (:meth:`repro.cpu.core.Core.inflight_words` walks the stages the
    same way), so a captured per-stage stream
    (:mod:`repro.trace.stream_trace`) can be replayed under either IS
    variant without re-simulating.
    """
    words: List[int] = []
    for group in reversed(stage_words):
        if group:
            words.extend(group)
    return tuple(words)


class DataSignatureUnit:
    """Per-register-port FIFOs feeding the Data Signature (Fig. 2a).

    In the paper's every-cycle sampling mode all port FIFOs shift in
    lockstep, so the unit stores one *row* (the tuple of port samples)
    per cycle and keeps a rolling digest over the row window; ``equal``
    is then a single integer comparison.  The activity-sampling
    ablation mode keeps the legacy per-port FIFOs (ports shift
    independently there, so no shared row window exists).
    """

    __slots__ = ("config", "_every_cycle", "_num_ports", "_rows",
                 "_row_hashes", "_digest", "_evict_weight", "_fifos")

    def __init__(self, config: SignatureConfig):
        self.config = config
        self._every_cycle = config.sample_every_cycle
        self._num_ports = config.num_ports
        if self._every_cycle:
            self._fifos = None
            #: Weight of the about-to-be-evicted (oldest) row hash.
            self._evict_weight = pow(_DIGEST_BASE, config.ds_depth - 1,
                                     _DIGEST_MOD)
            self._init_rows()
        else:
            self._rows = None
            self._row_hashes = None
            self._digest = None
            self._evict_weight = None
            self._fifos: List[deque] = [
                deque([IDLE] * config.ds_depth, maxlen=config.ds_depth)
                for _ in range(config.num_ports)
            ]

    def _init_rows(self):
        depth = self.config.ds_depth
        idle_row = (IDLE,) * self._num_ports
        self._rows = deque([idle_row] * depth, maxlen=depth)
        h = hash(idle_row) % _DIGEST_MOD
        self._row_hashes = deque([h] * depth, maxlen=depth)
        digest = 0
        for _ in range(depth):
            digest = (digest * _DIGEST_BASE + h) % _DIGEST_MOD
        self._digest = digest

    def sample(self, port_samples: Sequence[Tuple[int, int]],
               hold: bool = False):
        """Clock one cycle of register-port activity into the FIFOs.

        ``port_samples`` must supply at least ``num_ports`` entries of
        (enable, value); extra ports beyond the monitored set are
        ignored (an integration choice, mirroring the 4 monitored ports
        of the paper's NOEL-V instance).  The pipeline ``hold`` signal
        freezes the FIFOs.
        """
        if hold:
            return
        num_ports = self._num_ports
        if len(port_samples) < num_ports:
            raise ValueError("expected >= %d port samples, got %d"
                             % (num_ports, len(port_samples)))
        if self._every_cycle:
            row = tuple(port_samples[:num_ports])
            h = hash(row) % _DIGEST_MOD
            hashes = self._row_hashes
            evicted = hashes[0]
            self._rows.append(row)
            hashes.append(h)
            self._digest = ((self._digest - evicted * self._evict_weight)
                            * _DIGEST_BASE + h) % _DIGEST_MOD
        else:
            # Ablation mode: record only on activity (loses the timing
            # information the paper's every-cycle sampling preserves).
            for fifo, sample in zip(self._fifos, port_samples):
                if sample[0]:
                    fifo.append(sample)

    # -- comparison ---------------------------------------------------------

    def equal(self, other: "DataSignatureUnit") -> bool:
        """Fast DS comparison (used every cycle by the monitor)."""
        if self._every_cycle and other._every_cycle:
            fast = self._digest == other._digest
            if DEBUG_SIGNATURE_CHECKS:
                slow = self.signature() == other.signature()
                assert fast == slow, (
                    "DS digest fast path disagrees with structural "
                    "comparison (digest=%r, structural=%r)" % (fast, slow))
            return fast
        return self.signature() == other.signature()

    def digest(self) -> Optional[int]:
        """The rolling DS digest (None in the ablation sampling mode)."""
        return self._digest

    def signature(self) -> Tuple:
        """The DS: concatenation of all FIFO contents, oldest first."""
        out = []
        if self._every_cycle:
            rows = self._rows
            for port in range(self._num_ports):
                out.extend(row[port] for row in rows)
        else:
            for fifo in self._fifos:
                out.extend(fifo)
        return tuple(out)

    def signature_bits(self) -> int:
        """Width of the DS in flops (enable + 64-bit value per entry)."""
        return self.config.num_ports * self.config.ds_depth * 65

    def layout(self) -> str:
        """Human-readable Fig. 2a-style layout description."""
        cfg = self.config
        return ("DS = " + " ".join(
            "RP_%d^1..RP_%d^%d" % (port + 1, port + 1, cfg.ds_depth)
            for port in range(cfg.num_ports)))

    def reset(self):
        if self._every_cycle:
            self._init_rows()
        else:
            for fifo in self._fifos:
                fifo.clear()
                fifo.extend([IDLE] * self.config.ds_depth)

    # -- snapshot protocol ------------------------------------------------

    def state_dict(self) -> dict:
        if self._every_cycle:
            return {"rows": [[list(sample) for sample in row]
                             for row in self._rows]}
        return {"fifos": [[list(sample) for sample in fifo]
                          for fifo in self._fifos]}

    def load_state_dict(self, state):
        depth = self.config.ds_depth
        if self._every_cycle:
            rows = [tuple((int(en), int(val)) for en, val in row)
                    for row in state["rows"]]
            if len(rows) != depth:
                raise ValueError("snapshot has %d DS rows, expected %d"
                                 % (len(rows), depth))
            for row in rows:
                if len(row) != self._num_ports:
                    raise ValueError("snapshot DS row width mismatch")
            self._rows = deque(rows, maxlen=depth)
            # Digests are derived, never serialized: recompute with the
            # same formula the live sampling path uses.
            hashes = [hash(row) % _DIGEST_MOD for row in rows]
            self._row_hashes = deque(hashes, maxlen=depth)
            digest = 0
            for h in hashes:
                digest = (digest * _DIGEST_BASE + h) % _DIGEST_MOD
            self._digest = digest
        else:
            fifos = state["fifos"]
            if len(fifos) != self._num_ports:
                raise ValueError("snapshot has %d DS FIFOs, expected %d"
                                 % (len(fifos), self._num_ports))
            self._fifos = [
                deque(((int(en), int(val)) for en, val in fifo),
                      maxlen=depth)
                for fifo in fifos
            ]


class InstructionSignatureUnit:
    """Per-stage slot capture feeding the Instruction Signature (Fig. 2b)."""

    __slots__ = ("config", "_variant", "_stage_words", "_inflight_words",
                 "_digest")

    def __init__(self, config: SignatureConfig):
        self.config = config
        self._variant = config.is_variant
        #: PER_STAGE: per-stage word tuples (None = empty stage).  Kept
        #: as a tuple so the sampled value can be stored as-is (the fast
        #: execution tier writes the stage tuple it already built).
        self._stage_words: Tuple[Optional[Tuple[int, ...]], ...] = \
            (None,) * config.pipeline_stages
        #: INFLIGHT: zero-padded window of in-flight words.
        self._inflight_words: Tuple[int, ...] = \
            (0,) * config.inflight_depth
        self._digest = self._compute_digest()

    def _compute_digest(self) -> int:
        if self._variant is IsVariant.PER_STAGE:
            return hash(self._stage_words)
        return hash(self._inflight_words)

    # -- clocking ----------------------------------------------------------

    def sample_stage_words(self,
                           stage_words: Sequence[Optional[Tuple[int, ...]]],
                           hold: bool = False):
        """Clock one cycle of pipeline-stage occupancy (PER_STAGE mode).

        ``stage_words`` holds, per stage, the tuple of instruction words
        occupying it (None when empty).  On ``hold`` the previous state
        is kept — which equals the live state, since a held pipeline
        moved nothing.
        """
        if self._variant is not IsVariant.PER_STAGE:
            raise ValueError("unit configured for %s" % self._variant)
        if hold:
            return
        words = tuple(stage_words)
        if len(words) != self.config.pipeline_stages:
            raise ValueError("expected %d stages, got %d"
                             % (self.config.pipeline_stages, len(words)))
        self._stage_words = words
        self._digest = hash(words)

    def sample_stages(self, stage_slots: Sequence[Sequence[Tuple[int, int]]],
                      hold: bool = False):
        """Clock from explicit (valid, word) slot form (test-friendly)."""
        words = []
        for stage in stage_slots:
            live = tuple(word for valid, word in stage if valid)
            words.append(live if live else None)
        self.sample_stage_words(words, hold=hold)

    def sample_inflight(self, words: Sequence[int], hold: bool = False):
        """Clock one cycle of the fallback in-flight view (INFLIGHT mode).

        The hardware keeps a FIFO enqueued at fetch / dequeued at retire;
        behaviourally that FIFO's contents *are* the in-flight window, so
        we capture the window directly, zero-padded to the FIFO depth.
        """
        if self._variant is not IsVariant.INFLIGHT:
            raise ValueError("unit configured for %s" % self._variant)
        if hold:
            return
        depth = self.config.inflight_depth
        window = tuple(words[-depth:]) if len(words) > depth \
            else tuple(words)
        self._inflight_words = (0,) * (depth - len(window)) + window
        self._digest = hash(self._inflight_words)

    # -- comparison / introspection ---------------------------------------------

    def equal(self, other: "InstructionSignatureUnit") -> bool:
        """Fast IS comparison (used every cycle by the monitor)."""
        fast = self._digest == other._digest
        if DEBUG_SIGNATURE_CHECKS:
            if self._variant is IsVariant.PER_STAGE:
                slow = self._stage_words == other._stage_words
            else:
                slow = self._inflight_words == other._inflight_words
            assert fast == slow, (
                "IS digest fast path disagrees with structural "
                "comparison (digest=%r, structural=%r)" % (fast, slow))
        return fast

    def digest(self) -> int:
        """The current IS digest (hash of the captured state)."""
        return self._digest

    def signature(self) -> Tuple:
        """The IS: concatenation of all slots, stage-major."""
        if self._variant is IsVariant.INFLIGHT:
            return self._inflight_words
        width = self.config.pipeline_width
        out = []
        for words in self._stage_words:
            slots = [(1, word) for word in words] if words else []
            while len(slots) < width:
                slots.append(IDLE)
            out.extend(slots)
        return tuple(out)

    def signature_bits(self) -> int:
        """Width of the IS in flops (valid + 32-bit encoding per slot)."""
        cfg = self.config
        if self._variant is IsVariant.INFLIGHT:
            return cfg.inflight_depth * 33
        return cfg.pipeline_stages * cfg.pipeline_width * 33

    def layout(self) -> str:
        """Human-readable Fig. 2b-style layout description."""
        cfg = self.config
        if self._variant is IsVariant.INFLIGHT:
            return "IS = fetched-not-retired[1..%d]" % cfg.inflight_depth
        return ("IS = " + " ".join(
            "I_1^%d..I_%d^%d" % (stage + 1, cfg.pipeline_width, stage + 1)
            for stage in range(cfg.pipeline_stages)))

    def reset(self):
        self._stage_words = (None,) * self.config.pipeline_stages
        self._inflight_words = (0,) * self.config.inflight_depth
        self._digest = self._compute_digest()

    # -- snapshot protocol ------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "stage_words": [None if words is None else list(words)
                            for words in self._stage_words],
            "inflight_words": list(self._inflight_words),
        }

    def load_state_dict(self, state):
        stage_words = tuple(None if words is None
                            else tuple(int(word) for word in words)
                            for words in state["stage_words"])
        if len(stage_words) != self.config.pipeline_stages:
            raise ValueError("snapshot has %d IS stages, expected %d"
                             % (len(stage_words),
                                self.config.pipeline_stages))
        inflight = tuple(int(word) for word in state["inflight_words"])
        if len(inflight) != self.config.inflight_depth:
            raise ValueError("snapshot in-flight window depth mismatch")
        self._stage_words = stage_words
        self._inflight_words = inflight
        self._digest = self._compute_digest()
