"""Data and instruction signature generators (paper Section III-B).

The *Data Signature* (DS) concatenates, for each monitored register
port, the last ``n`` cycles of (enable, value) samples:

    DS = RP_1^1 .. RP_1^n  RP_2^1 .. RP_2^n  ...  RP_m^1 .. RP_m^n

The *Instruction Signature* (IS) concatenates the per-stage instruction
slots of the pipeline:

    IS = I_1^1 .. I_p^1  I_1^2 .. I_p^2  ...  I_1^o .. I_p^o

with a (valid, encoding) pair per slot, so two cores holding the same
instructions but in different stages produce different signatures.  For
cores without all-or-none stage movement the paper's fallback — the
FIFO of fetched-but-not-retired instructions — is available as
``IsVariant.INFLIGHT``.

Implementation note: units expose both a tuple-building ``signature()``
(introspection, tests) and an ``equal()`` fast path used by the
cycle-loop monitor; both views are always consistent.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


class IsVariant(enum.Enum):
    """Instruction-signature construction variant."""

    #: Per-stage slots (paper's main design; needs group stage movement).
    PER_STAGE = "per_stage"
    #: FIFO of fetched-but-not-retired instructions (paper's fallback).
    INFLIGHT = "inflight"


@dataclass(frozen=True)
class SignatureConfig:
    """Geometry of the signature units for one core.

    ``ds_depth`` is *n* (paper: "depends on the depth of the processor
    pipeline and is implementation specific"); ``num_ports`` is *m*;
    ``pipeline_width`` is *p*; ``pipeline_stages`` is *o*.
    """

    num_ports: int = 4
    ds_depth: int = 7
    pipeline_width: int = 2
    pipeline_stages: int = 7
    is_variant: IsVariant = IsVariant.PER_STAGE
    #: Depth of the fallback in-flight FIFO (width * stages by default).
    inflight_depth: int = 14
    #: Sample ports every cycle (paper design) or only on port activity
    #: (the strawman the paper argues against; used by the sampling
    #: ablation benchmark).
    sample_every_cycle: bool = True


IDLE = (0, 0)


class DataSignatureUnit:
    """Per-register-port FIFOs feeding the Data Signature (Fig. 2a)."""

    def __init__(self, config: SignatureConfig):
        self.config = config
        self._fifos: List[deque] = [
            deque([IDLE] * config.ds_depth, maxlen=config.ds_depth)
            for _ in range(config.num_ports)
        ]
        self._every_cycle = config.sample_every_cycle

    def sample(self, port_samples: Sequence[Tuple[int, int]],
               hold: bool = False):
        """Clock one cycle of register-port activity into the FIFOs.

        ``port_samples`` must supply at least ``num_ports`` entries of
        (enable, value); extra ports beyond the monitored set are
        ignored (an integration choice, mirroring the 4 monitored ports
        of the paper's NOEL-V instance).  The pipeline ``hold`` signal
        freezes the FIFOs.
        """
        if hold:
            return
        fifos = self._fifos
        if len(port_samples) < len(fifos):
            raise ValueError("expected >= %d port samples, got %d"
                             % (len(fifos), len(port_samples)))
        if self._every_cycle:
            for fifo, sample in zip(fifos, port_samples):
                fifo.append(sample)
        else:
            # Ablation mode: record only on activity (loses the timing
            # information the paper's every-cycle sampling preserves).
            for fifo, sample in zip(fifos, port_samples):
                if sample[0]:
                    fifo.append(sample)

    def equal(self, other: "DataSignatureUnit") -> bool:
        """Fast DS comparison (used every cycle by the monitor)."""
        for mine, theirs in zip(self._fifos, other._fifos):
            if mine != theirs:
                return False
        return True

    def signature(self) -> Tuple:
        """The DS: concatenation of all FIFO contents, oldest first."""
        out = []
        for fifo in self._fifos:
            out.extend(fifo)
        return tuple(out)

    def signature_bits(self) -> int:
        """Width of the DS in flops (enable + 64-bit value per entry)."""
        return self.config.num_ports * self.config.ds_depth * 65

    def layout(self) -> str:
        """Human-readable Fig. 2a-style layout description."""
        cfg = self.config
        return ("DS = " + " ".join(
            "RP_%d^1..RP_%d^%d" % (port + 1, port + 1, cfg.ds_depth)
            for port in range(cfg.num_ports)))

    def reset(self):
        for fifo in self._fifos:
            fifo.clear()
            fifo.extend([IDLE] * self.config.ds_depth)


class InstructionSignatureUnit:
    """Per-stage slot capture feeding the Instruction Signature (Fig. 2b)."""

    def __init__(self, config: SignatureConfig):
        self.config = config
        self._variant = config.is_variant
        #: PER_STAGE: per-stage word tuples (None = empty stage).
        self._stage_words: List[Optional[Tuple[int, ...]]] = \
            [None] * config.pipeline_stages
        #: INFLIGHT: zero-padded window of in-flight words.
        self._inflight_words: Tuple[int, ...] = \
            (0,) * config.inflight_depth

    # -- clocking ----------------------------------------------------------

    def sample_stage_words(self,
                           stage_words: Sequence[Optional[Tuple[int, ...]]],
                           hold: bool = False):
        """Clock one cycle of pipeline-stage occupancy (PER_STAGE mode).

        ``stage_words`` holds, per stage, the tuple of instruction words
        occupying it (None when empty).  On ``hold`` the previous state
        is kept — which equals the live state, since a held pipeline
        moved nothing.
        """
        if self._variant is not IsVariant.PER_STAGE:
            raise ValueError("unit configured for %s" % self._variant)
        if hold:
            return
        if len(stage_words) != self.config.pipeline_stages:
            raise ValueError("expected %d stages, got %d"
                             % (self.config.pipeline_stages,
                                len(stage_words)))
        self._stage_words = list(stage_words)

    def sample_stages(self, stage_slots: Sequence[Sequence[Tuple[int, int]]],
                      hold: bool = False):
        """Clock from explicit (valid, word) slot form (test-friendly)."""
        words = []
        for stage in stage_slots:
            live = tuple(word for valid, word in stage if valid)
            words.append(live if live else None)
        self.sample_stage_words(words, hold=hold)

    def sample_inflight(self, words: Sequence[int], hold: bool = False):
        """Clock one cycle of the fallback in-flight view (INFLIGHT mode).

        The hardware keeps a FIFO enqueued at fetch / dequeued at retire;
        behaviourally that FIFO's contents *are* the in-flight window, so
        we capture the window directly, zero-padded to the FIFO depth.
        """
        if self._variant is not IsVariant.INFLIGHT:
            raise ValueError("unit configured for %s" % self._variant)
        if hold:
            return
        depth = self.config.inflight_depth
        window = tuple(words[-depth:]) if len(words) > depth \
            else tuple(words)
        self._inflight_words = (0,) * (depth - len(window)) + window

    # -- comparison / introspection ---------------------------------------------

    def equal(self, other: "InstructionSignatureUnit") -> bool:
        """Fast IS comparison (used every cycle by the monitor)."""
        if self._variant is IsVariant.PER_STAGE:
            return self._stage_words == other._stage_words
        return self._inflight_words == other._inflight_words

    def signature(self) -> Tuple:
        """The IS: concatenation of all slots, stage-major."""
        if self._variant is IsVariant.INFLIGHT:
            return self._inflight_words
        width = self.config.pipeline_width
        out = []
        for words in self._stage_words:
            slots = [(1, word) for word in words] if words else []
            while len(slots) < width:
                slots.append(IDLE)
            out.extend(slots)
        return tuple(out)

    def signature_bits(self) -> int:
        """Width of the IS in flops (valid + 32-bit encoding per slot)."""
        cfg = self.config
        if self._variant is IsVariant.INFLIGHT:
            return cfg.inflight_depth * 33
        return cfg.pipeline_stages * cfg.pipeline_width * 33

    def layout(self) -> str:
        """Human-readable Fig. 2b-style layout description."""
        cfg = self.config
        if self._variant is IsVariant.INFLIGHT:
            return "IS = fetched-not-retired[1..%d]" % cfg.inflight_depth
        return ("IS = " + " ".join(
            "I_1^%d..I_%d^%d" % (stage + 1, cfg.pipeline_width, stage + 1)
            for stage in range(cfg.pipeline_stages)))

    def reset(self):
        self._stage_words = [None] * self.config.pipeline_stages
        self._inflight_words = (0,) * self.config.inflight_depth
