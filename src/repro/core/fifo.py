"""Hardware-style fixed-depth FIFO with a hold input.

SafeDM's signature generators are built from shift FIFOs: every cycle
the oldest entry is dropped and the newest sample is appended — unless
the pipeline hold signal is asserted, in which case the FIFO keeps its
contents ("the hold signal is used to not overwrite any values in the
FIFOs if the pipeline is stalled", paper Section IV-B.1).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple


class HardwareFifo:
    """Fixed-depth FIFO whose full contents form part of a signature.

    Entries are arbitrary hashable values (register-port samples or
    instruction words).  On reset all entries are zeroed, like flop
    reset in the VHDL implementation.

    ``contents()`` is called on every comparison in signature-style
    use, so the snapshot tuple is cached and invalidated only when a
    push actually lands (holds keep both the contents and the cache).
    """

    __slots__ = ("depth", "reset_value", "_entries", "_contents_cache",
                 "pushes", "held_cycles")

    def __init__(self, depth: int, reset_value=0):
        if depth < 1:
            raise ValueError("FIFO depth must be >= 1")
        self.depth = depth
        self.reset_value = reset_value
        self._entries: Deque = deque([reset_value] * depth, maxlen=depth)
        self._contents_cache: Optional[Tuple] = None
        self.pushes = 0
        self.held_cycles = 0

    def push(self, value, hold: bool = False):
        """Clock the FIFO: append ``value`` unless ``hold``."""
        if hold:
            self.held_cycles += 1
            return
        self._entries.append(value)
        self._contents_cache = None
        self.pushes += 1

    def contents(self) -> Tuple:
        """Snapshot of all entries, oldest first."""
        cached = self._contents_cache
        if cached is None:
            cached = self._contents_cache = tuple(self._entries)
        return cached

    @property
    def newest(self):
        return self._entries[-1]

    @property
    def oldest(self):
        return self._entries[0]

    def reset(self):
        self._entries = deque([self.reset_value] * self.depth,
                              maxlen=self.depth)
        self._contents_cache = None

    def __len__(self) -> int:
        return self.depth

    # -- snapshot protocol ------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "entries": [list(entry) if isinstance(entry, tuple) else entry
                        for entry in self._entries],
            "stats": {"pushes": self.pushes,
                      "held_cycles": self.held_cycles},
        }

    def load_state_dict(self, state):
        entries = [tuple(entry) if isinstance(entry, list) else entry
                   for entry in state["entries"]]
        if len(entries) != self.depth:
            raise ValueError("snapshot has %d FIFO entries, expected %d"
                             % (len(entries), self.depth))
        self._entries = deque(entries, maxlen=self.depth)
        self._contents_cache = None
        stats = state["stats"]
        self.pushes = int(stats["pushes"])
        self.held_cycles = int(stats["held_cycles"])

    def __eq__(self, other) -> bool:
        if isinstance(other, HardwareFifo):
            return self.contents() == other.contents()
        return NotImplemented

    def __hash__(self):
        return hash(self.contents())
