"""Instruction-diff (staggering) counter (paper Section IV-B.3).

"… increases or decreases the count each time core 0 or 1, respectively,
commits an instruction."  The running value is therefore the commit-count
difference between the two monitored cores; zero means the cores have
made identical progress (zero staggering).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class InstructionDiffStats:
    """Counters accumulated over a monitored run."""

    zero_staggering_cycles: int = 0
    min_diff: int = 0
    max_diff: int = 0
    sampled_cycles: int = 0


class InstructionDiff:
    """Commit-difference counter between two cores."""

    __slots__ = ("diff", "stats")

    def __init__(self):
        self.diff = 0
        self.stats = InstructionDiffStats()

    def sample(self, commits_core0: int, commits_core1: int):
        """Clock one cycle of commit activity from both cores."""
        diff = self.diff + commits_core0 - commits_core1
        self.diff = diff
        stats = self.stats
        stats.sampled_cycles += 1
        if diff == 0:
            stats.zero_staggering_cycles += 1
        if diff < stats.min_diff:
            stats.min_diff = diff
        elif diff > stats.max_diff:
            stats.max_diff = diff

    @property
    def zero_staggering(self) -> bool:
        """True while the commit difference is exactly zero."""
        return self.diff == 0

    def reset(self):
        self.diff = 0
        self.stats = InstructionDiffStats()

    # -- snapshot protocol ------------------------------------------------

    def state_dict(self) -> dict:
        from ..checkpoint import stats_state
        return {"diff": self.diff, "stats": stats_state(self.stats)}

    def load_state_dict(self, state):
        from ..checkpoint import load_stats_state
        self.diff = int(state["diff"])
        load_stats_state(self.stats, state["stats"])
