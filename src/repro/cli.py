"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run <kernel> [--stagger N] [--late-core {0,1}] [--mode M]
  [--threshold N] [--capture FILE | --replay FILE]
  [--checkpoint-every N [--resume]]`` — one redundant run with SafeDM
  counters; ``--capture`` records the raw signature streams to FILE,
  ``--replay`` recomputes the counters from such a file without
  simulating.  ``--checkpoint-every`` snapshots the full machine state
  into the run cache every N cycles; ``--resume`` restores the latest
  such checkpoint and finishes the run from there.
* ``row <kernel>`` — one full Table I row (all staggering setups).
* ``table1 [kernels...] [--jobs N] [--no-cache] [--capture]
  [--replay]`` — the Table I sweep (all 29 by default), parallel
  across cores and run-cached; ``--capture``/``--replay`` wire the
  sweep into the stream-trace cache.
* ``sweep-monitor <kernel> [--thresholds ...] [--modes ...]
  [--is-variants ...] [--ds-depths ...]`` — evaluate many monitor
  configurations over ONE simulation via capture-once/replay-many.
* ``campaign <kernel> [--injections N] [--shared] [--jobs N]
  [--checkpoint-every N]`` — CCF fault-injection campaign with SafeDM
  cross-referencing; ``--checkpoint-every`` forks each injection from
  a golden-run checkpoint instead of re-simulating from cycle 0, and
  ``--jobs`` spreads the injections across worker processes.
* ``montecarlo <kernel> [--trials N] [--kind ccf|transient]
  [--seed N] [--jobs N] [--backend auto|numpy|python]
  [--format text|json]`` — batched Monte-Carlo fault campaign: one
  instrumented golden run classifies provably-masked trials without
  simulation; only live trials fork from checkpoints.  Same seed
  gives a bit-identical campaign for any jobs count or backend.
* ``lint [kernels...|--all] [--prove-masking] [--format text|json]``
  — static analysis (CFG + dataflow + abstract-interpretation
  diagnostics) over kernel images; ``--prove-masking`` adds the L013
  fault-masking dead-window report; non-zero exit on error-severity
  findings.
* ``diversity-static <kernel_a> <kernel_b> [--stagger N]
  [--validate] [--format text|json]`` — static lower bound on SafeDM
  instruction-signature diversity for a staggered image pair, with
  optional validation against the simulated monitor.
* ``metrics <snapshot.json>`` — pretty-print a telemetry snapshot.
* ``list`` — available kernels with category and description.
* ``figures`` — regenerate Figs. 1-4 as structural descriptions.
* ``overheads`` — the Section V-D area/power numbers.
* ``vcd <kernel> <out.vcd>`` — dump monitor waveforms for a run.
* ``disasm <kernel>`` — disassemble a kernel image.

``run``, ``table1``, and ``campaign`` accept ``--metrics FILE`` (JSON
telemetry snapshot, see ``repro metrics``) and ``--trace FILE``
(Chrome ``about://tracing`` / Perfetto span timeline).

``run``, ``table1``, ``sweep-monitor``, and ``campaign`` accept
``--engine {reference,fast}`` to select the execution tier
(:mod:`repro.engine`); results are bit-identical, the fast tier is
just faster.
"""

from __future__ import annotations

import argparse
import sys


def format_columns(rows, headers=None, min_width=16) -> str:
    """Left-aligned column layout shared by ``list`` and ``metrics``.

    Every column but the last is padded to the longest cell (at least
    ``min_width``); the last column runs free.  With ``headers`` a
    title row plus dashed rule is prepended.
    """
    rows = [tuple(str(cell) for cell in row) for row in rows]
    sized = ([tuple(headers)] if headers else []) + rows
    if not sized:
        return ""
    columns = max(len(row) for row in sized)
    widths = [
        max([min_width] + [len(row[i]) for row in sized if i < len(row)])
        for i in range(columns - 1)
    ]

    def fmt(row):
        cells = [cell.ljust(widths[i]) if i < len(widths) else cell
                 for i, cell in enumerate(row)]
        return " ".join(cells).rstrip()

    lines = []
    if headers:
        lines.append(fmt(headers))
        lines.append("-" * max(len(fmt(row)) for row in sized))
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


#: Redundancy schemes (mirrors ``repro.schemes.SCHEME_KINDS``; spelled
#: out so building the parser does not import the scheme framework).
_SCHEME_CHOICES = ("safedm", "lockstep", "tmr", "multipair", "dme")

#: Kernel subset ``compare-schemes --all`` sweeps: short kernels from
#: three different control-flow families, keeping the full 5-scheme
#: matrix tractable on one machine.
_COMPARE_KERNELS = ("binarysearch", "bitonic", "cosf")


def _add_engine_flag(parser):
    parser.add_argument("--engine", default="reference",
                        choices=("reference", "fast"),
                        help="execution tier: the reference interpreter "
                             "or the block-compiled fast tier "
                             "(bit-identical results)")


def _add_telemetry_flags(parser):
    parser.add_argument("--metrics", default=None, metavar="FILE",
                        help="write a telemetry JSON snapshot to FILE")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="write a Chrome about://tracing JSON "
                             "trace to FILE")


def _make_telemetry(args):
    """(metrics, tracer) per the ``--metrics``/``--trace`` flags."""
    metrics = tracer = None
    if args.metrics:
        from .telemetry import MetricsRegistry
        metrics = MetricsRegistry()
    if args.trace:
        from .telemetry import Tracer
        tracer = Tracer()
    return metrics, tracer


def _save_telemetry(args, metrics, tracer, **meta):
    if metrics is not None:
        from .telemetry import write_snapshot
        write_snapshot(metrics, args.metrics, meta=meta)
        print("metrics snapshot written to %s (%d series)"
              % (args.metrics, len(metrics)), file=sys.stderr)
    if tracer is not None:
        tracer.save(args.trace)
        print("trace written to %s (%d spans)"
              % (args.trace, len(tracer)), file=sys.stderr)


def _cmd_list(args) -> int:
    from .workloads import all_names, workload
    rows = [(spec.name, spec.category, spec.description)
            for spec in (workload(name) for name in all_names())]
    print(format_columns(rows,
                         headers=("kernel", "category", "description")))
    return 0


class _RunCheckpointer:
    """Persists ``repro run`` snapshots into the run cache.

    Checkpoints are keyed by the *monitor* key (simulation key plus
    signature geometry, mode, and threshold): a snapshot holds the full
    SoC state including the monitor, so two runs differing only in the
    reporting mode must not share checkpoints.  A small index entry
    (same cadence-qualified key space) records which cycles have
    snapshots so ``--resume`` can find the latest one.
    """

    def __init__(self, args, mode):
        from .runner.cache import (
            CheckpointIndexStore,
            CheckpointStore,
            checkpoint_index_key,
            checkpoint_key,
            monitor_key,
            program_digest,
            signature_digest,
            sim_config_digest,
            simulation_key,
        )
        from .workloads import program
        self._checkpoint_key = checkpoint_key
        self.kernel = args.kernel
        self.every = args.checkpoint_every
        sim = simulation_key(program_digest(program(args.kernel)),
                             sim_config_digest(None),
                             benchmark=args.kernel,
                             stagger_nops=args.stagger,
                             late_core=args.late_core,
                             rr_start=0, max_cycles=2_000_000)
        self.key = monitor_key(sim, signature_dig=signature_digest(None),
                               mode_value=mode.value,
                               threshold=args.threshold)
        self.index_key = checkpoint_index_key(self.key, every=self.every)
        self.store = CheckpointStore()
        self.index_store = CheckpointIndexStore()
        self.cycles = []

    def save(self, soc):
        snap = soc.snapshot(benchmark=self.kernel,
                            checkpoint_every=self.every,
                            sim_key=self.key)
        self.store.put_blob(
            self._checkpoint_key(self.key, cycle=soc.cycle,
                                 every=self.every),
            snap.encode())
        self.cycles.append(soc.cycle)

    def latest(self):
        """Latest decodable cached snapshot, or None."""
        index = self.index_store.get(self.index_key)
        if not index:
            return None
        cycles = sorted(int(c) for c in index.get("cycles", ()))
        for cycle in reversed(cycles):
            snap = self.store.get(self._checkpoint_key(
                self.key, cycle=cycle, every=self.every))
            if snap is not None:
                # Seed the index with what is still on disk so finish()
                # rewrites a truthful cycle list.
                self.cycles = [c for c in cycles if c <= cycle]
                return snap
        return None

    def finish(self):
        if self.cycles:
            self.index_store.put(self.index_key,
                                 {"every": self.every,
                                  "cycles": sorted(set(self.cycles))})


def _cmd_run(args) -> int:
    from .core.monitor import ReportingMode
    from .workloads import program
    metrics, tracer = _make_telemetry(args)
    mode = ReportingMode(args.mode)
    if (args.resume or args.checkpoint_every) \
            and (args.capture or args.replay):
        print("error: --checkpoint-every/--resume cannot be combined "
              "with --capture/--replay", file=sys.stderr)
        return 2
    if args.scheme and (args.capture or args.replay
                        or args.checkpoint_every or args.resume):
        print("error: --scheme runs do not support --capture/--replay/"
              "--checkpoint-every/--resume", file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint_every:
        print("error: --resume needs --checkpoint-every N (the cadence "
              "identifies the checkpoint set)", file=sys.stderr)
        return 2
    if args.replay:
        from .replay import replay_run
        from .trace import StreamTrace
        trace = StreamTrace.load(args.replay)
        meta = trace.meta
        if (meta.benchmark != args.kernel
                or meta.stagger_nops != args.stagger
                or meta.late_core != args.late_core):
            print("error: trace %s was captured for %s nops=%d late=%d;"
                  " a different simulation cannot be replayed —"
                  " re-simulate (repro run %s --capture ...)"
                  % (args.replay, meta.benchmark, meta.stagger_nops,
                     meta.late_core, args.kernel), file=sys.stderr)
            return 2
        result = replay_run(trace, mode=mode,
                            threshold=args.threshold)
        print("replayed from %s (%d cycles captured)"
              % (args.replay, meta.cycles), file=sys.stderr)
    elif args.capture:
        from .soc.experiment import run_redundant_captured
        result, trace = run_redundant_captured(
            program(args.kernel), benchmark=args.kernel,
            stagger_nops=args.stagger, late_core=args.late_core,
            mode=mode, threshold=args.threshold, metrics=metrics,
            tracer=tracer, engine=args.engine)
        trace.save(args.capture)
        print("stream trace written to %s (%d samples, %d bytes)"
              % (args.capture, len(trace), trace.byte_size()),
              file=sys.stderr)
    else:
        from .soc.experiment import run_redundant

        class _Grab:
            soc = None

            def __call__(self, soc):
                self.soc = soc

        grab = _Grab()
        checkpointer = None
        resume_from = None
        if args.checkpoint_every:
            checkpointer = _RunCheckpointer(args, mode)
            if args.resume:
                resume_from = checkpointer.latest()
                if resume_from is None:
                    print("error: no cached checkpoint for this run; "
                          "run once with --checkpoint-every %d first"
                          % args.checkpoint_every, file=sys.stderr)
                    return 2
                print("resuming from cycle %d" % resume_from.meta.cycle,
                      file=sys.stderr)
        result = run_redundant(program(args.kernel),
                               benchmark=args.kernel,
                               stagger_nops=args.stagger,
                               late_core=args.late_core,
                               mode=mode, threshold=args.threshold,
                               metrics=metrics, tracer=tracer,
                               checkpoint_every=args.checkpoint_every,
                               on_checkpoint=(checkpointer.save
                                              if checkpointer else None),
                               resume_from=resume_from,
                               engine=args.engine,
                               scheme=args.scheme,
                               soc_hook=grab)
        if grab.soc is not None and grab.soc.engine_stats is not None:
            stats = grab.soc.engine_stats
            if stats.fallback_reason is not None:
                print("engine: fell back to reference (%s)"
                      % stats.fallback_reason, file=sys.stderr)
            elif stats.engine == "fast":
                print("engine: fast tier, %d block(s) compiled, "
                      "%d superblock link(s), tier hit rate %.1f%%"
                      % (stats.blocks_compiled, stats.superblock_links,
                         100.0 * stats.tier_hit_rate),
                      file=sys.stderr)
                print("engine: %d deopt cycle(s), %d reference "
                      "delegation(s), %d recompilation(s)"
                      % (stats.deopts, stats.delegations,
                         stats.recompilations), file=sys.stderr)
                if stats.deopt_reasons:
                    print("engine: deopt reasons: %s"
                          % " ".join("%s=%d" % item for item in
                                     sorted(stats.deopt_reasons.items())),
                          file=sys.stderr)
        if checkpointer is not None:
            checkpointer.finish()
            print("%d checkpoint(s) in the run cache; continue an "
                  "interrupted run with --resume"
                  % len(checkpointer.cycles), file=sys.stderr)
    print(result.summary())
    print("finished=%s committed=%d ipc=%.2f interrupts=%d"
          % (result.finished, result.committed, result.ipc,
             result.interrupts))
    print("no-data-div=%d no-instr-div=%d"
          % (result.no_data_diversity_cycles,
             result.no_instruction_diversity_cycles))
    if result.scheme_stats is not None:
        stats = result.scheme_stats
        extras = " ".join("%s=%s" % (k, stats[k]) for k in stats
                          if k not in ("kind", "replicas", "outputs",
                                       "detected"))
        print("scheme=%s replicas=%d outputs=%s detected=%s%s"
              % (result.scheme, stats.get("replicas", 0),
                 ",".join("%#x" % out for out in stats["outputs"]),
                 stats["detected"], " " + extras if extras else ""))
    _save_telemetry(args, metrics, tracer, command="run",
                    kernel=args.kernel, stagger_nops=args.stagger)
    return 0 if result.finished else 1


def _cmd_row(args) -> int:
    from .analysis.tables import format_table1
    from .soc.experiment import PAPER_STAGGER_VALUES, run_row
    from .workloads import program
    cells = run_row(program(args.kernel), args.kernel,
                    stagger_values=PAPER_STAGGER_VALUES)
    print(format_table1({args.kernel: cells}, PAPER_STAGGER_VALUES))
    return 0


def _cmd_table1(args) -> int:
    from .analysis.tables import format_table1, format_table1_csv
    from .runner import ParallelSweep
    from .soc.experiment import PAPER_STAGGER_VALUES
    from .workloads import all_names
    names = args.kernels or all_names()
    metrics, tracer = _make_telemetry(args)
    sweep = ParallelSweep(jobs=args.jobs, use_cache=not args.no_cache,
                          progress=True, metrics=metrics, tracer=tracer,
                          capture=args.capture, replay=args.replay,
                          engine=args.engine)
    rows = sweep.run_table(names, stagger_values=PAPER_STAGGER_VALUES)
    print(format_table1(rows, PAPER_STAGGER_VALUES))
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(format_table1_csv(rows, PAPER_STAGGER_VALUES))
        print("CSV written to %s" % args.csv, file=sys.stderr)
    _save_telemetry(args, metrics, tracer, command="table1",
                    kernels=len(names), jobs=sweep.jobs)
    return 0


def _cmd_sweep_monitor(args) -> int:
    from .core.monitor import ReportingMode
    from .core.signatures import IsVariant, SignatureConfig
    from .replay import MonitorPoint, MonitorSweep
    metrics, tracer = _make_telemetry(args)

    signatures = [SignatureConfig(is_variant=IsVariant(variant),
                                  num_ports=ports, ds_depth=depth)
                  for variant in args.is_variants
                  for ports in args.num_ports
                  for depth in args.ds_depths]
    points = [MonitorPoint(mode=ReportingMode(mode), threshold=thr,
                           signature=sig)
              for sig in signatures
              for mode in args.modes
              for thr in args.thresholds]

    sweep = MonitorSweep(use_cache=not args.no_cache,
                         metrics=metrics, tracer=tracer,
                         engine=args.engine)
    outcome = sweep.sweep(args.kernel, points,
                          stagger_nops=args.stagger,
                          late_core=args.late_core,
                          max_cycles=args.max_cycles)

    rows = [(p.mode.value, p.threshold, p.signature.is_variant.value,
             p.signature.num_ports, p.signature.ds_depth,
             r.no_diversity_cycles, r.no_data_diversity_cycles,
             r.no_instruction_diversity_cycles,
             r.zero_staggering_cycles, r.interrupts)
            for p, r in zip(outcome.points, outcome.results)]
    print(format_columns(rows, headers=(
        "mode", "thr", "is", "ports", "depth", "no_div", "no_data",
        "no_instr", "zero_stag", "irq"), min_width=8))

    parts = ["%d point(s) over %d simulated cycles"
             % (len(points), outcome.cycles)]
    if outcome.cache_hits:
        parts.append("%d from run cache" % outcome.cache_hits)
    if outcome.captured:
        parts.append("captured once in %.2fs (%d KiB trace)"
                     % (outcome.capture_seconds,
                        outcome.trace_bytes // 1024))
    elif len(points) > outcome.cache_hits:
        parts.append("trace reused from cache")
    if outcome.replay_seconds:
        parts.append("replayed in %.2fs" % outcome.replay_seconds)
    speedup = outcome.speedup_estimate()
    if speedup is not None:
        parts.append("~%.1fx vs per-point simulation" % speedup)
    print("; ".join(parts), file=sys.stderr)

    _save_telemetry(args, metrics, tracer, command="sweep-monitor",
                    kernel=args.kernel, points=len(points))
    return 0


def _cmd_campaign(args) -> int:
    from .fault import (
        run_ccf_campaign,
        shared_address_config,
        spread_cycles,
    )
    from .soc.experiment import run_redundant
    from .workloads import program
    prog = program(args.kernel)
    if args.scheme:
        if args.shared or args.checkpoint_every:
            print("error: --scheme trials use per-scheme topologies; "
                  "--shared/--checkpoint-every apply only to the "
                  "SafeDM pair campaign", file=sys.stderr)
            return 2
        from .fault import run_scheme_matrix
        from .schemes.matrix import matrix_table
        metrics, tracer = _make_telemetry(args)
        rows = run_scheme_matrix(prog, benchmark=args.kernel,
                                 schemes=[args.scheme],
                                 num_faults=args.injections,
                                 stimuli=args.stimuli,
                                 max_cycles=args.max_cycles,
                                 metrics=metrics, tracer=tracer)
        print(matrix_table(rows))
        _save_telemetry(args, metrics, tracer, command="campaign",
                        kernel=args.kernel, scheme=args.scheme)
        return 0 if rows[0].silent == 0 else 1
    config = shared_address_config() if args.shared else None
    metrics, tracer = _make_telemetry(args)
    # A fault-free probe run fixes the timeline length the injection
    # instants are spread across.
    probe = run_redundant(prog, benchmark=args.kernel, config=config,
                          max_cycles=args.max_cycles, tracer=tracer,
                          engine=args.engine)
    cycles = spread_cycles(probe.cycles, args.injections)
    result = run_ccf_campaign(prog, cycles, stimuli=args.stimuli,
                              config=config, max_cycles=args.max_cycles,
                              metrics=metrics, tracer=tracer,
                              checkpoint_every=args.checkpoint_every,
                              jobs=(args.jobs if args.jobs != 0
                                    else None),
                              cache_dir=(True if args.checkpoint_every
                                         and not args.no_cache
                                         else None),
                              benchmark=args.kernel,
                              engine=args.engine)
    print("%s over %d cycles:" % (args.kernel, probe.cycles))
    print(result.summary())
    print("detected-or-flagged=%d" % result.detected_or_flagged)
    _save_telemetry(args, metrics, tracer, command="campaign",
                    kernel=args.kernel, injections=len(result.injections),
                    shared=bool(args.shared))
    # The paper's no-false-negative property: a silent escape in a
    # cycle SafeDM called diverse would falsify the reproduction.
    return 0 if result.silent_despite_diversity == 0 else 1


def _cmd_compare_schemes(args) -> int:
    from .fault import run_scheme_matrix
    from .schemes.matrix import matrix_table
    from .workloads import program
    kernels = args.kernels or (list(_COMPARE_KERNELS) if args.all
                               else ["binarysearch"])
    schemes = args.schemes or list(_SCHEME_CHOICES)
    metrics, tracer = _make_telemetry(args)
    failures = 0
    for kernel in kernels:
        rows = run_scheme_matrix(program(kernel), benchmark=kernel,
                                 schemes=schemes,
                                 num_faults=args.faults,
                                 stimuli=args.stimuli,
                                 max_cycles=args.max_cycles,
                                 metrics=metrics, tracer=tracer)
        print("%s (golden runs: %s cycles):"
              % (kernel, "/".join(str(r.golden_cycles) for r in rows)))
        print(matrix_table(rows))
        print()
        # The diversity ≡ 0 control: lockstep must catch every
        # unmasked CCF; a silent escape there is a framework bug.
        failures += sum(r.silent for r in rows
                        if r.scheme == "lockstep")
    _save_telemetry(args, metrics, tracer, command="compare-schemes",
                    kernels=len(kernels), schemes=len(schemes))
    return 0 if failures == 0 else 1


def _cmd_montecarlo(args) -> int:
    import json
    import time

    from .fault import shared_address_config
    from .montecarlo import BatchedCampaign, batch_statistics
    from .workloads import program
    prog = program(args.kernel)
    config = shared_address_config() if args.shared else None
    metrics, tracer = _make_telemetry(args)

    start = time.perf_counter()
    campaign = BatchedCampaign(prog, benchmark=args.kernel,
                               config=config,
                               max_cycles=args.max_cycles,
                               checkpoint_every=args.checkpoint_every,
                               engine=args.engine,
                               backend=args.backend)
    if args.kind == "ccf":
        batch = campaign.sample_ccf(args.trials, seed=args.seed)
    else:
        batch = campaign.sample_transient(args.trials, seed=args.seed)
    result = campaign.run(batch, jobs=(args.jobs if args.jobs != 0
                                       else None),
                          seed=args.seed, metrics=metrics)
    wall = time.perf_counter() - start
    stats = batch_statistics(batch, bins=args.bins,
                             end_cycle=result.golden_cycles,
                             seed=args.seed)

    if args.format == "json":
        print(json.dumps({"summary": result.summary_dict(),
                          "statistics": stats,
                          "wall_s": round(wall, 3),
                          "trials_per_s": round(batch.n / wall, 1)},
                         indent=2))
    else:
        print("%s: %d %s trials over %d cycles (seed %d)"
              % (args.kernel, batch.n, batch.kind,
                 result.golden_cycles, args.seed))
        print(batch.summary())
        print("analytic=%d simulated=%d forks=%d converged=%d"
              % (result.analytic, result.simulated, result.forks,
                 result.converged))
        rows = [(row["cycle_lo"], row["cycle_hi"], row["trials"],
                 row["covered"], "%.3f" % row["coverage"])
                for row in stats["coverage_by_cycle"]]
        print(format_columns(rows, headers=("cycle_lo", "cycle_hi",
                                            "trials", "covered",
                                            "coverage")))
        latency = stats["divergence_latency"]
        if latency:
            print("divergence latency cycles: p50=%d p90=%d p99=%d "
                  "(n=%d)" % (latency["p50"], latency["p90"],
                              latency["p99"], latency["n"]))
        lifetime = stats["masked_lifetime"]
        if lifetime:
            print("masked corruption lifetime: p50=%d p90=%d p99=%d "
                  "(n=%d)" % (lifetime["p50"], lifetime["p90"],
                              lifetime["p99"], lifetime["n"]))
        print("%.1f trials/s (golden %.2fs, classify %.3fs, "
              "simulate %.2fs)" % (batch.n / wall,
                                   result.golden_wall_s,
                                   result.classify_wall_s,
                                   result.simulate_wall_s),
              file=sys.stderr)

    _save_telemetry(args, metrics, tracer, command="montecarlo",
                    kernel=args.kernel, trials=batch.n,
                    kind=batch.kind, seed=args.seed)
    # The paper's no-false-negative property, now at Monte-Carlo
    # scale: a silent escape in a diverse cycle falsifies the repro.
    return 0 if batch.silent_despite_diversity == 0 else 1


def _cmd_lint(args) -> int:
    import json

    from .lint import lint_workload
    from .workloads import all_names
    names = (all_names() if args.all or not args.kernels
             else list(args.kernels))
    metrics, tracer = _make_telemetry(args)

    prove = getattr(args, "prove_masking", False)
    reports = []
    for name in names:
        if tracer is not None:
            with tracer.span("lint", category="lint", kernel=name):
                report = lint_workload(name, prove_masking=prove)
        else:
            report = lint_workload(name, prove_masking=prove)
        if metrics is not None:
            from .telemetry import collect_lint
            collect_lint(report, metrics)
        reports.append(report)

    ok = all(report.ok for report in reports)
    if args.format == "json":
        print(json.dumps({"schema": 2,
                          "ok": ok,
                          "suppressed": sum(len(r.suppressed)
                                            for r in reports),
                          "reports": [r.to_dict() for r in reports]},
                         indent=2))
    else:
        for report in reports:
            for diag in report.diagnostics:
                print("%s:%s: %s %s: %s"
                      % (report.name, diag.lineno or "?", diag.code,
                         diag.severity, diag.message))
        rows = [(r.name, r.block_count, r.instr_count, len(r.errors),
                 len(r.warnings), len(r.suppressed)) for r in reports]
        print(format_columns(rows, headers=("kernel", "blocks",
                                            "instructions", "errors",
                                            "warnings", "suppressed")))
        print("%d kernel(s) linted, %d finding(s), %d error(s)"
              % (len(reports),
                 sum(len(r.diagnostics) for r in reports),
                 sum(len(r.errors) for r in reports)))
    _save_telemetry(args, metrics, tracer, command="lint",
                    kernels=len(names))
    return 0 if ok else 1


def _cmd_diversity_static(args) -> int:
    import json

    from .lint.diversity import (
        measure_instruction_diversity,
        predict_instruction_diversity,
        validate_bound,
    )
    from .workloads import program
    prog_a = program(args.kernel_a)
    prog_b = program(args.kernel_b)
    bound = predict_instruction_diversity(prog_a, prog_b,
                                          stagger=args.stagger)
    doc = bound.to_dict()
    if args.validate:
        if args.kernel_a != args.kernel_b:
            print("error: --validate simulates the redundant "
                  "configuration, which replicates one kernel "
                  "(kernel_a must equal kernel_b)")
            return 2
        verdicts = measure_instruction_diversity(prog_a, args.stagger)
        checked = predict_instruction_diversity(
            prog_a, prog_b, stagger=args.stagger,
            horizon=len(verdicts))
        ok, detail = validate_bound(checked, verdicts)
        doc = checked.to_dict()
        doc["validated"] = ok
        doc["validation_detail"] = detail
        doc["measured_cycles"] = len(verdicts)
    if args.format == "json":
        print(json.dumps(doc, indent=2))
    else:
        print("static IS-diversity bound: %s + %s, stagger %d"
              % (args.kernel_a, args.kernel_b, args.stagger))
        if not bound.holds:
            print("  no claim: %s" % bound.reason)
        elif not bound.windows:
            print("  empty bound (%s)" % (bound.reason or
                                          "window too small"))
        else:
            print("  head text: %d words over %d L1I line(s), "
                  "refill budget %d cycles"
                  % (bound.text_words, bound.text_lines,
                     bound.refill_budget))
            print("  proven window: cycles [%d, %d)"
                  % (bound.window_start, bound.window_end))
            for w in doc["windows"]:
                print("    [%6d, %6d)  >= %d diverse cycles"
                      % (w["start"], w["end"], w["lower_bound"]))
            print("  total lower bound: %d instruction-diverse "
                  "cycle(s)" % doc["total_lower_bound"])
        if "validated" in doc:
            print("  validated against simulation: %s (%s)"
                  % ("OK" if doc["validated"] else "VIOLATED",
                     doc["validation_detail"]))
    if "validated" in doc and not doc["validated"]:
        return 1
    return 0


def _cmd_metrics(args) -> int:
    from .telemetry import load_snapshot, snapshot_rows
    doc = load_snapshot(args.snapshot)
    meta = doc.get("meta") or {}
    if meta:
        print("# " + " ".join("%s=%s" % (k, meta[k])
                              for k in sorted(meta)))
    print(format_columns(snapshot_rows(doc),
                         headers=("metric", "kind", "value")))
    return 0


def _cmd_figures(args) -> int:
    from .baselines.lockstep import LockstepComparator
    from .core.history import HistoryModule
    from .core.monitor import DiversityMonitor
    from .core.signatures import (
        DataSignatureUnit,
        InstructionSignatureUnit,
        SignatureConfig,
    )
    from .soc.mpsoc import MPSoC
    config = SignatureConfig()
    print("Fig. 1:\n%s\n" % LockstepComparator().describe())
    print("Fig. 2a: %s" % DataSignatureUnit(config).layout())
    print("Fig. 2b: %s\n" % InstructionSignatureUnit(config).layout())
    print("Fig. 3:\n%s\n" % MPSoC().describe())
    print("Fig. 4:\n%s" % DiversityMonitor(
        history=HistoryModule()).block_diagram())
    return 0


def _cmd_overheads(args) -> int:
    from .core.overheads import (
        BASELINE_MPSOC_LUTS,
        BASELINE_MPSOC_WATTS,
        estimate,
    )
    report = estimate()
    print("SafeDM: %d LUTs (%.1f%% of the %d-LUT MPSoC), %.3f W "
          "(%.2f%% of %.1f W)"
          % (report.luts, report.area_percent, BASELINE_MPSOC_LUTS,
             report.watts, report.power_percent, BASELINE_MPSOC_WATTS))
    return 0


def _cmd_vcd(args) -> int:
    from .soc.mpsoc import MPSoC
    from .trace.vcd import monitor_vcd
    from .workloads import program
    soc = MPSoC()
    soc.start_redundant(program(args.kernel),
                        stagger_nops=args.stagger)
    vcd = monitor_vcd(soc, max_cycles=args.max_cycles)
    vcd.save(args.output)
    print("wrote %s (%d cycles simulated)" % (args.output, soc.cycle))
    return 0


def _cmd_disasm(args) -> int:
    from .isa.disassembler import disassemble_program, format_listing
    from .workloads import program
    prog = program(args.kernel)
    print(format_listing(disassemble_program(prog),
                         symbols=prog.symbols))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SafeDM reproduction (DATE 2022) command line")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available kernels") \
        .set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="one redundant run")
    p_run.add_argument("kernel")
    p_run.add_argument("--stagger", type=int, default=0)
    p_run.add_argument("--late-core", type=int, choices=(0, 1),
                       default=1)
    p_run.add_argument("--mode", default="polling",
                       choices=("polling", "interrupt_first",
                                "interrupt_threshold"),
                       help="SafeDM reporting mode")
    p_run.add_argument("--threshold", type=int, default=1,
                       help="episode threshold for interrupt_threshold")
    group = p_run.add_mutually_exclusive_group()
    group.add_argument("--capture", default=None, metavar="FILE",
                       help="record the raw signature streams to FILE "
                            "for later replay")
    group.add_argument("--replay", default=None, metavar="FILE",
                       help="recompute counters from a captured stream "
                            "trace instead of simulating")
    p_run.add_argument("--checkpoint-every", type=int, default=0,
                       metavar="N",
                       help="snapshot the full machine state into the "
                            "run cache every N cycles")
    p_run.add_argument("--resume", action="store_true",
                       help="restore the latest cached checkpoint "
                            "(same kernel/flags/cadence) and finish "
                            "the run from there")
    p_run.add_argument("--scheme", default=None,
                       choices=_SCHEME_CHOICES,
                       help="redundancy scheme to run under (default: "
                            "the legacy SafeDM-pair path)")
    _add_engine_flag(p_run)
    _add_telemetry_flags(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_row = sub.add_parser("row", help="one Table I row")
    p_row.add_argument("kernel")
    p_row.set_defaults(func=_cmd_row)

    p_t1 = sub.add_parser("table1", help="Table I sweep")
    p_t1.add_argument("kernels", nargs="*")
    p_t1.add_argument("--csv", default=None)
    p_t1.add_argument("--jobs", type=int, default=None, metavar="N",
                      help="worker processes (default: all cores; "
                           "1 = serial in-process)")
    p_t1.add_argument("--no-cache", action="store_true",
                      help="ignore and do not populate the run cache")
    p_t1.add_argument("--capture", action="store_true",
                      help="record executed runs' signature streams "
                           "into the trace cache")
    p_t1.add_argument("--replay", action="store_true",
                      help="answer cache misses from cached stream "
                           "traces instead of re-simulating")
    _add_engine_flag(p_t1)
    _add_telemetry_flags(p_t1)
    p_t1.set_defaults(func=_cmd_table1)

    p_sm = sub.add_parser(
        "sweep-monitor",
        help="many monitor configurations over one simulation "
             "(capture-once / replay-many)")
    p_sm.add_argument("kernel")
    p_sm.add_argument("--thresholds", type=int, nargs="+",
                      default=list(range(1, 17)), metavar="N",
                      help="episode thresholds to sweep "
                           "(default: 1..16)")
    p_sm.add_argument("--modes", nargs="+",
                      default=["interrupt_threshold"],
                      choices=("polling", "interrupt_first",
                               "interrupt_threshold"),
                      help="reporting modes to sweep")
    p_sm.add_argument("--is-variants", nargs="+",
                      default=["per_stage"],
                      choices=("per_stage", "inflight"),
                      help="instruction-signature variants to sweep")
    p_sm.add_argument("--num-ports", type=int, nargs="+", default=[4],
                      metavar="N",
                      help="monitored register-port counts to sweep")
    p_sm.add_argument("--ds-depths", type=int, nargs="+", default=[6],
                      metavar="N",
                      help="data-signature FIFO depths to sweep")
    p_sm.add_argument("--stagger", type=int, default=0)
    p_sm.add_argument("--late-core", type=int, choices=(0, 1),
                      default=1)
    p_sm.add_argument("--max-cycles", type=int, default=2_000_000)
    p_sm.add_argument("--no-cache", action="store_true",
                      help="do not consult or populate the run/trace "
                           "caches")
    _add_engine_flag(p_sm)
    _add_telemetry_flags(p_sm)
    p_sm.set_defaults(func=_cmd_sweep_monitor)

    p_camp = sub.add_parser("campaign",
                            help="CCF fault-injection campaign")
    p_camp.add_argument("kernel")
    p_camp.add_argument("--injections", type=int, default=8,
                        metavar="N",
                        help="injection instants spread across the run")
    p_camp.add_argument("--stimuli", nargs="+", default=None,
                        metavar="X", type=lambda s: int(s, 0),
                        help="fault stimulus values (default: 0x5eed)")
    p_camp.add_argument("--shared", action="store_true",
                        help="use the CCF-vulnerable shared-data-region "
                             "configuration")
    p_camp.add_argument("--max-cycles", type=int, default=200_000)
    p_camp.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the injection loop "
                             "(0 = all cores; default: serial; results "
                             "are bit-identical either way)")
    p_camp.add_argument("--checkpoint-every", type=int, default=0,
                        metavar="N",
                        help="fork each injection from a golden-run "
                             "checkpoint every N cycles instead of "
                             "re-simulating from cycle 0")
    p_camp.add_argument("--no-cache", action="store_true",
                        help="do not persist or reuse golden "
                             "checkpoints in the run cache")
    p_camp.add_argument("--scheme", default=None,
                        choices=_SCHEME_CHOICES,
                        help="run the scheme-matrix trials for one "
                             "scheme instead of the SafeDM pair "
                             "campaign")
    _add_engine_flag(p_camp)
    _add_telemetry_flags(p_camp)
    p_camp.set_defaults(func=_cmd_campaign)

    p_cs = sub.add_parser(
        "compare-schemes",
        help="fault-detection coverage × latency × hardware cost "
             "across redundancy schemes (one shared CCF grid)")
    p_cs.add_argument("kernels", nargs="*",
                      help="kernels to compare on (default: "
                           "binarysearch)")
    p_cs.add_argument("--all", action="store_true",
                      help="compare on the standard kernel subset: "
                           + ", ".join(_COMPARE_KERNELS))
    p_cs.add_argument("--schemes", nargs="+", default=None,
                      choices=_SCHEME_CHOICES,
                      help="schemes to include (default: all five)")
    p_cs.add_argument("--faults", type=int, default=4, metavar="N",
                      help="injection instants spread across each "
                           "scheme's golden run (default: 4)")
    p_cs.add_argument("--stimuli", nargs="+", default=[0x5EED],
                      metavar="X", type=lambda s: int(s, 0),
                      help="fault stimulus values per instant "
                           "(default: 0x5eed)")
    p_cs.add_argument("--max-cycles", type=int, default=2_000_000)
    _add_telemetry_flags(p_cs)
    p_cs.set_defaults(func=_cmd_compare_schemes)

    p_mc = sub.add_parser(
        "montecarlo",
        help="batched Monte-Carlo fault campaign (structure-of-arrays "
             "trials, analytic masked-fault classification)")
    p_mc.add_argument("kernel")
    p_mc.add_argument("--trials", type=int, default=10_000, metavar="N",
                      help="number of sampled fault trials "
                           "(default: 10000)")
    p_mc.add_argument("--kind", choices=("ccf", "transient"),
                      default="ccf",
                      help="fault model: common-cause (both cores) or "
                           "single-core transient")
    p_mc.add_argument("--seed", type=int, default=0,
                      help="sampler seed; same seed => bit-identical "
                           "campaign regardless of --jobs/--backend")
    p_mc.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="worker processes for the simulated "
                           "minority (0 = all cores; results are "
                           "bit-identical either way)")
    p_mc.add_argument("--shared", action="store_true",
                      help="use the CCF-vulnerable shared-data-region "
                           "configuration")
    p_mc.add_argument("--max-cycles", type=int, default=200_000)
    p_mc.add_argument("--checkpoint-every", type=int, default=0,
                      metavar="N",
                      help="golden checkpoint cadence (default 0 = "
                           "auto, ~25 snapshots per run)")
    p_mc.add_argument("--backend", choices=("auto", "numpy", "python"),
                      default="auto",
                      help="TrialBatch column storage (default: numpy "
                           "when installed, else pure Python)")
    p_mc.add_argument("--bins", type=int, default=10,
                      help="fault-cycle bins for the coverage table")
    p_mc.add_argument("--format", choices=("text", "json"),
                      default="text")
    _add_engine_flag(p_mc)
    _add_telemetry_flags(p_mc)
    p_mc.set_defaults(func=_cmd_montecarlo)

    p_lint = sub.add_parser(
        "lint", help="static analysis (CFG + dataflow) over kernels")
    p_lint.add_argument("kernels", nargs="*",
                        help="kernels to lint (default: all 29)")
    p_lint.add_argument("--all", action="store_true",
                        help="lint every registered kernel (explicit "
                             "form of the no-argument default)")
    p_lint.add_argument("--prove-masking", action="store_true",
                        dest="prove_masking",
                        help="also run the static fault-masking "
                             "prover (adds the L013 dead-window "
                             "report)")
    p_lint.add_argument("--format", choices=("text", "json"),
                        default="text")
    _add_telemetry_flags(p_lint)
    p_lint.set_defaults(func=_cmd_lint)

    p_div = sub.add_parser(
        "diversity-static",
        help="static lower bound on SafeDM instruction diversity "
             "for a staggered image pair")
    p_div.add_argument("kernel_a", help="head-core kernel")
    p_div.add_argument("kernel_b", help="late-core kernel")
    p_div.add_argument("--stagger", type=int, default=2000,
                       help="nop-sled length of the late core "
                            "(default 2000)")
    p_div.add_argument("--validate", action="store_true",
                       help="also simulate and check the bound "
                            "against the measured monitor output "
                            "(kernel_a must equal kernel_b)")
    p_div.add_argument("--format", choices=("text", "json"),
                       default="text")
    p_div.set_defaults(func=_cmd_diversity_static)

    p_met = sub.add_parser("metrics",
                           help="pretty-print a telemetry snapshot")
    p_met.add_argument("snapshot")
    p_met.set_defaults(func=_cmd_metrics)

    sub.add_parser("figures", help="regenerate Figs. 1-4") \
        .set_defaults(func=_cmd_figures)
    sub.add_parser("overheads", help="Section V-D numbers") \
        .set_defaults(func=_cmd_overheads)

    p_vcd = sub.add_parser("vcd", help="dump monitor waveforms")
    p_vcd.add_argument("kernel")
    p_vcd.add_argument("output")
    p_vcd.add_argument("--stagger", type=int, default=0)
    p_vcd.add_argument("--max-cycles", type=int, default=200_000)
    p_vcd.set_defaults(func=_cmd_vcd)

    p_dis = sub.add_parser("disasm", help="disassemble a kernel")
    p_dis.add_argument("kernel")
    p_dis.set_defaults(func=_cmd_disasm)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
