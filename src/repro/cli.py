"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run <kernel> [--stagger N] [--late-core {0,1}]`` — one redundant
  run with SafeDM counters.
* ``row <kernel>`` — one full Table I row (all staggering setups).
* ``table1 [kernels...] [--jobs N] [--no-cache]`` — the Table I sweep
  (all 29 by default), parallel across cores and run-cached.
* ``list`` — available kernels with category and description.
* ``figures`` — regenerate Figs. 1-4 as structural descriptions.
* ``overheads`` — the Section V-D area/power numbers.
* ``vcd <kernel> <out.vcd>`` — dump monitor waveforms for a run.
* ``disasm <kernel>`` — disassemble a kernel image.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_list(args) -> int:
    from .workloads import all_names, workload
    print("%-16s %-16s %s" % ("kernel", "category", "description"))
    print("-" * 76)
    for name in all_names():
        spec = workload(name)
        print("%-16s %-16s %s" % (spec.name, spec.category,
                                  spec.description))
    return 0


def _cmd_run(args) -> int:
    from .soc.experiment import run_redundant
    from .workloads import program
    result = run_redundant(program(args.kernel), benchmark=args.kernel,
                           stagger_nops=args.stagger,
                           late_core=args.late_core)
    print(result.summary())
    print("finished=%s committed=%d ipc=%.2f interrupts=%d"
          % (result.finished, result.committed, result.ipc,
             result.interrupts))
    print("no-data-div=%d no-instr-div=%d"
          % (result.no_data_diversity_cycles,
             result.no_instruction_diversity_cycles))
    return 0 if result.finished else 1


def _cmd_row(args) -> int:
    from .analysis.tables import format_table1
    from .soc.experiment import PAPER_STAGGER_VALUES, run_row
    from .workloads import program
    cells = run_row(program(args.kernel), args.kernel,
                    stagger_values=PAPER_STAGGER_VALUES)
    print(format_table1({args.kernel: cells}, PAPER_STAGGER_VALUES))
    return 0


def _cmd_table1(args) -> int:
    from .analysis.tables import format_table1, format_table1_csv
    from .runner import ParallelSweep
    from .soc.experiment import PAPER_STAGGER_VALUES
    from .workloads import all_names
    names = args.kernels or all_names()
    sweep = ParallelSweep(jobs=args.jobs, use_cache=not args.no_cache,
                          progress=True)
    rows = sweep.run_table(names, stagger_values=PAPER_STAGGER_VALUES)
    print(format_table1(rows, PAPER_STAGGER_VALUES))
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(format_table1_csv(rows, PAPER_STAGGER_VALUES))
        print("CSV written to %s" % args.csv, file=sys.stderr)
    return 0


def _cmd_figures(args) -> int:
    from .baselines.lockstep import LockstepComparator
    from .core.history import HistoryModule
    from .core.monitor import DiversityMonitor
    from .core.signatures import (
        DataSignatureUnit,
        InstructionSignatureUnit,
        SignatureConfig,
    )
    from .soc.mpsoc import MPSoC
    config = SignatureConfig()
    print("Fig. 1:\n%s\n" % LockstepComparator().describe())
    print("Fig. 2a: %s" % DataSignatureUnit(config).layout())
    print("Fig. 2b: %s\n" % InstructionSignatureUnit(config).layout())
    print("Fig. 3:\n%s\n" % MPSoC().describe())
    print("Fig. 4:\n%s" % DiversityMonitor(
        history=HistoryModule()).block_diagram())
    return 0


def _cmd_overheads(args) -> int:
    from .core.overheads import (
        BASELINE_MPSOC_LUTS,
        BASELINE_MPSOC_WATTS,
        estimate,
    )
    report = estimate()
    print("SafeDM: %d LUTs (%.1f%% of the %d-LUT MPSoC), %.3f W "
          "(%.2f%% of %.1f W)"
          % (report.luts, report.area_percent, BASELINE_MPSOC_LUTS,
             report.watts, report.power_percent, BASELINE_MPSOC_WATTS))
    return 0


def _cmd_vcd(args) -> int:
    from .soc.mpsoc import MPSoC
    from .trace.vcd import monitor_vcd
    from .workloads import program
    soc = MPSoC()
    soc.start_redundant(program(args.kernel),
                        stagger_nops=args.stagger)
    vcd = monitor_vcd(soc, max_cycles=args.max_cycles)
    vcd.save(args.output)
    print("wrote %s (%d cycles simulated)" % (args.output, soc.cycle))
    return 0


def _cmd_disasm(args) -> int:
    from .isa.disassembler import disassemble_program, format_listing
    from .workloads import program
    prog = program(args.kernel)
    print(format_listing(disassemble_program(prog),
                         symbols=prog.symbols))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SafeDM reproduction (DATE 2022) command line")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available kernels") \
        .set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="one redundant run")
    p_run.add_argument("kernel")
    p_run.add_argument("--stagger", type=int, default=0)
    p_run.add_argument("--late-core", type=int, choices=(0, 1),
                       default=1)
    p_run.set_defaults(func=_cmd_run)

    p_row = sub.add_parser("row", help="one Table I row")
    p_row.add_argument("kernel")
    p_row.set_defaults(func=_cmd_row)

    p_t1 = sub.add_parser("table1", help="Table I sweep")
    p_t1.add_argument("kernels", nargs="*")
    p_t1.add_argument("--csv", default=None)
    p_t1.add_argument("--jobs", type=int, default=None, metavar="N",
                      help="worker processes (default: all cores; "
                           "1 = serial in-process)")
    p_t1.add_argument("--no-cache", action="store_true",
                      help="ignore and do not populate the run cache")
    p_t1.set_defaults(func=_cmd_table1)

    sub.add_parser("figures", help="regenerate Figs. 1-4") \
        .set_defaults(func=_cmd_figures)
    sub.add_parser("overheads", help="Section V-D numbers") \
        .set_defaults(func=_cmd_overheads)

    p_vcd = sub.add_parser("vcd", help="dump monitor waveforms")
    p_vcd.add_argument("kernel")
    p_vcd.add_argument("output")
    p_vcd.add_argument("--stagger", type=int, default=0)
    p_vcd.add_argument("--max-cycles", type=int, default=200_000)
    p_vcd.set_defaults(func=_cmd_vcd)

    p_dis = sub.add_parser("disasm", help="disassemble a kernel")
    p_dis.add_argument("kernel")
    p_dis.set_defaults(func=_cmd_disasm)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
