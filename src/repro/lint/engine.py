"""Lint driver: build the CFG, solve dataflow, run rules, filter.

Suppression: a source line may carry ``# lint: disable=L002`` (or a
comma-separated list of codes) to silence findings attributed to that
line.  Suppressed findings are counted, never silently dropped, so the
report (and the ``repro_lint_suppressed_total`` counter) keeps them
visible.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..isa.program import Program
from .cfg import ControlFlowGraph, build_cfg
from .dataflow import DataflowResult, Liveness, ReachingDefinitions, solve
from .diagnostics import ERROR, Diagnostic, all_rules, severity_rank

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Z0-9,\s]+)")


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """1-based line number -> set of suppressed rule codes."""
    suppressions: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            codes = {c.strip() for c in match.group(1).split(",")}
            suppressions[lineno] = {c for c in codes if c}
    return suppressions


class LintContext:
    """Everything a rule check may consult, computed once per program."""

    def __init__(self, program: Program, cfg: ControlFlowGraph):
        self.program = program
        self.cfg = cfg
        self.debug = program.debug
        self.reachable = cfg.reachable()
        self.reaching: DataflowResult = solve(cfg, ReachingDefinitions())
        self.liveness: DataflowResult = solve(cfg, Liveness())

    def reachable_blocks(self):
        """Reachable non-exit blocks in address order."""
        return [b for b in self.cfg.blocks() if b.start in self.reachable]


@dataclass
class LintReport:
    """All findings for one program, post-suppression."""

    name: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    suppressed: List[Diagnostic] = field(default_factory=list)
    block_count: int = 0
    instr_count: int = 0

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity != ERROR]

    @property
    def ok(self) -> bool:
        """True when no error-severity findings remain."""
        return not self.errors

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "blocks": self.block_count,
            "instructions": self.instr_count,
            "ok": self.ok,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "suppressed": [d.to_dict() for d in self.suppressed],
        }


def lint_program(program: Program, name: str = "<program>",
                 source: Optional[str] = None) -> LintReport:
    """Run every registered rule over ``program``.

    ``source`` (the assembly text the image came from) enables
    ``# lint: disable=CODE`` suppression comments; line attribution
    itself comes from the image's :class:`~repro.isa.program.DebugInfo`.
    """
    cfg = build_cfg(program)
    ctx = LintContext(program, cfg)
    line_map = ctx.debug.line_map if ctx.debug else {}
    suppressions = parse_suppressions(source) if source else {}

    kept: List[Diagnostic] = []
    suppressed: List[Diagnostic] = []
    for rule in all_rules():
        for diag in rule.check(ctx, rule):
            lineno = line_map.get(diag.pc) if diag.pc is not None else None
            if lineno is not None and diag.lineno is None:
                diag = Diagnostic(code=diag.code, severity=diag.severity,
                                  message=diag.message, pc=diag.pc,
                                  lineno=lineno)
            if diag.code in suppressions.get(diag.lineno, ()):
                suppressed.append(diag)
            else:
                kept.append(diag)

    kept.sort(key=lambda d: (-severity_rank(d.severity),
                             d.pc if d.pc is not None else -1,
                             d.code))
    return LintReport(name=name, diagnostics=kept, suppressed=suppressed,
                      block_count=len(cfg.blocks()),
                      instr_count=len(cfg.instrs))


def lint_source(source: str, base: int = 0x0001_0000,
                name: str = "<source>") -> LintReport:
    """Assemble ``source`` and lint the resulting image."""
    from ..isa.assembler import assemble
    program = assemble(source, base=base)
    return lint_program(program, name=name, source=source)


def lint_workload(name: str) -> LintReport:
    """Lint one registered TACLe kernel by name."""
    from ..workloads.registry import REGISTRY
    workload = REGISTRY.get(name)
    return lint_program(REGISTRY.program(name), name=name,
                        source=workload.source)
