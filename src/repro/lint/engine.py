"""Lint driver: build the CFG, solve dataflow, run rules, filter.

Suppression: a source line may carry ``# lint: disable=L002`` (or a
comma-separated list of codes) to silence findings attributed to that
line.  Suppressed findings are counted, never silently dropped, so the
report (and the ``repro_lint_suppressed_total`` counter) keeps them
visible.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..isa.program import Program
from .absint import AbsintResult, IntervalDomain, solve_absint
from .cfg import EXIT, ControlFlowGraph, build_cfg
from .dataflow import DataflowResult, Liveness, ReachingDefinitions, solve
from .diagnostics import ERROR, Diagnostic, all_rules, severity_rank

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Z0-9,\s]+)")


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """1-based line number -> set of suppressed rule codes."""
    suppressions: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            codes = {c.strip() for c in match.group(1).split(",")}
            suppressions[lineno] = {c for c in codes if c}
    return suppressions


class LintContext:
    """Everything a rule check may consult, computed once per program."""

    def __init__(self, program: Program, cfg: ControlFlowGraph,
                 prove_masking: bool = False):
        self.program = program
        self.cfg = cfg
        self.debug = program.debug
        self.prove_masking = prove_masking
        self.reachable = cfg.reachable()
        self.reaching: DataflowResult = solve(cfg, ReachingDefinitions())
        self.liveness: DataflowResult = solve(cfg, Liveness())
        self.intervals: AbsintResult = solve_absint(cfg, IntervalDomain())
        self._interval_points = self.intervals.point_states()
        self._masking = None
        self._branch_decisions: Optional[Dict[int, bool]] = None

    def reachable_blocks(self):
        """Reachable non-exit blocks in address order."""
        return [b for b in self.cfg.blocks() if b.start in self.reachable]

    @property
    def masking(self):
        """Fault-masking proofs, built on first use (L013 only)."""
        if self._masking is None:
            from .masking import MaskingProofs
            self._masking = MaskingProofs(self.program, self.cfg)
        return self._masking

    def interval_before(self, pc: int):
        """Interval state just before ``pc`` (None when unreachable)."""
        return self._interval_points.get(pc)

    def branch_decisions(self) -> Dict[int, bool]:
        """pc -> proven taken/not-taken for reachable branch
        terminators whose direction the interval domain decides."""
        if self._branch_decisions is None:
            decisions: Dict[int, bool] = {}
            for block in self.reachable_blocks():
                term = block.terminator
                if term is None:
                    continue
                pc, instr = term
                if instr.spec.iclass != "branch":
                    continue
                state = self.interval_before(pc)
                if state is None:
                    continue
                verdict = IntervalDomain.branch_decision(state, instr)
                if verdict is not None:
                    decisions[pc] = verdict
            self._branch_decisions = decisions
        return self._branch_decisions

    def dead_edges(self) -> Set[Tuple[int, int]]:
        """CFG edges ``(block_start, succ_start)`` proven never taken.

        A decided branch kills exactly one outgoing edge: the taken
        edge when the decision is "never taken", the fall-through edge
        when "always taken" (unless both edges land on the same block).
        """
        dead: Set[Tuple[int, int]] = set()
        for pc, taken in self.branch_decisions().items():
            block = None
            for b in self.cfg.blocks():
                if b.start <= pc < b.end:
                    block = b
                    break
            if block is None:
                continue
            fallthrough = pc + 4
            _, term_instr = block.terminator
            target = pc + term_instr.imm  # branch: pc-relative target
            if target == fallthrough:
                continue
            dead_succ = fallthrough if taken else target
            if dead_succ in block.succs:
                dead.add((block.start, dead_succ))
        return dead


@dataclass
class LintReport:
    """All findings for one program, post-suppression."""

    name: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    suppressed: List[Diagnostic] = field(default_factory=list)
    block_count: int = 0
    instr_count: int = 0

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity != ERROR]

    @property
    def ok(self) -> bool:
        """True when no error-severity findings remain."""
        return not self.errors

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "blocks": self.block_count,
            "instructions": self.instr_count,
            "ok": self.ok,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "suppressed": [d.to_dict() for d in self.suppressed],
        }


def lint_program(program: Program, name: str = "<program>",
                 source: Optional[str] = None,
                 prove_masking: bool = False) -> LintReport:
    """Run every registered rule over ``program``.

    ``source`` (the assembly text the image came from) enables
    ``# lint: disable=CODE`` suppression comments; line attribution
    itself comes from the image's :class:`~repro.isa.program.DebugInfo`.
    ``prove_masking`` additionally runs the fault-masking prover and
    emits the informational L013 dead-window report.
    """
    cfg = build_cfg(program)
    ctx = LintContext(program, cfg, prove_masking=prove_masking)
    line_map = ctx.debug.line_map if ctx.debug else {}
    suppressions = parse_suppressions(source) if source else {}

    kept: List[Diagnostic] = []
    suppressed: List[Diagnostic] = []
    for rule in all_rules():
        for diag in rule.check(ctx, rule):
            lineno = line_map.get(diag.pc) if diag.pc is not None else None
            if lineno is not None and diag.lineno is None:
                diag = Diagnostic(code=diag.code, severity=diag.severity,
                                  message=diag.message, pc=diag.pc,
                                  lineno=lineno)
            if diag.code in suppressions.get(diag.lineno, ()):
                suppressed.append(diag)
            else:
                kept.append(diag)

    kept.sort(key=lambda d: (-severity_rank(d.severity),
                             d.pc if d.pc is not None else -1,
                             d.code))
    return LintReport(name=name, diagnostics=kept, suppressed=suppressed,
                      block_count=len(cfg.blocks()),
                      instr_count=len(cfg.instrs))


def lint_source(source: str, base: int = 0x0001_0000,
                name: str = "<source>",
                prove_masking: bool = False) -> LintReport:
    """Assemble ``source`` and lint the resulting image."""
    from ..isa.assembler import assemble
    program = assemble(source, base=base)
    return lint_program(program, name=name, source=source,
                        prove_masking=prove_masking)


def lint_workload(name: str, prove_masking: bool = False) -> LintReport:
    """Lint one registered TACLe kernel by name."""
    from ..workloads.registry import REGISTRY
    workload = REGISTRY.get(name)
    return lint_program(REGISTRY.program(name), name=name,
                        source=workload.source,
                        prove_masking=prove_masking)
