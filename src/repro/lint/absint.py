"""Generic abstract interpretation over the lint control-flow graph.

This module grows the PR 3 dataflow layer into a proper
abstract-interpretation engine:

* :func:`reverse_postorder` — deterministic block ordering (also used
  to seed the classic set-valued solver in :mod:`repro.lint.dataflow`),
* :func:`solve_absint` — a worklist interpreter over the existing
  :class:`~repro.lint.cfg.ControlFlowGraph`, parameterized by an
  :class:`AbstractDomain` (join semilattice with optional widening at
  retreating-edge targets, forward or backward),
* :class:`StridedInterval` / :class:`IntervalDomain` — a constant /
  value-range / alignment domain (Reps-style strided intervals: the
  set ``{lo, lo + stride, ..., hi}`` over unsigned 64-bit values),
* :class:`MaskingLiveness` — the instruction-granular register-lifetime
  domain used by :mod:`repro.lint.masking` to prove fault-masking
  windows.  It differs from the rule-oriented
  :class:`~repro.lint.dataflow.Liveness` in three soundness-critical
  ways: the architectural halt-time checksum read keeps the result
  register live to the exit, blocks ending in a statically-unknown
  indirect jump make *every* register live, and a halt instruction
  also counts the reads of its fall-through word (the dual-issue core
  can pair ``ebreak`` with the next sequential instruction, which then
  issues — and reads — in the same group).

Soundness contract (relied on by ``repro.montecarlo``): an
architectural register read only ever happens when a fetch group
*issues* (``Core._issue`` is the single call site of
``RegisterFile.read``), wrong-path groups are squashed before they
issue, and both edges of every conditional branch are CFG edges — so
every future read from a program point onward lies on a CFG path from
that point, and "not live" here means "dead on all paths".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from math import gcd
from typing import (
    Dict,
    Generic,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

from ..isa.instruction import Instruction
from .cfg import EXIT, BasicBlock, ControlFlowGraph
from .dataflow import BACKWARD, FORWARD

S = TypeVar("S")

#: Unsigned 64-bit value mask (the architectural register width).
MASK64 = (1 << 64) - 1

#: The register the halt-time checksum readout reads (s0) — must stay
#: equal to :data:`repro.fault.injector.RESULT_REGISTER`.
RESULT_REGISTER = 8

#: Every architectural register a fault can target (x0 excluded: a
#: bit-flip there is dead by construction).
ALL_REGISTERS = frozenset(range(1, 32))


# -- deterministic orderings ---------------------------------------------------

def reverse_postorder(cfg: ControlFlowGraph) -> List[BasicBlock]:
    """All blocks in reverse post-order from the entry block.

    Blocks unreachable from the entry are appended in address order so
    the result always covers :meth:`ControlFlowGraph.all_blocks`; the
    virtual exit block sorts wherever the DFS finishes it (or last,
    when unreachable).  The order is a pure function of the CFG edge
    lists, independent of dict iteration order.
    """
    postorder: List[int] = []
    seen: Set[int] = set()
    if cfg.entry in cfg.block_index or (
            cfg.entry_block is not None):
        stack: List[Tuple[int, Iterator[int]]] = [
            (cfg.entry, iter(cfg.block(cfg.entry).succs))]
        seen.add(cfg.entry)
        while stack:
            start, succs = stack[-1]
            advanced = False
            for succ in succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, iter(cfg.block(succ).succs)))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                postorder.append(start)
    order = [cfg.block(start) for start in reversed(postorder)]
    for block in cfg.all_blocks():
        if block.start not in seen:
            order.append(block)
    return order


# -- the domain interface ------------------------------------------------------

class AbstractDomain(Generic[S]):
    """A join-semilattice with a per-instruction transfer function.

    ``None`` is the universal bottom ("point not reached"): the solver
    never calls :meth:`join`/:meth:`widen`/:meth:`transfer` with it.
    """

    direction: str = FORWARD

    def boundary(self, cfg: ControlFlowGraph) -> S:
        """State at the entry (forward) or exit (backward) boundary."""
        raise NotImplementedError

    def meet_extra(self, cfg: ControlFlowGraph,
                   block: BasicBlock) -> Optional[S]:
        """Extra state joined into ``block``'s meet, or ``None``.

        Domains use this to model control flow the CFG cannot express
        — e.g. liveness forcing top at statically-unknown indirect
        jump targets.
        """
        return None

    def join(self, a: S, b: S) -> S:
        raise NotImplementedError

    def widen(self, old: S, new: S) -> S:
        """Widening at retreating-edge targets (defaults to join —
        correct for finite lattices)."""
        return self.join(old, new)

    def transfer(self, state: S, pc: int, instr: Instruction) -> S:
        raise NotImplementedError


class AbsintResult(Generic[S]):
    """Fixed point of one domain over one CFG.

    ``block_meet`` holds the meet-side state per block (the in-state
    for a forward domain, the out-state for a backward one);
    ``block_result`` the opposite side.  ``None`` marks unreached
    blocks.
    """

    def __init__(self, cfg: ControlFlowGraph, domain: AbstractDomain[S],
                 block_meet: Dict[int, Optional[S]],
                 block_result: Dict[int, Optional[S]]):
        self.cfg = cfg
        self.domain = domain
        self.block_meet = block_meet
        self.block_result = block_result
        self._points: Optional[Dict[int, Optional[S]]] = None

    def in_state(self, start: int) -> Optional[S]:
        if self.domain.direction == FORWARD:
            return self.block_meet[start]
        return self.block_result[start]

    def out_state(self, start: int) -> Optional[S]:
        if self.domain.direction == FORWARD:
            return self.block_result[start]
        return self.block_meet[start]

    def states(self, block: BasicBlock) -> Iterator[
            Tuple[int, Instruction, Optional[S]]]:
        """Yield ``(pc, instr, state)`` per instruction, in order.

        Forward domains yield the state *before* each instruction;
        backward domains the state *after* it (mirroring
        :meth:`repro.lint.dataflow.DataflowResult.states`).
        """
        transfer = self.domain.transfer
        state = self.block_meet[block.start]
        if self.domain.direction == FORWARD:
            for pc, instr in block.instrs:
                yield pc, instr, state
                if state is not None:
                    state = transfer(state, pc, instr)
        else:
            for pc, instr in reversed(block.instrs):
                yield pc, instr, state
                if state is not None:
                    state = transfer(state, pc, instr)

    def point_states(self) -> Dict[int, Optional[S]]:
        """pc -> abstract state holding immediately *before* the
        instruction at that pc executes, for every instruction.

        For a backward domain this applies the instruction's own
        transfer (e.g. the live-*in* set, which is what a masking
        proof needs: the instruction at the point may still issue and
        read its sources).
        """
        if self._points is not None:
            return self._points
        transfer = self.domain.transfer
        points: Dict[int, Optional[S]] = {}
        forward = self.domain.direction == FORWARD
        for block in self.cfg.blocks():
            for pc, instr, state in self.states(block):
                if state is None:
                    points[pc] = None
                elif forward:
                    points[pc] = state
                else:
                    points[pc] = transfer(state, pc, instr)
        self._points = points
        return points


def solve_absint(cfg: ControlFlowGraph,
                 domain: AbstractDomain[S]) -> AbsintResult[S]:
    """Run ``domain`` to a (post-widening) fixed point over ``cfg``.

    The worklist is seeded in reverse post-order (post-order for
    backward domains) and widening is applied at the targets of
    retreating edges, so loops converge even on infinite-height
    domains such as :class:`IntervalDomain`.
    """
    forward = domain.direction == FORWARD
    rpo = reverse_postorder(cfg)
    order = rpo if forward else list(reversed(rpo))
    position = {block.start: i for i, block in enumerate(order)}
    by_start = {block.start: block for block in order}

    def meet_edges(block: BasicBlock) -> List[int]:
        return block.preds if forward else block.succs

    def flow_edges(block: BasicBlock) -> List[int]:
        return block.succs if forward else block.preds

    widen_at: Set[int] = set()
    for block in order:
        for succ in flow_edges(block):
            if position[succ] <= position[block.start]:
                widen_at.add(succ)

    meet: Dict[int, Optional[S]] = {b.start: None for b in order}
    result: Dict[int, Optional[S]] = {b.start: None for b in order}
    boundary_start = cfg.entry if forward else EXIT

    worklist = deque(order)
    queued = {block.start for block in order}
    while worklist:
        block = worklist.popleft()
        queued.discard(block.start)

        merged: Optional[S] = None
        if block.start == boundary_start and (
                forward or block.is_exit):
            merged = domain.boundary(cfg)
        extra = domain.meet_extra(cfg, block)
        if extra is not None:
            merged = extra if merged is None else domain.join(merged,
                                                              extra)
        for other in meet_edges(block):
            incoming = result[other]
            if incoming is None:
                continue
            merged = incoming if merged is None else domain.join(
                merged, incoming)
        if merged is not None and block.start in widen_at and \
                meet[block.start] is not None:
            merged = domain.widen(meet[block.start], merged)
        meet[block.start] = merged

        if merged is None:
            out: Optional[S] = None
        else:
            out = merged
            instrs = (block.instrs if forward
                      else list(reversed(block.instrs)))
            for pc, instr in instrs:
                out = domain.transfer(out, pc, instr)
        if out != result[block.start]:
            result[block.start] = out
            for succ in flow_edges(block):
                if succ not in queued:
                    queued.add(succ)
                    worklist.append(by_start[succ])

    return AbsintResult(cfg, domain, meet, result)


# -- the constant / value-range domain -----------------------------------------

@dataclass(frozen=True)
class StridedInterval:
    """The set ``{lo, lo + stride, ..., hi}`` of unsigned 64-bit values.

    Invariants: ``0 <= lo <= hi <= MASK64``; ``stride == 0`` iff
    ``lo == hi`` (a constant); otherwise ``stride`` divides
    ``hi - lo``.
    """

    lo: int
    hi: int
    stride: int

    @staticmethod
    def const(value: int) -> "StridedInterval":
        value &= MASK64
        return StridedInterval(value, value, 0)

    @staticmethod
    def top() -> "StridedInterval":
        return _TOP

    @staticmethod
    def aligned(stride: int) -> "StridedInterval":
        """All multiples of ``stride`` (an alignment-only fact)."""
        hi = (MASK64 // stride) * stride
        return StridedInterval(0, hi, stride)

    @property
    def is_const(self) -> bool:
        return self.lo == self.hi

    @property
    def is_top(self) -> bool:
        return self.lo == 0 and self.hi == MASK64 and self.stride == 1

    def residue(self, modulus: int) -> Optional[int]:
        """``v % modulus`` when it is the same for every member."""
        if modulus <= 0:
            return None
        if self.is_const:
            return self.lo % modulus
        if self.stride % modulus == 0:
            return self.lo % modulus
        return None

    def join(self, other: "StridedInterval") -> "StridedInterval":
        lo = min(self.lo, other.lo)
        hi = max(self.hi, other.hi)
        stride = gcd(gcd(self.stride, other.stride),
                     abs(self.lo - other.lo))
        return _normalize(lo, hi, stride)

    def widen(self, other: "StridedInterval") -> "StridedInterval":
        """Classic strided widening: escape bounds to the residue-
        aligned extremes, keep the gcd stride (a finite divisor
        chain, so iteration terminates)."""
        joined = self.join(other)
        if joined == self:
            return self
        stride = joined.stride
        if stride == 0:
            return joined
        lo = joined.lo if joined.lo >= self.lo else joined.lo % stride
        hi = (joined.hi if joined.hi <= self.hi
              else lo + ((MASK64 - lo) // stride) * stride)
        return _normalize(lo, hi, stride)

    def add(self, other: "StridedInterval") -> "StridedInterval":
        if self.is_const and other.is_const:
            return StridedInterval.const(self.lo + other.lo)
        lo = self.lo + other.lo
        hi = self.hi + other.hi
        stride = gcd(self.stride, other.stride)
        if hi > MASK64:
            return _wrap_aligned(lo, stride)
        return _normalize(lo, hi, stride)

    def add_const(self, value: int) -> "StridedInterval":
        if self.is_const:
            return StridedInterval.const(self.lo + value)
        lo = self.lo + value
        hi = self.hi + value
        if lo < 0 or hi > MASK64:
            return _wrap_aligned(lo, self.stride)
        return _normalize(lo, hi, self.stride)

    def sub(self, other: "StridedInterval") -> "StridedInterval":
        if self.is_const and other.is_const:
            return StridedInterval.const(self.lo - other.lo)
        lo = self.lo - other.hi
        hi = self.hi - other.lo
        stride = gcd(self.stride, other.stride)
        if lo < 0 or hi > MASK64:
            return _wrap_aligned(self.lo - other.lo, stride)
        return _normalize(lo, hi, stride)

    def shift_left(self, amount: int) -> "StridedInterval":
        if amount < 0 or amount > 63:
            return _TOP
        hi = self.hi << amount
        if hi > MASK64:
            return _TOP
        return _normalize(self.lo << amount, hi,
                          self.stride << amount)

    def signed_range(self) -> Optional[Tuple[int, int]]:
        """The set's ``[min, max]`` under two's-complement reading,
        or ``None`` when it straddles the sign boundary."""
        half = 1 << 63
        if self.hi < half:
            return self.lo, self.hi
        if self.lo >= half:
            return self.lo - (1 << 64), self.hi - (1 << 64)
        return None

    def never_equals(self, other: "StridedInterval") -> bool:
        """True when the two sets are provably disjoint."""
        if self.hi < other.lo or other.hi < self.lo:
            return True
        stride = gcd(self.stride, other.stride)
        return stride > 0 and (self.lo - other.lo) % stride != 0


def _normalize(lo: int, hi: int, stride: int) -> StridedInterval:
    if lo == hi:
        return StridedInterval(lo, hi, 0)
    if stride == 0:
        stride = hi - lo
    return StridedInterval(lo, hi, stride)


def _wrap_aligned(residue_base: int, stride: int) -> StridedInterval:
    """Overflow fallback: the result set wrapped mod ``2**64``, so only
    congruences modulo a power of two survive (``2**k`` divides
    ``2**64``; odd stride factors do not).  Keep the largest one."""
    power = stride & -stride  # largest power-of-two divisor
    if power <= 1:
        return _TOP
    residue = residue_base % power
    hi = residue + ((MASK64 - residue) // power) * power
    return _normalize(residue, hi, power)


_TOP = StridedInterval(0, MASK64, 1)

#: Interval-domain state: register -> interval.  Registers absent from
#: the mapping are unconstrained (top); x0 is pinned to the constant 0
#: by the transfer function, never stored.
IntervalState = Dict[int, StridedInterval]


def _interval_of(state: IntervalState, reg: Optional[int]
                 ) -> StridedInterval:
    if reg is None or reg == 0:
        return StridedInterval.const(0)
    return state.get(reg, _TOP)


class IntervalDomain(AbstractDomain[IntervalState]):
    """Forward strided-interval propagation.

    Constant folding reuses the simulator's own ALU
    (:func:`repro.cpu.exec_unit.execute_alu`) whenever every source is
    a proven constant, so the abstract semantics cannot drift from the
    concrete ones.  Non-constant flow handles the address-arithmetic
    shapes the rules need (add/sub/shift keep bounds and alignment);
    everything else falls to top.
    """

    direction = FORWARD

    #: Alignment of the runtime-initialized base registers: sp is
    #: 16-byte aligned (kernels move it in multiples of 16), gp is the
    #: 4 KiB-aligned per-core data base.  Only the *alignment* is
    #: assumed — the concrete values are config-dependent.
    BASE_ALIGNMENT = {2: 16, 3: 4096}

    def boundary(self, cfg: ControlFlowGraph) -> IntervalState:
        state: IntervalState = {}
        for reg, align in self.BASE_ALIGNMENT.items():
            state[reg] = StridedInterval.aligned(align)
        # tp holds the core id: a small non-negative integer.
        state[4] = StridedInterval(0, 255, 1)
        return state

    def join(self, a: IntervalState, b: IntervalState) -> IntervalState:
        out: IntervalState = {}
        for reg in a.keys() & b.keys():
            joined = a[reg].join(b[reg])
            if not joined.is_top:
                out[reg] = joined
        return out

    def widen(self, old: IntervalState,
              new: IntervalState) -> IntervalState:
        out: IntervalState = {}
        for reg in old.keys() & new.keys():
            widened = old[reg].widen(new[reg])
            if not widened.is_top:
                out[reg] = widened
        return out

    def transfer(self, state: IntervalState, pc: int,
                 instr: Instruction) -> IntervalState:
        rd = instr.destination()
        if rd is None:
            return state
        value = self._evaluate(state, pc, instr)
        out = dict(state)
        if value is None or value.is_top:
            out.pop(rd, None)
        else:
            out[rd] = value
        return out

    def _evaluate(self, state: IntervalState, pc: int,
                  instr: Instruction) -> Optional[StridedInterval]:
        mnemonic = instr.mnemonic
        iclass = instr.iclass
        if iclass == "jump":
            return StridedInterval.const(pc + 4)  # the link value
        if mnemonic == "lui":
            return StridedInterval.const(instr.imm)
        if mnemonic == "auipc":
            return StridedInterval.const(pc + instr.imm)
        if iclass in ("load", "store", "branch", "system"):
            return None
        rs1 = _interval_of(state, instr.rs1)
        rs2 = _interval_of(state, instr.rs2)
        if rs1.is_const and (instr.rs2 is None or rs2.is_const):
            from ..cpu.exec_unit import execute_alu
            return StridedInterval.const(
                execute_alu(instr, rs1.lo, rs2.lo))
        if mnemonic in ("addi", "addiw"):
            value = rs1.add_const(instr.imm)
            return value if mnemonic == "addi" else _narrow32(value)
        if mnemonic in ("add", "addw"):
            value = rs1.add(rs2)
            return value if mnemonic == "add" else _narrow32(value)
        if mnemonic in ("sub", "subw"):
            value = rs1.sub(rs2)
            return value if mnemonic == "sub" else _narrow32(value)
        if mnemonic in ("slli", "slliw"):
            value = rs1.shift_left(instr.imm & 0x3F)
            return value if mnemonic == "slli" else _narrow32(value)
        return None

    @staticmethod
    def branch_decision(state: IntervalState,
                        instr: Instruction) -> Optional[bool]:
        """``True``/``False`` when the branch direction is proven,
        ``None`` when undecidable from the intervals."""
        rs1 = _interval_of(state, instr.rs1)
        rs2 = _interval_of(state, instr.rs2)
        if rs1.is_const and rs2.is_const:
            from ..cpu.exec_unit import branch_taken
            return branch_taken(instr, rs1.lo, rs2.lo)
        mnemonic = instr.mnemonic
        if mnemonic == "beq" and rs1.never_equals(rs2):
            return False
        if mnemonic == "bne" and rs1.never_equals(rs2):
            return True
        if mnemonic in ("bltu", "bgeu"):
            if rs1.hi < rs2.lo:
                return mnemonic == "bltu"
            if rs1.lo >= rs2.hi and rs2.is_const:
                return mnemonic == "bgeu"
        if mnemonic in ("blt", "bge"):
            a = rs1.signed_range()
            b = rs2.signed_range()
            if a is not None and b is not None:
                if a[1] < b[0]:
                    return mnemonic == "blt"
                if a[0] >= b[1] and b[0] == b[1]:
                    return mnemonic == "bge"
        return None


def _narrow32(value: StridedInterval) -> StridedInterval:
    """Model the RV64 ``*w`` 32-bit narrowing conservatively."""
    if value.is_const:
        lo = value.lo & 0xFFFFFFFF
        if lo >= 1 << 31:
            lo = (lo - (1 << 32)) & MASK64
        return StridedInterval.const(lo)
    if value.hi < 1 << 31:
        return value
    return _TOP


# -- the register-lifetime (masking) domain ------------------------------------

class MaskingLiveness(AbstractDomain[frozenset]):
    """Sound may-read liveness for fault-masking proofs.

    A register *not* in the fixed-point live set at a point is dead on
    **every** CFG path from that point: no instruction issuing from
    that point on reads it before overwriting it, and the halt-time
    checksum readout (which reads :data:`RESULT_REGISTER`) is modeled
    by the exit boundary.  See the module docstring for the full
    argument.
    """

    direction = BACKWARD

    def __init__(self, cfg: ControlFlowGraph):
        self._cfg = cfg

    def boundary(self, cfg: ControlFlowGraph) -> frozenset:
        return frozenset((RESULT_REGISTER,))

    def meet_extra(self, cfg: ControlFlowGraph,
                   block: BasicBlock) -> Optional[frozenset]:
        # A statically-unknown indirect jump may land anywhere: every
        # register must be assumed readable past it.
        if block.has_unknown_target:
            return ALL_REGISTERS
        return None

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def transfer(self, state: frozenset, pc: int,
                 instr: Instruction) -> frozenset:
        rd = instr.destination()
        if rd is not None:
            state = state - {rd}
        uses = {reg for reg in instr.sources() if reg != 0}
        if instr.mnemonic in ("ebreak", "ecall"):
            # The dual-issue front end may pair the halt with the next
            # sequential word; that slot issues (and reads) in the
            # same group before the truncation takes effect.
            paired = self._cfg.instrs.get(pc + 4)
            if paired is not None:
                uses |= {reg for reg in paired.sources() if reg != 0}
        return state | uses if uses else state


__all__ = [
    "ALL_REGISTERS",
    "AbsintResult",
    "AbstractDomain",
    "IntervalDomain",
    "MASK64",
    "MaskingLiveness",
    "RESULT_REGISTER",
    "StridedInterval",
    "reverse_postorder",
    "solve_absint",
]
