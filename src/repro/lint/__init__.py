"""Static analysis over the RV64 assembly kernels.

Public API:

* :func:`lint_workload` / :func:`lint_source` / :func:`lint_program` —
  run every registered rule, returning a :class:`LintReport`
* :class:`ControlFlowGraph` / :func:`build_cfg` — basic blocks + edges
* :func:`solve` with :class:`ReachingDefinitions` / :class:`Liveness` —
  the generic dataflow layer
* :func:`solve_absint` with :class:`IntervalDomain` /
  :class:`MaskingLiveness` — the abstract-interpretation layer
  (strided intervals, instruction-granular register lifetimes)
* :class:`MaskingProofs` / :class:`StaticMaskFilter` — static
  fault-masking proofs and the Monte-Carlo pre-filter built on them
* :func:`predict_instruction_diversity` — static lower bounds on
  SafeDM instruction-signature divergence for staggered redundancy
* :data:`RULES` / :func:`all_rules` — the diagnostic registry

See DESIGN.md's "Static analysis" section for the rule table.
"""

from .absint import (
    AbsintResult,
    AbstractDomain,
    IntervalDomain,
    MaskingLiveness,
    StridedInterval,
    reverse_postorder,
    solve_absint,
)
from .cfg import EXIT, BasicBlock, ControlFlowGraph, build_cfg
from .dataflow import (
    DataflowProblem,
    DataflowResult,
    Liveness,
    ReachingDefinitions,
    solve,
)
from .diagnostics import (
    ERROR,
    INFO,
    RULES,
    WARNING,
    Diagnostic,
    Rule,
    all_rules,
)
from .diversity import (
    StaticDiversityBound,
    measure_instruction_diversity,
    predict_instruction_diversity,
    validate_bound,
)
from .engine import (
    LintContext,
    LintReport,
    lint_program,
    lint_source,
    lint_workload,
    parse_suppressions,
)
from .masking import (
    FRONTIER_HALTED,
    MaskingProofs,
    StaticMaskFilter,
    compute_masking_proofs,
)
from . import rules as _rules  # noqa: F401  (registers L001-L013)

__all__ = [
    "AbsintResult",
    "AbstractDomain",
    "BasicBlock",
    "ControlFlowGraph",
    "DataflowProblem",
    "DataflowResult",
    "Diagnostic",
    "ERROR",
    "EXIT",
    "FRONTIER_HALTED",
    "INFO",
    "IntervalDomain",
    "LintContext",
    "LintReport",
    "Liveness",
    "MaskingLiveness",
    "MaskingProofs",
    "ReachingDefinitions",
    "RULES",
    "Rule",
    "StaticDiversityBound",
    "StaticMaskFilter",
    "StridedInterval",
    "WARNING",
    "all_rules",
    "build_cfg",
    "compute_masking_proofs",
    "lint_program",
    "lint_source",
    "lint_workload",
    "measure_instruction_diversity",
    "parse_suppressions",
    "predict_instruction_diversity",
    "reverse_postorder",
    "solve",
    "solve_absint",
    "validate_bound",
]
