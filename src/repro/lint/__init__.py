"""Static analysis over the RV64 assembly kernels.

Public API:

* :func:`lint_workload` / :func:`lint_source` / :func:`lint_program` —
  run every registered rule, returning a :class:`LintReport`
* :class:`ControlFlowGraph` / :func:`build_cfg` — basic blocks + edges
* :func:`solve` with :class:`ReachingDefinitions` / :class:`Liveness` —
  the generic dataflow layer
* :data:`RULES` / :func:`all_rules` — the diagnostic registry

See DESIGN.md's "Static analysis" section for the rule table.
"""

from .cfg import EXIT, BasicBlock, ControlFlowGraph, build_cfg
from .dataflow import (
    DataflowProblem,
    DataflowResult,
    Liveness,
    ReachingDefinitions,
    solve,
)
from .diagnostics import (
    ERROR,
    INFO,
    RULES,
    WARNING,
    Diagnostic,
    Rule,
    all_rules,
)
from .engine import (
    LintContext,
    LintReport,
    lint_program,
    lint_source,
    lint_workload,
    parse_suppressions,
)
from . import rules as _rules  # noqa: F401  (registers L001-L009)

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "DataflowProblem",
    "DataflowResult",
    "Diagnostic",
    "ERROR",
    "EXIT",
    "INFO",
    "LintContext",
    "LintReport",
    "Liveness",
    "ReachingDefinitions",
    "RULES",
    "Rule",
    "WARNING",
    "all_rules",
    "build_cfg",
    "lint_program",
    "lint_source",
    "lint_workload",
    "parse_suppressions",
    "solve",
]
