"""Diagnostic model and the lint rule registry.

Every rule has a stable code (``L###``), a severity, and a short slug
used in reports.  Rules register themselves with the :func:`rule`
decorator at import time; :func:`all_rules` returns them in code order
so reports are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: Severity levels, in increasing order of badness.
INFO = "info"
WARNING = "warning"
ERROR = "error"

_SEVERITY_RANK = {INFO: 0, WARNING: 1, ERROR: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule firing at a program location."""

    code: str
    severity: str
    message: str
    pc: Optional[int] = None
    lineno: Optional[int] = None

    def location(self) -> str:
        parts = []
        if self.lineno is not None:
            parts.append("line %d" % self.lineno)
        if self.pc is not None:
            parts.append("pc %#x" % self.pc)
        return ", ".join(parts) or "program"

    def to_dict(self) -> dict:
        return {"code": self.code, "severity": self.severity,
                "message": self.message, "pc": self.pc,
                "lineno": self.lineno}


@dataclass(frozen=True)
class Rule:
    """A registered lint rule."""

    code: str
    slug: str
    severity: str
    description: str
    check: Callable = field(compare=False)

    def diagnostic(self, message: str, pc: Optional[int] = None,
                   lineno: Optional[int] = None) -> Diagnostic:
        return Diagnostic(code=self.code, severity=self.severity,
                          message=message, pc=pc, lineno=lineno)


#: code -> Rule, populated by the :func:`rule` decorator.
RULES: Dict[str, Rule] = {}


def rule(code: str, slug: str, severity: str, description: str):
    """Register a rule check function under ``code``.

    The check takes a :class:`~repro.lint.engine.LintContext` and
    yields :class:`Diagnostic` instances (via ``Rule.diagnostic``,
    which stamps the code and severity).
    """
    if severity not in _SEVERITY_RANK:
        raise ValueError("unknown severity %r" % severity)

    def register(check):
        if code in RULES:
            raise ValueError("duplicate rule code %r" % code)
        RULES[code] = Rule(code=code, slug=slug, severity=severity,
                           description=description, check=check)
        return check
    return register


def all_rules() -> List[Rule]:
    """Registered rules in code order."""
    return [RULES[code] for code in sorted(RULES)]


def severity_rank(severity: str) -> int:
    return _SEVERITY_RANK[severity]
