"""Control-flow graph construction over assembled :class:`Program` images.

The builder performs a linear sweep over the image words (reusing the
table-driven :func:`repro.isa.decoder.decode`), splits the instruction
stream into basic blocks at branch targets and after control transfers,
and wires edges:

* conditional branches: taken edge + fall-through edge,
* ``jal`` without a link register (``j``): jump edge,
* ``jal`` with a link register (``call``): call edge to the callee,
* ``jalr x0, 0(ra|t0)`` (``ret``): return edges to the return sites of
  the owning function (call sites are grouped per callee so a return
  only flows back to its own callers),
* other ``jalr``: statically-unknown indirect target — the block is
  flagged ``has_unknown_target`` (indirect *calls* still get an edge to
  their return site),
* ``ebreak``/``ecall``: edge to the synthetic exit block.

Data directives recorded in :class:`~repro.isa.program.DebugInfo` (and
words that fail to decode) are excluded from the sweep, so constant
pools never masquerade as unreachable code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..isa.decoder import DecodeError, decode
from ..isa.instruction import Instruction
from ..isa.program import Program

#: Registers treated as link registers for call/return discovery
#: (``ra`` and the alternate link register ``t0``, per the RISC-V
#: calling convention).
LINK_REGISTERS = frozenset((1, 5))

#: Virtual program-exit block id (``ebreak``/``ecall`` successors).
EXIT = -1


def _is_halt(instr: Instruction) -> bool:
    return instr.mnemonic in ("ebreak", "ecall")


def _is_call(instr: Instruction) -> bool:
    return instr.mnemonic == "jal" and instr.rd in LINK_REGISTERS


def _is_return(instr: Instruction) -> bool:
    return (instr.mnemonic == "jalr" and instr.rd == 0
            and instr.rs1 in LINK_REGISTERS)


@dataclass
class BasicBlock:
    """A maximal straight-line instruction run.

    ``succs``/``preds`` hold block start addresses (:data:`EXIT` for
    the virtual exit).  The exit block itself has ``start == EXIT`` and
    no instructions.
    """

    start: int
    instrs: List[Tuple[int, Instruction]] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)
    #: Ends in a ``jalr`` whose target set is statically unknown.
    has_unknown_target: bool = False
    #: Stable address-order index assigned by the CFG builder (-1 for
    #: the virtual exit block).  Consumers that compile per-block code
    #: (``repro.engine``) key on this instead of raw start addresses.
    index: int = -1

    @property
    def is_exit(self) -> bool:
        return self.start == EXIT

    @property
    def end(self) -> int:
        """One past the last instruction address."""
        if not self.instrs:
            return self.start
        return self.instrs[-1][0] + 4

    @property
    def terminator(self) -> Optional[Tuple[int, Instruction]]:
        """The final ``(pc, instr)`` if it transfers control, else None."""
        if not self.instrs:
            return None
        pc, instr = self.instrs[-1]
        if instr.spec.is_control or _is_halt(instr):
            return pc, instr
        return None

    def __len__(self) -> int:
        return len(self.instrs)


class ControlFlowGraph:
    """Basic blocks plus edges for one :class:`Program` image."""

    def __init__(self, program: Program):
        self.program = program
        self.entry = program.entry
        #: pc -> Instruction for every decodable non-data word.
        self.instrs: Dict[int, Instruction] = {}
        #: Branch/jump operands that do not land on an instruction:
        #: ``(pc, target)`` pairs, for the bad-target lint rule.
        self.invalid_targets: List[Tuple[int, int]] = []
        #: start pc -> BasicBlock (includes the virtual exit block).
        self._blocks: Dict[int, BasicBlock] = {}
        #: start pc -> stable block index (address order, exit excluded).
        self.block_index: Dict[int, int] = {}
        self._build()
        for position, block in enumerate(self.blocks()):
            block.index = position
            self.block_index[block.start] = position

    # -- queries ---------------------------------------------------------

    def blocks(self) -> List[BasicBlock]:
        """Real (non-exit) blocks in address order."""
        return [self._blocks[s] for s in sorted(self._blocks) if s != EXIT]

    def all_blocks(self) -> List[BasicBlock]:
        """All blocks including the virtual exit, exit last."""
        return self.blocks() + [self._blocks[EXIT]]

    @property
    def exit_block(self) -> BasicBlock:
        return self._blocks[EXIT]

    def block(self, start: int) -> BasicBlock:
        return self._blocks[start]

    def block_containing(self, pc: int) -> Optional[BasicBlock]:
        """The block whose address range covers ``pc``, if any."""
        for blk in self.blocks():
            if blk.start <= pc < blk.end:
                return blk
        return None

    @property
    def entry_block(self) -> Optional[BasicBlock]:
        return self._blocks.get(self.entry)

    def reachable(self) -> Set[int]:
        """Block starts reachable from the entry block."""
        if self.entry not in self._blocks:
            return set()
        seen = set()
        stack = [self.entry]
        while stack:
            start = stack.pop()
            if start in seen:
                continue
            seen.add(start)
            stack.extend(s for s in self._blocks[start].succs
                         if s not in seen)
        return seen

    def reaches_exit(self) -> Set[int]:
        """Block starts from which the exit block is reachable."""
        seen = set()
        stack = [EXIT]
        while stack:
            start = stack.pop()
            if start in seen:
                continue
            seen.add(start)
            stack.extend(p for p in self._blocks[start].preds
                         if p not in seen)
        return seen

    def to_dot(self) -> str:
        """Graphviz rendering (debugging aid)."""
        lines = ["digraph cfg {", "  node [shape=box fontname=monospace];"]
        for blk in self.all_blocks():
            if blk.is_exit:
                lines.append('  exit [label="EXIT" shape=doublecircle];')
                continue
            body = "\\l".join("%#x: %s" % (pc, instr.text())
                              for pc, instr in blk.instrs)
            lines.append('  b%x [label="%s\\l"];' % (blk.start, body))
        for blk in self.all_blocks():
            src = "exit" if blk.is_exit else "b%x" % blk.start
            for succ in blk.succs:
                dst = "exit" if succ == EXIT else "b%x" % succ
                lines.append("  %s -> %s;" % (src, dst))
        lines.append("}")
        return "\n".join(lines)

    # -- construction ----------------------------------------------------

    def _build(self):
        self._decode_words()
        leaders = self._find_leaders()
        self._form_blocks(leaders)
        calls = self._call_sites()
        regions = self._function_regions(calls)
        self._wire_edges(calls, regions)

    def _decode_words(self):
        debug = self.program.debug
        data = debug.data_addresses if debug else frozenset()
        for pc, word in self.program.words():
            if pc in data:
                continue
            try:
                self.instrs[pc] = decode(word)
            except DecodeError:
                pass  # data not covered by debug info

    def _branch_target(self, pc: int, instr: Instruction) -> Optional[int]:
        """Static target of a pc-relative branch/jal, else None."""
        if instr.iclass == "branch" or instr.mnemonic == "jal":
            return pc + instr.imm
        return None

    def _find_leaders(self) -> Set[int]:
        leaders = {self.entry}
        for pc in self.instrs:
            if pc - 4 not in self.instrs:
                leaders.add(pc)  # first instruction after a gap
        for pc, instr in self.instrs.items():
            target = self._branch_target(pc, instr)
            if target is not None:
                if target in self.instrs:
                    leaders.add(target)
                else:
                    self.invalid_targets.append((pc, target))
            if instr.spec.is_control or _is_halt(instr):
                if pc + 4 in self.instrs:
                    leaders.add(pc + 4)
        return leaders

    def _form_blocks(self, leaders: Set[int]):
        current: Optional[BasicBlock] = None
        for pc in sorted(self.instrs):
            instr = self.instrs[pc]
            if current is None or pc in leaders:
                current = BasicBlock(start=pc)
                self._blocks[pc] = current
            current.instrs.append((pc, instr))
            if instr.spec.is_control or _is_halt(instr):
                current = None
        self._blocks[EXIT] = BasicBlock(start=EXIT)

    def _call_sites(self) -> Dict[int, List[int]]:
        """callee entry -> return-site addresses, for `jal link, f`."""
        calls: Dict[int, List[int]] = {}
        for pc, instr in self.instrs.items():
            if _is_call(instr):
                target = pc + instr.imm
                if target in self.instrs:
                    calls.setdefault(target, []).append(pc + 4)
        return calls

    def _function_regions(self, calls: Dict[int, List[int]]):
        """block start -> owning callee entry, walking each function
        body from its entry and stepping *over* nested calls."""
        owner: Dict[int, int] = {}
        for entry in calls:
            if entry not in self._blocks:
                continue
            stack = [entry]
            while stack:
                start = stack.pop()
                if start not in self._blocks or start in owner:
                    continue
                owner[start] = entry
                blk = self._blocks[start]
                term = blk.terminator
                if term is None:
                    if blk.end in self._blocks:
                        stack.append(blk.end)
                    continue
                pc, instr = term
                if _is_return(instr) or _is_halt(instr):
                    continue
                if _is_call(instr):
                    if pc + 4 in self._blocks:
                        stack.append(pc + 4)  # assume the call returns
                    continue
                target = self._branch_target(pc, instr)
                if target is not None and target in self._blocks:
                    stack.append(target)
                if instr.iclass == "branch" and pc + 4 in self._blocks:
                    stack.append(pc + 4)
        return owner

    def _wire_edges(self, calls: Dict[int, List[int]], owner):
        all_return_sites = sorted(site for sites in calls.values()
                                  for site in sites)
        for blk in self.blocks():
            term = blk.terminator
            if term is None:
                if blk.end in self._blocks:
                    blk.succs.append(blk.end)
                continue
            pc, instr = term
            if _is_halt(instr):
                blk.succs.append(EXIT)
                continue
            if instr.iclass == "branch":
                target = pc + instr.imm
                if target in self._blocks:
                    blk.succs.append(target)
                if pc + 4 in self._blocks:
                    blk.succs.append(pc + 4)
                continue
            if instr.mnemonic == "jal":
                target = pc + instr.imm
                if target in self._blocks:
                    blk.succs.append(target)
                continue
            # jalr family.
            if _is_return(instr):
                entry = owner.get(blk.start)
                sites = (calls.get(entry, []) if entry is not None
                         else all_return_sites)
                if not sites:
                    blk.has_unknown_target = True
                blk.succs.extend(s for s in sorted(set(sites))
                                 if s in self._blocks)
                continue
            blk.has_unknown_target = True
            if instr.rd in LINK_REGISTERS and pc + 4 in self._blocks:
                blk.succs.append(pc + 4)  # indirect call: assume return
        for blk in self.all_blocks():
            for succ in blk.succs:
                self._blocks[succ].preds.append(blk.start)


def build_cfg(program: Program) -> ControlFlowGraph:
    """Build the :class:`ControlFlowGraph` of ``program``."""
    return ControlFlowGraph(program)
