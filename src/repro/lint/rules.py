"""The built-in lint rules (codes L001-L013).

Each check receives the :class:`~repro.lint.engine.LintContext` (CFG,
dataflow results, abstract-interpretation results, debug info) plus its
own :class:`Rule` and yields diagnostics.  Codes are stable: tools and
``# lint: disable=`` comments key off them, so a rule may be retired
but its code never reused.

L001-L009 use plain dataflow; L010-L012 consume the strided-interval
abstract interpretation (:mod:`repro.lint.absint`) and L013 the
fault-masking prover (:mod:`repro.lint.masking`, opt-in via
``prove_masking``).
"""

from __future__ import annotations

from ..isa.registers import register_name
from .cfg import EXIT
from .dataflow import UNINIT
from .diagnostics import ERROR, INFO, WARNING, rule

#: Bases whose runtime value is known aligned (x0 = 0, gp = the
#: 4 KiB-aligned data base, sp = the 16-byte-aligned stack top; kernels
#: move sp only in multiples of 16 per the dsl convention).
_ALIGNED_BASES = frozenset((0, 2, 3))

#: gp (x3): the core-private data base register kernels must preserve.
_GP = 3


def _branch_target(pc, instr):
    if instr.iclass == "branch" or instr.mnemonic == "jal":
        return pc + instr.imm
    return None


@rule("L001", "uninit-read", ERROR,
      "register read with no prior write on some path from _start "
      "(only x0/sp/gp/tp are runtime-initialized)")
def check_uninit_read(ctx, rule):
    for block in ctx.reachable_blocks():
        for pc, instr, reaching in ctx.reaching.states(block):
            for reg in instr.sources():
                if reg != 0 and (UNINIT, reg) in reaching:
                    yield rule.diagnostic(
                        "'%s' reads %s before any write reaches it"
                        % (instr.text(), register_name(reg)), pc=pc)


@rule("L002", "dead-store", WARNING,
      "register write never read on any path before being overwritten "
      "or the program halting")
def check_dead_store(ctx, rule):
    for block in ctx.reachable_blocks():
        for pc, instr, live_after in ctx.liveness.states(block):
            rd = instr.destination()
            if rd is not None and rd not in live_after:
                yield rule.diagnostic(
                    "'%s' writes %s but the value is never read"
                    % (instr.text(), register_name(rd)), pc=pc)


@rule("L003", "x0-write", WARNING,
      "computation discarded into x0 (writes to x0 are architectural "
      "no-ops; only the canonical nop and plain jumps are idiomatic)")
def check_x0_write(ctx, rule):
    for pc, instr in sorted(ctx.cfg.instrs.items()):
        if (instr.rd == 0 and instr.iclass != "jump"
                and not instr.is_nop):
            yield rule.diagnostic(
                "'%s' discards its result into x0" % instr.text(),
                pc=pc)


@rule("L004", "unreachable", WARNING,
      "basic block unreachable from the program entry point")
def check_unreachable(ctx, rule):
    reachable = ctx.reachable
    for block in ctx.cfg.blocks():
        if block.start not in reachable:
            yield rule.diagnostic(
                "block of %d instruction(s) at %#x is unreachable "
                "from _start" % (len(block), block.start),
                pc=block.start)


@rule("L005", "bad-branch-target", ERROR,
      "branch/jump target outside the image, misaligned, or landing "
      "on data")
def check_bad_branch_target(ctx, rule):
    for pc, target in sorted(ctx.cfg.invalid_targets):
        instr = ctx.cfg.instrs[pc]
        yield rule.diagnostic(
            "'%s' targets %#x, which is not an instruction in the "
            "image" % (instr.text(), target), pc=pc)


@rule("L006", "pseudo-interior-target", ERROR,
      "branch/jump into the middle of an expanded li/la sequence "
      "(executes a half-built constant)")
def check_pseudo_interior_target(ctx, rule):
    if ctx.debug is None:
        return
    interiors = ctx.debug.pseudo_interiors
    for pc, instr in sorted(ctx.cfg.instrs.items()):
        target = _branch_target(pc, instr)
        if target is not None and target in interiors:
            yield rule.diagnostic(
                "'%s' jumps into the middle of a pseudo-instruction "
                "expansion at %#x" % (instr.text(), target), pc=pc)


@rule("L007", "misaligned-access", ERROR,
      "load/store offset statically misaligned for its access size "
      "relative to an aligned base (x0/sp/gp)")
def check_misaligned_access(ctx, rule):
    for pc, instr in sorted(ctx.cfg.instrs.items()):
        spec = instr.spec
        if (spec.is_memory and spec.size > 1
                and instr.rs1 in _ALIGNED_BASES
                and instr.imm % spec.size != 0):
            yield rule.diagnostic(
                "'%s' accesses %d bytes at offset %d from %s, which "
                "is not %d-byte aligned"
                % (instr.text(), spec.size, instr.imm,
                   register_name(instr.rs1), spec.size), pc=pc)


@rule("L008", "gp-clobber", ERROR,
      "write to gp, the core-private data base register the kernel "
      "convention requires to stay fixed")
def check_gp_clobber(ctx, rule):
    for pc, instr in sorted(ctx.cfg.instrs.items()):
        if instr.destination() == _GP:
            yield rule.diagnostic(
                "'%s' clobbers gp (the data base register)"
                % instr.text(), pc=pc)


@rule("L009", "no-exit-path", ERROR,
      "reachable code with no path to the halt (ebreak/ecall): the "
      "kernel can never publish its store_result checksum")
def check_no_exit_path(ctx, rule):
    cfg = ctx.cfg
    if cfg.entry_block is None or EXIT not in [
            s for b in cfg.all_blocks() for s in b.succs]:
        # No halt anywhere: the whole program is the finding.
        if cfg.entry_block is not None:
            yield rule.diagnostic(
                "program has no ebreak/ecall halt at all",
                pc=cfg.entry)
        return
    if any(cfg.block(s).has_unknown_target for s in ctx.reachable):
        return  # indirect target unknown: cannot prove non-termination
    reaches_exit = cfg.reaches_exit()
    trapped = sorted(s for s in ctx.reachable if s not in reaches_exit)
    if trapped:
        yield rule.diagnostic(
            "%d reachable block(s) starting at %#x can never reach "
            "the halt" % (len(trapped), trapped[0]), pc=trapped[0])


@rule("L010", "constant-branch", WARNING,
      "conditional branch whose direction the interval analysis "
      "proves constant on every execution")
def check_constant_branch(ctx, rule):
    for pc, taken in sorted(ctx.branch_decisions().items()):
        instr = ctx.cfg.instrs[pc]
        yield rule.diagnostic(
            "'%s' is always %s" % (instr.text(),
                                   "taken" if taken else "not taken"),
            pc=pc)


@rule("L011", "proven-misaligned-access", ERROR,
      "load/store through a computed base whose interval proves the "
      "effective address misaligned for the access size")
def check_proven_misaligned_access(ctx, rule):
    for block in ctx.reachable_blocks():
        for pc, instr in block.instrs:
            spec = instr.spec
            if not (spec.is_memory and spec.size > 1):
                continue
            if instr.rs1 in _ALIGNED_BASES:
                continue  # statically-aligned bases are L007's job
            state = ctx.interval_before(pc)
            if state is None:
                continue
            interval = state.get(instr.rs1)
            if interval is None:
                continue
            residue = interval.residue(spec.size)
            if residue is None:
                continue
            misalign = (residue + instr.imm) % spec.size
            if misalign != 0:
                yield rule.diagnostic(
                    "'%s' accesses %d bytes at an address provably "
                    "== %d (mod %d) on every execution"
                    % (instr.text(), spec.size, misalign, spec.size),
                    pc=pc)


@rule("L012", "proven-unreachable-exit", ERROR,
      "reachable code whose every path to the halt runs through a "
      "branch edge the interval analysis proves never taken")
def check_proven_unreachable_exit(ctx, rule):
    cfg = ctx.cfg
    if cfg.entry_block is None:
        return
    if any(cfg.block(s).has_unknown_target for s in ctx.reachable):
        return  # indirect target unknown: cannot prove anything
    dead = ctx.dead_edges()
    if not dead:
        return
    # Reachability and reaches-exit over the CFG minus proven-dead
    # edges.  Only blocks that pass the plain L009 check are reported
    # here, so the two rules never double-fire on the same block.
    live_succs = {
        b.start: [s for s in b.succs if (b.start, s) not in dead]
        for b in cfg.all_blocks()}
    live_reach = set()
    stack = [cfg.entry]
    while stack:
        start = stack.pop()
        if start in live_reach or start == EXIT:
            continue
        live_reach.add(start)
        stack.extend(live_succs.get(start, ()))
    reaches = {EXIT}
    changed = True
    while changed:
        changed = False
        for b in cfg.all_blocks():
            if b.start in reaches:
                continue
            if any(s in reaches for s in live_succs[b.start]):
                reaches.add(b.start)
                changed = True
    plain_reaches_exit = cfg.reaches_exit()
    trapped = sorted(s for s in live_reach
                     if s not in reaches and s in plain_reaches_exit)
    if trapped:
        yield rule.diagnostic(
            "%d block(s) starting at %#x only reach the halt through "
            "a branch edge that is provably never taken"
            % (len(trapped), trapped[0]), pc=trapped[0])


@rule("L013", "dead-window-report", INFO,
      "register with proven fault-masking windows: program points "
      "where any bit-flip in it is architecturally dead")
def check_dead_window_report(ctx, rule):
    if not ctx.prove_masking:
        return
    proofs = ctx.masking
    first_write = {}
    for pc, instr in sorted(ctx.cfg.instrs.items()):
        rd = instr.destination()
        if rd is not None and rd not in first_write:
            first_write[rd] = pc
    for reg in sorted(proofs.written_registers):
        count = proofs.dead_point_count(reg)
        if count == 0:
            continue
        windows = proofs.windows(reg)
        yield rule.diagnostic(
            "%s is provably fault-dead at %d of %d program points "
            "(%d window(s))"
            % (register_name(reg), count, proofs.point_count,
               len(windows)),
            pc=first_write.get(reg, ctx.cfg.entry))
