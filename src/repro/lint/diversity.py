"""Static lower bounds on SafeDM instruction-signature divergence.

SafeDM measures diversity *at runtime* by hashing each core's pipeline
stage contents per cycle.  For the staggered-redundancy configuration
(``start_redundant(..., stagger_nops=N)``) much of that divergence is
already determined by program structure: while the late core is still
executing its nop sled, the head core executes kernel words — and a
kernel word can never hash equal to a nop, so almost every sled-phase
cycle is provably instruction-diverse *before simulation*.

The proof obligation is the word "almost".  A zero-IS-diversity cycle
during the sled phase requires the two instruction signatures to be
equal, which (given the preconditions below, and modulo hash
collisions — see Assumptions) requires the **head core's sampled
pipeline content to be empty**: the sled is all ``NOP_WORD`` and the
head image contains none, so any cycle where the head core samples
kernel words differs from anything the late core can show (nops,
empties, or a frozen signature thereof).  Head-empty sample content
can only happen around instruction-cache refills with a fully drained
pipeline — and those are budgeted: a contiguous text image of ``L``
cache lines with no conflict misses refills each line at most once,
each refill stalling at most :func:`refill_budget_per_line` cycles
(worst-case AHB grant + L2 miss + transfer, doubled for contention
with the other core, plus drain/ramp margin).  Every cycle in the
proven sled window beyond the global budget ``L x per_line`` is
therefore instruction-diverse.

Assumptions (each checked or conservative): signature equality of
*different* stage contents (a hash collision) is assumed not to occur
— SafeDM's signatures are exactly the diversity evidence the paper
trusts, and the validation tests compare the bound against measured
monitor output for every tested (kernel, stagger) pair.  All other
ingredients are conservative: the window ends well before the late
core can fetch its first kernel word, and the refill budget is an
over-approximation validated empirically (observed worst per-refill
zero-diversity gaps are under 45 cycles; the budget charges 64).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..isa.opcodes import NOP_WORD
from ..isa.program import Program
from ..soc.config import SocConfig

#: Extra cycles charged per refill for pipeline drain before the stall
#: and re-ramp after it (7 stages x 2-wide, empirically generous).
PIPELINE_MARGIN = 14

#: Cycles excluded at the start of the window (cold-start transient:
#: both pipelines begin empty, which is a legitimate zero-diversity
#: state the budget also covers — the warmup just keeps the window
#: honest about what it claims).
WARMUP_CYCLES = 16

#: Default per-cycle-window chunk (cycles per :class:`DiversityWindow`).
DEFAULT_WINDOW = 256


def refill_budget_per_line(config: Optional[SocConfig] = None) -> int:
    """Worst-case head-core-empty cycles chargeable to one L1I line
    refill: bus grant + L2 lookup + L2 miss + line transfer, doubled
    for worst-case contention with the other core on the shared
    single-outstanding-transaction AHB, plus drain/ramp margin."""
    cfg = config or SocConfig()
    t = cfg.bus_timing
    single = t.grant + t.l2_hit + t.l2_miss + t.transfer
    return 2 * single + PIPELINE_MARGIN


@dataclass(frozen=True)
class DiversityWindow:
    """One cycle window ``[start, end)`` with its proven lower bound on
    instruction-diverse cycles inside it."""

    start: int
    end: int
    lower_bound: int

    @property
    def length(self) -> int:
        return self.end - self.start


@dataclass
class StaticDiversityBound:
    """The static estimate for one (image pair, stagger) scenario.

    ``holds`` is False when a precondition fails — the estimator then
    claims nothing (every bound is 0), it never guesses.
    """

    stagger: int
    holds: bool
    reason: str
    #: Analyzed head-image text words (data directives excluded).
    text_words: int
    #: L1I lines the head text occupies.
    text_lines: int
    #: Global head-empty cycle budget (lines x per-line worst case).
    refill_budget: int
    #: The proven sled-phase cycle span ``[window_start, window_end)``.
    window_start: int = 0
    window_end: int = 0
    windows: List[DiversityWindow] = field(default_factory=list)
    #: Proven minimum instruction-diverse cycles over the whole span
    #: (global budget charged once — tighter than summing windows).
    total_lower_bound: int = 0

    def to_dict(self) -> dict:
        return {
            "stagger": self.stagger,
            "holds": self.holds,
            "reason": self.reason,
            "text_words": self.text_words,
            "text_lines": self.text_lines,
            "refill_budget": self.refill_budget,
            "window_start": self.window_start,
            "window_end": self.window_end,
            "total_lower_bound": self.total_lower_bound,
            "windows": [
                {"start": w.start, "end": w.end,
                 "lower_bound": w.lower_bound}
                for w in self.windows],
        }


def _text_words(program: Program) -> List[int]:
    """Fetchable words of ``program`` (data directives excluded)."""
    debug = program.debug
    data = debug.data_addresses if debug else frozenset()
    return [word for pc, word in program.words() if pc not in data]


def predict_instruction_diversity(
        program_a: Program,
        program_b: Optional[Program] = None,
        stagger: int = 0,
        window: int = DEFAULT_WINDOW,
        config: Optional[SocConfig] = None,
        horizon: Optional[int] = None) -> StaticDiversityBound:
    """Per-cycle-window lower bound on SafeDM IS divergence.

    ``program_a`` runs on the head core from cycle 0; the late core
    executes ``stagger`` nops (then ``program_b`` — which never enters
    the proven window, so only its existence matters).  Returns a
    :class:`StaticDiversityBound` whose per-window and total bounds
    are ≤ the measured ``DiversityMonitor`` instruction-diversity
    count on every scenario the preconditions accept
    (``tests/test_lint_diversity.py`` validates this against
    simulation).

    The monitor only samples while *both* cores run, so the claims
    cover monitored cycles.  When the head core's runtime is known,
    pass it as ``horizon`` (monitored cycle count) and the window is
    clamped to it; without a horizon the window assumes the head core
    outlives the sled phase — callers comparing against measurement
    should pass ``horizon=len(verdicts)``.
    """
    cfg = config or SocConfig()
    words = _text_words(program_a)
    line_words = cfg.core.l1i.line_size // 4
    lines = -(-len(words) // line_words) if words else 0
    budget = lines * refill_budget_per_line(cfg)
    bound = StaticDiversityBound(
        stagger=stagger, holds=True, reason="", text_words=len(words),
        text_lines=lines, refill_budget=budget)

    if stagger <= 0:
        # No sled: nothing is claimed (a zero bound is trivially sound).
        bound.reason = "no stagger: empty bound"
        return bound
    if not words:
        bound.holds = False
        bound.reason = "head image has no text"
        return bound
    if NOP_WORD in words:
        bound.holds = False
        bound.reason = ("head image contains the nop encoding: sled "
                        "cycles are not provably diverse")
        return bound
    capacity_lines = cfg.core.l1i.size // cfg.core.l1i.line_size
    if lines > capacity_lines:
        bound.holds = False
        bound.reason = ("head text exceeds L1I capacity (%d > %d "
                        "lines): conflict refills are unbounded"
                        % (lines, capacity_lines))
        return bound

    # The late core must fetch all `stagger` sled words (at most
    # issue_width per cycle) before its jump — and thus any kernel
    # word — can even enter the fetch stage.
    width = max(1, cfg.core.issue_width)
    sled_fetch_cycles = stagger // width
    window_end = sled_fetch_cycles - PIPELINE_MARGIN
    if horizon is not None:
        window_end = min(window_end, horizon)
    window_start = WARMUP_CYCLES
    if window_end <= window_start:
        bound.reason = ("stagger %d too small for a proven window"
                        % stagger)
        return bound

    bound.window_start = window_start
    bound.window_end = window_end
    span = window_end - window_start
    # Per-window bounds must each hold in isolation: the whole global
    # budget could land inside any single window.
    chunk = max(1, window)
    start = window_start
    while start < window_end:
        end = min(start + chunk, window_end)
        bound.windows.append(DiversityWindow(
            start=start, end=end,
            lower_bound=max(0, (end - start) - budget)))
        start = end
    per_window_total = sum(w.lower_bound for w in bound.windows)
    # Globally the budget is charged once across the span.
    bound.total_lower_bound = max(per_window_total,
                                  span - budget, 0)
    return bound


def measure_instruction_diversity(
        program: Program, stagger: int,
        max_cycles: int = 200_000,
        config: Optional[SocConfig] = None) -> List[int]:
    """Measured per-cycle IS-diversity verdicts (0/1) for the
    redundant configuration the estimator models — the validation
    oracle for :func:`predict_instruction_diversity`.

    Only *sampled* cycles are returned: the monitor gates off once
    either monitored core finishes, so ``len(verdicts)`` is the
    monitored span (the natural ``horizon`` for the estimator).
    """
    from ..soc.mpsoc import MPSoC

    soc = MPSoC(config=config)
    soc.start_redundant(program, stagger_nops=stagger)
    verdicts: List[int] = []
    monitored = [soc.cores[i] for i in soc.monitored]
    while soc.cycle < max_cycles:
        soc.step()
        if any(core.finished for core in monitored):
            break  # this cycle was not sampled (monitor gating)
        report = soc.safedm.last_report
        verdicts.append(0 if report is None
                        else int(report.instruction_diversity))
    return verdicts


def validate_bound(bound: StaticDiversityBound,
                   verdicts: List[int]) -> Tuple[bool, str]:
    """Check ``bound`` against measured per-cycle verdicts.

    Returns ``(ok, detail)``: ok iff every per-window lower bound and
    the total lower bound are ≤ the measured diverse-cycle counts.
    """
    for w in bound.windows:
        measured = sum(verdicts[w.start:min(w.end, len(verdicts))])
        if w.lower_bound > measured:
            return False, ("window [%d, %d): bound %d > measured %d"
                           % (w.start, w.end, w.lower_bound, measured))
    span = verdicts[bound.window_start:
                    min(bound.window_end, len(verdicts))]
    measured_total = sum(span)
    if bound.total_lower_bound > measured_total:
        return False, ("total: bound %d > measured %d"
                       % (bound.total_lower_bound, measured_total))
    return True, ("total: bound %d <= measured %d"
                  % (bound.total_lower_bound, measured_total))


__all__ = [
    "DEFAULT_WINDOW",
    "DiversityWindow",
    "PIPELINE_MARGIN",
    "StaticDiversityBound",
    "WARMUP_CYCLES",
    "measure_instruction_diversity",
    "predict_instruction_diversity",
    "refill_budget_per_line",
    "validate_bound",
]
