"""Generic iterative dataflow solving over a :class:`ControlFlowGraph`.

Problems are set-valued with a union meet (may-analyses), which covers
everything the lint rules need: reaching definitions (forward) and
register liveness (backward).  A problem supplies a per-instruction
transfer function; the solver folds it over blocks and iterates a
worklist to the fixed point.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, Set, Tuple

from ..isa.instruction import Instruction
from .cfg import BasicBlock, ControlFlowGraph

#: Registers the bare-metal runtime initializes before ``_start``
#: (see repro.soc.mpsoc.MPSoC.start_core): x0, sp, gp, tp.
RUNTIME_INITIALIZED = frozenset((0, 2, 3, 4))

#: Synthetic definition site marking a register as never written.
UNINIT = "uninit"

#: Synthetic definition site for runtime-initialized registers.
RUNTIME = "runtime"

FORWARD = "forward"
BACKWARD = "backward"


class DataflowProblem:
    """A set-valued, union-meet dataflow problem."""

    direction = FORWARD

    def boundary(self, cfg: ControlFlowGraph) -> Set:
        """Value at the entry block (forward) or exit block (backward)."""
        return set()

    def transfer(self, state: Set, pc: int, instr: Instruction) -> Set:
        """Apply one instruction (in the problem's direction)."""
        raise NotImplementedError


class ReachingDefinitions(DataflowProblem):
    """Forward may-reach of ``(site, register)`` definition pairs.

    ``site`` is the defining pc, or :data:`RUNTIME`/:data:`UNINIT` for
    the synthetic pre-``_start`` definitions.  A use whose reaching set
    contains ``(UNINIT, reg)`` may read an uninitialized register.
    """

    direction = FORWARD

    def boundary(self, cfg):
        state = set()
        for reg in range(32):
            site = RUNTIME if reg in RUNTIME_INITIALIZED else UNINIT
            state.add((site, reg))
        return state

    def transfer(self, state, pc, instr):
        rd = instr.destination()
        if rd is None:
            return state
        return {d for d in state if d[1] != rd} | {(pc, rd)}


class Liveness(DataflowProblem):
    """Backward register liveness (x0 excluded: never meaningful)."""

    direction = BACKWARD

    def boundary(self, cfg):
        return set()  # after the halt nothing is architecturally live

    def transfer(self, state, pc, instr):
        rd = instr.destination()
        if rd is not None:
            state = state - {rd}
        uses = {r for r in instr.sources() if r != 0}
        return state | uses if uses else state


class DataflowResult:
    """Fixed-point block states plus per-instruction walk helpers."""

    def __init__(self, cfg: ControlFlowGraph, problem: DataflowProblem,
                 block_in: Dict[int, FrozenSet],
                 block_out: Dict[int, FrozenSet]):
        self.cfg = cfg
        self.problem = problem
        self.block_in = block_in
        self.block_out = block_out

    def states(self, block: BasicBlock) -> Iterator[
            Tuple[int, Instruction, FrozenSet]]:
        """Yield ``(pc, instr, state)`` for every instruction in order.

        For a forward problem ``state`` is the dataflow value *before*
        the instruction; for a backward problem it is the value *after*
        it (e.g. the live-out set, which is what a dead-store check
        needs).
        """
        transfer = self.problem.transfer
        if self.problem.direction == FORWARD:
            state = self.block_in[block.start]
            for pc, instr in block.instrs:
                yield pc, instr, state
                state = transfer(state, pc, instr)
        else:
            state = self.block_out[block.start]
            for pc, instr in reversed(block.instrs):
                yield pc, instr, state
                state = transfer(state, pc, instr)


def solve(cfg: ControlFlowGraph,
          problem: DataflowProblem) -> DataflowResult:
    """Iterate ``problem`` over ``cfg`` to its least fixed point."""
    forward = problem.direction == FORWARD
    blocks = cfg.all_blocks()
    block_in = {b.start: set() for b in blocks}
    block_out = {b.start: set() for b in blocks}
    boundary = set(problem.boundary(cfg))

    def block_transfer(block: BasicBlock, state: Set) -> Set:
        instrs = block.instrs if forward else reversed(block.instrs)
        for pc, instr in instrs:
            state = problem.transfer(state, pc, instr)
        return state

    # Seed in reverse post-order (reversed for backward problems):
    # deterministic, and each block tends to be visited after the
    # blocks feeding it, so most states converge on the first pass.
    from .absint import reverse_postorder  # lazy: absint imports us
    rpo = reverse_postorder(cfg)
    order = {block.start: i for i, block in enumerate(rpo)}
    seeded = sorted(blocks, key=lambda b: order[b.start])
    worklist = seeded if forward else list(reversed(seeded))
    on_list = {b.start for b in blocks}
    while worklist:
        block = worklist.pop(0)
        on_list.discard(block.start)
        if forward:
            edges_in, edges_out = block.preds, block.succs
            value_in, value_out = block_in, block_out
            is_boundary = block.start == cfg.entry
        else:
            edges_in, edges_out = block.succs, block.preds
            value_in, value_out = block_out, block_in
            is_boundary = block.is_exit
        merged = set(boundary) if is_boundary else set()
        for other in edges_in:
            merged |= value_out[other]
        value_in[block.start] = merged
        result = block_transfer(block, set(merged))
        if result != value_out[block.start]:
            value_out[block.start] = result
            for other in edges_out:
                if other not in on_list:
                    on_list.add(other)
                    worklist.append(cfg.block(other))

    return DataflowResult(
        cfg, problem,
        {k: frozenset(v) for k, v in block_in.items()},
        {k: frozenset(v) for k, v in block_out.items()})
