"""Static fault-masking proofs from register-lifetime analysis.

PR 7's analytic Monte-Carlo classifier proves a trial masked by
consulting a *recorded* access log: if the first access to the
corrupted register at-or-after the fault cycle is a write (or never
comes), the flip is architecturally dead.  This module proves the same
property *statically*: :class:`MaskingProofs` runs the
:class:`~repro.lint.absint.MaskingLiveness` domain to a fixed point
and exposes, for every (register, program point), whether a bit-flip
landing there is dead on **all** paths — before a single cycle is
simulated.

The bridge to concrete trials is the *frontier* program point: the pc
of the oldest instruction that has **not yet issued** when the fault
strikes (recorded per cycle by :func:`repro.montecarlo.golden.
mc_golden_run`).  In this core model the register file is read and
written only at issue time (``Core._issue`` is the single
``RegisterFile.read`` call site) and wrong-path groups are squashed
before they issue, so every register access after the fault belongs to
an instruction issuing from the frontier onward — i.e. along a CFG
path from the frontier pc.  ``register not live-in at frontier``
therefore implies ``first dynamic access is a write or never comes``:
the static masked set is a subset of the dynamic one
(``tests/test_lint_masking.py`` asserts this over all 29 kernels).

Soundness assumptions, and how violations degrade: indirect jumps with
statically-unknown targets force every register live (no proof past
them, never a wrong proof); returns are resolved to the return sites
of the owning callee's call sites, which is exact for the standard
``jal``/``jalr`` link discipline every kernel and the assembler's
pseudo-ops follow.  Program points outside the CFG (e.g. stagger-sled
addresses) yield no proof and fall back to the dynamic log.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..isa.program import Program
from .absint import (
    ALL_REGISTERS,
    RESULT_REGISTER,
    MaskingLiveness,
    solve_absint,
)
from .cfg import ControlFlowGraph, build_cfg

#: Frontier sentinel: the core is halted (or the run is over) — no
#: instruction will ever issue again; the only remaining architectural
#: read is the halt-time checksum readout of :data:`RESULT_REGISTER`.
FRONTIER_HALTED = -1


class MaskingProofs:
    """Per-point dead-register proofs for one program image.

    ``live_in[pc]`` is the proven may-live set immediately before the
    instruction at ``pc`` issues; pcs of unreachable instructions map
    to ``None`` (no proof either way).
    """

    def __init__(self, program: Program,
                 cfg: Optional[ControlFlowGraph] = None):
        self.program = program
        self.cfg = cfg if cfg is not None else build_cfg(program)
        result = solve_absint(self.cfg, MaskingLiveness(self.cfg))
        self.live_in: Dict[int, Optional[FrozenSet[int]]] = {
            pc: (None if state is None else frozenset(state))
            for pc, state in result.point_states().items()}
        written: set = set()
        for pc, instr in self.cfg.instrs.items():
            rd = instr.destination()
            if rd is not None:
                written.add(rd)
        #: Registers some instruction writes (candidates for windows).
        self.written_registers: FrozenSet[int] = frozenset(written)
        self.annotate()

    def annotate(self, key: str = "masking.dead") -> None:
        """Publish the per-point proven-dead sets onto the program via
        :meth:`repro.isa.program.Program.set_point_metadata`, so tools
        holding only the image can read the proofs back."""
        for pc in self.live_in:
            self.program.set_point_metadata(pc, key,
                                            self.dead_registers(pc))

    # -- point queries -----------------------------------------------------

    def dead_at(self, pc: int, register: int) -> bool:
        """True when a flip of ``register`` just before the instruction
        at ``pc`` issues is proven architecturally dead."""
        if pc == FRONTIER_HALTED:
            return register != RESULT_REGISTER
        live = self.live_in.get(pc)
        if live is None:
            return False
        return register not in live

    def dead_registers(self, pc: int) -> FrozenSet[int]:
        """All registers proven dead at ``pc`` (empty if no proof)."""
        if pc == FRONTIER_HALTED:
            return ALL_REGISTERS - {RESULT_REGISTER}
        live = self.live_in.get(pc)
        if live is None:
            return frozenset()
        return ALL_REGISTERS - live

    # -- window queries ----------------------------------------------------

    def windows(self, register: int) -> List[Tuple[int, int]]:
        """Maximal proven-dead pc intervals for ``register``.

        Each ``(start, end)`` covers the contiguous instruction
        addresses ``start, start+4, ..., end-4`` at every one of which
        the register is proven dead.  Gaps in the image break windows.
        """
        out: List[Tuple[int, int]] = []
        run_start: Optional[int] = None
        prev: Optional[int] = None
        for pc in sorted(self.live_in):
            live = self.live_in[pc]
            dead = live is not None and register not in live
            contiguous = prev is not None and pc == prev + 4
            if dead:
                if run_start is None or not contiguous:
                    if run_start is not None:
                        out.append((run_start, prev + 4))
                    run_start = pc
            elif run_start is not None:
                out.append((run_start, prev + 4))
                run_start = None
            prev = pc
        if run_start is not None and prev is not None:
            out.append((run_start, prev + 4))
        return out

    def dead_point_count(self, register: int) -> int:
        """Number of program points at which ``register`` is proven
        dead (the summary statistic the L013 report and the masking
        benchmark both use)."""
        return sum(1 for live in self.live_in.values()
                   if live is not None and register not in live)

    @property
    def point_count(self) -> int:
        """Total analyzed program points (reachable or not)."""
        return len(self.live_in)

    def coverage(self) -> Dict[int, int]:
        """register -> proven-dead point count, for written registers."""
        return {reg: self.dead_point_count(reg)
                for reg in sorted(self.written_registers)}


class StaticMaskFilter:
    """The Monte-Carlo pre-filter view of :class:`MaskingProofs`.

    :func:`repro.montecarlo.golden.classify_batch` consults this (when
    provided) *before* the dynamic access log: a trial whose frontier
    point proves the corrupted register dead resolves to the golden
    outcome without touching the log.
    """

    __slots__ = ("proofs",)

    def __init__(self, proofs: MaskingProofs):
        self.proofs = proofs

    @classmethod
    def from_program(cls, program: Program) -> "StaticMaskFilter":
        return cls(MaskingProofs(program))

    def is_masked(self, frontier_pc: int, register: int) -> bool:
        """True when a flip of ``register``, with ``frontier_pc`` as
        the oldest not-yet-issued instruction, is statically dead."""
        return self.proofs.dead_at(frontier_pc, register)


def compute_masking_proofs(program: Program) -> MaskingProofs:
    """Build :class:`MaskingProofs` for ``program``."""
    return MaskingProofs(program)


__all__ = [
    "FRONTIER_HALTED",
    "MaskingProofs",
    "StaticMaskFilter",
    "compute_masking_proofs",
]
