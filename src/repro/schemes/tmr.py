"""Triple Modular Redundancy: three replicas, per-commit majority vote.

All three replicas run the same text image in private data regions and
start in the same cycle (optionally staggered by per-replica nop
sleds).  Every cycle the voter aligns the three per-commit record
streams elastically and votes each position:

* all three agree — ``agreed``;
* exactly two agree — ``corrected`` (the hardware masks the error and
  keeps running off the majority; the minority replica is flagged);
* none agree — ``uncorrectable`` (detected, not maskable).

Cross-replica records tolerate the pairwise data-region address deltas
(see :mod:`repro.schemes.base`).  The end-of-run verdict also votes
the final outputs: TMR *corrects* a fault when the majority output is
still the golden value, and merely *detects* it otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .base import (
    RedundancyScheme,
    VOTER_LUTS,
    commit_records,
    delta_equivalence,
)
from .spec import SchemeSpec


@dataclass
class TmrStats:
    voted: int = 0
    agreed: int = 0
    corrected: int = 0
    uncorrectable: int = 0
    first_corrected_cycle: int = -1
    first_uncorrectable_cycle: int = -1
    #: Minority-replica histogram for corrected votes (who was wrong).
    outvoted: Tuple[int, int, int] = (0, 0, 0)


class MajorityVoter:
    """Elastic three-stream per-commit majority voter."""

    def __init__(self, equivalences=(None, None, None)):
        #: Pairwise record equivalences for (0,1), (0,2), (1,2).
        self._eq = equivalences
        self.stats = TmrStats()
        self._streams: Tuple[List, List, List] = ([], [], [])

    @staticmethod
    def _match(eq, a, b) -> bool:
        return a == b or (eq is not None and eq(a, b))

    def sample(self, cycle: int, recs0, recs1, recs2):
        streams = self._streams
        streams[0].extend(recs0)
        streams[1].extend(recs1)
        streams[2].extend(recs2)
        n = min(len(streams[0]), len(streams[1]), len(streams[2]))
        if not n:
            return
        eq01, eq02, eq12 = self._eq
        stats = self.stats
        outvoted = list(stats.outvoted)
        for i in range(n):
            a, b, c = streams[0][i], streams[1][i], streams[2][i]
            ab = self._match(eq01, a, b)
            ac = self._match(eq02, a, c)
            bc = self._match(eq12, b, c)
            stats.voted += 1
            if ab and ac:
                stats.agreed += 1
            elif ab or ac or bc:
                stats.corrected += 1
                if stats.first_corrected_cycle < 0:
                    stats.first_corrected_cycle = cycle
                outvoted[2 if ab else (1 if ac else 0)] += 1
            else:
                stats.uncorrectable += 1
                if stats.first_uncorrectable_cycle < 0:
                    stats.first_uncorrectable_cycle = cycle
        stats.outvoted = tuple(outvoted)
        for stream in streams:
            del stream[:n]

    def flush(self, cycle: int):
        """End of run: any stream-length imbalance is a divergence —
        vote the residue as corrected/uncorrectable by who diverged."""
        lens = tuple(len(s) for s in self._streams)
        residue = max(lens) - min(lens)
        if residue:
            self.stats.voted += residue
            # Two streams drained equally and one is short/long:
            # majority still exists — corrected.  All three different:
            # uncorrectable.
            if lens.count(min(lens)) == 2 or lens.count(max(lens)) == 2:
                self.stats.corrected += residue
                if self.stats.first_corrected_cycle < 0:
                    self.stats.first_corrected_cycle = cycle
            else:
                self.stats.uncorrectable += residue
                if self.stats.first_uncorrectable_cycle < 0:
                    self.stats.first_uncorrectable_cycle = cycle
        for stream in self._streams:
            del stream[:]

    @property
    def event_detected(self) -> bool:
        return self.stats.corrected > 0 or self.stats.uncorrectable > 0

    def first_event_cycle(self) -> int:
        cycles = [c for c in (self.stats.first_corrected_cycle,
                              self.stats.first_uncorrectable_cycle)
                  if c >= 0]
        return min(cycles) if cycles else -1


def majority_value(values) -> Optional[int]:
    """The value held by >= 2 of the 3 replicas (None when all differ)."""
    a, b, c = values
    if a == b or a == c:
        return a
    if b == c:
        return b
    return None


class TMRGroup(RedundancyScheme):
    """Three replicas on cores 0..2 with a per-commit majority voter."""

    kind = "tmr"

    def __init__(self, spec: SchemeSpec):
        super().__init__(spec)
        self.voter = None
        self._skips = [0, 0, 0]

    def reset(self):
        self.voter = None
        self._skips = [0, 0, 0]

    def num_cores(self) -> int:
        return 3

    def monitor_pairs(self):
        # The platform monitor still observes (0, 1); the scheme's
        # checker is the voter, which watches all three.
        return ((0, 1),)

    def watched(self) -> Tuple[int, ...]:
        return (0, 1, 2)

    def attach(self, soc):
        super().attach(soc)
        cfg = soc.config
        b0, b1, b2 = (cfg.data_base(i) for i in range(3))
        self.voter = MajorityVoter(equivalences=(
            delta_equivalence(b1 - b0),
            delta_equivalence(b2 - b0),
            delta_equivalence(b2 - b1),
        ))
        self._skips = [0, 0, 0]
        cores = soc.cores

        def tap(cycle, cores=cores, sample=self.voter.sample,
                records=commit_records, skips=self._skips):
            recs = [records(cores[0]), records(cores[1]),
                    records(cores[2])]
            for i in (1, 2):
                if skips[i] and recs[i]:
                    drop = min(skips[i], len(recs[i]))
                    skips[i] -= drop
                    recs[i] = recs[i][drop:]
            sample(cycle, recs[0], recs[1], recs[2])

        soc.add_scheme_tap(tap)

    def start(self, soc, program, stagger_nops: int = 0,
              late_core: int = 1, benchmark: str = "program"):
        """Start the three replicas; replica ``i`` runs behind an
        ``i * stagger_nops`` sled (0 = no staggering, the default)."""
        soc.load(program)
        shared = soc.cores[0]._fetch_cache
        for core_id in range(3):
            count = soc.start_core(core_id, program.entry,
                                   stagger_nops=core_id * stagger_nops)
            self._skips[core_id] = count
            if core_id:
                soc.cores[core_id]._fetch_cache = shared
                soc._shared_fetch_pairs.add((0, core_id))
        # Keep the attached monitor's staggering counter meaningful for
        # its (0, 1) pair, like start_redundant does.
        soc.safedm.instruction_diff.diff = self._skips[1]

    def finish(self, soc):
        self.voter.flush(soc.cycle)

    def error_detected(self, soc) -> bool:
        return self.voter.event_detected or super().error_detected(soc)

    def checker_detected(self, soc) -> bool:
        return self.voter.event_detected

    def corrected(self, soc) -> bool:
        """The error never reached the voted output: vote events
        occurred, nothing was uncorrectable, and the majority of the
        final outputs agrees."""
        return (self.voter.stats.corrected > 0
                and self.voter.stats.uncorrectable == 0
                and majority_value(self.outputs(soc)) is not None)

    def voted_output(self, soc) -> Optional[int]:
        return majority_value(self.outputs(soc))

    def detection_cycle(self, soc) -> int:
        first = self.voter.first_event_cycle()
        if first >= 0:
            return first
        return super().detection_cycle(soc)

    def result(self, soc) -> dict:
        out = super().result(soc)
        stats = self.voter.stats
        out["voted"] = stats.voted
        out["agreed"] = stats.agreed
        out["corrected"] = stats.corrected
        out["uncorrectable"] = stats.uncorrectable
        out["outvoted"] = list(stats.outvoted)
        out["voted_output"] = self.voted_output(soc)
        return out

    def state_dict(self) -> dict:
        state = super().state_dict()
        if self.voter is not None:
            stats = self.voter.stats
            state.update({
                "skips": list(self._skips),
                "stats": [stats.voted, stats.agreed, stats.corrected,
                          stats.uncorrectable,
                          stats.first_corrected_cycle,
                          stats.first_uncorrectable_cycle,
                          list(stats.outvoted)],
                "streams": [[list(rec) for rec in stream]
                            for stream in self.voter._streams],
            })
        return state

    def load_state_dict(self, state: dict):
        super().load_state_dict(state)
        if self.voter is None or "stats" not in state:
            return
        self._skips[:] = [int(v) for v in state["skips"]]
        stats = self.voter.stats
        (stats.voted, stats.agreed, stats.corrected,
         stats.uncorrectable, stats.first_corrected_cycle,
         stats.first_uncorrectable_cycle, outvoted) = state["stats"]
        stats.outvoted = tuple(outvoted)
        for stream, entry in zip(self.voter._streams,
                                 state["streams"]):
            stream[:] = [tuple(rec) for rec in entry]

    def checker_luts(self) -> int:
        return VOTER_LUTS

    def to_metrics(self, registry, soc):
        super().to_metrics(registry, soc)
        if not getattr(registry, "enabled", True):
            return
        labels = (("scheme", self.kind),)
        stats = self.voter.stats
        registry.counter("repro_scheme_checks_total",
                         labels).inc(stats.voted)
        registry.counter("repro_scheme_corrected_total",
                         labels).inc(stats.corrected)
        registry.counter("repro_scheme_uncorrectable_total",
                         labels).inc(stats.uncorrectable)
