"""The :class:`RedundancyScheme` protocol and shared machinery.

A scheme owns everything the platform used to hard-code for one DCLS
pair: replica topology (how many cores, which monitored pairs, which
cores' completion ends the run), program start semantics, per-cycle
check taps registered on the SoC, the end-of-run verdict, and a
hardware-cost model for the comparison table.

One scheme instance drives **one run** — per-run checker state (stream
comparators, voters, sled skip counts) lives on the instance and is
reset by :meth:`RedundancyScheme.build`.

Cross-replica record comparison
-------------------------------

Replicas execute in *different address spaces* (per-core ``gp``/``sp``
regions — the paper's software-redundancy setup), so register writes
holding data addresses differ between replicas by exactly the region
delta.  Per-commit records are compared with a delta-tolerant
equivalence: two records match when their instruction words and write
samples are equal, or when the written values differ by precisely the
replicas' data-region delta (an address-typed value).  Any other value
divergence — corrupted data, a different instruction stream — is a
mismatch.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..core.monitor import ReportingMode
from ..core.overheads import BASELINE_MPSOC_LUTS, estimate
from ..soc.config import SocConfig
from ..soc.mpsoc import MPSoC
from .spec import SCHEME_KINDS, SchemeSpec

_XMASK = 0xFFFFFFFFFFFFFFFF

#: Register holding the workload checksum (the compared "output").
RESULT_REGISTER = 8

#: Modelled per-core area (LUTs).  The paper gives SafeDM = 3.4 % of
#: the dual-core MPSoC; we attribute 35 % of that MPSoC to each NOEL-V
#: core and the remaining 30 % to the uncore (bus, L2, memory
#: controller, APB) — coarse, but stated, and identical across schemes
#: so the *relative* costs are meaningful.
CORE_LUTS = round(BASELINE_MPSOC_LUTS * 0.35)
UNCORE_LUTS = BASELINE_MPSOC_LUTS - 2 * CORE_LUTS

#: Checker logic (LUTs): a delayed commit-stream comparator (DCLS) and
#: a 3-way majority voter (TMR).  Small relative to a core, in line
#: with published lockstep wrappers.
COMPARATOR_LUTS = 650
VOTER_LUTS = 980


def commit_records(core) -> Tuple[Tuple[int, int, int], ...]:
    """This cycle's per-commit records of ``core``.

    One record per committed instruction, in commit order:
    ``(instruction word, write-port enable, written value)``.  Both
    execution tiers maintain ``committed_words`` and slot-indexed
    ``write_samples`` identically (reference ``Core._retire`` /
    fast-tier ``_make_retire``), so records are tier-independent.
    Returns ``()`` for a finished core — its stale lists are not
    re-cleared by the platform loop.
    """
    n = core.commits_this_cycle
    if not n:
        return ()
    words = core.committed_words
    writes = core.regfile.write_samples
    return tuple((words[i],) + writes[i] for i in range(n))


def delta_equivalence(delta: int):
    """Record equivalence tolerating one data-region address delta.

    Returns ``None`` (plain equality) when ``delta`` is zero.
    """
    delta &= _XMASK
    if not delta:
        return None

    def equivalent(a, b, delta=delta, _XMASK=_XMASK):
        return (a[0] == b[0] and a[1] == b[1]
                and (a[2] == b[2] or ((b[2] - a[2]) & _XMASK) == delta))

    return equivalent


class RedundancyScheme:
    """Base class: the single interface every scheme implements.

    Subclasses override the topology (:meth:`num_cores`,
    :meth:`monitor_pairs`, :meth:`watched`), the start procedure, the
    per-cycle tap (registered in :meth:`attach`), and the verdict
    surface (:meth:`error_detected`, :meth:`detection_cycle`,
    :meth:`result`).
    """

    kind = "base"

    def __init__(self, spec: SchemeSpec):
        self.spec = spec

    # -- topology ------------------------------------------------------

    def num_cores(self) -> int:
        return 2

    def monitor_pairs(self) -> Tuple[Tuple[int, int], ...]:
        return ((0, 1),)

    def watched(self) -> Tuple[int, ...]:
        """Core ids whose completion ends the run."""
        return tuple(dict.fromkeys(
            idx for pair in self.monitor_pairs() for idx in pair))

    # -- configuration / construction ---------------------------------

    def soc_config(self, config: Optional[SocConfig] = None) -> SocConfig:
        """Resolve a platform config for this scheme.

        Embeds the spec (so the simulation cache key distinguishes
        schemes) and widens ``num_cores`` to the replica count; the
        per-core data bases derive automatically when left at their
        default.
        """
        base = config if config is not None else SocConfig()
        changes: Dict[str, object] = {"scheme": self.spec}
        need = self.num_cores()
        if base.num_cores < need:
            changes["num_cores"] = need
        return dataclasses.replace(base, **changes)

    def build(self, config: Optional[SocConfig] = None,
              mode: ReportingMode = ReportingMode.POLLING,
              threshold: int = 1, rr_start: int = 0) -> MPSoC:
        """Fresh SoC with this scheme's topology and taps attached."""
        self.reset()
        soc = MPSoC(config=self.soc_config(config), mode=mode,
                    threshold=threshold, rr_start=rr_start,
                    monitor_pairs=self.monitor_pairs())
        self.attach(soc)
        return soc

    def reset(self):
        """Drop per-run checker state (called by :meth:`build`)."""

    def attach(self, soc: MPSoC):
        """Register scheme taps and the watched-core override."""
        soc.watched_cores = self.watched()

    # -- lifecycle -----------------------------------------------------

    def start(self, soc: MPSoC, program, stagger_nops: int = 0,
              late_core: int = 1, benchmark: str = "program"):
        """Load and start the replicas (default: the DCLS-pair path).

        ``benchmark`` names the kernel in the workload registry; only
        schemes that rebuild the program (DME) consult it.
        """
        soc.start_redundant(program, late_core=late_core,
                            stagger_nops=stagger_nops)

    def plan_program(self, program):
        """Program handed to the fast tier for eager block compilation
        (``None`` when replicas run distinct images)."""
        return program

    def finish(self, soc: MPSoC):
        """Drain delay lines / deliver pending comparisons."""

    # -- verdicts ------------------------------------------------------

    def outputs(self, soc: MPSoC) -> Tuple[int, ...]:
        """Per-replica architectural outputs (the checksum register)."""
        return tuple(soc.cores[idx].regfile.values[RESULT_REGISTER]
                     for idx in self.watched())

    def error_detected(self, soc: MPSoC) -> bool:
        """Did this scheme's checker raise?  Default: end-of-run
        output comparison across the replicas."""
        outs = self.outputs(soc)
        return any(out != outs[0] for out in outs[1:])

    def corrected(self, soc: MPSoC) -> bool:
        """Did the scheme mask the error itself (TMR only)?"""
        return False

    def checker_detected(self, soc: MPSoC) -> bool:
        """Did a *streaming* checker raise mid-run?  Unlike
        :meth:`error_detected` this is meaningful before the replicas
        finish — a hung replica can still be a detected error when the
        comparator/voter flagged the divergence first."""
        return False

    def voted_output(self, soc: MPSoC) -> Optional[int]:
        """The scheme's delivered output (first replica unless voted)."""
        return self.outputs(soc)[0]

    def detection_cycle(self, soc: MPSoC) -> int:
        """Cycle of first detection (-1 when nothing was detected).
        Output-comparison schemes detect at end of run."""
        return soc.cycle if self.error_detected(soc) else -1

    def result(self, soc: MPSoC) -> dict:
        """Scheme-specific stats for ``RunResult.scheme_stats``."""
        return {
            "kind": self.kind,
            "replicas": len(self.watched()),
            "outputs": list(self.outputs(soc)),
            "detected": self.error_detected(soc),
        }

    # -- snapshot protocol --------------------------------------------

    def state_dict(self) -> dict:
        return {"kind": self.kind}

    def load_state_dict(self, state: dict):
        if state.get("kind") != self.kind:
            raise ValueError("scheme snapshot kind %r != %r"
                             % (state.get("kind"), self.kind))

    # -- telemetry -----------------------------------------------------

    def to_metrics(self, registry, soc: MPSoC):
        """Publish ``repro_scheme_*`` counters for one finished run."""
        if not getattr(registry, "enabled", True):
            return
        labels = (("scheme", self.kind),)
        registry.counter("repro_scheme_runs_total", labels).inc()
        registry.counter("repro_scheme_replicas_total",
                         labels).inc(len(self.watched()))
        if self.error_detected(soc):
            registry.counter("repro_scheme_detections_total",
                             labels).inc()

    # -- hardware cost -------------------------------------------------

    def checker_luts(self) -> int:
        """Scheme-specific checker logic (comparator/voter/monitors)."""
        return 0

    def hardware_cost(self) -> dict:
        """Modelled area of this scheme's platform (see module doc)."""
        cores = self.num_cores()
        checker = self.checker_luts()
        total = cores * CORE_LUTS + UNCORE_LUTS + checker
        return {
            "cores": cores,
            "core_luts": cores * CORE_LUTS,
            "checker_luts": checker,
            "total_luts": total,
            "overhead_vs_dual_percent": round(
                100.0 * (total - BASELINE_MPSOC_LUTS)
                / BASELINE_MPSOC_LUTS, 2),
        }


def monitor_luts(count: int = 1) -> int:
    """Area of ``count`` SafeDM instances at the paper's geometry."""
    return count * estimate().luts


def build_scheme(spec) -> RedundancyScheme:
    """Instantiate the scheme a spec (or kind name, or ready instance)
    describes."""
    if isinstance(spec, RedundancyScheme):
        return spec
    if isinstance(spec, str):
        spec = SchemeSpec(kind=spec)
    if not isinstance(spec, SchemeSpec):
        raise TypeError("expected a scheme kind, SchemeSpec, or"
                        " RedundancyScheme, got %r" % (spec,))
    from .safedm import SafeDMPair
    from .lockstep import LockstepPair
    from .tmr import TMRGroup
    from .multipair import MultiPair
    from .dme import DMEPair
    classes = {
        "safedm": SafeDMPair,
        "lockstep": LockstepPair,
        "tmr": TMRGroup,
        "multipair": MultiPair,
        "dme": DMEPair,
    }
    assert set(classes) == set(SCHEME_KINDS)
    return classes[spec.kind](spec)
