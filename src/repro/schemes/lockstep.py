"""Dual-Core LockStep as a first-class scheme (diversity ≡ 0 control).

Promotes :class:`repro.baselines.lockstep.LockstepComparator` from a
figure-drawing reference model to a running scheme: the shadow core
starts behind a nop sled, every cycle both replicas' per-commit records
(instruction word + write-port sample) feed the delayed comparator, and
the delay line is drained at end of run so the final commits are
compared too.

DCLS guarantees temporal divergence by construction — the shadow is
always ``stagger`` cycles behind — which is why it needs no diversity
monitor.  The attached SafeDM instance still observes the pair (it is
part of the platform), but the scheme's verdict comes from the
comparator: any record mismatch, stream-length divergence, or final
output mismatch raises the error signal.
"""

from __future__ import annotations

from ..baselines.lockstep import LockstepComparator
from .base import (
    COMPARATOR_LUTS,
    RedundancyScheme,
    commit_records,
    delta_equivalence,
)
from .spec import SchemeSpec


class LockstepPair(RedundancyScheme):
    """Head core 0, shadow core 1, delayed commit-stream comparison."""

    kind = "lockstep"

    def __init__(self, spec: SchemeSpec):
        super().__init__(spec)
        self.comparator = None
        self._skip_shadow = 0

    def reset(self):
        self.comparator = None
        self._skip_shadow = 0

    def attach(self, soc):
        super().attach(soc)
        cfg = soc.config
        delta = cfg.data_base(1) - cfg.data_base(0)
        self.comparator = LockstepComparator(
            stagger=self.spec.stagger,
            equivalent=delta_equivalence(delta))
        head, shadow = soc.cores[0], soc.cores[1]

        def tap(cycle, head=head, shadow=shadow,
                sample=self.comparator.sample,
                records=commit_records):
            shadow_recs = records(shadow)
            if self._skip_shadow and shadow_recs:
                drop = min(self._skip_shadow, len(shadow_recs))
                self._skip_shadow -= drop
                shadow_recs = shadow_recs[drop:]
            sample(cycle, records(head), shadow_recs)

        soc.add_scheme_tap(tap)

    def start(self, soc, program, stagger_nops: int = 0,
              late_core: int = 1, benchmark: str = "program"):
        """Start head immediately and shadow behind a nop sled.

        ``stagger_nops`` (when given) overrides the sled length; the
        comparator delay stays ``spec.stagger`` either way.  The sled's
        own commits are skipped, not compared — they exist only on the
        shadow side.
        """
        sled = stagger_nops if stagger_nops else self.spec.stagger
        soc.load(program)
        soc.start_core(0, program.entry)
        self._skip_shadow = soc.start_core(1, program.entry,
                                           stagger_nops=sled)
        # Same text image: share one per-PC decode cache, exactly like
        # start_redundant does for the monitored pair.
        soc.cores[1]._fetch_cache = soc.cores[0]._fetch_cache
        soc._shared_fetch_pairs.add((0, 1))
        # The shadow's sled commits would read as staggering loss;
        # preload the diff counter like the SafeDM path does.
        soc.safedm.instruction_diff.diff = self._skip_shadow

    def finish(self, soc):
        self.comparator.flush(soc.cycle)

    def error_detected(self, soc) -> bool:
        return (self.comparator.error_detected
                or super().error_detected(soc))

    def checker_detected(self, soc) -> bool:
        return self.comparator.error_detected

    def detection_cycle(self, soc) -> int:
        first = self.comparator.stats.first_mismatch_cycle
        if first >= 0:
            return first
        return super().detection_cycle(soc)

    def result(self, soc) -> dict:
        out = super().result(soc)
        stats = self.comparator.stats
        out["compared"] = stats.compared
        out["mismatches"] = stats.mismatches
        out["first_mismatch_cycle"] = stats.first_mismatch_cycle
        out["stagger"] = self.comparator.stagger
        return out

    def state_dict(self) -> dict:
        cmp_ = self.comparator
        state = super().state_dict()
        if cmp_ is not None:
            state.update({
                "skip_shadow": self._skip_shadow,
                "stats": [cmp_.stats.compared, cmp_.stats.mismatches,
                          cmp_.stats.first_mismatch_cycle],
                "head_delay": [[list(rec) for rec in item]
                               for item in cmp_._head_delay],
                "head_stream": [list(rec) for rec in cmp_._head_stream],
                "shadow_stream": [list(rec)
                                  for rec in cmp_._shadow_stream],
            })
        return state

    def load_state_dict(self, state: dict):
        super().load_state_dict(state)
        cmp_ = self.comparator
        if cmp_ is None or "stats" not in state:
            return
        self._skip_shadow = int(state["skip_shadow"])
        (cmp_.stats.compared, cmp_.stats.mismatches,
         cmp_.stats.first_mismatch_cycle) = state["stats"]
        cmp_._head_delay.clear()
        cmp_._head_delay.extend(
            tuple(tuple(rec) for rec in item)
            for item in state["head_delay"])
        cmp_._head_stream[:] = [tuple(rec) for rec in
                                state["head_stream"]]
        cmp_._shadow_stream[:] = [tuple(rec) for rec in
                                  state["shadow_stream"]]

    def checker_luts(self) -> int:
        return COMPARATOR_LUTS

    def to_metrics(self, registry, soc):
        super().to_metrics(registry, soc)
        if not getattr(registry, "enabled", True):
            return
        labels = (("scheme", self.kind),)
        stats = self.comparator.stats
        registry.counter("repro_scheme_checks_total",
                         labels).inc(stats.compared)
        registry.counter("repro_scheme_mismatches_total",
                         labels).inc(stats.mismatches)
