"""DME-style structural decorrelation: the trail core runs a
different-but-equivalent build.

Diverse Modular Redundancy derives replica diversity from *structure*
instead of timing: the trail core executes a build of the same kernel
whose layout is decorrelated from the head's, so a common-cause
disturbance couples into different microarchitectural state by
construction — even with zero temporal staggering.

The decorrelating transform is a deterministic assembler pass:

1. **Text relocation** — the kernel is *reassembled* at
   ``text_base + dme_text_shift`` (never word-patched: ``la`` expands
   to an absolute ``lui+addi`` pair resolved at assembly, so a rebased
   build must re-resolve its labels to stay self-consistent).
2. **Register re-allocation** — the callee-saved temporaries
   :data:`~repro.schemes.spec.DME_ROTATABLE` are permuted by a fixed
   rotation, patched bit-level into each instruction's rd/rs1/rs2
   fields (data words, identified by the assembler's
   ``DebugInfo.data_addresses``, are never touched).
3. **Data section shift** — the trail's ``gp`` starts
   ``dme_data_shift`` bytes into its private region, so even the
   *offsets within a region* differ between replicas.

The transform preserves semantics by construction (a register
bijection over registers with no pinned role, applied uniformly), and
is validated two ways: the lint CFG of the transformed build must be
isomorphic to the original's under the text shift
(:func:`dme_transform_report`), and the trail replica must reach the
same final architectural state (checksum) — asserted per-kernel in the
test suite and CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..isa.decoder import decode
from ..isa.program import Program
from ..lint.cfg import EXIT, build_cfg
from .base import COMPARATOR_LUTS, RedundancyScheme, monitor_luts
from .spec import DME_ROTATABLE, SchemeSpec


class DMETransformError(ValueError):
    """The decorrelation transform could not be applied or validated."""


def dme_register_map(rotation: int) -> Dict[int, int]:
    """The register bijection: rotate the permutable set by
    ``rotation`` positions."""
    regs = DME_ROTATABLE
    k = rotation % len(regs)
    return {reg: regs[(i + k) % len(regs)]
            for i, reg in enumerate(regs)}


def remap_word(word: int, mapping: Dict[int, int]) -> int:
    """Patch rd/rs1/rs2 register fields of one instruction word.

    Only fields the decoder reports as architectural register operands
    are touched — a ``None`` field means those bits encode something
    else (an immediate, a shamt) and must not be rewritten.
    """
    instr = decode(word)
    out = word
    if instr.rd is not None:
        new = mapping.get(instr.rd)
        if new is not None:
            out = (out & ~(0x1F << 7)) | (new << 7)
    if instr.rs1 is not None:
        new = mapping.get(instr.rs1)
        if new is not None:
            out = (out & ~(0x1F << 15)) | (new << 15)
    if instr.rs2 is not None:
        new = mapping.get(instr.rs2)
        if new is not None:
            out = (out & ~(0x1F << 20)) | (new << 20)
    return out


def remap_registers(program: Program,
                    mapping: Dict[int, int]) -> Program:
    """Apply the register bijection to every instruction word.

    Data words (``DebugInfo.data_addresses``) pass through unchanged.
    Each patched word is re-decoded as a self-check: the transform
    refuses to produce a word it cannot prove round-trips.
    """
    debug = program.debug
    data = debug.data_addresses if debug is not None else frozenset()
    image = {}
    for start, blob in program.image.items():
        patched = bytearray(blob)
        for offset in range(0, len(blob) - 3, 4):
            address = start + offset
            if address in data:
                continue
            word = int.from_bytes(blob[offset:offset + 4], "little")
            try:
                new = remap_word(word, mapping)
            except Exception as exc:
                raise DMETransformError(
                    "cannot remap word %08x at %#x: %s"
                    % (word, address, exc)) from exc
            if new != word:
                check = decode(new)
                old = decode(word)
                if check.spec is not old.spec or check.imm != old.imm:
                    raise DMETransformError(
                        "register remap changed non-register fields"
                        " at %#x" % address)
                patched[offset:offset + 4] = new.to_bytes(4, "little")
        image[start] = bytes(patched)
    return Program(base=program.base, image=image,
                   symbols=dict(program.symbols), entry=program.entry,
                   debug=program.debug)


def decorrelated_program(benchmark: str, spec: SchemeSpec,
                         base: int) -> Program:
    """The trail replica's build of ``benchmark``.

    Reassembles the kernel at ``base + spec.dme_text_shift`` (labels
    re-resolve against the shifted layout) and permutes the callee-
    saved temporaries.
    """
    from ..workloads import program as workload_program
    try:
        shifted = workload_program(benchmark,
                                   base=base + spec.dme_text_shift)
    except KeyError:
        raise DMETransformError(
            "DME needs to reassemble the kernel at a shifted base, but"
            " %r is not a registered workload" % (benchmark,))
    return remap_registers(shifted,
                           dme_register_map(spec.dme_rotation))


@dataclass
class DmeTransformReport:
    """CFG-isomorphism evidence for one transformed kernel."""

    benchmark: str
    blocks: int
    instructions: int
    words_remapped: int
    cfg_isomorphic: bool


def _cfg_shape(program: Program) -> Tuple:
    """Base-relative CFG structure: sorted (block offset, size,
    successor offsets)."""
    cfg = build_cfg(program)
    base = program.base
    shape = []
    for block in cfg.blocks():
        succs = tuple(sorted(
            succ - base if succ != EXIT else EXIT
            for succ in block.succs))
        shape.append((block.start - base, len(block), succs))
    return tuple(sorted(shape))


def dme_transform_report(benchmark: str, spec: SchemeSpec,
                         base: int) -> DmeTransformReport:
    """Validate the transform for one kernel via lint's CFG.

    The transformed build's control-flow graph must be isomorphic to
    the original's under the text shift: same blocks at shifted
    addresses, same sizes, same edges.  (The final-architectural-state
    compare — the dynamic half of the validation — happens in the
    scheme run itself.)
    """
    from ..workloads import program as workload_program
    original = workload_program(benchmark, base=base)
    transformed = decorrelated_program(benchmark, spec, base)
    remapped = sum(
        1 for (_, a), (_, b) in zip(original.words(),
                                    transformed.words()) if a != b)
    return DmeTransformReport(
        benchmark=benchmark,
        blocks=len(build_cfg(original).blocks()),
        instructions=sum(1 for _ in original.words()),
        words_remapped=remapped,
        cfg_isomorphic=(_cfg_shape(original)
                        == _cfg_shape(transformed)),
    )


class DMEPair(RedundancyScheme):
    """Head core 0 on the original build, trail core 1 on the
    decorrelated build; end-of-run output comparison."""

    kind = "dme"

    def __init__(self, spec: SchemeSpec):
        super().__init__(spec)
        self._trail_program = None

    def reset(self):
        self._trail_program = None

    def start(self, soc, program, stagger_nops: int = 0,
              late_core: int = 1, benchmark: str = "program"):
        trail = decorrelated_program(benchmark, self.spec,
                                     program.base)
        self._trail_program = trail
        soc.load(program)
        soc.load(trail)
        soc.start_core(0, program.entry, stagger_nops=0)
        sled = soc.start_core(1, trail.entry,
                              stagger_nops=stagger_nops)
        # Shift the trail's data section inside its private region.
        cfg = soc.config
        soc.cores[1].regfile.write(
            3, cfg.data_base(1) + self.spec.dme_data_shift)
        # Distinct text images: no decode-cache sharing, and the
        # commit-stream diff counter needs the same sled preload as
        # the monitored-pair path.
        if sled:
            soc.safedm.instruction_diff.diff = sled

    def plan_program(self, program):
        # Eagerly compile the head's blocks; the trail's shifted image
        # compiles lazily per fetched PC.
        return program

    def trail_program(self) -> Program:
        if self._trail_program is None:
            raise DMETransformError("scheme has not started a run")
        return self._trail_program

    def result(self, soc) -> dict:
        out = super().result(soc)
        out["text_shift"] = self.spec.dme_text_shift
        out["data_shift"] = self.spec.dme_data_shift
        out["rotation"] = self.spec.dme_rotation
        stats = soc.safedm.stats
        out["no_diversity_cycles"] = stats.no_diversity_cycles
        out["sampled_cycles"] = stats.sampled_cycles
        return out

    def checker_luts(self) -> int:
        # Output comparator plus the monitor that certifies the
        # structural diversity actually materializes.
        return COMPARATOR_LUTS + monitor_luts(1)
