"""SafeDM's own scheme: a monitored non-lockstepped pair.

This is the platform's historical behaviour, extracted behind the
scheme interface: two cores run the same program in private address
spaces, SafeDM samples their signatures every cycle, and detection is
software output comparison at end of run.  The scheme registers **no**
taps and keeps the single ``(0, 1)`` monitor pair, so runs through
this scheme are bit-identical to the pre-scheme ``run_redundant`` path
— including the fast tier's inlined-monitor span.
"""

from __future__ import annotations

from .base import RedundancyScheme, monitor_luts
from .spec import SchemeSpec


class SafeDMPair(RedundancyScheme):
    """Monitored redundant pair (the paper's configuration)."""

    kind = "safedm"

    def __init__(self, spec: SchemeSpec):
        super().__init__(spec)

    def checker_luts(self) -> int:
        # One SafeDM instance plus the software-comparison epilogue
        # (no dedicated hardware: the cores compare their own outputs).
        return monitor_luts(1)

    def result(self, soc) -> dict:
        out = super().result(soc)
        stats = soc.safedm.stats
        out["no_diversity_cycles"] = stats.no_diversity_cycles
        out["sampled_cycles"] = stats.sampled_cycles
        return out
