"""Multiple monitored pairs sharing one bus.

The paper's contribution list mentions a 4-core Gaisler platform with
one SafeDM per redundant pair; this scheme runs ``spec.pairs``
monitored pairs of the *same* kernel concurrently — exercising the
``monitor_pairs`` machinery, the shared AHB/L2 contention, and per-pair
APB monitors for real.  Detection is per-pair software output
comparison (plus each pair's own SafeDM flagging), folded into one
scheme verdict: an error in *any* pair raises.
"""

from __future__ import annotations

from typing import Tuple

from .base import RedundancyScheme, monitor_luts
from .spec import SchemeSpec


class MultiPair(RedundancyScheme):
    """N monitored pairs, one bus, one kernel."""

    kind = "multipair"

    def num_cores(self) -> int:
        return max(idx for pair in self.spec.pairs for idx in pair) + 1

    def monitor_pairs(self) -> Tuple[Tuple[int, int], ...]:
        return self.spec.pairs

    def start(self, soc, program, stagger_nops: int = 0,
              late_core: int = 1, benchmark: str = "program"):
        """Start every pair on the program.

        ``late_core`` selects the within-pair index (0 or 1) of the
        staggered core, mirroring the single-pair convention.
        """
        for index, pair in enumerate(self.monitor_pairs()):
            soc.start_redundant(program, late_core=pair[late_core % 2],
                                stagger_nops=stagger_nops, pair=index)

    def pair_outputs(self, soc):
        outs = self.outputs(soc)
        order = self.watched()
        by_core = dict(zip(order, outs))
        return [tuple(by_core[idx] for idx in pair)
                for pair in self.monitor_pairs()]

    def error_detected(self, soc) -> bool:
        return any(a != b for a, b in self.pair_outputs(soc))

    def result(self, soc) -> dict:
        out = super().result(soc)
        out["pairs"] = [list(pair) for pair in self.monitor_pairs()]
        out["pair_outputs"] = [list(p) for p in self.pair_outputs(soc)]
        out["pair_detected"] = [a != b
                                for a, b in self.pair_outputs(soc)]
        out["pair_no_diversity_cycles"] = [
            monitor.stats.no_diversity_cycles
            for monitor in soc.monitors]
        return out

    def checker_luts(self) -> int:
        return monitor_luts(len(self.monitor_pairs()))

    def to_metrics(self, registry, soc):
        super().to_metrics(registry, soc)
        if not getattr(registry, "enabled", True):
            return
        for index, detected in enumerate(
                a != b for a, b in self.pair_outputs(soc)):
            if detected:
                registry.counter(
                    "repro_scheme_pair_detections_total",
                    (("scheme", self.kind),
                     ("pair", str(index)))).inc()
