"""Scheme-matrix CCF trials: coverage × latency × hardware cost.

The fault campaign in :mod:`repro.fault` asks one question about one
scheme (SafeDM-monitored redundancy).  This module asks the *matrix*
question: for each redundancy scheme, what fraction of unmasked
common-cause corruptions does it catch, how fast, and at what hardware
cost?

Each trial runs one kernel under one scheme on a fresh SoC, injects a
:class:`repro.fault.models.CommonCauseFault` into **every replica** on
the configured cycle (the same physical disturbance hits all cores;
what it corrupts is modulated per-core by :func:`state_digest`), then
runs to completion and classifies:

* ``masked`` — no detection and every replica output equals golden;
* ``corrected`` — the scheme repaired the error in-flight and its
  voted output is golden (TMR only);
* ``detected`` — the scheme raised its error signal;
* ``trap`` — a replica failed loudly with an architectural trap;
* ``hang`` — the run exceeded its cycle budget;
* ``silent`` — outputs are wrong and nothing fired.

``coverage = (detected + corrected + trap) / (trials - masked)`` —
the scheme's probability of containing a *consequential* CCF.

The activity term of the fault model (the SafeDM signature-window
digest) is defined per monitored pair only, so matrix trials set it to
zero for every replica: corruption identity is then exactly
state-digest identity, the CCF mechanism all five schemes face on
equal terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..cpu.core import SimulationError
from ..fault.campaign import spread_cycles
from ..fault.models import CommonCauseFault
from ..mem.memory import MemoryError_
from .base import RedundancyScheme, build_scheme
from .spec import SCHEME_KINDS

#: Default stimuli: two distinct disturbances per injection cycle.
DEFAULT_STIMULI = (0x5EED, 0xC0FFEE)


@dataclass
class SchemeTrial:
    """One injected run under one scheme."""

    fault_cycle: int
    stimulus: int
    classification: str
    #: detection_cycle - fault_cycle for detected/corrected trials.
    latency: int
    outputs: tuple
    effects: tuple

    @property
    def effects_identical(self) -> bool:
        return len(set(self.effects)) == 1


@dataclass
class SchemeMatrixRow:
    """All trials of one scheme on one kernel, plus derived metrics."""

    scheme: str
    benchmark: str
    golden_cycles: int
    golden_output: int
    hardware: dict
    trials: List[SchemeTrial] = field(default_factory=list)

    def count(self, classification: str) -> int:
        return sum(1 for t in self.trials
                   if t.classification == classification)

    @property
    def unmasked(self) -> int:
        return len(self.trials) - self.count("masked")

    @property
    def covered(self) -> int:
        return (self.count("detected") + self.count("corrected")
                + self.count("trap"))

    @property
    def coverage(self) -> float:
        unmasked = self.unmasked
        return self.covered / unmasked if unmasked else 1.0

    @property
    def silent(self) -> int:
        return self.count("silent")

    @property
    def mean_latency(self) -> float:
        latencies = [t.latency for t in self.trials
                     if t.classification in ("detected", "corrected")
                     and t.latency >= 0]
        if not latencies:
            return 0.0
        return sum(latencies) / len(latencies)

    def to_dict(self) -> dict:
        return {
            "scheme": self.scheme,
            "benchmark": self.benchmark,
            "golden_cycles": self.golden_cycles,
            "trials": len(self.trials),
            "masked": self.count("masked"),
            "corrected": self.count("corrected"),
            "detected": self.count("detected"),
            "trap": self.count("trap"),
            "hang": self.count("hang"),
            "silent": self.silent,
            "coverage": self.coverage,
            "mean_detection_latency": self.mean_latency,
            "hardware": self.hardware,
        }


def _run_watched(soc, scheme: RedundancyScheme, limit: int,
                 stop_at: Optional[int] = None) -> bool:
    """Step the reference interpreter until the scheme's replicas all
    finish, ``limit`` is reached, or ``stop_at`` (when given).  Returns
    True when every watched replica finished."""
    cores = [soc.cores[idx] for idx in scheme.watched()]
    step = soc.step
    bound = limit if stop_at is None else min(limit, stop_at)
    while soc.cycle < bound:
        if all(core.finished for core in cores):
            return True
        step()
    return all(core.finished for core in cores)


def _golden(scheme: RedundancyScheme, program, benchmark, config,
            max_cycles: int):
    """Fault-free run: (soc, outputs, cycles)."""
    soc = scheme.build(config)
    scheme.start(soc, program, benchmark=benchmark)
    finished = _run_watched(soc, scheme, max_cycles)
    for monitor in soc.monitors:
        monitor.finish()
    scheme.finish(soc)
    if not finished:
        raise RuntimeError("golden %s run did not finish in %d cycles"
                           % (scheme.kind, max_cycles))
    if scheme.error_detected(soc):
        raise RuntimeError("golden %s run raised its error signal"
                           % scheme.kind)
    return soc, scheme.outputs(soc), soc.cycle


def _classify(scheme: RedundancyScheme, soc, finished: bool,
              trapped: bool, golden_outputs, fault_cycle: int
              ) -> SchemeTrial:
    detection = scheme.detection_cycle(soc)
    latency = detection - fault_cycle if detection >= 0 else -1
    outputs = scheme.outputs(soc) if not trapped else ()
    if trapped:
        classification = "trap"
        latency = soc.cycle - fault_cycle
    elif finished:
        if (scheme.corrected(soc)
                and scheme.voted_output(soc) == golden_outputs[0]):
            classification = "corrected"
        elif scheme.error_detected(soc):
            classification = "detected"
        elif tuple(outputs) == tuple(golden_outputs):
            classification = "masked"
        else:
            classification = "silent"
    elif scheme.checker_detected(soc):
        # The replica hung, but the streaming checker had already
        # flagged the divergence — the error signal fired.
        classification = "detected"
    else:
        classification = "hang"
    return SchemeTrial(fault_cycle=fault_cycle, stimulus=0,
                       classification=classification, latency=latency,
                       outputs=tuple(outputs), effects=())


def run_scheme_trials(scheme, program, benchmark: str = "program",
                      config=None, num_faults: int = 8,
                      stimuli: Sequence[int] = DEFAULT_STIMULI,
                      max_cycles: int = 2_000_000) -> SchemeMatrixRow:
    """CCF trials of one scheme on one kernel.

    ``scheme`` is anything :func:`repro.schemes.base.build_scheme`
    accepts (a kind string, a :class:`SchemeSpec`, or an instance).
    Every trial uses a fresh SoC; the fault cycle is stepped first and
    the corruption applied on its closing clock edge, matching the
    pair campaign's after-step semantics.
    """
    sch = build_scheme(scheme)
    _, golden_outputs, golden_cycles = _golden(
        sch, program, benchmark, config, max_cycles)
    row = SchemeMatrixRow(scheme=sch.kind, benchmark=benchmark,
                          golden_cycles=golden_cycles,
                          golden_output=golden_outputs[0],
                          hardware=sch.hardware_cost())
    cycles = spread_cycles(golden_cycles, num_faults)
    # A corrupted replica can loop essentially forever; a few golden
    # lengths is ample for every legitimate post-fault path, and hangs
    # are classified, not simulated to the bitter end.
    budget = min(max_cycles, 4 * golden_cycles + 20_000)
    for stimulus in stimuli:
        for fault_cycle in cycles:
            row.trials.append(_one_trial(
                sch, program, benchmark, config, fault_cycle,
                stimulus, golden_outputs, budget))
    return row


def _one_trial(sch: RedundancyScheme, program, benchmark, config,
               fault_cycle: int, stimulus: int, golden_outputs,
               max_cycles: int) -> SchemeTrial:
    fault = CommonCauseFault(cycle=fault_cycle, stimulus=stimulus)
    soc = sch.build(config)
    sch.start(soc, program, benchmark=benchmark)
    trapped = False
    finished = False
    effects = []
    try:
        finished = _run_watched(soc, sch, max_cycles,
                                stop_at=fault_cycle)
        if not finished and soc.cycle == fault_cycle \
                and soc.cycle < max_cycles:
            soc.step()
            for idx in sch.watched():
                effect = fault.effect_on(soc.cores[idx], activity=0)
                effect.apply(soc.cores[idx])
                effects.append((effect.register, effect.bit))
            finished = _run_watched(soc, sch, max_cycles)
    except (MemoryError_, SimulationError):
        trapped = True
    for monitor in soc.monitors:
        monitor.finish()
    sch.finish(soc)
    trial = _classify(sch, soc, finished, trapped, golden_outputs,
                      fault_cycle)
    trial.stimulus = stimulus
    trial.effects = tuple(effects)
    return trial


def scheme_matrix(program, benchmark: str = "program",
                  schemes: Sequence = SCHEME_KINDS, config=None,
                  num_faults: int = 8,
                  stimuli: Sequence[int] = DEFAULT_STIMULI,
                  max_cycles: int = 2_000_000,
                  metrics=None) -> List[SchemeMatrixRow]:
    """One :class:`SchemeMatrixRow` per scheme, same kernel and fault
    grid throughout (fault *cycles* follow each scheme's own golden
    timeline; stimuli are shared)."""
    rows = []
    for scheme in schemes:
        row = run_scheme_trials(scheme, program, benchmark=benchmark,
                                config=config, num_faults=num_faults,
                                stimuli=stimuli, max_cycles=max_cycles)
        rows.append(row)
        if metrics is not None:
            _row_to_metrics(row, metrics)
    return rows


def _row_to_metrics(row: SchemeMatrixRow, registry):
    if not getattr(registry, "enabled", True):
        return
    labels = (("scheme", row.scheme),)
    for classification in ("masked", "corrected", "detected", "trap",
                           "hang", "silent"):
        registry.counter(
            "repro_scheme_trials_total",
            labels + (("classification", classification),)
        ).inc(row.count(classification))
    registry.gauge("repro_scheme_coverage", labels).set(row.coverage)


def matrix_table(rows: Sequence[SchemeMatrixRow]) -> str:
    """The ``repro compare-schemes`` table."""
    header = ("scheme", "cores", "trials", "masked", "corr", "det",
              "trap", "silent", "coverage", "latency", "luts",
              "overhead")
    lines = ["  ".join("%-9s" % h for h in header)]
    for row in rows:
        hardware = row.hardware
        lines.append("  ".join("%-9s" % v for v in (
            row.scheme,
            hardware["cores"],
            len(row.trials),
            row.count("masked"),
            row.count("corrected"),
            row.count("detected"),
            row.count("trap"),
            row.silent,
            "%.3f" % row.coverage,
            "%.1f" % row.mean_latency,
            hardware["total_luts"],
            "%+.1f%%" % hardware["overhead_vs_dual_percent"],
        )))
    return "\n".join(lines)
