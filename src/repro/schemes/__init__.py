"""Redundancy-scheme framework (N-core replica groups on one SoC).

The platform used to hard-code a single SafeDM-monitored DCLS-style
pair.  This package generalizes that to a matrix of redundancy schemes
behind one interface:

=============  =====  ==============================================
kind           cores  checker
=============  =====  ==============================================
``safedm``     2      SafeDM diversity monitor + output comparison
``lockstep``   2      delayed commit-stream comparator (DCLS)
``tmr``        3      per-commit majority voter
``multipair``  4+     one SafeDM per monitored pair
``dme``        2      structurally decorrelated trail build + compare
=============  =====  ==============================================

This ``__init__`` imports only :mod:`repro.schemes.spec` eagerly —
:class:`repro.soc.config.SocConfig` embeds a :class:`SchemeSpec`, so
the concrete schemes (which import the SoC) must load lazily through
:func:`make_scheme`.
"""

from .spec import DME_ROTATABLE, SCHEME_KINDS, SchemeSpec

__all__ = [
    "DME_ROTATABLE",
    "SCHEME_KINDS",
    "SchemeSpec",
    "make_scheme",
]


def make_scheme(spec):
    """Instantiate a scheme from a kind name, :class:`SchemeSpec`, or
    ready :class:`~repro.schemes.base.RedundancyScheme` instance."""
    from .base import build_scheme
    return build_scheme(spec)
