"""Redundancy-scheme specification (leaf module, no platform imports).

:class:`SchemeSpec` is the *configuration* half of a redundancy scheme:
a frozen, canonicalizable value that joins ``SocConfig`` (and therefore
the simulation cache key) without dragging the runtime scheme classes
into the config layer.  The runtime half — replica topology, per-cycle
check taps, verdicts — lives in :mod:`repro.schemes.base` and is built
from a spec via :func:`repro.schemes.make_scheme`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: Scheme kinds accepted by ``SchemeSpec`` / the ``--scheme`` CLI flag.
SCHEME_KINDS: Tuple[str, ...] = ("safedm", "lockstep", "tmr",
                                 "multipair", "dme")

#: Callee-saved registers the DME transform may permute: s1 and
#: s2..s11.  s0 (x8) is excluded — the workload contract stores the
#: checksum there — as are ra/sp/gp/tp/t* and the argument registers,
#: whose roles are pinned by the bare-metal startup convention.
DME_ROTATABLE: Tuple[int, ...] = (9, 18, 19, 20, 21, 22, 23, 24, 25,
                                  26, 27)


@dataclass(frozen=True)
class SchemeSpec:
    """Declarative description of one redundancy scheme.

    Only the fields relevant to ``kind`` are consulted; the others keep
    their defaults so every spec canonicalizes to a stable cache-key
    payload.

    * ``safedm`` — today's monitored non-lockstepped pair (cores 0, 1).
    * ``lockstep`` — DCLS pair: shadow core behind a ``stagger``-cycle
      delay, per-commit stream comparison (diversity ≡ 0 control).
    * ``tmr`` — three replicas and a per-commit majority voter.
    * ``multipair`` — ``pairs`` monitored pairs sharing one bus.
    * ``dme`` — the trail core runs a structurally decorrelated build:
      text reassembled at ``+dme_text_shift``, callee-saved temporaries
      re-register-allocated by ``dme_rotation``, data section base
      shifted by ``dme_data_shift``.
    """

    kind: str = "safedm"
    #: Lockstep comparator delay / shadow nop-sled length (cycles).
    stagger: int = 2
    #: Monitored pair topology for ``multipair``.
    pairs: Tuple[Tuple[int, int], ...] = ((0, 1), (2, 3))
    #: Replica count for ``tmr``.
    replicas: int = 3
    #: DME: trail text image base shift (bytes, word-aligned).
    dme_text_shift: int = 0x0002_0000
    #: DME: trail data section (gp) shift inside its region (bytes).
    dme_data_shift: int = 0x800
    #: DME: rotation applied to the permutable register set.
    dme_rotation: int = 3

    def __post_init__(self):
        if self.kind not in SCHEME_KINDS:
            raise ValueError("unknown scheme kind %r (expected one of"
                             " %s)" % (self.kind,
                                       ", ".join(SCHEME_KINDS)))
        if self.stagger < 1:
            raise ValueError("scheme stagger must be >= 1 cycle")
        if self.kind == "tmr" and self.replicas != 3:
            raise ValueError("TMR votes over exactly 3 replicas")
        if self.kind == "multipair":
            if len(self.pairs) < 2:
                raise ValueError("multipair needs >= 2 monitored pairs")
            seen = set()
            for pair in self.pairs:
                if len(pair) != 2:
                    raise ValueError("bad multipair pair %r" % (pair,))
                seen.update(pair)
            if len(seen) != 2 * len(self.pairs):
                raise ValueError("multipair pairs must not share cores")
        if self.kind == "dme":
            if self.dme_text_shift % 8:
                raise ValueError("DME text shift must be 8-byte"
                                 " aligned")
            if self.dme_data_shift % 16:
                raise ValueError("DME data shift must be 16-byte"
                                 " aligned")
            if self.dme_rotation % len(DME_ROTATABLE) == 0:
                raise ValueError(
                    "DME rotation %d is the identity over the %d"
                    " permutable registers; pick a rotation that"
                    " actually decorrelates" %
                    (self.dme_rotation, len(DME_ROTATABLE)))
