"""Cycle-level NOEL-V-like core model (dual-issue, in-order, 7 stages)."""

from .core import Core, CoreConfig, CoreStats, SimulationError
from .exec_unit import branch_taken, effective_address, execute_alu
from .pipeline import (
    DE,
    EX,
    FE,
    ME,
    NUM_STAGES,
    RA,
    STAGE_NAMES,
    WB,
    XC,
    BranchPredictor,
    Group,
    can_pair,
)
from .regfile import RegisterFile

__all__ = [
    "BranchPredictor",
    "Core",
    "CoreConfig",
    "CoreStats",
    "Group",
    "NUM_STAGES",
    "RegisterFile",
    "STAGE_NAMES",
    "SimulationError",
    "branch_taken",
    "can_pair",
    "effective_address",
    "execute_alu",
    "DE", "EX", "FE", "ME", "RA", "WB", "XC",
]
