"""Cycle-level model of a NOEL-V-like core.

Dual-issue, in-order, 7 stages (FE DE RA EX ME XC WB).  Functional
execution happens at issue time; a readiness scoreboard plus stage
occupancy reproduce the timing (load-use delays, mul/div latency, cache
misses, bus contention, store-buffer pressure).  Every cycle the core
exposes exactly the signals SafeDM taps in hardware:

* :meth:`stage_slots` — per-stage, per-slot (valid, instruction word),
* ``regfile.port_samples()`` — per-register-port (enable, value),
* ``hold`` — pipeline hold (SafeDM freezes its FIFOs on hold),
* ``commits_this_cycle`` — feeds the instruction-diff staggering counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa.decoder import decode
from ..isa.instruction import FetchedInstruction, Instruction
from ..isa.opcodes import CLASS_BRANCH, CLASS_DIV, CLASS_JUMP, CLASS_MUL
from ..mem.bus import AhbBus, BusRequest
from ..mem.cache import Cache, CacheConfig
from ..mem.memory import PAGE_BITS, Memory
from ..mem.store_buffer import StoreBuffer
from .exec_unit import (
    branch_taken,
    effective_address,
    execute_alu,
    sign_extend_load,
)
from .pipeline import (
    DE,
    EX,
    FE,
    ME,
    NUM_STAGES,
    RA,
    WB,
    XC,
    BranchPredictor,
    Group,
    can_pair,
)
from .regfile import RegisterFile


class SimulationError(Exception):
    """Raised when the simulated program does something unsupported."""


@dataclass
class CoreConfig:
    """Microarchitectural parameters of one core."""

    issue_width: int = 2
    mul_latency: int = 3
    div_latency: int = 20
    dcache_hit_latency: int = 1
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(
        size=4096, line_size=32, ways=2, name="l1i"))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        size=4096, line_size=32, ways=4, name="l1d"))
    store_buffer_depth: int = 4
    store_buffer_coalesce: bool = True
    predictor_enabled: bool = True
    predictor_entries: int = 256


@dataclass
class CoreStats:
    """Per-core run counters."""

    cycles: int = 0
    committed: int = 0
    hold_cycles: int = 0
    fetch_groups: int = 0
    issued_groups: int = 0
    dual_issued_groups: int = 0
    branch_mispredicts: int = 0
    flushes: int = 0
    ifetch_miss_cycles: int = 0
    dmem_wait_cycles: int = 0
    decode_cache_hits: int = 0
    decode_cache_misses: int = 0
    # Committed-instruction mix (used by workload profiling).
    committed_loads: int = 0
    committed_stores: int = 0
    committed_branches: int = 0
    committed_muldiv: int = 0

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def memory_fraction(self) -> float:
        """Fraction of committed instructions touching memory."""
        if not self.committed:
            return 0.0
        return (self.committed_loads + self.committed_stores) \
            / self.committed

    @property
    def decode_cache_hit_rate(self) -> float:
        accesses = self.decode_cache_hits + self.decode_cache_misses
        return self.decode_cache_hits / accesses if accesses else 0.0

    def to_metrics(self, registry, labels=()):
        """Bridge the per-core counters into a telemetry registry."""
        for name, value in (
                ("cycles", self.cycles),
                ("committed", self.committed),
                ("hold_cycles", self.hold_cycles),
                ("fetch_groups", self.fetch_groups),
                ("issued_groups", self.issued_groups),
                ("dual_issued_groups", self.dual_issued_groups),
                ("branch_mispredicts", self.branch_mispredicts),
                ("flushes", self.flushes),
                ("ifetch_miss_cycles", self.ifetch_miss_cycles),
                ("dmem_wait_cycles", self.dmem_wait_cycles),
                ("decode_cache_hits", self.decode_cache_hits),
                ("decode_cache_misses", self.decode_cache_misses)):
            registry.counter("repro_cpu_%s_total" % name,
                             labels).inc(value)
        registry.gauge("repro_cpu_decode_cache_hit_rate",
                       labels).set(self.decode_cache_hit_rate)


class Core:
    """One simulated core attached to the shared bus."""

    def __init__(self, core_id: int, bus: AhbBus, memory: Memory,
                 config: Optional[CoreConfig] = None):
        self.core_id = core_id
        self.bus = bus
        self.memory = memory
        self.config = config or CoreConfig()
        cfg = self.config
        self.regfile = RegisterFile(num_read_ports=2 * cfg.issue_width,
                                    num_write_ports=cfg.issue_width)
        self.icache = Cache(cfg.l1i)
        self.dcache = Cache(cfg.l1d)
        self.store_buffer = StoreBuffer(core_id, bus,
                                        depth=cfg.store_buffer_depth,
                                        coalesce=cfg.store_buffer_coalesce)
        self.predictor = BranchPredictor(entries=cfg.predictor_entries,
                                         enabled=cfg.predictor_enabled)
        self.stats = CoreStats()
        self.reset(entry=0)

    # -- lifecycle -------------------------------------------------------

    def reset(self, entry: int):
        """Reset microarchitectural state and point fetch at ``entry``."""
        self.stages: List[Optional[Group]] = [None] * NUM_STAGES
        self.fetch_pc = entry
        self.fetch_enabled = True
        self.halted = False
        self._seq = 0
        self._fetch_cache: Dict[int, Tuple[Instruction, int]] = {}
        self._ifetch_req: Optional[BusRequest] = None
        self._jalr_block = False
        self.hold = False
        self.commits_this_cycle = 0
        self.committed_words: List[int] = []
        self.regfile.reset()
        self.store_buffer.reset()

    def start(self, entry: int):
        """Begin executing at ``entry`` (keeps caches and predictor warm
        only if the caller does not also reset them)."""
        self.reset(entry=entry)

    @property
    def finished(self) -> bool:
        """True when halted and fully drained."""
        return (self.halted and all(g is None for g in self.stages)
                and self.store_buffer.empty)

    # -- observation points (SafeDM taps) ------------------------------------

    def stage_slots(self) -> Tuple[Tuple[Tuple[int, int], ...], ...]:
        """Per-stage, per-slot (valid, instruction word) — Fig. 2b input."""
        width = self.config.issue_width
        empty = ((0, 0),) * width
        out = []
        for group in self.stages:
            if group is None:
                out.append(empty)
                continue
            slots = [(1, word) for word in group.words_cache]
            while len(slots) < width:
                slots.append((0, 0))
            out.append(tuple(slots))
        return tuple(out)

    def stage_words(self) -> List[Optional[Tuple[int, ...]]]:
        """Per-stage word tuples (None for empty stages) — the compact
        form of :meth:`stage_slots` used on the monitor's fast path."""
        return [None if group is None else group.words_cache
                for group in self.stages]

    def inflight_words(self) -> Tuple[int, ...]:
        """Fetched-but-not-retired instruction words, oldest first.

        Input for the fallback instruction-signature variant the paper
        describes for cores without all-or-none stage movement.
        """
        words = []
        for stage in range(NUM_STAGES - 1, -1, -1):
            group = self.stages[stage]
            if group is not None:
                words.extend(fi.word for fi in group.instrs)
        return tuple(words)

    # -- snapshot protocol ------------------------------------------------

    def state_dict(self, ctx) -> dict:
        from ..checkpoint import stats_state
        return {
            "stages": [None if group is None else group.state_dict(ctx)
                       for group in self.stages],
            "fetch_pc": self.fetch_pc,
            "fetch_enabled": self.fetch_enabled,
            "halted": self.halted,
            "seq": self._seq,
            # Decode-cache entries are fully determined by (pc, page
            # version): the word is re-read from the restored memory.
            "fetch_cache": {pc: entry[1]
                            for pc, entry in self._fetch_cache.items()},
            "ifetch_req": (None if self._ifetch_req is None
                           else ctx.intern(self._ifetch_req)),
            "jalr_block": self._jalr_block,
            "hold": self.hold,
            "commits_this_cycle": self.commits_this_cycle,
            "committed_words": list(self.committed_words),
            "regfile": self.regfile.state_dict(),
            "icache": self.icache.state_dict(),
            "dcache": self.dcache.state_dict(),
            "store_buffer": self.store_buffer.state_dict(ctx),
            "predictor": self.predictor.state_dict(),
            "stats": stats_state(self.stats),
        }

    def load_state_dict(self, state, ctx):
        from ..checkpoint import load_stats_state
        stages = state["stages"]
        if len(stages) != NUM_STAGES:
            raise ValueError("snapshot has %d pipeline stages, expected %d"
                             % (len(stages), NUM_STAGES))
        self.stages = [None if entry is None
                       else Group.from_state(entry, ctx)
                       for entry in stages]
        self.fetch_pc = int(state["fetch_pc"])
        self.fetch_enabled = bool(state["fetch_enabled"])
        self.halted = bool(state["halted"])
        self._seq = int(state["seq"])
        self._load_fetch_cache(state["fetch_cache"])
        ifetch = state["ifetch_req"]
        self._ifetch_req = None if ifetch is None else ctx.resolve(ifetch)
        self._jalr_block = bool(state["jalr_block"])
        self.hold = bool(state["hold"])
        self.commits_this_cycle = int(state["commits_this_cycle"])
        self.committed_words = [int(word)
                                for word in state["committed_words"]]
        self.regfile.load_state_dict(state["regfile"])
        self.icache.load_state_dict(state["icache"])
        self.dcache.load_state_dict(state["dcache"])
        self.store_buffer.load_state_dict(state["store_buffer"], ctx)
        self.predictor.load_state_dict(state["predictor"])
        load_stats_state(self.stats, state["stats"])

    def _load_fetch_cache(self, entries):
        """Rebuild the decode cache against the *restored* memory.

        Requires memory to be restored first.  An entry whose word no
        longer decodes must be stale (its page changed after caching),
        and a stale entry misses on its next access exactly like a
        missing one — dropping it preserves behaviour and counters.
        """
        cache: Dict[int, Tuple[Instruction, int]] = {}
        memory = self.memory
        for pc_key, version in entries.items():
            pc = int(pc_key)
            try:
                instr = decode(memory.read_word(pc))
            except Exception:
                continue
            cache[pc] = (instr, int(version))
        self._fetch_cache = cache

    # -- per-cycle step ----------------------------------------------------------

    def step(self, cycle: int):
        """Advance the core by one cycle."""
        stages = self.stages
        stats = self.stats
        stats.cycles += 1
        self.commits_this_cycle = 0
        self.committed_words = []
        self.regfile.begin_cycle()
        self.store_buffer.step(cycle)
        advanced = False

        # WB: retire.
        group = stages[WB]
        if group is not None:
            self._retire(group)
            stages[WB] = None
            advanced = True

        # XC -> WB.
        group = stages[XC]
        if group is not None and stages[WB] is None:
            stages[WB] = group
            stages[XC] = None
            advanced = True

        # ME -> XC (memory completion).
        group = stages[ME]
        if group is not None:
            if not group.me_initiated:
                self._initiate_me(group, cycle)
            elif group.me_ready_cycle is None:
                self._check_me(group, cycle)
            if group.me_ready_cycle is None or cycle < group.me_ready_cycle:
                stats.dmem_wait_cycles += 1
            elif stages[XC] is None:
                stages[XC] = group
                stages[ME] = None
                advanced = True

        # EX -> ME.
        group = stages[EX]
        if (group is not None and cycle >= group.ex_done_cycle
                and stages[ME] is None):
            stages[ME] = group
            stages[EX] = None
            self._initiate_me(group, cycle)
            advanced = True

        # RA -> EX (issue).
        group = stages[RA]
        if (group is not None and stages[EX] is None
                and self._sources_ready(group, cycle)):
            stages[RA] = None
            self._issue(group, cycle)
            stages[EX] = group
            advanced = True

        # DE -> RA.
        group = stages[DE]
        if group is not None and stages[RA] is None:
            stages[RA] = group
            stages[DE] = None
            advanced = True

        # FE -> DE.
        group = stages[FE]
        if group is not None and stages[DE] is None:
            stages[DE] = group
            stages[FE] = None
            advanced = True

        # Fetch into FE.
        if stages[FE] is None and self.fetch_enabled \
                and not self._jalr_block:
            if self._fetch(cycle):
                advanced = True

        self.hold = not advanced
        if not advanced:
            stats.hold_cycles += 1

    # -- fetch ------------------------------------------------------------------

    def _fetch(self, cycle: int) -> bool:
        # An outstanding I-line fill blocks fetch until it completes.
        if self._ifetch_req is not None:
            if not self._ifetch_req.done(cycle):
                self.stats.ifetch_miss_cycles += 1
                return False
            self.icache.fill(self._ifetch_req.address)
            self._ifetch_req = None

        pc = self.fetch_pc
        if not self.icache.lookup(pc):
            self._ifetch_req = self.bus.request_line(self.core_id, pc,
                                                     cycle, is_ifetch=True)
            self.stats.ifetch_miss_cycles += 1
            return False

        first = self._fetch_instruction(pc)
        group_instrs = [first]
        next_pc = self._redirect_after(first)
        if next_pc is None:
            # Sequential: try to pair a second instruction from the same
            # cache line (the 2-wide fetch bundle).
            second_pc = pc + 4
            same_line = (self.icache.line_address(second_pc)
                         == self.icache.line_address(pc))
            if same_line and self.icache.probe(second_pc):
                second = self._fetch_instruction(second_pc)
                if can_pair(first, second):
                    group_instrs.append(second)
                    next_pc = self._redirect_after(second)
                    if next_pc is None:
                        next_pc = second_pc + 4
                else:
                    self._seq -= 1  # second stays unfetched
                    next_pc = second_pc
            else:
                next_pc = second_pc
        self.fetch_pc = next_pc
        self.stages[FE] = Group(instrs=group_instrs)
        self.stats.fetch_groups += 1
        return True

    def _fetch_instruction(self, pc: int) -> FetchedInstruction:
        # Per-pc decode cache, guarded by the memory page's write
        # version so stores into code pages (reload, self-modification)
        # invalidate exactly the affected entries.
        versions = self.memory.page_versions
        entry = self._fetch_cache.get(pc)
        if entry is not None and versions.get(pc >> PAGE_BITS, 0) == entry[1]:
            instr = entry[0]
            self.stats.decode_cache_hits += 1
        else:
            self.stats.decode_cache_misses += 1
            word = self.memory.read_word(pc)
            try:
                instr = decode(word)
            except Exception as exc:
                raise SimulationError(
                    "core %d: cannot decode %#010x at pc=%#x: %s"
                    % (self.core_id, word, pc, exc))
            self._fetch_cache[pc] = (instr,
                                     versions.get(pc >> PAGE_BITS, 0))
        fetched = FetchedInstruction(instr=instr, pc=pc, seq=self._seq)
        self._seq += 1
        return fetched

    def _redirect_after(self, fetched: FetchedInstruction) -> Optional[int]:
        """Fetch-time redirect decision; None means fall through."""
        instr = fetched.instr
        name = instr.mnemonic
        if name == "jal":
            return fetched.pc + instr.imm
        if name == "jalr":
            self._jalr_block = True
            return fetched.pc + 4  # placeholder; fetch blocks anyway
        if instr.iclass == CLASS_BRANCH:
            if self.predictor.predict_taken(fetched.pc):
                fetched.predicted_taken = True
                return fetched.pc + instr.imm
            return fetched.pc + 4
        if name in ("ecall", "ebreak"):
            self.fetch_enabled = False
            return fetched.pc + 4
        return None

    # -- issue (RA -> EX) -------------------------------------------------------

    def _sources_ready(self, group: Group, cycle: int) -> bool:
        regfile = self.regfile
        for fetched in group.instrs:
            for src in fetched.instr.sources():
                if not regfile.ready(src, cycle):
                    return False
            rd = fetched.instr.destination()
            if rd is not None and not regfile.ready(rd, cycle):
                return False  # conservative WAW ordering
        return True

    def _issue(self, group: Group, cycle: int):
        self.stats.issued_groups += 1
        if len(group.instrs) > 1:
            self.stats.dual_issued_groups += 1
        group.ex_done_cycle = cycle + 1
        regfile = self.regfile
        squash_after = None

        for slot, fetched in enumerate(group.instrs):
            instr = fetched.instr
            iclass = instr.iclass
            rs1 = rs2 = 0
            if instr.rs1 is not None:
                rs1 = regfile.read(instr.rs1)
                regfile.record_read(2 * slot, instr.rs1)
            if instr.rs2 is not None:
                rs2 = regfile.read(instr.rs2)
                regfile.record_read(2 * slot + 1, instr.rs2)

            if iclass == CLASS_BRANCH:
                taken = branch_taken(instr, rs1, rs2)
                mispredicted = taken != fetched.predicted_taken
                self.predictor.update(fetched.pc, taken, mispredicted)
                if mispredicted:
                    self.stats.branch_mispredicts += 1
                    target = fetched.pc + instr.imm if taken \
                        else fetched.pc + 4
                    self._squash_younger()
                    self.fetch_pc = target
                    self.fetch_enabled = not self.halted
            elif iclass == CLASS_JUMP:
                result = (fetched.pc + 4) & ((1 << 64) - 1)
                fetched.result = result
                regfile.write(instr.rd, result)
                regfile.set_ready(instr.destination(), cycle + 1)
                if instr.mnemonic == "jalr":
                    target = (rs1 + instr.imm) & ~1
                    self._squash_younger()
                    self.fetch_pc = target
                    self._jalr_block = False
                    self.fetch_enabled = not self.halted
            elif iclass == "load":
                fetched.effective_address = effective_address(instr, rs1)
                regfile.mark_pending(instr.destination())
            elif iclass == "store":
                fetched.effective_address = effective_address(instr, rs1)
                fetched.store_value = rs2
            elif iclass == "system":
                if instr.mnemonic in ("ecall", "ebreak"):
                    self.halted = True
                    self.fetch_enabled = False
                    self._squash_younger()
                    squash_after = slot
                # fence: treated as a pipeline bubble (store buffer
                # ordering is already sequential per core).
            else:
                result = execute_alu(instr, rs1, rs2)
                fetched.result = result
                regfile.write(instr.rd, result)
                if iclass == CLASS_MUL:
                    latency = self.config.mul_latency
                elif iclass == CLASS_DIV:
                    latency = self.config.div_latency
                    group.ex_done_cycle = cycle + latency
                else:
                    latency = 1
                regfile.set_ready(instr.destination(), cycle + latency)

        if squash_after is not None:
            group.truncate(squash_after)

    def _squash_younger(self):
        """Drop not-yet-issued younger work (FE/DE stages, fetch buffer)."""
        self.stats.flushes += 1
        self.stages[FE] = None
        self.stages[DE] = None
        # A squashed speculative jalr must release its fetch block, or
        # fetch would wait forever for an issue that never happens.
        self._jalr_block = False
        # Leave any outstanding I-line request to complete into the cache.

    # -- memory stage ----------------------------------------------------------

    def _initiate_me(self, group: Group, cycle: int):
        group.me_initiated = True
        group.me_ready_cycle = cycle + 1
        group.me_requests = []
        for fetched in group.instrs:
            instr = fetched.instr
            if instr.spec.is_load:
                self._initiate_load(group, fetched, cycle)
            elif instr.spec.is_store:
                self._initiate_store(group, fetched, cycle)

    def _initiate_load(self, group: Group, fetched, cycle: int):
        instr = fetched.instr
        address = fetched.effective_address
        # Store-to-load ordering: wait for pending stores to the line.
        if self.store_buffer.contains_line(address):
            group.me_initiated = False  # retry next cycle
            group.me_ready_cycle = None
            return
        raw = self.memory.read(address & ~(instr.spec.size - 1),
                               instr.spec.size)
        value = sign_extend_load(raw, instr.spec.size, instr.spec.signed)
        fetched.result = value
        self.regfile.write(instr.rd, value)
        if self.dcache.lookup(address):
            ready = cycle + self.config.dcache_hit_latency
            group.me_ready_cycle = max(group.me_ready_cycle or 0, ready)
            self.regfile.set_ready(instr.destination(), ready)
        else:
            req = self.bus.request_line(self.core_id, address, cycle)
            group.me_requests.append((req, fetched))
            group.me_ready_cycle = None

    def _initiate_store(self, group: Group, fetched, cycle: int):
        instr = fetched.instr
        address = fetched.effective_address
        if not self.store_buffer.push(address, cycle):
            group.me_initiated = False  # buffer full: retry next cycle
            group.me_ready_cycle = None
            return
        self.memory.write(address, fetched.store_value, instr.spec.size)
        # Write-through, write-no-allocate L1.
        self.dcache.lookup(address)

    def _check_me(self, group: Group, cycle: int):
        if not group.me_requests:
            return
        if all(req.done(cycle) for req, _ in group.me_requests):
            for req, fetched in group.me_requests:
                self.dcache.fill(req.address)
                self.regfile.set_ready(fetched.instr.destination(),
                                       cycle + 1)
            group.me_requests = []
            group.me_ready_cycle = cycle + 1

    # -- retire -----------------------------------------------------------------

    def _retire(self, group: Group):
        regfile = self.regfile
        stats = self.stats
        for slot, fetched in enumerate(group.instrs):
            rd = fetched.instr.destination()
            if rd is not None and fetched.result is not None:
                regfile.record_write(slot, rd, fetched.result)
            stats.committed += 1
            iclass = fetched.instr.iclass
            if iclass == "load":
                stats.committed_loads += 1
            elif iclass == "store":
                stats.committed_stores += 1
            elif iclass == "branch":
                stats.committed_branches += 1
            elif iclass in ("mul", "div"):
                stats.committed_muldiv += 1
            self.commits_this_cycle += 1
            self.committed_words.append(fetched.word)
