"""Pipeline building blocks: issue groups, stage names, branch predictor.

The NOEL-V pipeline modelled here is in-order, dual-issue, 7 stages:

====  =====================  ==============================================
 #    Stage                  Modelled behaviour
====  =====================  ==============================================
 0    FE (fetch)             I-cache access, up to 2 instructions/cycle
 1    DE (decode)            decode + group formation
 2    RA (register access)   operand read, hazard check
 3    EX (execute)           ALU/branch resolution, mul/div occupancy
 4    ME (memory)            D-cache access, store-buffer insertion
 5    XC (exception)         pass-through
 6    WB (writeback)         register write ports, retirement
====  =====================  ==============================================

Instructions travel in *groups* of 1-2 (the fetch group), and a group
moves between stages as a unit — "the instructions in one stage move to
the following stage as a group (either all or none)" — which is the
property SafeDM's per-stage instruction signature relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..isa.instruction import FetchedInstruction
from ..isa.opcodes import CLASS_BRANCH, CLASS_DIV, CLASS_JUMP, CLASS_MUL

STAGE_NAMES = ("FE", "DE", "RA", "EX", "ME", "XC", "WB")
FE, DE, RA, EX, ME, XC, WB = range(7)
NUM_STAGES = 7

#: Stages observed by SafeDM's per-stage instruction signature (all of
#: them; kept symbolic so an integration can restrict the window).
OBSERVED_STAGES = tuple(range(NUM_STAGES))


@dataclass(slots=True)
class Group:
    """An issue group: 1-2 instructions moving through stages together."""

    instrs: List[FetchedInstruction]
    #: Cycle at which EX occupancy ends (mul/div block the EX stage).
    ex_done_cycle: int = 0
    #: Memory-stage bookkeeping.
    me_initiated: bool = False
    me_ready_cycle: Optional[int] = None
    me_requests: List[object] = field(default_factory=list)
    #: Cached tuple of instruction words (kept in sync by truncate()).
    words_cache: Tuple[int, ...] = ()
    #: Engine-attached specialized handlers (repro.engine.fast).  The
    #: fast tier's generated fetch code pins the closures matching this
    #: group's shape at creation time; reference-created and restored
    #: groups carry None and dispatch through the engine's shape maps.
    #: ``me_fn`` uses False for "no memory operation in this group".
    #: Never serialized: snapshots always restore to None.
    issue_fn: Optional[object] = None
    me_fn: Optional[object] = None
    retire_fn: Optional[object] = None

    def __post_init__(self):
        self.words_cache = tuple(fi.instr.word for fi in self.instrs)

    def __len__(self) -> int:
        return len(self.instrs)

    def words(self) -> Tuple[int, ...]:
        return self.words_cache

    def truncate(self, keep: int):
        """Drop instructions after slot ``keep`` (squash within group)."""
        del self.instrs[keep + 1:]
        self.words_cache = tuple(fi.instr.word for fi in self.instrs)
        # Engine handlers were specialized for the pre-truncation shape;
        # drop them so the fast tier re-dispatches by the new words.
        self.issue_fn = None
        self.me_fn = None
        self.retire_fn = None

    def __str__(self) -> str:
        return " | ".join(str(fi) for fi in self.instrs)

    # -- snapshot protocol ------------------------------------------------

    def state_dict(self, ctx) -> dict:
        instr_slots = {id(fi): slot for slot, fi in enumerate(self.instrs)}
        return {
            "instrs": [_fetched_state(fi) for fi in self.instrs],
            "ex_done_cycle": self.ex_done_cycle,
            "me_initiated": self.me_initiated,
            "me_ready_cycle": self.me_ready_cycle,
            # The fetched half of each pair is always one of this
            # group's own instructions; store its slot index.
            "me_requests": [[ctx.intern(req), instr_slots[id(fi)]]
                            for req, fi in self.me_requests],
        }

    @classmethod
    def from_state(cls, state, ctx) -> "Group":
        group = cls(instrs=[_fetched_from_state(entry)
                            for entry in state["instrs"]])
        group.ex_done_cycle = int(state["ex_done_cycle"])
        group.me_initiated = bool(state["me_initiated"])
        ready = state["me_ready_cycle"]
        group.me_ready_cycle = None if ready is None else int(ready)
        group.me_requests = [(ctx.resolve(int(index)),
                              group.instrs[int(slot)])
                             for index, slot in state["me_requests"]]
        return group


def _fetched_state(fetched: FetchedInstruction) -> list:
    return [fetched.instr.word, fetched.pc, fetched.seq,
            1 if fetched.predicted_taken else 0, fetched.result,
            fetched.effective_address, fetched.store_value]


def _fetched_from_state(entry) -> FetchedInstruction:
    from ..isa.decoder import decode
    word, pc, seq, predicted, result, effective, store_value = entry
    fetched = FetchedInstruction(instr=decode(int(word)), pc=int(pc),
                                 seq=int(seq))
    fetched.predicted_taken = bool(predicted)
    fetched.result = None if result is None else int(result)
    fetched.effective_address = (None if effective is None
                                 else int(effective))
    fetched.store_value = None if store_value is None else int(store_value)
    return fetched


def can_pair(first: FetchedInstruction,
             second: FetchedInstruction) -> bool:
    """Dual-issue pairing rule for two sequentially fetched instructions.

    Conservative NOEL-V-like constraints:

    * no RAW dependency of the second on the first,
    * no WAW on the same destination,
    * at most one memory operation per group,
    * at most one mul/div per group,
    * a control-flow instruction only in the *last* slot.
    """
    a, b = first.instr, second.instr
    rd = a.destination()
    if rd is not None and rd in b.sources():
        return False
    if rd is not None and rd == b.destination():
        return False
    if a.spec.is_memory and b.spec.is_memory:
        return False
    a_muldiv = a.iclass in (CLASS_MUL, CLASS_DIV)
    b_muldiv = b.iclass in (CLASS_MUL, CLASS_DIV)
    if a_muldiv and b_muldiv:
        return False
    if a.iclass in (CLASS_BRANCH, CLASS_JUMP):
        return False  # control flow terminates a group
    return True


class BranchPredictor:
    """Direct-mapped table of 2-bit saturating counters.

    Deterministic and private per core, so both redundant cores evolve
    identical predictor state when executing identical streams — the
    predictor must not be an artificial source of diversity.
    """

    STRONG_NT, WEAK_NT, WEAK_T, STRONG_T = range(4)

    def __init__(self, entries: int = 256, enabled: bool = True):
        if entries & (entries - 1):
            raise ValueError("predictor entries must be a power of two")
        self.entries = entries
        self.enabled = enabled
        self._table = [self.WEAK_NT] * entries
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) & (self.entries - 1)

    def predict_taken(self, pc: int) -> bool:
        """Predict direction for the branch at ``pc``."""
        if not self.enabled:
            return False
        self.predictions += 1
        return self._table[self._index(pc)] >= self.WEAK_T

    def update(self, pc: int, taken: bool, mispredicted: bool):
        """Train the counter after resolution."""
        if mispredicted:
            self.mispredictions += 1
        if not self.enabled:
            return
        idx = self._index(pc)
        state = self._table[idx]
        if taken:
            self._table[idx] = min(self.STRONG_T, state + 1)
        else:
            self._table[idx] = max(self.STRONG_NT, state - 1)

    def reset(self):
        self._table = [self.WEAK_NT] * self.entries
        self.predictions = 0
        self.mispredictions = 0

    # -- snapshot protocol ------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "table": list(self._table),
            "stats": {"predictions": self.predictions,
                      "mispredictions": self.mispredictions},
        }

    def load_state_dict(self, state):
        table = state["table"]
        if len(table) != self.entries:
            raise ValueError("snapshot has %d predictor entries, expected %d"
                             % (len(table), self.entries))
        self._table = [int(counter) for counter in table]
        stats = state["stats"]
        self.predictions = int(stats["predictions"])
        self.mispredictions = int(stats["mispredictions"])
