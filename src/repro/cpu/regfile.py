"""Architectural register file with tapped (observable) ports.

SafeDM's data signature is built from "the data being read/written for
the last n cycles on each of the register ports" (paper Section
III-B.1).  The register file therefore exposes, every cycle, one sample
per physical port: ``(enable, value)``.  The pipeline records reads at
the register-access stage and writes at writeback, mirroring where the
NOEL-V register file ports are exercised.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..isa.registers import NUM_REGISTERS, XMASK

#: A port sample: (enable, 64-bit value on the port).
PortSample = Tuple[int, int]

IDLE_SAMPLE: PortSample = (0, 0)


class RegisterFile:
    """32 x 64-bit integer registers plus a readiness scoreboard.

    ``ready_cycle[r]`` is the first cycle at which a consumer may issue
    reading ``r`` (bypass network included: an ALU result is readable the
    cycle after issue).  ``PENDING`` marks a register whose producing
    load has not yet completed in the memory stage.
    """

    PENDING = 1 << 62

    __slots__ = ("values", "ready_cycle", "num_read_ports",
                 "num_write_ports", "read_samples", "write_samples",
                 "_idle_reads", "_idle_writes")

    def __init__(self, num_read_ports: int = 4, num_write_ports: int = 2):
        self.values: List[int] = [0] * NUM_REGISTERS
        self.ready_cycle: List[int] = [0] * NUM_REGISTERS
        self.num_read_ports = num_read_ports
        self.num_write_ports = num_write_ports
        # Idle templates: begin_cycle() refills the live sample lists
        # in place from these instead of allocating fresh lists.
        self._idle_reads: List[PortSample] = [IDLE_SAMPLE] * num_read_ports
        self._idle_writes: List[PortSample] = [IDLE_SAMPLE] * num_write_ports
        self.read_samples: List[PortSample] = list(self._idle_reads)
        self.write_samples: List[PortSample] = list(self._idle_writes)

    # -- architectural access ---------------------------------------------

    def read(self, index: int) -> int:
        """Architectural read (x0 hardwired to zero)."""
        return self.values[index] if index else 0

    def write(self, index: int, value: int):
        """Architectural write (writes to x0 are dropped)."""
        if index:
            self.values[index] = value & XMASK

    # -- scoreboard ------------------------------------------------------------

    def ready(self, index: int, cycle: int) -> bool:
        """True when register ``index`` may be read at ``cycle``."""
        return index == 0 or self.ready_cycle[index] <= cycle

    def set_ready(self, index: Optional[int], cycle: int):
        if index:
            self.ready_cycle[index] = cycle

    def mark_pending(self, index: Optional[int]):
        """Mark ``index`` as produced by an in-flight load."""
        if index:
            self.ready_cycle[index] = self.PENDING

    # -- port observation ----------------------------------------------------

    def begin_cycle(self):
        """Reset port samples; the pipeline re-records any activity."""
        self.read_samples[:] = self._idle_reads
        self.write_samples[:] = self._idle_writes

    def record_read(self, port: int, index: int):
        """Tap a read of register ``index`` on read port ``port``."""
        self.read_samples[port] = (1, self.read(index))

    def record_write(self, port: int, index: int, value: int):
        """Tap a write on write port ``port`` (x0 writes still toggle the
        port in hardware, so they are recorded too)."""
        self.write_samples[port] = (1, value & XMASK)

    def port_samples(self) -> List[PortSample]:
        """All port samples for this cycle, reads then writes."""
        return self.read_samples + self.write_samples

    def reset(self):
        self.values = [0] * NUM_REGISTERS
        self.ready_cycle = [0] * NUM_REGISTERS
        self.begin_cycle()

    # -- snapshot protocol ------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "values": list(self.values),
            "ready_cycle": list(self.ready_cycle),
            "read_samples": [list(sample) for sample in self.read_samples],
            "write_samples": [list(sample) for sample in self.write_samples],
        }

    def load_state_dict(self, state):
        values = [int(v) for v in state["values"]]
        if len(values) != NUM_REGISTERS:
            raise ValueError("snapshot has %d registers, expected %d"
                             % (len(values), NUM_REGISTERS))
        reads = state["read_samples"]
        writes = state["write_samples"]
        if (len(reads) != self.num_read_ports
                or len(writes) != self.num_write_ports):
            raise ValueError("snapshot port counts do not match regfile")
        self.values = values
        self.ready_cycle = [int(v) for v in state["ready_cycle"]]
        # Samples must restore as tuples: signature rows hash them.
        self.read_samples = [(int(en), int(val)) for en, val in reads]
        self.write_samples = [(int(en), int(val)) for en, val in writes]
