"""Functional execution of RV64IM instructions.

Pure functions: given operand values, return the result value (and, for
control flow, the taken/target decision).  The pipeline model calls
these at issue time; timing is handled separately by the pipeline.
"""

from __future__ import annotations

from ..isa.instruction import Instruction
from ..isa.registers import XMASK, to_signed


def _s(value: int) -> int:
    return to_signed(value, 64)


def _s32(value: int) -> int:
    return to_signed(value, 32)


def _w(value: int) -> int:
    """Truncate to 32 bits and sign-extend to 64 (the RV64 'W' rule)."""
    return _s32(value) & XMASK


def execute_alu(instr: Instruction, rs1: int, rs2: int) -> int:
    """Compute the result of an ALU / MUL / DIV instruction.

    ``rs1``/``rs2`` are unsigned 64-bit operand values; the immediate is
    taken from ``instr``.  Returns the unsigned 64-bit result.
    """
    name = instr.mnemonic
    imm = instr.imm

    # Immediate forms share the register implementations.
    if name == "addi":
        return (rs1 + imm) & XMASK
    if name == "slti":
        return 1 if _s(rs1) < imm else 0
    if name == "sltiu":
        return 1 if rs1 < (imm & XMASK) else 0
    if name == "xori":
        return (rs1 ^ imm) & XMASK
    if name == "ori":
        return (rs1 | imm) & XMASK
    if name == "andi":
        return (rs1 & imm) & XMASK
    if name == "slli":
        return (rs1 << imm) & XMASK
    if name == "srli":
        return rs1 >> imm
    if name == "srai":
        return (_s(rs1) >> imm) & XMASK
    if name == "addiw":
        return _w(rs1 + imm)
    if name == "slliw":
        return _w(rs1 << imm)
    if name == "srliw":
        return _w((rs1 & 0xFFFFFFFF) >> imm)
    if name == "sraiw":
        return _w(_s32(rs1) >> imm)

    if name == "add":
        return (rs1 + rs2) & XMASK
    if name == "sub":
        return (rs1 - rs2) & XMASK
    if name == "sll":
        return (rs1 << (rs2 & 63)) & XMASK
    if name == "slt":
        return 1 if _s(rs1) < _s(rs2) else 0
    if name == "sltu":
        return 1 if rs1 < rs2 else 0
    if name == "xor":
        return rs1 ^ rs2
    if name == "srl":
        return rs1 >> (rs2 & 63)
    if name == "sra":
        return (_s(rs1) >> (rs2 & 63)) & XMASK
    if name == "or":
        return rs1 | rs2
    if name == "and":
        return rs1 & rs2
    if name == "addw":
        return _w(rs1 + rs2)
    if name == "subw":
        return _w(rs1 - rs2)
    if name == "sllw":
        return _w(rs1 << (rs2 & 31))
    if name == "srlw":
        return _w((rs1 & 0xFFFFFFFF) >> (rs2 & 31))
    if name == "sraw":
        return _w(_s32(rs1) >> (rs2 & 31))

    if name == "mul":
        return (rs1 * rs2) & XMASK
    if name == "mulh":
        return ((_s(rs1) * _s(rs2)) >> 64) & XMASK
    if name == "mulhsu":
        return ((_s(rs1) * rs2) >> 64) & XMASK
    if name == "mulhu":
        return ((rs1 * rs2) >> 64) & XMASK
    if name == "mulw":
        return _w(rs1 * rs2)
    if name == "div":
        return _divide(_s(rs1), _s(rs2), 64)
    if name == "divu":
        return XMASK if rs2 == 0 else (rs1 // rs2) & XMASK
    if name == "rem":
        return _remainder(_s(rs1), _s(rs2), 64)
    if name == "remu":
        return rs1 if rs2 == 0 else (rs1 % rs2) & XMASK
    if name == "divw":
        return _w(_divide(_s32(rs1), _s32(rs2), 32))
    if name == "divuw":
        a, b = rs1 & 0xFFFFFFFF, rs2 & 0xFFFFFFFF
        return _w(0xFFFFFFFF if b == 0 else a // b)
    if name == "remw":
        return _w(_remainder(_s32(rs1), _s32(rs2), 32))
    if name == "remuw":
        a, b = rs1 & 0xFFFFFFFF, rs2 & 0xFFFFFFFF
        return _w(a if b == 0 else a % b)

    if name == "lui":
        return instr.imm & XMASK
    raise ValueError("execute_alu cannot handle %r" % name)


def _divide(a: int, b: int, bits: int) -> int:
    if b == 0:
        return (1 << bits) - 1 if bits == 64 else -1 & XMASK
    # RISC-V division truncates toward zero; Python floors.
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return q & XMASK


def _remainder(a: int, b: int, bits: int) -> int:
    if b == 0:
        return a & XMASK
    r = abs(a) % abs(b)
    if a < 0:
        r = -r
    return r & XMASK


def branch_taken(instr: Instruction, rs1: int, rs2: int) -> bool:
    """Evaluate a conditional branch."""
    name = instr.mnemonic
    if name == "beq":
        return rs1 == rs2
    if name == "bne":
        return rs1 != rs2
    if name == "blt":
        return _s(rs1) < _s(rs2)
    if name == "bge":
        return _s(rs1) >= _s(rs2)
    if name == "bltu":
        return rs1 < rs2
    if name == "bgeu":
        return rs1 >= rs2
    raise ValueError("not a branch: %r" % name)


def effective_address(instr: Instruction, rs1: int) -> int:
    """Load/store effective address."""
    return (rs1 + instr.imm) & XMASK


def sign_extend_load(value: int, size: int, signed: bool) -> int:
    """Post-process a loaded value per the load width/signedness."""
    if signed:
        sign_bit = 1 << (8 * size - 1)
        if value & sign_bit:
            value -= 1 << (8 * size)
    return value & XMASK
