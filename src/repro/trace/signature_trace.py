"""Per-cycle capture of SafeDM's signature comparison outcomes."""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import List


@dataclass
class SignatureSample:
    """One cycle of monitor outputs."""

    cycle: int
    data_diversity: bool
    instruction_diversity: bool
    staggering: int

    @property
    def diversity(self) -> bool:
        return self.data_diversity or self.instruction_diversity


class SignatureTrace:
    """Collects :class:`SignatureSample` rows, exportable as CSV."""

    COLUMNS = ("cycle", "data_diversity", "instruction_diversity",
               "diversity", "staggering")

    def __init__(self):
        self.samples: List[SignatureSample] = []

    def append(self, sample: SignatureSample):
        self.samples.append(sample)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    def to_metrics(self, registry):
        """Fold the captured samples into a telemetry registry.

        Bridges a finished trace; there is no per-sample bookkeeping
        beyond the list the trace already keeps.
        """
        samples = registry.counter("repro_trace_samples_total")
        no_data = registry.counter(
            "repro_trace_no_data_diversity_cycles_total")
        no_instr = registry.counter(
            "repro_trace_no_instruction_diversity_cycles_total")
        no_div = registry.counter(
            "repro_trace_no_diversity_cycles_total")
        zero_stag = registry.counter(
            "repro_trace_zero_staggering_cycles_total")
        for sample in self.samples:
            samples.inc()
            if not sample.data_diversity:
                no_data.inc()
            if not sample.instruction_diversity:
                no_instr.inc()
            if not sample.diversity:
                no_div.inc()
            if sample.staggering == 0:
                zero_stag.inc()
        episodes = self.no_diversity_episodes()
        registry.counter("repro_trace_no_diversity_episodes_total"
                         ).inc(len(episodes))
        if episodes:
            registry.gauge("repro_trace_longest_no_diversity_episode"
                           ).set(max(length for _, length in episodes))

    def no_diversity_episodes(self) -> List[tuple]:
        """(start_cycle, length) of each consecutive no-diversity run."""
        episodes = []
        start = None
        previous = None
        for sample in self.samples:
            if not sample.diversity:
                if start is None or (previous is not None
                                     and sample.cycle != previous + 1):
                    if start is not None:
                        episodes.append((start, previous - start + 1))
                    start = sample.cycle
                previous = sample.cycle
            else:
                if start is not None:
                    episodes.append((start, previous - start + 1))
                    start = None
        if start is not None:
            episodes.append((start, previous - start + 1))
        return episodes

    def to_csv(self) -> str:
        out = io.StringIO()
        out.write(",".join(self.COLUMNS) + "\n")
        for s in self.samples:
            out.write("%d,%d,%d,%d,%d\n"
                      % (s.cycle, s.data_diversity,
                         s.instruction_diversity, s.diversity,
                         s.staggering))
        return out.getvalue()

    def save(self, path: str):
        with open(path, "w") as handle:
            handle.write(self.to_csv())


def capture_signature_trace(soc, max_cycles: int = 100_000
                            ) -> SignatureTrace:
    """Run ``soc`` while capturing every monitor report."""
    trace = SignatureTrace()
    start = soc.cycle
    while soc.cycle - start < max_cycles:
        if all(soc.cores[i].finished for i in soc.monitored):
            break
        soc.step()
        report = soc.safedm.last_report
        if report is not None and report.cycle == soc.cycle - 1:
            trace.append(SignatureSample(
                cycle=report.cycle,
                data_diversity=report.data_diversity,
                instruction_diversity=report.instruction_diversity,
                staggering=report.staggering))
    soc.safedm.finish()
    return trace
