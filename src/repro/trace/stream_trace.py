"""Raw signature-stream capture: the capture half of capture/replay.

SafeDM is purely observational (paper Section III): the monitor reads
per-cycle pipeline-stage occupancy and register-port samples but never
perturbs the cores.  Those raw taps are therefore a pure function of
the *simulation* inputs (program, platform geometry, staggering,
arbiter start, cycle budget) and entirely independent of the *monitor*
configuration (IS variant, DS geometry, reporting mode, threshold).

:class:`StreamRecorder` hooks into
:meth:`repro.core.monitor.DiversityMonitor.attach_capture` and records,
for every observed cycle and each monitored core:

* the pipeline ``hold`` flag,
* the commit count (feeds the instruction-diff staggering counter),
* all register-port ``(enable, value)`` samples (skipped on hold —
  the signature units freeze then), and
* the per-stage instruction-word occupancy (``None`` = empty stage;
  the INFLIGHT fallback view is derivable from it, see
  :func:`repro.core.signatures.inflight_from_stage_words`).

:class:`StreamTrace` is the container plus a compact binary codec:
a small JSON metadata header followed by a zlib-compressed LEB128
varint body using cycle-gap deltas, port-value XOR deltas against the
previous cycle, and a shared instruction-word dictionary (loop bodies
repeat the same few words for thousands of cycles).  Encoding is fully
lossless: ``decode(encode(t))`` reproduces every sample bit for bit.

``repro.replay`` recomputes monitor outcomes from these traces for any
monitor configuration without touching ``repro.cpu``/``repro.mem``.
"""

from __future__ import annotations

import dataclasses
import json
import zlib
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

#: Bump when the binary layout changes; decoding rejects other versions.
TRACE_SCHEMA_VERSION = 1

_MAGIC = b"SDMT"


@dataclass(frozen=True)
class CoreSample:
    """One core's raw monitor taps for one cycle.

    ``ports`` and ``stages`` are ``None`` when the pipeline held: the
    signature units freeze on hold, so the values are never consumed.
    """

    hold: bool
    commits: int
    ports: Optional[Tuple[Tuple[int, int], ...]]
    stages: Optional[Tuple[Optional[Tuple[int, ...]], ...]]


@dataclass(frozen=True)
class CycleSample:
    """Both monitored cores' taps for one observed cycle."""

    cycle: int
    cores: Tuple[CoreSample, ...]


@dataclass
class TraceMeta:
    """Simulation-side context a replay cannot recompute.

    The monitor-independent fields of a
    :class:`~repro.soc.experiment.RunResult` live here, so a replayed
    result only needs the monitor counters recomputed.
    """

    benchmark: str = "program"
    stagger_nops: int = 0
    late_core: int = 1
    rr_start: int = 0
    max_cycles: int = 0
    #: Instruction-diff preload (program-level staggering correction).
    diff_preload: int = 0
    cycles: int = 0
    committed: int = 0
    finished: bool = False
    ipc: float = 0.0
    #: Simulation cache key the trace is content-addressed by ("" when
    #: captured outside the cache machinery).
    sim_key: str = ""


def _write_varint(out: bytearray, value: int):
    if value < 0:
        raise ValueError("varint values must be non-negative: %d" % value)
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int = 0):
        self.data = data
        self.pos = pos

    def varint(self) -> int:
        data = self.data
        pos = self.pos
        result = 0
        shift = 0
        while True:
            if pos >= len(data):
                raise ValueError("truncated varint")
            byte = data[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                self.pos = pos
                return result
            shift += 7

    def read(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise ValueError("truncated stream")
        blob = self.data[self.pos:end]
        self.pos = end
        return blob


class StreamTrace:
    """An ordered set of :class:`CycleSample` rows plus metadata."""

    def __init__(self, meta: Optional[TraceMeta] = None,
                 samples: Optional[List[CycleSample]] = None):
        self.meta = meta or TraceMeta()
        self.samples: List[CycleSample] = samples if samples is not None \
            else []

    def append(self, sample: CycleSample):
        self.samples.append(sample)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self) -> Iterator[CycleSample]:
        return iter(self.samples)

    # -- binary codec ------------------------------------------------------

    def encode(self) -> bytes:
        """Serialize to the compact binary form (lossless)."""
        header = bytearray(_MAGIC)
        _write_varint(header, TRACE_SCHEMA_VERSION)
        meta_json = json.dumps(dataclasses.asdict(self.meta),
                               sort_keys=True,
                               separators=(",", ":")).encode("utf-8")
        _write_varint(header, len(meta_json))
        header += meta_json

        body = bytearray()
        _write_varint(body, len(self.samples))
        word_ids: dict = {}
        prev_ports: List[List[int]] = []
        prev_cycle = -1
        for sample in self.samples:
            gap = sample.cycle - prev_cycle - 1
            if gap < 0:
                raise ValueError("cycles must be strictly increasing")
            _write_varint(body, gap)
            prev_cycle = sample.cycle
            _write_varint(body, len(sample.cores))
            for index, core in enumerate(sample.cores):
                body.append(1 if core.hold else 0)
                _write_varint(body, core.commits)
                if core.hold:
                    continue
                ports = core.ports
                stages = core.stages
                if ports is None or stages is None:
                    raise ValueError(
                        "non-hold samples need ports and stages")
                while len(prev_ports) <= index:
                    prev_ports.append([])
                prev = prev_ports[index]
                while len(prev) < len(ports):
                    prev.append(0)
                _write_varint(body, len(ports))
                mask = 0
                for bit, (enable, _) in enumerate(ports):
                    if enable:
                        mask |= 1 << bit
                _write_varint(body, mask)
                for bit, (_, value) in enumerate(ports):
                    _write_varint(body, value ^ prev[bit])
                    prev[bit] = value
                _write_varint(body, len(stages))
                for words in stages:
                    if words is None:
                        _write_varint(body, 0)
                        continue
                    _write_varint(body, len(words) + 1)
                    for word in words:
                        known = word_ids.get(word)
                        if known is None:
                            word_ids[word] = len(word_ids)
                            _write_varint(body, 0)
                            _write_varint(body, word)
                        else:
                            _write_varint(body, known + 1)
        return bytes(header) + zlib.compress(bytes(body), 6)

    @classmethod
    def decode(cls, data: bytes) -> "StreamTrace":
        """Rebuild a trace from :meth:`encode` output."""
        if data[:len(_MAGIC)] != _MAGIC:
            raise ValueError("not a stream trace (bad magic)")
        reader = _Reader(data, len(_MAGIC))
        version = reader.varint()
        if version != TRACE_SCHEMA_VERSION:
            raise ValueError("unsupported trace schema %d" % version)
        meta = TraceMeta(**json.loads(
            reader.read(reader.varint()).decode("utf-8")))
        reader = _Reader(zlib.decompress(data[reader.pos:]))

        samples: List[CycleSample] = []
        words_by_id: List[int] = []
        prev_ports: List[List[int]] = []
        cycle = -1
        for _ in range(reader.varint()):
            cycle += reader.varint() + 1
            cores = []
            for index in range(reader.varint()):
                hold = bool(reader.read(1)[0])
                commits = reader.varint()
                if hold:
                    cores.append(CoreSample(True, commits, None, None))
                    continue
                while len(prev_ports) <= index:
                    prev_ports.append([])
                prev = prev_ports[index]
                num_ports = reader.varint()
                while len(prev) < num_ports:
                    prev.append(0)
                mask = reader.varint()
                ports = []
                for bit in range(num_ports):
                    value = reader.varint() ^ prev[bit]
                    prev[bit] = value
                    ports.append(((mask >> bit) & 1, value))
                stages: List[Optional[Tuple[int, ...]]] = []
                for _ in range(reader.varint()):
                    token = reader.varint()
                    if token == 0:
                        stages.append(None)
                        continue
                    words = []
                    for _ in range(token - 1):
                        ref = reader.varint()
                        if ref == 0:
                            word = reader.varint()
                            words_by_id.append(word)
                        else:
                            word = words_by_id[ref - 1]
                        words.append(word)
                    stages.append(tuple(words))
                cores.append(CoreSample(False, commits, tuple(ports),
                                        tuple(stages)))
            samples.append(CycleSample(cycle, tuple(cores)))
        return cls(meta=meta, samples=samples)

    def byte_size(self) -> int:
        """Encoded size in bytes (re-encodes; use sparingly)."""
        return len(self.encode())

    def save(self, path):
        with open(path, "wb") as handle:
            handle.write(self.encode())

    @classmethod
    def load(cls, path) -> "StreamTrace":
        with open(path, "rb") as handle:
            return cls.decode(handle.read())


class StreamRecorder:
    """Capture hook collecting raw monitor taps during a live run.

    Attach via :meth:`DiversityMonitor.attach_capture`; the monitor
    calls :meth:`record` once per observed cycle, before sampling, so
    the recorder sees exactly what the signature units consume.
    """

    def __init__(self):
        self.samples: List[CycleSample] = []
        #: Instruction-diff preload at attach time (set by the caller
        #: that wired the capture, e.g. ``run_redundant``).
        self.diff_preload = 0

    @staticmethod
    def _tap(core) -> CoreSample:
        if core.hold:
            return CoreSample(True, core.commits_this_cycle, None, None)
        return CoreSample(False, core.commits_this_cycle,
                          tuple(core.regfile.port_samples()),
                          tuple(core.stage_words()))

    def record(self, cycle: int, core0, core1):
        """Tap both cores for one observed cycle."""
        self.samples.append(CycleSample(
            cycle, (self._tap(core0), self._tap(core1))))

    def __len__(self) -> int:
        return len(self.samples)

    def to_trace(self, meta: Optional[TraceMeta] = None) -> StreamTrace:
        """Package the recorded samples (``meta.diff_preload`` is filled
        from the recorder if the caller left it at zero)."""
        meta = meta or TraceMeta()
        if meta.diff_preload == 0:
            meta.diff_preload = self.diff_preload
        return StreamTrace(meta=meta, samples=self.samples)
