"""Per-cycle textual pipeline traces (the "Modelsim view").

The paper validates SafeDM by visually inspecting pipeline contents in
Modelsim; :class:`PipelineTracer` renders the same view as text — one
line per cycle per core showing every stage's occupancy — so specific
cycles (e.g. a reported lack of diversity) can be audited by eye.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..cpu.pipeline import STAGE_NAMES


@dataclass
class TraceLine:
    cycle: int
    core: int
    hold: bool
    stages: tuple

    def render(self) -> str:
        parts = []
        for name, group in zip(STAGE_NAMES, self.stages):
            if group is None:
                parts.append("%s:%-21s" % (name, "-"))
            else:
                words = "/".join("%08x" % w for w in group)
                parts.append("%s:%-21s" % (name, words))
        flag = "H" if self.hold else " "
        return "c%-7d core%d %s %s" % (self.cycle, self.core, flag,
                                       " ".join(parts))


class PipelineTracer:
    """Captures stage occupancy of one or more cores each cycle."""

    def __init__(self, cores, window: Optional[int] = None):
        self.cores = list(cores)
        self.window = window
        self.lines: List[TraceLine] = []

    def sample(self, cycle: int):
        """Record all cores' stage contents for ``cycle``."""
        for index, core in enumerate(self.cores):
            self.lines.append(TraceLine(cycle=cycle, core=index,
                                        hold=core.hold,
                                        stages=tuple(core.stage_words())))
        if self.window is not None:
            excess = len(self.lines) - self.window * len(self.cores)
            if excess > 0:
                del self.lines[:excess]

    def render(self, last: Optional[int] = None) -> str:
        lines = self.lines
        if last is not None:
            lines = lines[-last * len(self.cores):]
        return "\n".join(line.render() for line in lines)

    def around(self, cycle: int, radius: int = 3) -> str:
        """Render the trace lines within ``radius`` cycles of ``cycle``."""
        selected = [line for line in self.lines
                    if abs(line.cycle - cycle) <= radius]
        return "\n".join(line.render() for line in selected)


def trace_run(soc, max_cycles: int = 5_000,
              window: Optional[int] = None) -> PipelineTracer:
    """Run ``soc`` while tracing the monitored cores' pipelines."""
    tracer = PipelineTracer([soc.cores[i] for i in soc.monitored],
                            window=window)
    start = soc.cycle
    while soc.cycle - start < max_cycles:
        if all(soc.cores[i].finished for i in soc.monitored):
            break
        soc.step()
        tracer.sample(soc.cycle - 1)
    return tracer
