"""Minimal VCD (Value Change Dump) writer.

The paper validates SafeDM by inspecting pipelines cycle-by-cycle in
Modelsim; this writer produces standard VCD files of the simulator's
signals so runs can be inspected in GTKWave or any waveform viewer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Short VCD identifier for signal ``index``."""
    out = ""
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        out = _ID_CHARS[rem] + out
    return out


@dataclass
class _Signal:
    name: str
    width: int
    ident: str
    last_value: Optional[int] = None


class VcdWriter:
    """Collects value changes and renders a VCD document."""

    def __init__(self, module: str = "safedm",
                 timescale: str = "1 ns"):
        self.module = module
        self.timescale = timescale
        self._signals: Dict[str, _Signal] = {}
        self._changes: List[tuple] = []  # (time, ident, width, value)

    def add_signal(self, name: str, width: int = 1):
        """Declare a wire before recording changes on it."""
        if name in self._signals:
            raise ValueError("duplicate signal %r" % name)
        if width < 1:
            raise ValueError("signal width must be >= 1")
        self._signals[name] = _Signal(name=name, width=width,
                                      ident=_identifier(
                                          len(self._signals)))

    def change(self, time: int, name: str, value: int):
        """Record ``name`` taking ``value`` at ``time`` (deduplicated)."""
        signal = self._signals.get(name)
        if signal is None:
            raise KeyError("unknown signal %r" % name)
        value &= (1 << signal.width) - 1
        if signal.last_value == value:
            return
        signal.last_value = value
        self._changes.append((time, signal.ident, signal.width, value))

    def sample_all(self, time: int, values: Dict[str, int]):
        """Record a dict of signal values at one timestamp."""
        for name, value in values.items():
            self.change(time, name, value)

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        lines = [
            "$date SafeDM reproduction run $end",
            "$timescale %s $end" % self.timescale,
            "$scope module %s $end" % self.module,
        ]
        for signal in self._signals.values():
            lines.append("$var wire %d %s %s $end"
                         % (signal.width, signal.ident, signal.name))
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        current_time = None
        for time, ident, width, value in sorted(self._changes,
                                                key=lambda c: c[0]):
            if time != current_time:
                lines.append("#%d" % time)
                current_time = time
            if width == 1:
                lines.append("%d%s" % (value & 1, ident))
            else:
                lines.append("b%s %s" % (bin(value)[2:], ident))
        return "\n".join(lines) + "\n"

    def save(self, path: str):
        with open(path, "w") as handle:
            handle.write(self.render())


def monitor_vcd(soc, max_cycles: int = 100_000) -> VcdWriter:
    """Run ``soc`` to completion while dumping SafeDM signals to a VCD.

    Captured wires: per-core hold, lack-of-diversity flags, the
    staggering counter and per-core commit counts.
    """
    vcd = VcdWriter()
    vcd.add_signal("no_diversity", 1)
    vcd.add_signal("no_data_diversity", 1)
    vcd.add_signal("no_instruction_diversity", 1)
    vcd.add_signal("zero_staggering", 1)
    vcd.add_signal("staggering", 32)
    vcd.add_signal("core0_hold", 1)
    vcd.add_signal("core1_hold", 1)
    vcd.add_signal("core0_commits", 2)
    vcd.add_signal("core1_commits", 2)
    vcd.add_signal("irq", 1)
    start = soc.cycle
    while soc.cycle - start < max_cycles:
        if all(soc.cores[i].finished for i in soc.monitored):
            break
        soc.step()
        report = soc.safedm.last_report
        if report is None:
            continue
        core0 = soc.cores[soc.monitored[0]]
        core1 = soc.cores[soc.monitored[1]]
        vcd.sample_all(soc.cycle - 1, {
            "no_diversity": 0 if report.diversity else 1,
            "no_data_diversity": 0 if report.data_diversity else 1,
            "no_instruction_diversity":
                0 if report.instruction_diversity else 1,
            "zero_staggering": 1 if report.zero_staggering else 0,
            "staggering": report.staggering & 0xFFFFFFFF,
            "core0_hold": 1 if core0.hold else 0,
            "core1_hold": 1 if core1.hold else 0,
            "core0_commits": core0.commits_this_cycle,
            "core1_commits": core1.commits_this_cycle,
            "irq": 1 if soc.safedm.irq.pending else 0,
        })
    soc.safedm.finish()
    return vcd
