"""Tracing: VCD waveforms, pipeline text traces, signature captures,
and the raw signature-stream capture format behind ``repro.replay``."""

from .pipeline_trace import PipelineTracer, TraceLine, trace_run
from .signature_trace import (
    SignatureSample,
    SignatureTrace,
    capture_signature_trace,
)
from .stream_trace import (
    TRACE_SCHEMA_VERSION,
    CoreSample,
    CycleSample,
    StreamRecorder,
    StreamTrace,
    TraceMeta,
)
from .vcd import VcdWriter, monitor_vcd

__all__ = [
    "CoreSample",
    "CycleSample",
    "PipelineTracer",
    "SignatureSample",
    "SignatureTrace",
    "StreamRecorder",
    "StreamTrace",
    "TRACE_SCHEMA_VERSION",
    "TraceLine",
    "TraceMeta",
    "VcdWriter",
    "capture_signature_trace",
    "monitor_vcd",
    "trace_run",
]
