"""Tracing: VCD waveforms, pipeline text traces, signature captures."""

from .pipeline_trace import PipelineTracer, TraceLine, trace_run
from .signature_trace import (
    SignatureSample,
    SignatureTrace,
    capture_signature_trace,
)
from .vcd import VcdWriter, monitor_vcd

__all__ = [
    "PipelineTracer",
    "SignatureSample",
    "SignatureTrace",
    "TraceLine",
    "VcdWriter",
    "capture_signature_trace",
    "monitor_vcd",
    "trace_run",
]
