"""Shared-reference plumbing for the snapshot/restore protocol.

Components serialize themselves with ``state_dict()`` and restore with
``load_state_dict()``; both are plain trees of JSON-friendly values
except for one wrinkle: an in-flight :class:`~repro.mem.bus.BusRequest`
is *shared by reference* between the bus queue and whichever unit issued
it (a core's fetch stage, a pipeline group's memory stage, or a store
buffer).  Serializing each holder's copy independently would restore
distinct objects and silently break the completion handshake — the bus
mutates the request in place and the issuer polls ``done()`` on the
very same object.

:class:`SnapshotContext` preserves identity: every holder interns its
request and stores only the table index; the root (MPSoC) emits the
table once.  :class:`RestoreContext` rebuilds one instance per table
entry, so all holders resolve back to the same object.

The small ``stats_state`` / ``load_stats_state`` helpers serialize the
flat accumulator dataclasses (``CoreStats``, ``BusStats``, ...) that
every component nests under its ``"stats"`` key (see
:data:`repro.checkpoint.codec.ACCUMULATOR_KEY`).

This module deliberately imports nothing from the simulator packages at
module level so any layer (mem, cpu, core, soc) can import it without
cycles.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List


def stats_state(stats) -> dict:
    """Serialize a flat accumulator dataclass to a plain dict."""
    return {field.name: getattr(stats, field.name)
            for field in dataclasses.fields(stats)}


def load_stats_state(stats, state) -> None:
    """Restore a flat accumulator dataclass field-for-field."""
    for field in dataclasses.fields(stats):
        setattr(stats, field.name, state[field.name])


class SnapshotContext:
    """Interns shared :class:`BusRequest` instances for one snapshot.

    Holders call :meth:`intern` and serialize the returned index; the
    snapshot root serializes :meth:`request_table` once.  Keeping the
    interned objects referenced also pins their ``id()`` for the
    context's lifetime.
    """

    def __init__(self):
        self._indices: Dict[int, int] = {}
        self._requests: List[object] = []

    def intern(self, request) -> int:
        """Return the table index for *request*, adding it if new."""
        index = self._indices.get(id(request))
        if index is None:
            index = len(self._requests)
            self._indices[id(request)] = index
            self._requests.append(request)
        return index

    def request_table(self) -> List[dict]:
        """Serialized state of every interned request, in index order."""
        return [dataclasses.asdict(request) for request in self._requests]


class RestoreContext:
    """Rebuilds the shared request instances for one restore.

    Constructed from the serialized table; holders call
    :meth:`resolve` with their stored index and all receive the same
    rebuilt instance.
    """

    def __init__(self, request_table):
        from ..mem.bus import BusRequest

        self._requests = []
        for entry in request_table:
            l2_hit = entry["l2_hit"]
            self._requests.append(BusRequest(
                master=int(entry["master"]),
                address=int(entry["address"]),
                is_store=bool(entry["is_store"]),
                is_ifetch=bool(entry["is_ifetch"]),
                issue_cycle=int(entry["issue_cycle"]),
                granted=bool(entry["granted"]),
                complete_cycle=int(entry["complete_cycle"]),
                l2_hit=None if l2_hit is None else bool(l2_hit),
            ))

    def resolve(self, index: int):
        """The shared request instance for a serialized table index."""
        return self._requests[index]
