"""Uniform snapshot/restore protocol for the simulator stack.

Every stateful component implements ``state_dict()`` (a JSON-friendly
tree with accumulators under ``"stats"`` keys) and
``load_state_dict()``; :class:`MPSoC <repro.soc.mpsoc.MPSoC>` composes
them recursively.  This package holds the pieces the components share:
the binary :class:`Snapshot` codec and the request-identity contexts.
"""

from .codec import (
    ACCUMULATOR_KEY,
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointMeta,
    Snapshot,
    dynamic_view,
    from_jsonable,
    jsonable,
)
from .protocol import (
    RestoreContext,
    SnapshotContext,
    load_stats_state,
    stats_state,
)

__all__ = [
    "ACCUMULATOR_KEY",
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointMeta",
    "RestoreContext",
    "Snapshot",
    "SnapshotContext",
    "dynamic_view",
    "from_jsonable",
    "jsonable",
    "load_stats_state",
    "stats_state",
]
