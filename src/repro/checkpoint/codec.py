"""Binary snapshot codec (the serialization half of the protocol).

A :class:`Snapshot` wraps one component tree's ``state_dict()`` output
plus a small :class:`CheckpointMeta` header.  The wire format mirrors
:mod:`repro.trace.stream_trace`: magic, LEB128 schema version, JSON
meta header, zlib-compressed canonical-JSON body.  Decoding rejects
unknown magic/versions with :class:`ValueError`, so stale cache
entries evict instead of deserializing garbage.

Canonical JSON makes snapshots *content-addressable*: two state dicts
describing the same machine state always encode to the same body
bytes (sorted keys, tuples flattened to lists, ``bytes`` tagged as
base64), so :meth:`Snapshot.digest` is a stable identity.
``load_state_dict`` implementations therefore accept both native
Python state (tuples, int dict keys, raw bytes) and its JSON image
(lists, string keys, tagged bytes) — the codec round trip is lossless
up to that normalization.

:func:`dynamic_view` strips the pure-accumulator subtrees (every
``"stats"`` key, by protocol convention) from a state dict; the
resulting :meth:`Snapshot.dynamic_digest` identifies the *forward-
evolving* machine state only.  Two runs whose dynamic views coincide
are bisimulation-equivalent from that cycle on even when their
cumulative counters differ — the property the fork-from-checkpoint
fault engine's convergence early-exit rests on.
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import json
import zlib
from dataclasses import dataclass

#: Bump when the snapshot layout changes; decoding rejects other
#: versions (and the stores evict such entries on read).
CHECKPOINT_SCHEMA_VERSION = 1

_MAGIC = b"SDCK"

_BYTES_TAG = "__bytes__"

#: State-dict keys holding pure accumulators (counters that never feed
#: back into simulated behaviour).  Every component keeps them under
#: this key so :func:`dynamic_view` can prune uniformly.
ACCUMULATOR_KEY = "stats"


def jsonable(obj):
    """Reduce a state dict to a canonical JSON-serializable form.

    Tuples become lists, dict keys become strings, ``bytes`` become
    ``{"__bytes__": <base64>}`` tags.  Only the types state dicts are
    allowed to contain are accepted.
    """
    if isinstance(obj, dict):
        return {str(key): jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [jsonable(item) for item in obj]
    if isinstance(obj, (bytes, bytearray)):
        return {_BYTES_TAG: base64.b64encode(bytes(obj)).decode("ascii")}
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise TypeError("cannot serialize %r in a snapshot" % (obj,))


def from_jsonable(obj):
    """Reverse the ``bytes`` tagging of :func:`jsonable`.

    Containers stay in JSON shape (lists, string keys); loaders
    normalize those themselves.
    """
    if isinstance(obj, dict):
        if len(obj) == 1 and _BYTES_TAG in obj:
            return base64.b64decode(obj[_BYTES_TAG])
        return {key: from_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [from_jsonable(item) for item in obj]
    return obj


def dynamic_view(obj):
    """Deep copy of a state dict with accumulator subtrees removed.

    Drops every dict entry keyed :data:`ACCUMULATOR_KEY`; what remains
    is exactly the state that determines future evolution.
    """
    if isinstance(obj, dict):
        return {key: dynamic_view(value) for key, value in obj.items()
                if key != ACCUMULATOR_KEY}
    if isinstance(obj, (list, tuple)):
        return [dynamic_view(item) for item in obj]
    return obj


def _canonical_bytes(state) -> bytes:
    return json.dumps(jsonable(state), sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _write_varint(out: bytearray, value: int):
    if value < 0:
        raise ValueError("varint values must be non-negative: %d" % value)
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int):
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise ValueError("truncated snapshot varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


@dataclass
class CheckpointMeta:
    """Context a snapshot cannot recompute from its state alone."""

    benchmark: str = "program"
    #: SoC cycle the snapshot was taken at.
    cycle: int = 0
    #: Checkpoint cadence of the run that produced it (0 = one-off).
    checkpoint_every: int = 0
    #: Simulation cache key the snapshot is content-addressed under
    #: ("" when taken outside the cache machinery).
    sim_key: str = ""


class Snapshot:
    """One serializable machine state: ``state_dict()`` plus meta."""

    __slots__ = ("state", "meta")

    def __init__(self, state, meta: CheckpointMeta = None):
        self.state = state
        self.meta = meta if meta is not None else CheckpointMeta()

    # -- identity ---------------------------------------------------------

    def digest(self) -> str:
        """Content address: SHA-256 of the canonical state body."""
        return hashlib.sha256(_canonical_bytes(self.state)).hexdigest()

    def dynamic_digest(self) -> str:
        """Digest of the accumulator-free :func:`dynamic_view`."""
        return hashlib.sha256(
            _canonical_bytes(dynamic_view(self.state))).hexdigest()

    # -- codec ------------------------------------------------------------

    def encode(self) -> bytes:
        """Serialize to the binary wire format."""
        out = bytearray(_MAGIC)
        _write_varint(out, CHECKPOINT_SCHEMA_VERSION)
        meta_blob = json.dumps(dataclasses.asdict(self.meta),
                               sort_keys=True).encode("utf-8")
        _write_varint(out, len(meta_blob))
        out += meta_blob
        body = zlib.compress(_canonical_bytes(self.state), 6)
        _write_varint(out, len(body))
        out += body
        return bytes(out)

    @classmethod
    def decode(cls, blob: bytes) -> "Snapshot":
        """Parse the wire format; raises :class:`ValueError` on garbage."""
        if blob[:len(_MAGIC)] != _MAGIC:
            raise ValueError("not a snapshot (bad magic)")
        version, pos = _read_varint(blob, len(_MAGIC))
        if version != CHECKPOINT_SCHEMA_VERSION:
            raise ValueError("unsupported snapshot schema %d" % version)
        meta_len, pos = _read_varint(blob, pos)
        if pos + meta_len > len(blob):
            raise ValueError("truncated snapshot header")
        meta = CheckpointMeta(**json.loads(blob[pos:pos + meta_len]))
        pos += meta_len
        body_len, pos = _read_varint(blob, pos)
        if pos + body_len > len(blob):
            raise ValueError("truncated snapshot body")
        try:
            body = zlib.decompress(blob[pos:pos + body_len])
        except zlib.error as exc:
            raise ValueError("corrupt snapshot body: %s" % exc)
        return cls(from_jsonable(json.loads(body)), meta)

    # -- files ------------------------------------------------------------

    def save(self, path):
        with open(path, "wb") as handle:
            handle.write(self.encode())

    @classmethod
    def load(cls, path) -> "Snapshot":
        with open(path, "rb") as handle:
            return cls.decode(handle.read())

    def byte_size(self) -> int:
        """Size of the encoded snapshot in bytes."""
        return len(self.encode())
