"""Assembled program image."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Optional


@dataclass(frozen=True)
class DebugInfo:
    """Optional source-level metadata attached by the assembler.

    ``line_map`` maps instruction addresses to the 1-based source line
    they were assembled from.  ``pseudo_interiors`` holds addresses of
    the second and later words of a multi-word pseudo-instruction
    expansion (``li``/``la``): jumping into the middle of such a
    sequence executes a half-built constant.  ``data_addresses`` holds
    the word-aligned addresses covered by data directives.
    """

    line_map: Dict[int, int] = field(default_factory=dict)
    pseudo_interiors: FrozenSet[int] = frozenset()
    data_addresses: FrozenSet[int] = frozenset()


@dataclass
class Program:
    """A relocated, fully-resolved program image.

    ``image`` maps base addresses to byte blobs (normally a single blob
    at ``base``).  ``symbols`` maps label names to absolute addresses.
    ``debug`` carries assembler-produced :class:`DebugInfo` when the
    image came from assembly text (``None`` for raw images).
    """

    base: int
    image: Dict[int, bytes]
    symbols: Dict[str, int] = field(default_factory=dict)
    entry: int = 0
    debug: Optional[DebugInfo] = None
    #: Analysis-attached per-program-point annotations, keyed
    #: ``(pc, key)`` — e.g. the lint layer's interval states and
    #: masking proofs.  Never consulted by the execution engines.
    point_metadata_map: Dict[tuple, Any] = field(default_factory=dict)

    # -- per-point metadata ------------------------------------------------

    def set_point_metadata(self, pc: int, key: str, value: Any) -> None:
        """Attach analysis metadata ``value`` under ``key`` at ``pc``."""
        self.point_metadata_map[(pc, key)] = value

    def point_metadata(self, pc: int, key: str,
                       default: Any = None) -> Any:
        """Metadata previously attached at ``(pc, key)``."""
        return self.point_metadata_map.get((pc, key), default)

    def points_with(self, key: str) -> Dict[int, Any]:
        """All ``pc -> value`` annotations stored under ``key``."""
        return {pc: value
                for (pc, k), value in sorted(self.point_metadata_map.items())
                if k == key}

    @property
    def size(self) -> int:
        """Total number of image bytes."""
        return sum(len(blob) for blob in self.image.values())

    def words(self):
        """Iterate over ``(address, word)`` pairs of 32-bit image words."""
        for start, blob in sorted(self.image.items()):
            for offset in range(0, len(blob) - 3, 4):
                word = int.from_bytes(blob[offset:offset + 4], "little")
                yield start + offset, word

    def symbol(self, name: str) -> int:
        """Absolute address of label ``name``."""
        return self.symbols[name]

    def end(self) -> int:
        """One past the highest image address."""
        return max(start + len(blob) for start, blob in self.image.items())
