"""Assembled program image."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class Program:
    """A relocated, fully-resolved program image.

    ``image`` maps base addresses to byte blobs (normally a single blob
    at ``base``).  ``symbols`` maps label names to absolute addresses.
    """

    base: int
    image: Dict[int, bytes]
    symbols: Dict[str, int] = field(default_factory=dict)
    entry: int = 0

    @property
    def size(self) -> int:
        """Total number of image bytes."""
        return sum(len(blob) for blob in self.image.values())

    def words(self):
        """Iterate over ``(address, word)`` pairs of 32-bit image words."""
        for start, blob in sorted(self.image.items()):
            for offset in range(0, len(blob) - 3, 4):
                word = int.from_bytes(blob[offset:offset + 4], "little")
                yield start + offset, word

    def symbol(self, name: str) -> int:
        """Absolute address of label ``name``."""
        return self.symbols[name]

    def end(self) -> int:
        """One past the highest image address."""
        return max(start + len(blob) for start, blob in self.image.items())
