"""Decoded instruction representation.

An :class:`Instruction` is the unit that flows through the pipeline model
and through SafeDM's instruction-signature FIFOs.  It records the spec,
the operand register indices, the immediate, plus the raw 32-bit word the
instruction was encoded as (SafeDM hashes the *encoding*, so the raw word
must survive decoding).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .opcodes import (
    FMT_B,
    FMT_I,
    FMT_I_SHIFT,
    FMT_I_SHIFT_W,
    FMT_J,
    FMT_R,
    FMT_S,
    FMT_SYS,
    FMT_U,
    InstructionSpec,
)
from .registers import register_name


@dataclass(frozen=True)
class Instruction:
    """One decoded RV64 instruction.

    ``rd``/``rs1``/``rs2`` are register indices (``None`` when the format
    has no such operand).  ``imm`` is the sign-extended immediate.
    """

    spec: InstructionSpec
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: int = 0
    word: int = 0

    def __post_init__(self):
        # Decoded instructions are shared via the decode cache and
        # queried for operands every cycle they sit in a pipeline, so
        # the derived views are precomputed once per decode.  Cached
        # outside the field set: equality/repr stay operand-defined.
        srcs = []
        if self.rs1 is not None:
            srcs.append(self.rs1)
        if self.rs2 is not None:
            srcs.append(self.rs2)
        object.__setattr__(self, "_sources", tuple(srcs))
        object.__setattr__(
            self, "_destination",
            None if self.rd is None or self.rd == 0 else self.rd)
        # Plain attributes, not properties: both are read on nearly
        # every pipeline-stage check of every cycle.
        object.__setattr__(self, "mnemonic", self.spec.mnemonic)
        object.__setattr__(self, "iclass", self.spec.iclass)

    def sources(self) -> Tuple[int, ...]:
        """Register indices read by this instruction (x0 included)."""
        return self._sources

    def destination(self) -> Optional[int]:
        """Register index written by this instruction, or ``None``.

        Writes to x0 are architectural no-ops and reported as ``None``.
        """
        return self._destination

    @property
    def is_nop(self) -> bool:
        """True for the canonical ``nop`` (``addi x0, x0, 0``)."""
        return (self.spec.mnemonic == "addi" and self.rd == 0
                and self.rs1 == 0 and self.imm == 0)

    def text(self) -> str:
        """Assembly text rendering (used by the disassembler and traces)."""
        spec = self.spec
        fmt = spec.fmt
        name = spec.mnemonic
        if fmt == FMT_R:
            return "%s %s, %s, %s" % (name, register_name(self.rd),
                                      register_name(self.rs1),
                                      register_name(self.rs2))
        if fmt in (FMT_I, FMT_I_SHIFT, FMT_I_SHIFT_W):
            if spec.is_load or spec.mnemonic == "jalr":
                return "%s %s, %d(%s)" % (name, register_name(self.rd),
                                          self.imm, register_name(self.rs1))
            return "%s %s, %s, %d" % (name, register_name(self.rd),
                                      register_name(self.rs1), self.imm)
        if fmt == FMT_S:
            return "%s %s, %d(%s)" % (name, register_name(self.rs2),
                                      self.imm, register_name(self.rs1))
        if fmt == FMT_B:
            return "%s %s, %s, %d" % (name, register_name(self.rs1),
                                      register_name(self.rs2), self.imm)
        if fmt == FMT_U:
            return "%s %s, 0x%x" % (name, register_name(self.rd),
                                    (self.imm >> 12) & 0xFFFFF)
        if fmt == FMT_J:
            return "%s %s, %d" % (name, register_name(self.rd), self.imm)
        if fmt == FMT_SYS:
            return name
        raise AssertionError("unhandled format %r" % fmt)

    def __str__(self) -> str:
        return self.text()


@dataclass(slots=True)
class FetchedInstruction:
    """An :class:`Instruction` bound to a fetch address.

    This is what actually travels through pipeline stages: the same
    static instruction can be in flight several times (loop iterations),
    each occurrence carrying its own ``pc`` and sequence number.
    """

    instr: Instruction
    pc: int
    seq: int = 0
    #: Filled at execute time for loads/stores (effective address).
    effective_address: Optional[int] = field(default=None, compare=False)
    #: Fetch-time branch prediction (conditional branches only).
    predicted_taken: bool = field(default=False, compare=False)
    #: Value written to ``rd`` (filled at execute/memory time).
    result: Optional[int] = field(default=None, compare=False)
    #: Store data captured at issue time.
    store_value: Optional[int] = field(default=None, compare=False)

    @property
    def word(self) -> int:
        return self.instr.word

    def __str__(self) -> str:
        return "%#010x: %s" % (self.pc, self.instr.text())
