"""RV64IM opcode tables.

Every instruction understood by the reproduction is described by an
:class:`InstructionSpec` entry here.  The encoder, decoder, assembler and
pipeline model all key off this single table, so adding an instruction is
a one-line change.
"""

from __future__ import annotations

from dataclasses import dataclass

# Major opcode values (bits [6:0] of the encoding).
OP_LUI = 0b0110111
OP_AUIPC = 0b0010111
OP_JAL = 0b1101111
OP_JALR = 0b1100111
OP_BRANCH = 0b1100011
OP_LOAD = 0b0000011
OP_STORE = 0b0100011
OP_IMM = 0b0010011
OP_IMM32 = 0b0011011
OP_REG = 0b0110011
OP_REG32 = 0b0111011
OP_MISC_MEM = 0b0001111
OP_SYSTEM = 0b1110011

# Instruction formats.
FMT_R = "R"
FMT_I = "I"
FMT_I_SHIFT = "IS"      # I-format with a 6-bit shamt (RV64)
FMT_I_SHIFT_W = "ISW"   # I-format with a 5-bit shamt (word shifts)
FMT_S = "S"
FMT_B = "B"
FMT_U = "U"
FMT_J = "J"
FMT_SYS = "SYS"         # ecall/ebreak/fence: fixed encodings

# Functional classes consumed by the pipeline model.
CLASS_ALU = "alu"
CLASS_MUL = "mul"
CLASS_DIV = "div"
CLASS_LOAD = "load"
CLASS_STORE = "store"
CLASS_BRANCH = "branch"
CLASS_JUMP = "jump"
CLASS_SYSTEM = "system"


@dataclass(frozen=True)
class InstructionSpec:
    """Static description of one mnemonic."""

    mnemonic: str
    fmt: str
    opcode: int
    funct3: int = 0
    funct7: int = 0
    iclass: str = CLASS_ALU
    #: Memory access size in bytes for loads/stores, else 0.
    size: int = 0
    #: Loads: sign-extend the loaded value.
    signed: bool = True

    @property
    def is_load(self) -> bool:
        return self.iclass == CLASS_LOAD

    @property
    def is_store(self) -> bool:
        return self.iclass == CLASS_STORE

    @property
    def is_memory(self) -> bool:
        return self.iclass in (CLASS_LOAD, CLASS_STORE)

    @property
    def is_control(self) -> bool:
        return self.iclass in (CLASS_BRANCH, CLASS_JUMP)


def _specs():
    s = InstructionSpec
    table = [
        # --- upper immediates and jumps -------------------------------
        s("lui", FMT_U, OP_LUI),
        s("auipc", FMT_U, OP_AUIPC),
        s("jal", FMT_J, OP_JAL, iclass=CLASS_JUMP),
        s("jalr", FMT_I, OP_JALR, 0b000, iclass=CLASS_JUMP),
        # --- branches --------------------------------------------------
        s("beq", FMT_B, OP_BRANCH, 0b000, iclass=CLASS_BRANCH),
        s("bne", FMT_B, OP_BRANCH, 0b001, iclass=CLASS_BRANCH),
        s("blt", FMT_B, OP_BRANCH, 0b100, iclass=CLASS_BRANCH),
        s("bge", FMT_B, OP_BRANCH, 0b101, iclass=CLASS_BRANCH),
        s("bltu", FMT_B, OP_BRANCH, 0b110, iclass=CLASS_BRANCH),
        s("bgeu", FMT_B, OP_BRANCH, 0b111, iclass=CLASS_BRANCH),
        # --- loads ------------------------------------------------------
        s("lb", FMT_I, OP_LOAD, 0b000, iclass=CLASS_LOAD, size=1),
        s("lh", FMT_I, OP_LOAD, 0b001, iclass=CLASS_LOAD, size=2),
        s("lw", FMT_I, OP_LOAD, 0b010, iclass=CLASS_LOAD, size=4),
        s("ld", FMT_I, OP_LOAD, 0b011, iclass=CLASS_LOAD, size=8),
        s("lbu", FMT_I, OP_LOAD, 0b100, iclass=CLASS_LOAD, size=1,
          signed=False),
        s("lhu", FMT_I, OP_LOAD, 0b101, iclass=CLASS_LOAD, size=2,
          signed=False),
        s("lwu", FMT_I, OP_LOAD, 0b110, iclass=CLASS_LOAD, size=4,
          signed=False),
        # --- stores -----------------------------------------------------
        s("sb", FMT_S, OP_STORE, 0b000, iclass=CLASS_STORE, size=1),
        s("sh", FMT_S, OP_STORE, 0b001, iclass=CLASS_STORE, size=2),
        s("sw", FMT_S, OP_STORE, 0b010, iclass=CLASS_STORE, size=4),
        s("sd", FMT_S, OP_STORE, 0b011, iclass=CLASS_STORE, size=8),
        # --- immediate ALU ----------------------------------------------
        s("addi", FMT_I, OP_IMM, 0b000),
        s("slti", FMT_I, OP_IMM, 0b010),
        s("sltiu", FMT_I, OP_IMM, 0b011),
        s("xori", FMT_I, OP_IMM, 0b100),
        s("ori", FMT_I, OP_IMM, 0b110),
        s("andi", FMT_I, OP_IMM, 0b111),
        s("slli", FMT_I_SHIFT, OP_IMM, 0b001, 0b0000000),
        s("srli", FMT_I_SHIFT, OP_IMM, 0b101, 0b0000000),
        s("srai", FMT_I_SHIFT, OP_IMM, 0b101, 0b0100000),
        # --- immediate ALU, 32-bit results ------------------------------
        s("addiw", FMT_I, OP_IMM32, 0b000),
        s("slliw", FMT_I_SHIFT_W, OP_IMM32, 0b001, 0b0000000),
        s("srliw", FMT_I_SHIFT_W, OP_IMM32, 0b101, 0b0000000),
        s("sraiw", FMT_I_SHIFT_W, OP_IMM32, 0b101, 0b0100000),
        # --- register ALU ------------------------------------------------
        s("add", FMT_R, OP_REG, 0b000, 0b0000000),
        s("sub", FMT_R, OP_REG, 0b000, 0b0100000),
        s("sll", FMT_R, OP_REG, 0b001, 0b0000000),
        s("slt", FMT_R, OP_REG, 0b010, 0b0000000),
        s("sltu", FMT_R, OP_REG, 0b011, 0b0000000),
        s("xor", FMT_R, OP_REG, 0b100, 0b0000000),
        s("srl", FMT_R, OP_REG, 0b101, 0b0000000),
        s("sra", FMT_R, OP_REG, 0b101, 0b0100000),
        s("or", FMT_R, OP_REG, 0b110, 0b0000000),
        s("and", FMT_R, OP_REG, 0b111, 0b0000000),
        # --- register ALU, 32-bit results --------------------------------
        s("addw", FMT_R, OP_REG32, 0b000, 0b0000000),
        s("subw", FMT_R, OP_REG32, 0b000, 0b0100000),
        s("sllw", FMT_R, OP_REG32, 0b001, 0b0000000),
        s("srlw", FMT_R, OP_REG32, 0b101, 0b0000000),
        s("sraw", FMT_R, OP_REG32, 0b101, 0b0100000),
        # --- M extension --------------------------------------------------
        s("mul", FMT_R, OP_REG, 0b000, 0b0000001, iclass=CLASS_MUL),
        s("mulh", FMT_R, OP_REG, 0b001, 0b0000001, iclass=CLASS_MUL),
        s("mulhsu", FMT_R, OP_REG, 0b010, 0b0000001, iclass=CLASS_MUL),
        s("mulhu", FMT_R, OP_REG, 0b011, 0b0000001, iclass=CLASS_MUL),
        s("div", FMT_R, OP_REG, 0b100, 0b0000001, iclass=CLASS_DIV),
        s("divu", FMT_R, OP_REG, 0b101, 0b0000001, iclass=CLASS_DIV),
        s("rem", FMT_R, OP_REG, 0b110, 0b0000001, iclass=CLASS_DIV),
        s("remu", FMT_R, OP_REG, 0b111, 0b0000001, iclass=CLASS_DIV),
        s("mulw", FMT_R, OP_REG32, 0b000, 0b0000001, iclass=CLASS_MUL),
        s("divw", FMT_R, OP_REG32, 0b100, 0b0000001, iclass=CLASS_DIV),
        s("divuw", FMT_R, OP_REG32, 0b101, 0b0000001, iclass=CLASS_DIV),
        s("remw", FMT_R, OP_REG32, 0b110, 0b0000001, iclass=CLASS_DIV),
        s("remuw", FMT_R, OP_REG32, 0b111, 0b0000001, iclass=CLASS_DIV),
        # --- system -------------------------------------------------------
        s("fence", FMT_SYS, OP_MISC_MEM, 0b000, iclass=CLASS_SYSTEM),
        s("ecall", FMT_SYS, OP_SYSTEM, 0b000, iclass=CLASS_SYSTEM),
        s("ebreak", FMT_SYS, OP_SYSTEM, 0b000, iclass=CLASS_SYSTEM),
    ]
    return {spec.mnemonic: spec for spec in table}


#: Mnemonic -> spec.
SPECS = _specs()

#: Fixed 32-bit encodings for the SYS format.
SYS_ENCODINGS = {
    "fence": 0x0000000F,
    "ecall": 0x00000073,
    "ebreak": 0x00100073,
}

#: Encoding of the canonical NOP (``addi x0, x0, 0``).
NOP_WORD = 0x00000013
