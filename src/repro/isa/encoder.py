"""Instruction encoder: :class:`Instruction` -> 32-bit RV64 word."""

from __future__ import annotations

from .instruction import Instruction
from .opcodes import (
    FMT_B,
    FMT_I,
    FMT_I_SHIFT,
    FMT_I_SHIFT_W,
    FMT_J,
    FMT_R,
    FMT_S,
    FMT_SYS,
    FMT_U,
    SYS_ENCODINGS,
)


class EncodingError(ValueError):
    """Raised when operands do not fit the instruction format."""


def _check_range(value: int, bits: int, what: str, signed: bool = True):
    if signed:
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        lo, hi = 0, (1 << bits) - 1
    if not lo <= value <= hi:
        raise EncodingError("%s %d does not fit in %d bits" %
                            (what, value, bits))


def _check_reg(idx, what: str) -> int:
    if idx is None or not 0 <= idx < 32:
        raise EncodingError("bad %s register: %r" % (what, idx))
    return idx


def encode(instr: Instruction) -> int:
    """Encode ``instr`` into its 32-bit word."""
    spec = instr.spec
    fmt = spec.fmt
    op = spec.opcode
    f3 = spec.funct3
    f7 = spec.funct7

    if fmt == FMT_R:
        rd = _check_reg(instr.rd, "rd")
        rs1 = _check_reg(instr.rs1, "rs1")
        rs2 = _check_reg(instr.rs2, "rs2")
        return (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) \
            | (rd << 7) | op

    if fmt == FMT_I:
        rd = _check_reg(instr.rd, "rd")
        rs1 = _check_reg(instr.rs1, "rs1")
        _check_range(instr.imm, 12, "immediate")
        imm = instr.imm & 0xFFF
        return (imm << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | op

    if fmt in (FMT_I_SHIFT, FMT_I_SHIFT_W):
        rd = _check_reg(instr.rd, "rd")
        rs1 = _check_reg(instr.rs1, "rs1")
        shamt_bits = 6 if fmt == FMT_I_SHIFT else 5
        _check_range(instr.imm, shamt_bits, "shift amount", signed=False)
        imm = (f7 << 5) | instr.imm
        return (imm << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | op

    if fmt == FMT_S:
        rs1 = _check_reg(instr.rs1, "rs1")
        rs2 = _check_reg(instr.rs2, "rs2")
        _check_range(instr.imm, 12, "store offset")
        imm = instr.imm & 0xFFF
        return ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) \
            | (f3 << 12) | ((imm & 0x1F) << 7) | op

    if fmt == FMT_B:
        rs1 = _check_reg(instr.rs1, "rs1")
        rs2 = _check_reg(instr.rs2, "rs2")
        _check_range(instr.imm, 13, "branch offset")
        if instr.imm & 1:
            raise EncodingError("branch offset must be even: %d" % instr.imm)
        imm = instr.imm & 0x1FFF
        b12 = (imm >> 12) & 1
        b11 = (imm >> 11) & 1
        b10_5 = (imm >> 5) & 0x3F
        b4_1 = (imm >> 1) & 0xF
        return (b12 << 31) | (b10_5 << 25) | (rs2 << 20) | (rs1 << 15) \
            | (f3 << 12) | (b4_1 << 8) | (b11 << 7) | op

    if fmt == FMT_U:
        rd = _check_reg(instr.rd, "rd")
        if instr.imm & 0xFFF:
            raise EncodingError("U-type immediate has low bits set: %#x"
                                % instr.imm)
        _check_range(instr.imm >> 12, 20, "upper immediate")
        return ((instr.imm >> 12) & 0xFFFFF) << 12 | (rd << 7) | op

    if fmt == FMT_J:
        rd = _check_reg(instr.rd, "rd")
        _check_range(instr.imm, 21, "jump offset")
        if instr.imm & 1:
            raise EncodingError("jump offset must be even: %d" % instr.imm)
        imm = instr.imm & 0x1FFFFF
        b20 = (imm >> 20) & 1
        b19_12 = (imm >> 12) & 0xFF
        b11 = (imm >> 11) & 1
        b10_1 = (imm >> 1) & 0x3FF
        return (b20 << 31) | (b10_1 << 21) | (b11 << 20) \
            | (b19_12 << 12) | (rd << 7) | op

    if fmt == FMT_SYS:
        return SYS_ENCODINGS[spec.mnemonic]

    raise AssertionError("unhandled format %r" % fmt)


def with_word(instr: Instruction) -> Instruction:
    """Return a copy of ``instr`` whose ``word`` field holds its encoding."""
    word = encode(instr)
    if instr.word == word:
        return instr
    return Instruction(spec=instr.spec, rd=instr.rd, rs1=instr.rs1,
                       rs2=instr.rs2, imm=instr.imm, word=word)
