"""Instruction decoder: 32-bit word -> :class:`Instruction`.

The decoder is table-driven from :mod:`repro.isa.opcodes` and caches
decoded words, which matters because the pipeline model decodes the same
hot-loop words millions of times.
"""

from __future__ import annotations

from functools import lru_cache

from .instruction import Instruction
from .opcodes import (
    FMT_B,
    FMT_I,
    FMT_I_SHIFT,
    FMT_I_SHIFT_W,
    FMT_J,
    FMT_R,
    FMT_S,
    FMT_SYS,
    FMT_U,
    SPECS,
    SYS_ENCODINGS,
)


class DecodeError(ValueError):
    """Raised for a word that is not a known RV64IM encoding."""


def _build_lookup():
    """(opcode, funct3, funct7) -> spec lookup with per-format keys."""
    by_key = {}
    for spec in SPECS.values():
        if spec.fmt == FMT_R:
            key = (spec.opcode, spec.funct3, spec.funct7)
        elif spec.fmt == FMT_I_SHIFT:
            # RV64 shifts: the shamt spills into funct7 bit 0, so the
            # discriminator is funct7[6:1] (tagged to avoid collisions).
            key = (spec.opcode, spec.funct3, "f6:%d" % (spec.funct7 >> 1))
        elif spec.fmt == FMT_I_SHIFT_W:
            key = (spec.opcode, spec.funct3, spec.funct7)
        elif spec.fmt == FMT_SYS:
            continue  # matched by exact word below
        elif spec.fmt in (FMT_U, FMT_J):
            key = (spec.opcode, None, None)
        else:
            key = (spec.opcode, spec.funct3, None)
        by_key[key] = spec
    return by_key


_LOOKUP = _build_lookup()
_SYS_BY_WORD = {word: SPECS[name] for name, word in SYS_ENCODINGS.items()}


def _sext(value: int, bits: int) -> int:
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


@lru_cache(maxsize=65536)
def decode(word: int) -> Instruction:
    """Decode a 32-bit ``word`` into an :class:`Instruction`.

    Raises :class:`DecodeError` for unknown encodings.
    """
    word &= 0xFFFFFFFF
    if word in _SYS_BY_WORD:
        return Instruction(spec=_SYS_BY_WORD[word], word=word)

    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F

    spec = (_LOOKUP.get((opcode, funct3, funct7))
            or _LOOKUP.get((opcode, funct3, "f6:%d" % (funct7 >> 1)))
            or _LOOKUP.get((opcode, funct3, None))
            or _LOOKUP.get((opcode, None, None)))
    if spec is None:
        raise DecodeError("cannot decode word %#010x" % word)

    fmt = spec.fmt
    if fmt == FMT_R:
        return Instruction(spec, rd=rd, rs1=rs1, rs2=rs2, word=word)
    if fmt == FMT_I:
        imm = _sext(word >> 20, 12)
        return Instruction(spec, rd=rd, rs1=rs1, imm=imm, word=word)
    if fmt == FMT_I_SHIFT:
        shamt = (word >> 20) & 0x3F
        return Instruction(spec, rd=rd, rs1=rs1, imm=shamt, word=word)
    if fmt == FMT_I_SHIFT_W:
        shamt = (word >> 20) & 0x1F
        return Instruction(spec, rd=rd, rs1=rs1, imm=shamt, word=word)
    if fmt == FMT_S:
        imm = _sext(((word >> 25) << 5) | ((word >> 7) & 0x1F), 12)
        return Instruction(spec, rs1=rs1, rs2=rs2, imm=imm, word=word)
    if fmt == FMT_B:
        imm = (((word >> 31) & 1) << 12) | (((word >> 7) & 1) << 11) \
            | (((word >> 25) & 0x3F) << 5) | (((word >> 8) & 0xF) << 1)
        return Instruction(spec, rs1=rs1, rs2=rs2, imm=_sext(imm, 13),
                           word=word)
    if fmt == FMT_U:
        imm = _sext(word & 0xFFFFF000, 32)
        return Instruction(spec, rd=rd, imm=imm, word=word)
    if fmt == FMT_J:
        imm = (((word >> 31) & 1) << 20) | (((word >> 12) & 0xFF) << 12) \
            | (((word >> 20) & 1) << 11) | (((word >> 21) & 0x3FF) << 1)
        return Instruction(spec, rd=rd, imm=_sext(imm, 21), word=word)

    raise DecodeError("cannot decode word %#010x (opcode %#x)"
                      % (word, opcode))
