"""RV64IM instruction-set substrate.

Public API:

* :func:`assemble` / :class:`Assembler` -- text to :class:`Program`
* :func:`decode` / :func:`encode` -- word-level codec
* :class:`Instruction`, :class:`FetchedInstruction` -- decoded forms
* :func:`disassemble_word`, :func:`disassemble_program`
"""

from .assembler import Assembler, AssemblerError, assemble
from .decoder import DecodeError, decode
from .disassembler import disassemble_program, disassemble_word
from .encoder import EncodingError, encode
from .instruction import FetchedInstruction, Instruction
from .opcodes import NOP_WORD, SPECS, InstructionSpec
from .program import DebugInfo, Program
from .registers import (
    NUM_REGISTERS,
    XLEN,
    XMASK,
    RegisterError,
    parse_register,
    register_name,
    to_signed,
    to_unsigned,
)

__all__ = [
    "Assembler",
    "AssemblerError",
    "DebugInfo",
    "DecodeError",
    "EncodingError",
    "FetchedInstruction",
    "Instruction",
    "InstructionSpec",
    "NOP_WORD",
    "NUM_REGISTERS",
    "Program",
    "RegisterError",
    "SPECS",
    "XLEN",
    "XMASK",
    "assemble",
    "decode",
    "disassemble_program",
    "disassemble_word",
    "encode",
    "parse_register",
    "register_name",
    "to_signed",
    "to_unsigned",
]
