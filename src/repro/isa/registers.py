"""RISC-V integer register file names and ABI aliases.

The NOEL-V core modelled by this reproduction is an RV64 design with the
standard 32 integer registers.  This module is the single source of truth
for register naming used by the assembler, the disassembler and the
pipeline model.
"""

from __future__ import annotations

NUM_REGISTERS = 32
XLEN = 64
XMASK = (1 << XLEN) - 1

#: Canonical ABI names indexed by register number.
ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp",
    "t0", "t1", "t2",
    "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "t3", "t4", "t5", "t6",
)

#: Extra accepted aliases.
_ALIASES = {"fp": 8, "s0": 8}


def _build_name_table() -> dict:
    table = {}
    for idx, name in enumerate(ABI_NAMES):
        table[name] = idx
        table["x%d" % idx] = idx
    table.update(_ALIASES)
    return table


#: Mapping of every accepted register spelling to its index.
NAME_TO_INDEX = _build_name_table()


class RegisterError(ValueError):
    """Raised for an unknown register name or an out-of-range index."""


def parse_register(name: str) -> int:
    """Return the register index for ``name`` (ABI or ``xN`` spelling).

    >>> parse_register("a0")
    10
    >>> parse_register("x31")
    31
    """
    key = name.strip().lower()
    if key not in NAME_TO_INDEX:
        raise RegisterError("unknown register name: %r" % name)
    return NAME_TO_INDEX[key]


def register_name(index: int) -> str:
    """Return the canonical ABI name of register ``index``.

    >>> register_name(2)
    'sp'
    """
    if not 0 <= index < NUM_REGISTERS:
        raise RegisterError("register index out of range: %r" % index)
    return ABI_NAMES[index]


def to_signed(value: int, bits: int = XLEN) -> int:
    """Interpret ``value`` (masked to ``bits``) as a two's-complement int."""
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def to_unsigned(value: int, bits: int = XLEN) -> int:
    """Mask ``value`` to an unsigned ``bits``-wide integer."""
    return value & ((1 << bits) - 1)
