"""Two-pass RV64IM assembler.

The workload kernels in :mod:`repro.workloads` are written as assembly
text and assembled by this module into :class:`~repro.isa.program.Program`
images.  Supported, beyond the base mnemonics in
:mod:`repro.isa.opcodes`:

* labels (``name:``) and label operands in branches/jumps/``la``,
* the usual pseudo-instructions (``nop``, ``li``, ``la``, ``mv``, ``j``,
  ``jr``, ``call``, ``ret``, ``not``, ``neg``, ``seqz``, ``snez``,
  ``beqz``, ``bnez``, ``blez``, ``bgez``, ``bltz``, ``bgtz``, ``ble``,
  ``bgt``, ``bleu``, ``bgtu``),
* data directives ``.word``, ``.dword``, ``.byte``, ``.space``,
  ``.align``, and constant definition ``.equ NAME VALUE``,
* ``#`` and ``;`` comments.

Immediates accept decimal, hex (``0x``), binary (``0b``), ``'c'`` char
literals, and names defined by ``.equ``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .encoder import encode
from .instruction import Instruction
from .opcodes import SPECS
from .program import DebugInfo, Program
from .registers import parse_register


class AssemblerError(ValueError):
    """Raised on any syntax or range error, with line information."""

    def __init__(self, message: str, lineno: Optional[int] = None):
        if lineno is not None:
            message = "line %d: %s" % (lineno, message)
        super().__init__(message)
        self.lineno = lineno


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_MEM_OPERAND_RE = re.compile(r"^(-?[\w'+\-*() ]+)\(([\w]+)\)$")


@dataclass
class _Item:
    """One assembled item: either an encoded word or a pending fixup."""

    address: int
    lineno: int
    # For instructions:
    mnemonic: Optional[str] = None
    operands: Optional[List[str]] = None
    # For data:
    data: Optional[bytes] = None
    #: Second or later word of a multi-word pseudo expansion (li/la).
    pseudo_interior: bool = False


class Assembler:
    """Two-pass assembler producing :class:`Program` images."""

    def __init__(self, base: int = 0x0000_0000):
        self.base = base

    # -- public API -----------------------------------------------------

    def assemble(self, source: str, entry_label: str = "_start") -> Program:
        """Assemble ``source`` and return a :class:`Program`.

        The program's entry point is the address of ``entry_label`` if it
        is defined, otherwise the image base.
        """
        self._equs = {}
        items, symbols = self._first_pass(source)
        image = self._second_pass(items, symbols)
        entry = symbols.get(entry_label, self.base)
        return Program(base=self.base, image=image, symbols=dict(symbols),
                       entry=entry, debug=self._debug_info(items))

    @staticmethod
    def _debug_info(items: List[_Item]) -> DebugInfo:
        line_map = {}
        interiors = set()
        data = set()
        for item in items:
            if item.data is not None:
                data.update(range(item.address,
                                  item.address + len(item.data), 4))
                continue
            line_map[item.address] = item.lineno
            if item.pseudo_interior:
                interiors.add(item.address)
        return DebugInfo(line_map=line_map,
                         pseudo_interiors=frozenset(interiors),
                         data_addresses=frozenset(data))

    # -- pass 1: parse, expand pseudo-instructions, place labels ---------

    def _first_pass(self, source: str):
        items: List[_Item] = []
        symbols: Dict[str, int] = {}
        label_lines: Dict[str, int] = {}
        equs: Dict[str, int] = getattr(self, "_equs", {})
        pc = self.base

        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = raw.split("#", 1)[0].split(";", 1)[0].strip()
            while True:
                match = _LABEL_RE.match(line)
                if not match:
                    break
                label = match.group(1)
                if label in symbols:
                    raise AssemblerError(
                        "duplicate label %r (first defined at line %d)"
                        % (label, label_lines[label]), lineno)
                symbols[label] = pc
                label_lines[label] = lineno
                line = line[match.end():].strip()
            if not line:
                continue

            if line.startswith("."):
                pc = self._directive(line, pc, items, equs, symbols, lineno)
                continue

            mnemonic, operands = self._split_statement(line, lineno)
            expansion = self._expand(mnemonic, operands, equs, lineno)
            for index, (exp_mnemonic, exp_operands) in enumerate(expansion):
                items.append(_Item(address=pc, lineno=lineno,
                                   mnemonic=exp_mnemonic,
                                   operands=exp_operands,
                                   pseudo_interior=index > 0))
                pc += 4
        return items, symbols

    def _directive(self, line, pc, items, equs, symbols, lineno) -> int:
        parts = line.replace(",", " ").split()
        name = parts[0]
        args = parts[1:]
        if name == ".equ":
            if len(args) != 2:
                raise AssemblerError(".equ needs NAME VALUE", lineno)
            equs[args[0]] = self._const(args[1], equs, lineno)
            return pc
        if name == ".align":
            power = self._const(args[0], equs, lineno) if args else 2
            alignment = 1 << power
            pad = (-pc) % alignment
            if pad:
                items.append(_Item(address=pc, lineno=lineno,
                                   data=b"\x00" * pad))
            return pc + pad
        if name == ".space":
            size = self._const(args[0], equs, lineno)
            items.append(_Item(address=pc, lineno=lineno,
                               data=b"\x00" * size))
            return pc + size
        if name in (".word", ".dword", ".byte", ".half"):
            width = {".byte": 1, ".half": 2, ".word": 4, ".dword": 8}[name]
            blob = bytearray()
            for arg in args:
                value = self._const(arg, equs, lineno)
                blob += (value & ((1 << (8 * width)) - 1)).to_bytes(
                    width, "little")
            items.append(_Item(address=pc, lineno=lineno, data=bytes(blob)))
            return pc + len(blob)
        raise AssemblerError("unknown directive %r" % name, lineno)

    @staticmethod
    def _split_statement(line: str, lineno: int):
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        operands = [op.strip() for op in rest.split(",")] if rest else []
        return mnemonic, operands

    def _const(self, token: str, equs: Dict[str, int], lineno: int) -> int:
        token = token.strip()
        if token in equs:
            return equs[token]
        if len(token) == 3 and token[0] == token[2] == "'":
            return ord(token[1])
        try:
            return int(token, 0)
        except ValueError:
            # Allow simple constant arithmetic, e.g. ``N*8+4``.
            if re.fullmatch(r"[\w'+\-*() ]+", token):
                names = {k: v for k, v in equs.items()}
                try:
                    value = eval(token, {"__builtins__": {}}, names)
                    if isinstance(value, int):
                        return value
                except Exception:
                    pass
            raise AssemblerError("bad constant %r" % token, lineno)

    # -- pseudo-instruction expansion -------------------------------------

    def _expand(self, mnemonic, operands, equs, lineno):
        """Return a list of (mnemonic, operands) concrete statements."""
        ops = operands
        if mnemonic == "nop":
            return [("addi", ["x0", "x0", "0"])]
        if mnemonic == "mv":
            return [("addi", [ops[0], ops[1], "0"])]
        if mnemonic == "not":
            return [("xori", [ops[0], ops[1], "-1"])]
        if mnemonic == "neg":
            return [("sub", [ops[0], "x0", ops[1]])]
        if mnemonic == "negw":
            return [("subw", [ops[0], "x0", ops[1]])]
        if mnemonic == "seqz":
            return [("sltiu", [ops[0], ops[1], "1"])]
        if mnemonic == "snez":
            return [("sltu", [ops[0], "x0", ops[1]])]
        if mnemonic == "sltz":
            return [("slt", [ops[0], ops[1], "x0"])]
        if mnemonic == "sgtz":
            return [("slt", [ops[0], "x0", ops[1]])]
        if mnemonic == "beqz":
            return [("beq", [ops[0], "x0", ops[1]])]
        if mnemonic == "bnez":
            return [("bne", [ops[0], "x0", ops[1]])]
        if mnemonic == "blez":
            return [("bge", ["x0", ops[0], ops[1]])]
        if mnemonic == "bgez":
            return [("bge", [ops[0], "x0", ops[1]])]
        if mnemonic == "bltz":
            return [("blt", [ops[0], "x0", ops[1]])]
        if mnemonic == "bgtz":
            return [("blt", ["x0", ops[0], ops[1]])]
        if mnemonic == "ble":
            return [("bge", [ops[1], ops[0], ops[2]])]
        if mnemonic == "bgt":
            return [("blt", [ops[1], ops[0], ops[2]])]
        if mnemonic == "bleu":
            return [("bgeu", [ops[1], ops[0], ops[2]])]
        if mnemonic == "bgtu":
            return [("bltu", [ops[1], ops[0], ops[2]])]
        if mnemonic == "j":
            return [("jal", ["x0", ops[0]])]
        if mnemonic == "jr":
            return [("jalr", ["x0", "0(%s)" % ops[0]])]
        if mnemonic == "call":
            return [("jal", ["ra", ops[0]])]
        if mnemonic == "ret":
            return [("jalr", ["x0", "0(ra)"])]
        if mnemonic == "la":
            # Resolved in pass 2: lui+addi pair referencing the label.
            return [("_la_hi", [ops[0], ops[1]]),
                    ("_la_lo", [ops[0], ops[0], ops[1]])]
        if mnemonic == "li":
            return self._expand_li(ops[0], ops[1], equs, lineno)
        if mnemonic == "sext.w":
            return [("addiw", [ops[0], ops[1], "0"])]
        if mnemonic in SPECS or mnemonic in ("_la_hi", "_la_lo"):
            return [(mnemonic, ops)]
        raise AssemblerError("unknown mnemonic %r" % mnemonic, lineno)

    def _expand_li(self, rd, token, equs, lineno):
        value = self._const(token, equs, lineno)
        if not -(1 << 63) <= value < (1 << 64):
            raise AssemblerError("li constant out of 64-bit range", lineno)
        if value >= 1 << 63:
            value -= 1 << 64
        return self._li_sequence(rd, value)

    def _li_sequence(self, rd, value) -> List[Tuple[str, List[str]]]:
        if -2048 <= value < 2048:
            return [("addi", [rd, "x0", str(value)])]
        if -(1 << 31) <= value < (1 << 31):
            hi = (value + 0x800) >> 12
            lo = value - (hi << 12)
            seq = [("lui", [rd, str(hi & 0xFFFFF)])]
            if lo:
                seq.append(("addiw", [rd, rd, str(lo)]))
            elif hi & 0x80000:
                # lui sign-extends on RV64; a lone lui already matches.
                pass
            return seq
        # General 64-bit constant: build high part, shift, add low parts.
        lo12 = value & 0xFFF
        if lo12 >= 0x800:
            lo12 -= 0x1000
        rest = (value - lo12) >> 12
        seq = self._li_sequence(rd, rest)
        seq.append(("slli", [rd, rd, "12"]))
        if lo12:
            seq.append(("addi", [rd, rd, str(lo12)]))
        return seq

    # -- pass 2: resolve labels and encode ---------------------------------

    def _second_pass(self, items: List[_Item], symbols: Dict[str, int]):
        image: Dict[int, bytes] = {}
        blob = bytearray()
        start = self.base
        expected = self.base
        for item in items:
            if item.address != expected:
                raise AssemblerError("internal: address mismatch",
                                     item.lineno)
            if item.data is not None:
                blob += item.data
                expected += len(item.data)
                continue
            word = self._encode_item(item, symbols)
            blob += word.to_bytes(4, "little")
            expected += 4
        image[start] = bytes(blob)
        return image

    def _encode_item(self, item: _Item, symbols: Dict[str, int]) -> int:
        mnemonic, ops = item.mnemonic, list(item.operands)
        lineno = item.lineno

        if mnemonic == "_la_hi":
            target = self._symbol(ops[1], symbols, lineno)
            hi = (target + 0x800) >> 12
            return encode(Instruction(SPECS["lui"],
                                      rd=parse_register(ops[0]),
                                      imm=(hi << 12) & 0xFFFFF000))
        if mnemonic == "_la_lo":
            target = self._symbol(ops[2], symbols, lineno)
            hi = (target + 0x800) >> 12
            lo = target - (hi << 12)
            return encode(Instruction(SPECS["addi"],
                                      rd=parse_register(ops[0]),
                                      rs1=parse_register(ops[1]), imm=lo))

        spec = SPECS.get(mnemonic)
        if spec is None:
            raise AssemblerError("unknown mnemonic %r" % mnemonic, lineno)
        try:
            instr = self._build(spec, ops, symbols, item)
            return encode(instr)
        except AssemblerError:
            raise
        except ValueError as exc:
            raise AssemblerError(str(exc), lineno)

    def _symbol(self, token: str, symbols: Dict[str, int],
                lineno: int) -> int:
        token = token.strip()
        if token in symbols:
            return symbols[token]
        try:
            return int(token, 0)
        except ValueError:
            raise AssemblerError("undefined symbol %r" % token, lineno)

    def _imm_or_label_offset(self, token, symbols, pc, lineno) -> int:
        token = token.strip()
        if token in symbols:
            return symbols[token] - pc
        try:
            return int(token, 0)
        except ValueError:
            raise AssemblerError("undefined symbol %r" % token, lineno)

    def _build(self, spec, ops, symbols, item) -> Instruction:
        fmt = spec.fmt
        lineno, pc = item.lineno, item.address
        if fmt == "R":
            return Instruction(spec, rd=parse_register(ops[0]),
                               rs1=parse_register(ops[1]),
                               rs2=parse_register(ops[2]))
        if fmt in ("I", "IS", "ISW"):
            if spec.is_load or spec.mnemonic == "jalr":
                offset, base = self._mem_operand(ops[1], lineno)
                return Instruction(spec, rd=parse_register(ops[0]),
                                   rs1=base, imm=offset)
            imm = self._const(ops[2], getattr(self, "_equs", {}), lineno)
            return Instruction(spec, rd=parse_register(ops[0]),
                               rs1=parse_register(ops[1]), imm=imm)
        if fmt == "S":
            offset, base = self._mem_operand(ops[1], lineno)
            return Instruction(spec, rs1=base,
                               rs2=parse_register(ops[0]), imm=offset)
        if fmt == "B":
            imm = self._imm_or_label_offset(ops[2], symbols, pc, lineno)
            return Instruction(spec, rs1=parse_register(ops[0]),
                               rs2=parse_register(ops[1]), imm=imm)
        if fmt == "U":
            imm20 = int(ops[1], 0) & 0xFFFFF
            value = imm20 << 12
            if value & 0x80000000:
                value -= 1 << 32
            return Instruction(spec, rd=parse_register(ops[0]), imm=value)
        if fmt == "J":
            imm = self._imm_or_label_offset(ops[1], symbols, pc, lineno)
            return Instruction(spec, rd=parse_register(ops[0]), imm=imm)
        if fmt == "SYS":
            return Instruction(spec)
        raise AssemblerError("unhandled format %r" % fmt, lineno)

    def _mem_operand(self, token: str, lineno: int):
        match = _MEM_OPERAND_RE.match(token.strip())
        if not match:
            raise AssemblerError("bad memory operand %r" % token, lineno)
        offset = self._const(match.group(1), getattr(self, "_equs", {}),
                             lineno)
        return offset, parse_register(match.group(2))


def assemble(source: str, base: int = 0, entry_label: str = "_start"):
    """Convenience wrapper: assemble ``source`` at ``base``."""
    return Assembler(base=base).assemble(source, entry_label=entry_label)
