"""Disassembler: 32-bit words back to assembly text.

Used for trace output and for round-trip testing of the encoder/decoder
pair.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from .decoder import DecodeError, decode
from .program import Program


def disassemble_word(word: int) -> str:
    """Disassemble one 32-bit ``word``; unknown words render as ``.word``."""
    try:
        return decode(word).text()
    except DecodeError:
        return ".word 0x%08x" % (word & 0xFFFFFFFF)


def disassemble_program(program: Program) -> List[Tuple[int, int, str]]:
    """Disassemble a full :class:`Program` image.

    Returns ``(address, word, text)`` tuples in address order.
    """
    listing = []
    for address, word in program.words():
        listing.append((address, word, disassemble_word(word)))
    return listing


def format_listing(rows: Iterable[Tuple[int, int, str]],
                   symbols=None) -> str:
    """Pretty-print a disassembly listing with optional label column."""
    by_address = {}
    if symbols:
        for name, address in symbols.items():
            by_address.setdefault(address, []).append(name)
    lines = []
    for address, word, text in rows:
        for label in by_address.get(address, []):
            lines.append("%s:" % label)
        lines.append("  %#010x: %08x  %s" % (address, word, text))
    return "\n".join(lines)
