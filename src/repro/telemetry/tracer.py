"""Phase timing: spans with Chrome ``about://tracing`` JSON export.

A :class:`Tracer` records *complete* events ("ph": "X" in the Chrome
trace event format): name, category, start timestamp and duration,
plus free-form args.  Spans cover the simulator's coarse phases —
program build/decode, the cycle loop, sweep workers, campaign
injections — not per-cycle work; per-cycle observability is the
metrics registry's job.

The exported file loads directly in ``about://tracing`` /
https://ui.perfetto.dev.  Timestamps are microseconds relative to the
tracer's creation, so traces from one process line up on a shared
zero.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class SpanEvent:
    """One finished span (a Chrome "X" complete event)."""

    name: str
    category: str
    #: Start offset from the tracer origin, seconds.
    start: float
    #: Duration, seconds.
    duration: float
    args: Dict[str, object] = field(default_factory=dict)
    tid: int = 0


class _OpenSpan:
    """Context manager handed out by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_category", "_args", "_start")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 args: Dict[str, object]):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._args = args
        self._start = 0.0

    def __enter__(self):
        self._start = self._tracer._now()
        return self

    def __exit__(self, exc_type, exc, tb):
        tracer = self._tracer
        tracer.add_event(self._name, self._start,
                         tracer._now() - self._start,
                         category=self._category, **self._args)
        return False


class Tracer:
    """Collects spans; exports the Chrome trace event JSON format."""

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._origin = clock()
        self.events: List[SpanEvent] = []

    def _now(self) -> float:
        return self._clock() - self._origin

    def now(self) -> float:
        """Seconds since the tracer's origin (for add_event placement)."""
        return self._now()

    def span(self, name: str, category: str = "repro", **args):
        """Context manager timing one phase: ``with tracer.span("x"):``."""
        return _OpenSpan(self, name, category, args)

    def add_event(self, name: str, start: float, duration: float,
                  category: str = "repro", tid: int = 0, **args):
        """Record an already-measured phase (used by the sweep engine
        for worker-side durations surfaced at the parent)."""
        self.events.append(SpanEvent(name=name, category=category,
                                     start=start, duration=duration,
                                     args=args, tid=tid))

    # -- export ---------------------------------------------------------

    def to_chrome_trace(self) -> dict:
        """The trace as a Chrome/Perfetto ``traceEvents`` document."""
        pid = os.getpid()
        return {
            "displayTimeUnit": "ms",
            "traceEvents": [
                {
                    "name": ev.name,
                    "cat": ev.category,
                    "ph": "X",
                    "ts": round(ev.start * 1e6, 3),
                    "dur": round(ev.duration * 1e6, 3),
                    "pid": pid,
                    "tid": ev.tid,
                    "args": ev.args,
                }
                for ev in self.events
            ],
        }

    def save(self, path: str):
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=1,
                      sort_keys=True)
            handle.write("\n")

    def total_seconds(self, name: Optional[str] = None) -> float:
        """Summed duration of all events (or those named ``name``)."""
        return sum(ev.duration for ev in self.events
                   if name is None or ev.name == name)

    def __len__(self) -> int:
        return len(self.events)


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Do-nothing tracer (same surface as :class:`Tracer`)."""

    events: List[SpanEvent] = []

    def now(self) -> float:
        return 0.0

    def span(self, name: str, category: str = "repro", **args):
        return _NULL_SPAN

    def add_event(self, name: str, start: float, duration: float,
                  category: str = "repro", tid: int = 0, **args):
        pass

    def total_seconds(self, name: Optional[str] = None) -> float:
        return 0.0

    def __len__(self) -> int:
        return 0


#: The shared disabled tracer.
NULL_TRACER = NullTracer()
