"""Metric primitives: counters, gauges, fixed-bucket histograms.

The registry is built for a pure-Python cycle simulator, so the two
operating points are asymmetric by design:

* **disabled** (the default everywhere) — instrumented code holds a
  reference to :data:`NULL_REGISTRY` / :data:`NULL_METRIC` or simply
  ``None``; the hot cycle loop pays at most one ``is not None`` check
  per cycle and no metric object is ever allocated;
* **enabled** — metrics are plain ``__slots__`` objects whose update
  methods touch one attribute (``value += amount``), and the registry
  is a dict keyed by ``(name, labels)`` so re-registering returns the
  same slot.

Metric names follow the repo-wide scheme ``repro_<layer>_<name>``
(layers: ``monitor``, ``cpu``, ``cache``, ``bus``, ``storebuf``,
``soc``, ``runner``, ``fault``, ``trace``); counters additionally end
in ``_total``, following Prometheus conventions.  The registry
enforces the prefix so snapshots from different tools stay mergeable.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Accepted metric names: ``repro_<layer>_<name>``.
_NAME_RE = re.compile(r"^repro_[a-z0-9]+_[a-z0-9_]+$")

#: Label sets are canonicalized to a sorted tuple of (key, value) pairs.
Labels = Tuple[Tuple[str, str], ...]

#: Default latency buckets (seconds) for wall-time histograms.
DEFAULT_TIME_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5,
                        1.0, 2.5, 5.0, 10.0, 30.0, 60.0)


def canonical_labels(labels) -> Labels:
    """Normalize a labels mapping/iterable to the canonical tuple form."""
    if not labels:
        return ()
    if isinstance(labels, dict):
        items = labels.items()
    else:
        items = labels
    return tuple(sorted((str(k), str(v)) for k, v in items))


class Counter:
    """Monotonic counter (dict-slot based: one attribute add)."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1):
        self.value += amount


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value):
        self.value = value

    def inc(self, amount=1):
        self.value += amount


class Histogram:
    """Fixed-bucket histogram (cumulative on export, like Prometheus).

    ``buckets`` are the finite upper bounds; observations above the
    last bound land in the implicit ``+Inf`` bucket.  ``counts`` stores
    *per-bucket* (non-cumulative) tallies internally.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, name: str, buckets: Sequence[float],
                 labels: Labels = ()):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted and "
                             "non-empty: %r" % (buckets,))
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value):
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative_counts(self) -> List[int]:
        """Cumulative per-bucket counts, ``+Inf`` last (== count)."""
        out = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


class _NullMetric:
    """Shared do-nothing metric: every update is a no-op."""

    __slots__ = ()
    kind = "null"

    def inc(self, amount=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass


#: The shared no-op metric instance.
NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """Named metric store; re-registration returns the existing slot."""

    enabled = True

    def __init__(self):
        self._metrics: Dict[Tuple[str, Labels], object] = {}

    # -- registration ---------------------------------------------------

    def _get(self, cls, name: str, labels, *args):
        if not _NAME_RE.match(name):
            raise ValueError(
                "metric name %r does not follow repro_<layer>_<name>"
                % name)
        key = (name, canonical_labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = cls(name, *args,
                                              labels=key[1])
        elif not isinstance(metric, cls):
            raise ValueError("metric %r already registered as %s"
                             % (name, metric.kind))
        return metric

    def counter(self, name: str, labels=()) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, labels=()) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
                  labels=()) -> Histogram:
        return self._get(Histogram, name, labels, buckets)

    # -- introspection --------------------------------------------------

    def metrics(self) -> List[object]:
        """All metrics, sorted by (name, labels) for stable exports."""
        return [self._metrics[key] for key in sorted(self._metrics)]

    def get(self, name: str, labels=()) -> Optional[object]:
        return self._metrics.get((name, canonical_labels(labels)))

    def value(self, name: str, labels=(), default=None):
        """Convenience: the scalar value of a counter/gauge."""
        metric = self.get(name, labels)
        if metric is None:
            return default
        return metric.value

    def counter_values(self) -> Dict[Tuple[str, Labels], int]:
        """All counter samples, keyed by (name, labels).

        This is the deterministic surface: counters must merge to the
        same values whatever the execution schedule was (the sweep
        determinism test compares exactly this map).
        """
        return {key: m.value for key, m in sorted(self._metrics.items())
                if isinstance(m, Counter)}

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterable[object]:
        return iter(self.metrics())


class NullRegistry:
    """Registry stand-in whose metrics never record anything.

    Instrumented code can unconditionally call
    ``registry.counter(...).inc()`` against this object; everything
    resolves to the shared :data:`NULL_METRIC`.
    """

    enabled = False

    def counter(self, name: str, labels=()):
        return NULL_METRIC

    def gauge(self, name: str, labels=()):
        return NULL_METRIC

    def histogram(self, name: str, buckets=DEFAULT_TIME_BUCKETS,
                  labels=()):
        return NULL_METRIC

    def metrics(self) -> List[object]:
        return []

    def get(self, name: str, labels=()):
        return None

    def value(self, name: str, labels=(), default=None):
        return default

    def counter_values(self):
        return {}

    def __len__(self) -> int:
        return 0

    def __iter__(self):
        return iter(())


#: The shared disabled registry.
NULL_REGISTRY = NullRegistry()
