"""Bridges from simulator state to the metrics registry.

Each layer's stats dataclass knows how to pour itself into a registry
(``to_metrics``); this module owns the cross-layer orchestration — the
label scheme (``core``, ``cache``, ``pair``) and the gauges that are
derived from live object state rather than accumulated counters (FIFO
occupancy, IPC, resident cache lines, digest fast/slow-path totals).

Collection is an end-of-run activity: the per-cycle loop only touches
the few counters :meth:`DiversityMonitor.attach_metrics` binds, and
everything else is folded out of the stats objects the simulator
already maintains — observability never adds a second set of per-cycle
bookkeeping.
"""

from __future__ import annotations

from .registry import MetricsRegistry


def _core_labels(core_id: int):
    return (("core", str(core_id)),)


def collect_core(core, registry: MetricsRegistry):
    """Fold one core's pipeline, cache, and store-buffer state."""
    labels = _core_labels(core.core_id)
    core.stats.to_metrics(registry, labels=labels)
    registry.gauge("repro_cpu_ipc", labels).set(core.stats.ipc)
    for cache in (core.icache, core.dcache):
        cache_labels = labels + (("cache", cache.config.name),)
        cache.stats.to_metrics(registry, labels=cache_labels)
        registry.gauge("repro_cache_resident_lines",
                       cache_labels).set(cache.resident_lines())
    core.store_buffer.stats.to_metrics(registry, labels=labels)
    registry.gauge("repro_storebuf_occupancy",
                   labels).set(core.store_buffer.occupancy)


def collect_bus(bus, registry: MetricsRegistry):
    """Fold the AHB arbiter and shared-L2 state."""
    bus.stats.to_metrics(registry)
    l2_labels = (("cache", bus.l2.config.name),)
    bus.l2.stats.to_metrics(registry, labels=l2_labels)
    registry.gauge("repro_cache_resident_lines",
                   l2_labels).set(bus.l2.resident_lines())
    registry.gauge("repro_bus_pending_requests",
                   ()).set(bus.pending_requests())


def collect_monitor(monitor, registry: MetricsRegistry, pair: int = 0):
    """Fold one SafeDM instance's verdicts and signature-unit state.

    Verdict counters come from the per-cycle hook when one is attached
    (see :meth:`DiversityMonitor.attach_metrics`); otherwise they are
    bridged from :class:`MonitorStats` here.  The two sources are
    mutually exclusive, never additive.
    """
    from ..core import signatures

    labels = (("pair", str(pair)),)
    if not monitor.has_metrics_attached():
        monitor.stats.to_metrics(registry, labels=labels)
    registry.counter("repro_monitor_interrupts_total",
                     labels).value = monitor.stats.interrupts_raised
    registry.gauge("repro_monitor_staggering",
                   labels).set(monitor.instruction_diff.diff)

    # Digest fast/slow comparison path accounting: the DS digest fast
    # path exists only in every-cycle sampling mode, and the debug
    # cross-check mode runs the structural slow path as well.
    sampled = monitor.stats.sampled_cycles
    ds_fast = sampled if monitor.config.sample_every_cycle else 0
    slow = sampled - ds_fast
    if signatures.DEBUG_SIGNATURE_CHECKS:
        slow = sampled
    registry.counter("repro_monitor_digest_fast_path_cycles_total",
                     labels).value = ds_fast
    registry.counter("repro_monitor_digest_slow_path_cycles_total",
                     labels).value = slow

    for side, (ds, is_unit) in enumerate(zip(monitor.ds_units,
                                             monitor.is_units)):
        unit_labels = labels + (("core", str(side)),)
        registry.gauge("repro_monitor_ds_fifo_occupancy",
                       unit_labels).set(ds.config.ds_depth
                                        if ds.config.sample_every_cycle
                                        else sum(len(f)
                                                 for f in ds._fifos))
        live = sum(1 for item in is_unit.signature()
                   if (item[0] if isinstance(item, tuple) else item))
        registry.gauge("repro_monitor_is_live_slots",
                       unit_labels).set(live)


def collect_lint(report, registry: MetricsRegistry):
    """Fold one :class:`~repro.lint.engine.LintReport` into ``registry``.

    Diagnostics are counted per rule code and severity; suppressed
    findings get their own counter so ``# lint: disable=`` comments
    stay visible in dashboards.
    """
    labels = (("kernel", report.name),)
    registry.counter("repro_lint_programs_total").inc()
    registry.gauge("repro_lint_blocks", labels).set(report.block_count)
    registry.gauge("repro_lint_instructions",
                   labels).set(report.instr_count)
    for diag in report.diagnostics:
        registry.counter(
            "repro_lint_diagnostics_total",
            (("code", diag.code), ("severity", diag.severity))).inc()
    for diag in report.suppressed:
        registry.counter("repro_lint_suppressed_total",
                         (("code", diag.code),)).inc()


def collect_soc(soc, registry: MetricsRegistry):
    """Fold a finished (or paused) MPSoC into ``registry``."""
    registry.counter("repro_soc_cycles_total").value = soc.cycle
    for core in soc.cores:
        collect_core(core, registry)
    collect_bus(soc.bus, registry)
    for pair, monitor in enumerate(soc.monitors):
        collect_monitor(monitor, registry, pair=pair)
    engine_stats = getattr(soc, "engine_stats", None)
    if engine_stats is not None:
        engine_stats.to_metrics(registry)
