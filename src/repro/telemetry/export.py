"""Registry exports: Prometheus text exposition and JSON snapshots.

Two formats, one source of truth:

* :func:`to_prometheus` — the Prometheus text exposition format
  (``# TYPE`` headers, ``name{label="v"} value`` samples, histograms
  as cumulative ``_bucket``/``_sum``/``_count`` series);
* :func:`snapshot` / :func:`write_snapshot` — a JSON document keeping
  the structured (non-cumulative) metric state, loadable back into a
  registry with :func:`registry_from_snapshot`.

Round-trip property (tested): ``snapshot -> registry_from_snapshot ->
snapshot`` is the identity, and the Prometheus rendering of both
registries is byte-identical.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from .registry import (
    Histogram,
    Labels,
    MetricsRegistry,
    canonical_labels,
)

#: Bumped when the snapshot JSON layout changes.
SNAPSHOT_SCHEMA_VERSION = 1


def _label_str(labels: Labels, extra: Tuple[Tuple[str, str], ...] = ()
               ) -> str:
    pairs = tuple(labels) + tuple(extra)
    if not pairs:
        return ""
    return "{%s}" % ",".join('%s="%s"' % (k, v) for k, v in pairs)


def _format_value(value) -> str:
    if isinstance(value, float):
        if value == float("inf"):
            return "+Inf"
        return repr(value)
    return str(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render ``registry`` in the Prometheus text exposition format."""
    lines: List[str] = []
    seen_type = set()
    for metric in registry.metrics():
        if metric.name not in seen_type:
            seen_type.add(metric.name)
            lines.append("# TYPE %s %s" % (metric.name, metric.kind))
        if isinstance(metric, Histogram):
            cumulative = metric.cumulative_counts()
            bounds = [_format_value(b) for b in metric.buckets]
            bounds.append("+Inf")
            for bound, count in zip(bounds, cumulative):
                lines.append("%s_bucket%s %d" % (
                    metric.name,
                    _label_str(metric.labels, (("le", bound),)),
                    count))
            lines.append("%s_sum%s %s" % (
                metric.name, _label_str(metric.labels),
                _format_value(metric.sum)))
            lines.append("%s_count%s %d" % (
                metric.name, _label_str(metric.labels), metric.count))
        else:
            lines.append("%s%s %s" % (metric.name,
                                      _label_str(metric.labels),
                                      _format_value(metric.value)))
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse exposition-format samples back to ``{sample_key: value}``.

    The key is the literal ``name{labels}`` sample string, so the
    mapping is exactly what a Prometheus scraper would ingest.  Used by
    the round-trip tests; not a general-purpose parser.
    """
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        samples[key] = float(value)
    return samples


# -- JSON snapshots -----------------------------------------------------------


def snapshot(registry: MetricsRegistry, meta: dict = None) -> dict:
    """Structured JSON-serializable dump of every metric."""
    metrics = []
    for metric in registry.metrics():
        entry = {
            "name": metric.name,
            "kind": metric.kind,
            "labels": {k: v for k, v in metric.labels},
        }
        if isinstance(metric, Histogram):
            entry["buckets"] = list(metric.buckets)
            entry["counts"] = list(metric.counts)
            entry["sum"] = metric.sum
            entry["count"] = metric.count
        else:
            entry["value"] = metric.value
        metrics.append(entry)
    doc = {"schema": SNAPSHOT_SCHEMA_VERSION, "metrics": metrics}
    if meta:
        doc["meta"] = dict(meta)
    return doc


def write_snapshot(registry: MetricsRegistry, path: str,
                   meta: dict = None):
    """Write :func:`snapshot` as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(snapshot(registry, meta=meta), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")


def load_snapshot(path: str) -> dict:
    """Read a snapshot document written by :func:`write_snapshot`."""
    with open(path) as handle:
        doc = json.load(handle)
    if doc.get("schema") != SNAPSHOT_SCHEMA_VERSION:
        raise ValueError("unsupported snapshot schema %r"
                         % doc.get("schema"))
    return doc


def registry_from_snapshot(doc: dict) -> MetricsRegistry:
    """Rebuild a live registry from a snapshot document."""
    registry = MetricsRegistry()
    for entry in doc.get("metrics", ()):
        labels = canonical_labels(entry.get("labels", {}))
        kind = entry["kind"]
        if kind == "counter":
            registry.counter(entry["name"], labels).value = entry["value"]
        elif kind == "gauge":
            registry.gauge(entry["name"], labels).value = entry["value"]
        elif kind == "histogram":
            hist = registry.histogram(entry["name"],
                                      buckets=entry["buckets"],
                                      labels=labels)
            hist.counts = list(entry["counts"])
            hist.sum = entry["sum"]
            hist.count = entry["count"]
        else:
            raise ValueError("unknown metric kind %r" % kind)
    return registry


def snapshot_rows(doc: dict) -> List[Tuple[str, str, str]]:
    """Flatten a snapshot into (metric, kind, value) display rows.

    Histograms render as ``count/sum`` plus a compact bucket sketch;
    the CLI's ``repro metrics`` command feeds these rows through the
    shared table formatter.
    """
    rows = []
    for entry in doc.get("metrics", ()):
        name = entry["name"] + _label_str(
            canonical_labels(entry.get("labels", {})))
        if entry["kind"] == "histogram":
            value = "count=%d sum=%.6g" % (entry["count"], entry["sum"])
        else:
            value = _format_value(entry["value"])
        rows.append((name, entry["kind"], value))
    return rows
