"""Observability subsystem: metrics, spans, exports.

Three pieces, designed to cost nothing when unused:

* :class:`MetricsRegistry` — counters / gauges / fixed-bucket
  histograms, dict-slot based; :data:`NULL_REGISTRY` is the shared
  disabled twin whose every update is a no-op.
* :class:`Tracer` — phase spans (decode, cycle loop, sweep workers,
  campaign injections) exported as Chrome ``about://tracing`` JSON;
  :data:`NULL_TRACER` is the disabled twin.
* exporters — Prometheus text exposition (:func:`to_prometheus`) and
  JSON snapshots (:func:`write_snapshot` / :func:`load_snapshot` /
  :func:`registry_from_snapshot`).

Metric names follow ``repro_<layer>_<name>`` (see DESIGN.md,
"Observability").  The CLI surfaces all of this as ``--metrics`` /
``--trace`` flags on ``repro run`` / ``repro table1`` /
``repro campaign`` and the ``repro metrics`` snapshot pretty-printer.
"""

from .collect import (
    collect_bus,
    collect_core,
    collect_lint,
    collect_monitor,
    collect_soc,
)
from .export import (
    SNAPSHOT_SCHEMA_VERSION,
    load_snapshot,
    parse_prometheus,
    registry_from_snapshot,
    snapshot,
    snapshot_rows,
    to_prometheus,
    write_snapshot,
)
from .registry import (
    DEFAULT_TIME_BUCKETS,
    NULL_METRIC,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    canonical_labels,
)
from .tracer import NULL_TRACER, NullTracer, SpanEvent, Tracer

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "NULL_METRIC",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "SNAPSHOT_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "SpanEvent",
    "Tracer",
    "canonical_labels",
    "collect_bus",
    "collect_core",
    "collect_lint",
    "collect_monitor",
    "collect_soc",
    "load_snapshot",
    "parse_prometheus",
    "registry_from_snapshot",
    "snapshot",
    "snapshot_rows",
    "to_prometheus",
    "write_snapshot",
]
