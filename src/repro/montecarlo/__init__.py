"""Batched Monte-Carlo fault campaigns (structure-of-arrays trials,
one shared golden run, analytic masked-fault classification, lazy
fork-on-divergence simulation for the live minority).

Quick start::

    from repro.montecarlo import run_montecarlo_campaign
    result = run_montecarlo_campaign(program, trials=10_000,
                                     kind="ccf", seed=7,
                                     benchmark="countnegative")
    print(result.summary())

See DESIGN.md "Monte-Carlo campaigns" for the soundness argument and
EXPERIMENTS.md for methodology.
"""

from .batch import (
    CLASS_NAMES,
    STATUS_ANALYTIC,
    STATUS_PENDING,
    STATUS_SIMULATED,
    TrialBatch,
    numpy_available,
    resolve_backend,
)
from .campaign import (
    BatchedCampaign,
    McCampaignResult,
    run_montecarlo_campaign,
)
from .golden import (
    AccessIndex,
    McGoldenArtifact,
    ccf_effects,
    classify_batch,
    mc_golden_run,
)
from .stats import (
    batch_statistics,
    coverage_by_cycle,
    divergence_latency_cdf,
    diversity_histogram,
    ecdf,
    masked_lifetime_cdf,
)

__all__ = [
    "AccessIndex",
    "BatchedCampaign",
    "CLASS_NAMES",
    "McCampaignResult",
    "McGoldenArtifact",
    "STATUS_ANALYTIC",
    "STATUS_PENDING",
    "STATUS_SIMULATED",
    "TrialBatch",
    "batch_statistics",
    "ccf_effects",
    "classify_batch",
    "coverage_by_cycle",
    "divergence_latency_cdf",
    "diversity_histogram",
    "ecdf",
    "masked_lifetime_cdf",
    "mc_golden_run",
    "numpy_available",
    "resolve_backend",
    "run_montecarlo_campaign",
]
