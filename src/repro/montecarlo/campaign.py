"""Batched Monte-Carlo fault campaigns over one shared golden run.

The drive train, per kernel:

1. ``prepare()`` — one instrumented golden run
   (:func:`~repro.montecarlo.golden.mc_golden_run`) records
   checkpoints, the cycle-stamped access log, and per-cycle digests.
   When no checkpoint cadence is given, a fast-tier probe run sizes it
   first (~run/25, floor 200 — the bench_campaign sweet spot).
2. ``sample_ccf()/sample_transient()`` — a seeded
   :class:`random.Random` draws the trial grid into a
   :class:`~repro.montecarlo.batch.TrialBatch`.  Sampling happens in
   the parent only, so the grid is a pure function of the seed.
3. ``run()`` — :func:`~repro.montecarlo.golden.classify_batch`
   resolves provably-masked trials analytically (typically the large
   majority); the remaining live trials replay through the scalar
   fork-from-checkpoint injectors — serially or over a process pool.
   Tasks are issued in ascending trial order and folded with the
   order-preserving ``Executor.map``, so ``jobs=1`` and ``jobs=N``
   produce bit-identical batches (asserted in
   ``tests/test_montecarlo.py``).

Every live trial runs the *same* code path a scalar campaign would
(:func:`inject_common_cause` / :func:`inject_transient` with a
:class:`ForkEngine`), so batched results are field-for-field identical
to per-trial results by construction for the simulated subset and by
the bisimilarity argument (see :mod:`repro.montecarlo.golden`) for the
analytic subset.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Optional

from ..fault.campaign import _resolve_jobs
from ..fault.injector import (
    ForkEngine,
    GoldenArtifact,
    inject_common_cause,
    inject_transient,
)
from ..isa.program import Program
from ..isa.registers import NUM_REGISTERS
from ..lint.masking import StaticMaskFilter
from ..soc.config import SocConfig
from .batch import STATUS_SIMULATED, STATUS_STATIC, TrialBatch
from .golden import McGoldenArtifact, classify_batch, mc_golden_run

#: Checkpoint-cadence floor (cycles); below this, snapshot overhead
#: beats the saved simulation (same constant as bench_campaign).
MIN_CADENCE = 200


# -- worker-process plumbing --------------------------------------------------

_MC_WORKER: dict = {}


def _init_mc_worker(program: Program, config: Optional[SocConfig],
                    max_cycles: int, kind: str,
                    artifact: Optional[GoldenArtifact], engine: str):
    """Pool initializer: per-campaign constants + a private fork
    engine (only the base artifact ships — digests and access indexes
    stay in the parent)."""
    fork = None
    if artifact is not None and artifact.snapshots:
        fork = ForkEngine(program, artifact, config=config)
    _MC_WORKER["program"] = program
    _MC_WORKER["config"] = config
    _MC_WORKER["max_cycles"] = max_cycles
    _MC_WORKER["kind"] = kind
    _MC_WORKER["golden"] = artifact.checksum if artifact else 0
    _MC_WORKER["fork"] = fork
    _MC_WORKER["engine"] = engine


def _run_mc_task(task):
    """One live trial inside a pool worker.

    Returns ``(result, converged_delta)`` so the parent can fold the
    convergence counter in canonical trial order.
    """
    worker = _MC_WORKER
    fork = worker["fork"]
    before = fork.converged if fork is not None else 0
    if worker["kind"] == "ccf":
        cycle, stimulus = task
        result = inject_common_cause(
            worker["program"], cycle, stimulus, worker["golden"],
            config=worker["config"], max_cycles=worker["max_cycles"],
            fork=fork, engine=worker["engine"])
    else:
        cycle, core, register, bit = task
        result = inject_transient(
            worker["program"], cycle, core, register, bit,
            worker["golden"], config=worker["config"],
            max_cycles=worker["max_cycles"], fork=fork,
            engine=worker["engine"])
    converged = (fork.converged - before) if fork is not None else 0
    return result, converged


# -- results ------------------------------------------------------------------

@dataclass
class McCampaignResult:
    """One finished batched campaign."""

    benchmark: str
    kind: str
    seed: int
    batch: TrialBatch
    golden_cycles: int
    golden_checksum: int
    checkpoint_every: int
    jobs: int = 1
    engine: str = "reference"
    #: Trials resolved by static masking proof alone (no access-log
    #: lookup), by the dynamic log, and via forked simulation.
    static: int = 0
    analytic: int = 0
    simulated: int = 0
    #: Fork-engine tallies over the simulated subset (canonical fold:
    #: identical for jobs=1 and jobs=N).
    forks: int = 0
    scratch_runs: int = 0
    converged: int = 0
    golden_wall_s: float = 0.0
    classify_wall_s: float = 0.0
    simulate_wall_s: float = 0.0
    counts: dict = field(default_factory=dict)

    def summary_dict(self) -> dict:
        """Deterministic summary: a pure function of (program, config,
        seed, trials) — no wall times, no job counts.  The RNG
        determinism tests compare this dict bit-for-bit."""
        return {
            "benchmark": self.benchmark,
            "kind": self.kind,
            "seed": self.seed,
            "trials": self.batch.n,
            "golden_cycles": self.golden_cycles,
            "golden_checksum": self.golden_checksum,
            "static": self.static,
            "analytic": self.analytic,
            "simulated": self.simulated,
            "forks": self.forks,
            "scratch_runs": self.scratch_runs,
            "converged": self.converged,
            "counts": dict(self.counts),
        }

    def summary(self) -> str:
        return ("%s kind=%s trials=%d static=%d analytic=%d "
                "simulated=%d %s"
                % (self.benchmark, self.kind, self.batch.n, self.static,
                   self.analytic, self.simulated, self.batch.summary()))

    def to_metrics(self, registry):
        """Fold campaign tallies into a telemetry registry."""
        for name in ("masked", "detected", "silent_ccf", "hang",
                     "trap"):
            registry.counter(
                "repro_montecarlo_trials_total",
                (("classification", name),)).inc(self.counts[name])
        registry.counter("repro_montecarlo_static_total").inc(
            self.static)
        registry.counter("repro_montecarlo_analytic_total").inc(
            self.analytic)
        registry.counter("repro_montecarlo_simulated_total").inc(
            self.simulated)
        registry.counter("repro_montecarlo_forks_total").inc(self.forks)
        registry.counter("repro_montecarlo_scratch_runs_total").inc(
            self.scratch_runs)
        registry.counter("repro_montecarlo_converged_total").inc(
            self.converged)
        registry.counter("repro_montecarlo_golden_cycles_total").inc(
            self.golden_cycles)
        registry.counter(
            "repro_montecarlo_silent_despite_diversity_total").inc(
            self.counts["silent_despite_diversity"])


# -- the campaign driver ------------------------------------------------------

class BatchedCampaign:
    """Shared-golden-run Monte-Carlo campaign over one kernel."""

    def __init__(self, program: Program, benchmark: str = "program",
                 config: Optional[SocConfig] = None,
                 max_cycles: int = 2_000_000,
                 checkpoint_every: int = 0,
                 engine: str = "reference",
                 backend: str = "auto",
                 static_prefilter: bool = True):
        self.program = program
        self.benchmark = benchmark
        self.config = config
        self.max_cycles = max_cycles
        self.checkpoint_every = checkpoint_every
        self.engine = engine
        self.backend = backend
        self.static_prefilter = static_prefilter
        self.mask_filter: Optional[StaticMaskFilter] = None
        self.artifact: Optional[McGoldenArtifact] = None
        self.golden_wall_s = 0.0

    # -- golden run -------------------------------------------------------

    def _auto_cadence(self) -> int:
        """Probe the run length with the configured engine tier and
        size the checkpoint cadence off it (~25 snapshots)."""
        from ..soc.experiment import run_redundant
        probe = run_redundant(self.program, benchmark=self.benchmark,
                              config=self.config,
                              max_cycles=self.max_cycles,
                              engine=self.engine)
        return max(MIN_CADENCE, probe.cycles // 25)

    def prepare(self, kind: str = "ccf") -> McGoldenArtifact:
        """The instrumented golden run (memoized)."""
        if self.artifact is not None:
            return self.artifact
        start = time.perf_counter()
        if self.checkpoint_every <= 0:
            self.checkpoint_every = self._auto_cadence()
        self.artifact = mc_golden_run(
            self.program, config=self.config,
            max_cycles=self.max_cycles,
            checkpoint_every=self.checkpoint_every,
            benchmark=self.benchmark,
            record_ccf=(kind == "ccf"))
        if self.static_prefilter and self.mask_filter is None:
            # Static masking proofs are per-program, not per-run; a
            # program the CFG builder cannot analyze simply gets no
            # pre-filter (every trial falls through to the access log).
            try:
                self.mask_filter = StaticMaskFilter.from_program(
                    self.program)
            except Exception:
                self.mask_filter = None
        self.golden_wall_s = time.perf_counter() - start
        return self.artifact

    # -- seeded samplers --------------------------------------------------

    def sample_ccf(self, trials: int, seed: int = 0) -> TrialBatch:
        """``trials`` common-cause faults: uniform cycle in
        ``[1, end)``, uniform 32-bit stimulus.  Parent-side
        :class:`random.Random` only — the grid is a pure function of
        the seed, independent of jobs and backend."""
        artifact = self.prepare("ccf")
        rng = random.Random(seed)
        batch = TrialBatch("ccf", trials, backend=self.backend,
                           golden_checksum=artifact.checksum)
        last = artifact.end_cycle
        for i in range(trials):
            batch.set_ccf_trial(i, rng.randrange(1, last),
                                rng.getrandbits(32))
        return batch

    def sample_transient(self, trials: int, seed: int = 0) -> TrialBatch:
        """``trials`` single-core transients: uniform cycle, core,
        architectural register (x1..x31), bit."""
        artifact = self.prepare("transient")
        rng = random.Random(seed)
        batch = TrialBatch("transient", trials, backend=self.backend,
                           golden_checksum=artifact.checksum)
        last = artifact.end_cycle
        for i in range(trials):
            batch.set_transient_trial(
                i, rng.randrange(1, last), rng.randrange(2),
                rng.randrange(1, NUM_REGISTERS), rng.randrange(64))
        return batch

    # -- execution --------------------------------------------------------

    def _task(self, batch: TrialBatch, i: int):
        cols = batch.columns
        if batch.kind == "ccf":
            return (int(cols["cycle"][i]), int(cols["stimulus"][i]))
        return (int(cols["cycle"][i]), int(cols["core"][i]),
                int(cols["register"][i]), int(cols["bit"][i]))

    def run(self, batch: TrialBatch, jobs: Optional[int] = 1,
            seed: int = 0, metrics=None) -> McCampaignResult:
        """Classify analytically, simulate the live rest, aggregate."""
        artifact = self.prepare(batch.kind)
        base = artifact.base
        jobs = _resolve_jobs(jobs)

        start = time.perf_counter()
        live = classify_batch(artifact, batch,
                              static_filter=self.mask_filter)
        static = batch.count_status(STATUS_STATIC)
        classify_wall = time.perf_counter() - start

        start = time.perf_counter()
        converged = 0
        tasks = [self._task(batch, i) for i in live]
        if jobs > 1 and len(tasks) > 1:
            from concurrent.futures import ProcessPoolExecutor
            with ProcessPoolExecutor(
                    max_workers=min(jobs, len(tasks)),
                    initializer=_init_mc_worker,
                    initargs=(self.program, self.config,
                              self.max_cycles, batch.kind, base,
                              self.engine)) as pool:
                # Executor.map preserves task order: the fold below is
                # canonical no matter how the pool schedules the work.
                for i, (result, conv) in zip(
                        live, pool.map(_run_mc_task, tasks,
                                       chunksize=4)):
                    batch.fill_from_result(i, result,
                                           status=STATUS_SIMULATED)
                    converged += conv
        else:
            fork = (ForkEngine(self.program, base, config=self.config)
                    if base.snapshots else None)
            _init_serial = {"program": self.program,
                            "config": self.config,
                            "max_cycles": self.max_cycles,
                            "kind": batch.kind, "fork": fork,
                            "golden": base.checksum,
                            "engine": self.engine}
            saved = dict(_MC_WORKER)
            _MC_WORKER.clear()
            _MC_WORKER.update(_init_serial)
            try:
                for i, task in zip(live, tasks):
                    result, conv = _run_mc_task(task)
                    batch.fill_from_result(i, result,
                                           status=STATUS_SIMULATED)
                    converged += conv
            finally:
                _MC_WORKER.clear()
                _MC_WORKER.update(saved)
        simulate_wall = time.perf_counter() - start

        # Fork/scratch tallies are a pure function of the live trial
        # set and the checkpoint grid — identical across jobs counts.
        first = (base.checkpoint_cycles[0]
                 if base.checkpoint_cycles else None)
        forks = sum(1 for i in live
                    if first is not None
                    and int(batch.columns["cycle"][i]) >= first)
        result = McCampaignResult(
            benchmark=self.benchmark,
            kind=batch.kind,
            seed=seed,
            batch=batch,
            golden_cycles=base.end_cycle,
            golden_checksum=base.checksum,
            checkpoint_every=self.checkpoint_every,
            jobs=jobs,
            engine=self.engine,
            static=static,
            analytic=batch.n - len(live) - static,
            simulated=len(live),
            forks=forks,
            scratch_runs=len(live) - forks,
            converged=converged,
            golden_wall_s=self.golden_wall_s,
            classify_wall_s=classify_wall,
            simulate_wall_s=simulate_wall,
            counts=batch.counts(),
        )
        if metrics is not None:
            result.to_metrics(metrics)
        return result


def run_montecarlo_campaign(program: Program, trials: int,
                            kind: str = "ccf", seed: int = 0,
                            benchmark: str = "program",
                            config: Optional[SocConfig] = None,
                            max_cycles: int = 2_000_000,
                            checkpoint_every: int = 0,
                            jobs: Optional[int] = 1,
                            engine: str = "reference",
                            backend: str = "auto",
                            static_prefilter: bool = True,
                            metrics=None) -> McCampaignResult:
    """One-call convenience wrapper: prepare, sample, run."""
    campaign = BatchedCampaign(program, benchmark=benchmark,
                               config=config, max_cycles=max_cycles,
                               checkpoint_every=checkpoint_every,
                               engine=engine, backend=backend,
                               static_prefilter=static_prefilter)
    if kind == "ccf":
        batch = campaign.sample_ccf(trials, seed=seed)
    elif kind == "transient":
        batch = campaign.sample_transient(trials, seed=seed)
    else:
        raise ValueError("unknown campaign kind %r" % (kind,))
    return campaign.run(batch, jobs=jobs, seed=seed, metrics=metrics)
