"""Distribution-level statistics over Monte-Carlo trial batches.

SafeDM's evaluation reports point samples; the related work (Okech et
al., ResiLogic — see PAPERS.md) argues divergence and diversity are
*distributions*.  This layer turns a classified
:class:`~repro.montecarlo.batch.TrialBatch` into exactly those:

* :func:`divergence_latency_cdf` — cycles from injection to run end
  for trials that actually perturbed live state (the "how long does a
  fault linger" view),
* :func:`masked_lifetime_cdf` — cycles a provably-masked corruption
  survived before being overwritten (known analytically from the
  access log, no simulation involved),
* :func:`coverage_by_cycle` — detected-or-flagged fraction per
  fault-cycle bin (detection coverage across the run's timeline),
* :func:`diversity_histogram` — SafeDM's verdict at injection split
  by outcome class,
* :func:`batch_statistics` — the JSON-ready bundle of all of the
  above plus exact quantiles and bootstrap confidence intervals from
  :mod:`repro.analysis.stats`.

Everything here is pure-Python arithmetic over the batch's portable
column lists: deterministic, backend-independent, numpy-free.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.stats import bootstrap_ci, exact_quantile
from .batch import (
    CLASS_DETECTED,
    CLASS_MASKED,
    CLASS_NAMES,
    CLASS_SILENT_CCF,
    CLASS_TRAP,
    STATUS_SIMULATED,
    TrialBatch,
)

#: Quantiles reported by the summary bundles.
QUANTILES = (0.5, 0.9, 0.99)


def ecdf(values: List[int]) -> List[Tuple[int, float]]:
    """Empirical CDF as ``(value, fraction <= value)`` step points."""
    if not values:
        return []
    ordered = sorted(values)
    total = len(ordered)
    points = []
    for index, value in enumerate(ordered, start=1):
        if index == total or ordered[index] != value:
            points.append((value, index / total))
    return points


def divergence_latency_cdf(batch: TrialBatch) -> List[Tuple[int, float]]:
    """ECDF of ``end_cycle - fault_cycle`` over simulated live trials.

    Masked-analytic trials are excluded: their "latency" is the golden
    tail, not a divergence duration.
    """
    return ecdf(_latencies(batch))


def _latencies(batch: TrialBatch) -> List[int]:
    cols = batch.columns
    return [int(cols["end_cycle"][i]) - int(cols["cycle"][i])
            for i in range(batch.n)
            if int(cols["status"][i]) == STATUS_SIMULATED]


def masked_lifetime_cdf(batch: TrialBatch) -> List[Tuple[int, float]]:
    """ECDF of ``death_cycle - fault_cycle`` over masked trials: how
    long a dead corruption sat in the register file before a write
    (or the run's end) erased it."""
    return ecdf(_lifetimes(batch))


def _lifetimes(batch: TrialBatch) -> List[int]:
    cols = batch.columns
    return [int(cols["death_cycle"][i]) - int(cols["cycle"][i])
            for i in range(batch.n)
            if int(cols["classification"][i]) == CLASS_MASKED
            and int(cols["death_cycle"][i]) >= 0]


def coverage_by_cycle(batch: TrialBatch, bins: int = 10,
                      end_cycle: Optional[int] = None
                      ) -> List[Dict[str, float]]:
    """Detection coverage per fault-cycle bin.

    Coverage counts a trial when it was detected by output comparison,
    trapped (a replica failing with an architectural exception is a
    loud detection), or was a silent escape in a cycle SafeDM already
    flagged as non-diverse (the detected-or-flagged union the scalar
    campaign reports).  Returns one row per non-empty bin.
    """
    cols = batch.columns
    if end_cycle is None:
        end_cycle = max((int(cols["cycle"][i])
                         for i in range(batch.n)), default=0) + 1
    width = max(1, -(-end_cycle // bins))
    totals = [0] * bins
    covered = [0] * bins
    for i in range(batch.n):
        code = int(cols["classification"][i])
        index = min(bins - 1, int(cols["cycle"][i]) // width)
        totals[index] += 1
        if code in (CLASS_DETECTED, CLASS_TRAP) or (
                code == CLASS_SILENT_CCF
                and int(cols["diversity"][i]) == 0):
            covered[index] += 1
    rows = []
    for index in range(bins):
        if totals[index] == 0:
            continue
        rows.append({
            "cycle_lo": index * width,
            "cycle_hi": min(end_cycle, (index + 1) * width),
            "trials": totals[index],
            "covered": covered[index],
            "coverage": covered[index] / totals[index],
        })
    return rows


def diversity_histogram(batch: TrialBatch) -> Dict[str, Dict[str, int]]:
    """Per outcome class: SafeDM's diversity verdict at injection
    (``diverse`` / ``not_diverse`` / ``no_report``)."""
    cols = batch.columns
    out = {name: {"diverse": 0, "not_diverse": 0, "no_report": 0}
           for name in CLASS_NAMES}
    keys = {1: "diverse", 0: "not_diverse", -1: "no_report"}
    for i in range(batch.n):
        code = int(cols["classification"][i])
        if code < 0:
            continue
        out[CLASS_NAMES[code]][keys[int(cols["diversity"][i])]] += 1
    return out


def _quantile_block(values: List[int], seed: int,
                    n_boot: int) -> Optional[dict]:
    if not values:
        return None
    block = {"n": len(values)}
    for q in QUANTILES:
        block["p%g" % (q * 100)] = exact_quantile(values, q)
    block["mean_ci"] = bootstrap_ci(values, n_boot=n_boot, seed=seed)
    return block


def batch_statistics(batch: TrialBatch, bins: int = 10,
                     end_cycle: Optional[int] = None,
                     n_boot: int = 200, seed: int = 0) -> dict:
    """The full JSON-ready statistics bundle for one batch.

    Deterministic for a given batch (bootstrap RNGs are seeded per
    block); safe to compare bit-for-bit across jobs counts and
    backends.
    """
    counts = batch.counts()
    total = max(1, batch.n)
    coverage = [row for row in coverage_by_cycle(batch, bins=bins,
                                                 end_cycle=end_cycle)]
    covered = sum(row["covered"] for row in coverage)
    binned = sum(row["trials"] for row in coverage)
    coverage_ci = bootstrap_ci(
        [1.0 if (i < covered) else 0.0 for i in range(binned)],
        n_boot=n_boot, seed=seed + 1) if binned else None
    return {
        "trials": batch.n,
        "counts": counts,
        "rates": {name: counts[name] / total for name in CLASS_NAMES},
        "divergence_latency": _quantile_block(_latencies(batch),
                                              seed, n_boot),
        "masked_lifetime": _quantile_block(_lifetimes(batch),
                                           seed + 2, n_boot),
        "coverage_by_cycle": coverage,
        "coverage_ci": coverage_ci,
        "diversity_histogram": diversity_histogram(batch),
    }
