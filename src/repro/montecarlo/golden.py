"""Recording golden run + analytic masked-fault classification.

The scalar campaign path simulates every injected run (forked from a
checkpoint, but still simulated).  Monte-Carlo volumes invert the
economics: at 10^4 trials per kernel, even a cheap fork per trial
dominates, while the *majority* of register-bit faults are provably
masked — the corrupted register is written (or never touched again)
before anything reads it.

:func:`mc_golden_run` performs ONE instrumented fault-free run that
captures, on top of the PR 5 checkpoint artifact:

* a cycle-stamped architectural access log per monitored core —
  ``(3, cycle)`` markers interleaved with the existing ``(0, r)``
  read / ``(1, r)`` write entries of
  :class:`~repro.fault.injector._RecordingRegisterFile`,
* per-cycle ``state_digest``/``_activity_digest`` values for both
  cores, so a common-cause fault's concrete corruption (which is a
  pure function of post-step golden state, see
  :meth:`repro.fault.models.CommonCauseFault.effect_on`) can be
  computed *without* simulating anything,
* SafeDM's per-cycle diversity verdict (what ``after_step`` injection
  would have observed).

:func:`classify_batch` then resolves every trial whose corruption is
provably dead — first access at/after the effective cycle is a write,
or never comes — to the golden outcome analytically; only the
remaining live trials need a forked simulation.  Soundness: every
architectural read goes through ``RegisterFile.read`` (the read-port
taps call it too), so a register with no read between corruption and
death cannot influence outputs, monitor signatures, or timing; the
fault run is bisimilar to the golden run and the scalar fork path
would return exactly the golden tail (``tests/test_montecarlo.py``
asserts field-for-field equality against that path).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cpu.pipeline import DE, FE, RA
from ..fault.injector import (
    RESULT_REGISTER,
    GoldenArtifact,
    _activity_digest,
    _exempt_masks,
    _RecordingRegisterFile,
)
from ..fault.models import state_digest
from ..isa.program import Program
from ..isa.registers import NUM_REGISTERS
from ..lint.masking import FRONTIER_HALTED
from ..soc.config import SocConfig
from ..soc.mpsoc import MPSoC
from .batch import (
    CLASS_HANG,
    CLASS_MASKED,
    STATUS_ANALYTIC,
    STATUS_STATIC,
    TrialBatch,
)

#: Knuth's multiplicative-hash constant — MUST stay equal to the one in
#: :meth:`repro.fault.models.CommonCauseFault.effect_on`; the analytic
#: effect computation reproduces that arithmetic bit-for-bit.
GOLDEN_RATIO_32 = 0x9E3779B1

try:  # pragma: no cover - exercised via both backends in tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def _frontier_pc(core) -> int:
    """The pc of ``core``'s oldest **not-yet-issued** instruction.

    Functional register reads and writes both happen at issue time
    (``Core._issue`` is the single ``RegisterFile.read`` call site), so
    the oldest unissued instruction is the first program point whose
    architectural accesses can still be influenced by a corruption
    landing now.  Instructions already past RA have read *and* written;
    crediting their kills would be unsound, so they are ignored.

    Pre-issue stages, oldest first: RA, then DE, then FE.  With all
    three empty, the next instruction to issue is the one at
    ``fetch_pc`` — which is architecturally correct here, because any
    in-flight mispredicted path would still have its branch in a
    pre-issue stage (in-order issue), and issue-time redirects have
    already fixed ``fetch_pc``.  A halted core never issues again:
    :data:`~repro.lint.masking.FRONTIER_HALTED`.
    """
    stages = core.stages
    for stage in (RA, DE, FE):
        group = stages[stage]
        if group is not None:
            return group.instrs[0].pc
    if core.halted:
        return FRONTIER_HALTED
    return core.fetch_pc


class AccessIndex:
    """First-access-at-or-after queries over one core's access log.

    Built from the cycle-stamped log: per register, the (chronological,
    hence sorted) cycles of its architectural accesses plus the access
    kinds.  ``first_access(r, c)`` answers "what happens to register
    ``r`` first, from cycle ``c`` on?" in O(log n).
    """

    __slots__ = ("cycles", "kinds", "end_cycle")

    def __init__(self, log, end_cycle: int):
        self.end_cycle = end_cycle
        self.cycles: Dict[int, List[int]] = {
            r: [] for r in range(1, NUM_REGISTERS)}
        self.kinds: Dict[int, List[int]] = {
            r: [] for r in range(1, NUM_REGISTERS)}
        current = 0
        for kind, value in log:
            if kind == 3:
                current = value
            elif kind < 2:
                self.cycles[value].append(current)
                self.kinds[value].append(kind)

    def first_access(self, register: int,
                     cycle: int) -> Optional[Tuple[int, int]]:
        """``(kind, cycle)`` of the first access to ``register`` at or
        after ``cycle``, or ``None`` if it is never touched again."""
        cycles = self.cycles[register]
        pos = bisect_left(cycles, cycle)
        if pos == len(cycles):
            return None
        return self.kinds[register][pos], cycles[pos]

    def corruption_fate(self, register: int,
                        cycle: int) -> Tuple[bool, int]:
        """``(dead, death_cycle)`` for a corruption of ``register``
        effective from ``cycle``: dead iff its first access is a write
        (death = that cycle) or never comes (death = end of run)."""
        first = self.first_access(register, cycle)
        if first is None:
            return True, self.end_cycle
        kind, at = first
        if kind == 1:
            return True, at
        return False, -1


@dataclass
class McGoldenArtifact:
    """One recorded golden run: the fork substrate plus everything the
    analytic classifier needs.

    ``base`` is the plain PR 5 artifact (snapshots, exemption masks) —
    it alone is pickled to campaign pool workers; the digest columns
    and access indexes stay in the parent, where classification runs.
    """

    base: GoldenArtifact
    #: Per monitored core: first-access index over its access log.
    access: Tuple[AccessIndex, AccessIndex]
    #: Per monitored core, per cycle c: digest of post-step state after
    #: the step that ended cycle c (what a CCF at cycle c modulates).
    state_digests: Tuple[List[int], List[int]]
    #: Same indexing, SafeDM-visible activity window digests.
    activity_digests: Tuple[List[int], List[int]]
    #: Per cycle c: SafeDM diversity after the step ending cycle c
    #: (-1 = no report yet, else 0/1) — ``diversity_at_injection``.
    diversity: List[int]
    #: Per monitored core, per cycle c: the frontier program point (pc
    #: of the oldest not-yet-issued instruction) at the *start* of
    #: cycle c, :data:`~repro.lint.masking.FRONTIER_HALTED` once the
    #: core can never issue again.  This is what bridges static
    #: masking proofs to concrete trial cycles.
    frontier: Tuple[List[int], List[int]] = field(
        default_factory=lambda: ([], []))

    @property
    def checksum(self) -> int:
        return self.base.checksum

    @property
    def end_cycle(self) -> int:
        return self.base.end_cycle


def mc_golden_run(program: Program,
                  config: Optional[SocConfig] = None,
                  max_cycles: int = 2_000_000,
                  checkpoint_every: int = 0,
                  benchmark: str = "program",
                  sim_key: str = "",
                  record_ccf: bool = True) -> McGoldenArtifact:
    """The instrumented golden run (see module docstring).

    Mirrors :func:`~repro.fault.injector.golden_run_with_checkpoints`
    — same recorder swap-in, same post-step checkpoint timing as
    :meth:`MPSoC.run`, same halt-time checksum read — and additionally
    stamps the access logs with ``(3, cycle)`` markers and records the
    per-cycle digests (skipped when ``record_ccf`` is false: transient
    faults are fully specified, no digests needed).

    Always reference-tier: the recording register files are
    unsupported by the fast engine anyway, and the per-cycle hooks
    need the interpreter's cycle granularity.
    """
    soc = MPSoC(config=config)
    soc.start_redundant(program)
    if soc.cycle != 0:
        raise RuntimeError("fresh SoC expected at cycle 0")
    # Swap in recording register files AFTER start_redundant: the
    # gp/sp/tp environment writes are initial state, not accesses the
    # dead-register analysis should see.
    recorders: List[_RecordingRegisterFile] = []
    for index in soc.monitored:
        core = soc.cores[index]
        recorder = _RecordingRegisterFile(core.regfile)
        core.regfile = recorder
        recorders.append(recorder)
    log0, log1 = recorders[0].log, recorders[1].log
    core0 = soc.cores[soc.monitored[0]]
    core1 = soc.cores[soc.monitored[1]]
    watched = list(dict.fromkeys(
        soc.cores[idx] for pair in soc.monitor_pairs for idx in pair))
    blobs: List[bytes] = []
    cycles: List[int] = []
    sd0: List[int] = []
    sd1: List[int] = []
    ad0: List[int] = []
    ad1: List[int] = []
    diversity: List[int] = []
    frontier0: List[int] = []
    frontier1: List[int] = []
    step = soc.step
    take_checkpoints = checkpoint_every > 0
    while soc.cycle < max_cycles:
        if all(core.finished for core in watched):
            break
        now = soc.cycle
        log0.append((3, now))
        log1.append((3, now))
        # Frontier points are sampled before the step, like the
        # before-step transient injection hook they model.
        frontier0.append(_frontier_pc(core0))
        frontier1.append(_frontier_pc(core1))
        step()
        if record_ccf:
            sd0.append(state_digest(core0))
            sd1.append(state_digest(core1))
            ad0.append(_activity_digest(soc, 0))
            ad1.append(_activity_digest(soc, 1))
            report = soc.safedm.last_report
            diversity.append(-1 if report is None
                             else int(report.diversity))
        if take_checkpoints and soc.cycle % checkpoint_every == 0:
            index = len(blobs)
            for recorder in recorders:
                recorder.log.append((2, index))
            cycles.append(soc.cycle)
            blobs.append(soc.snapshot(
                benchmark=benchmark, checkpoint_every=checkpoint_every,
                sim_key=sim_key).encode())
    for monitor in soc.monitors:
        monitor.finish()
    # The halt-time checksum readout is an architectural read, stamped
    # at the end cycle so result-register faults stay live to the end.
    end_cycle = soc.cycle
    for recorder in recorders:
        recorder.log.append((3, end_cycle))
        recorder.log.append((0, RESULT_REGISTER))
    outputs = (core0.regfile.values[RESULT_REGISTER],
               core1.regfile.values[RESULT_REGISTER])
    if outputs[0] != outputs[1]:
        raise RuntimeError("golden run is not deterministic")
    masks = [_exempt_masks(recorder.log, len(blobs))
             for recorder in recorders]
    base = GoldenArtifact(
        checksum=outputs[0],
        outputs=outputs,
        end_cycle=end_cycle,
        finished=all(soc.cores[i].finished for i in soc.monitored),
        no_diversity_cycles=soc.safedm.stats.no_diversity_cycles,
        monitored=tuple(soc.monitored),
        checkpoint_every=checkpoint_every,
        checkpoint_cycles=tuple(cycles),
        exempt_masks=tuple(zip(*masks)) if blobs else (),
        snapshots=tuple(blobs),
        sim_key=sim_key,
    )
    return McGoldenArtifact(
        base=base,
        access=(AccessIndex(log0, end_cycle),
                AccessIndex(log1, end_cycle)),
        state_digests=(sd0, sd1),
        activity_digests=(ad0, ad1),
        diversity=diversity,
        frontier=(frontier0, frontier1),
    )


# -- analytic CCF effects ------------------------------------------------------

def ccf_effects(artifact: McGoldenArtifact, cycles: List[int],
                stimuli: List[int], backend: str = "python"
                ) -> Tuple[List[int], List[int], List[int], List[int]]:
    """Concrete per-core corruptions of CCF trials, no simulation.

    Reproduces :meth:`CommonCauseFault.effect_on` from the recorded
    digests: ``mixed = ((state ^ activity) * K + stimulus) & 2^32-1``,
    register ``1 + mixed % 31``, bit ``(mixed >> 8) % 64``.  The numpy
    path vectorizes the mixing in uint64 (no intermediate exceeds
    2^64 for 32-bit digests and stimuli, so the arithmetic is exact);
    the fallback runs the same integer ops per trial.  Returns
    ``(reg0, bit0, reg1, bit1)`` as plain lists.
    """
    if backend == "numpy" and _np is not None:
        c = _np.asarray(cycles, dtype=_np.int64)
        s = _np.asarray(stimuli, dtype=_np.uint64)
        out = []
        for core in (0, 1):
            state = _np.asarray(artifact.state_digests[core],
                                dtype=_np.uint64)[c]
            activity = _np.asarray(artifact.activity_digests[core],
                                   dtype=_np.uint64)[c]
            mixed = ((state ^ activity) * _np.uint64(GOLDEN_RATIO_32)
                     + s) & _np.uint64(0xFFFFFFFF)
            reg = _np.uint64(1) + mixed % _np.uint64(31)
            bit = (mixed >> _np.uint64(8)) % _np.uint64(64)
            out.append([int(v) for v in reg.tolist()])
            out.append([int(v) for v in bit.tolist()])
        return tuple(out)
    out = ([], [], [], [])
    for cycle, stimulus in zip(cycles, stimuli):
        for core in (0, 1):
            state = artifact.state_digests[core][cycle]
            activity = artifact.activity_digests[core][cycle]
            mixed = (((state ^ activity) * GOLDEN_RATIO_32 + stimulus)
                     & 0xFFFFFFFF)
            out[2 * core].append(1 + (mixed % 31))
            out[2 * core + 1].append((mixed >> 8) % 64)
    return out


# -- the classifier ------------------------------------------------------------

def classify_batch(artifact: McGoldenArtifact,
                   batch: TrialBatch,
                   static_filter=None) -> List[int]:
    """Resolve provably-masked trials analytically; return the rest.

    Fills the effect/diversity columns for every trial and the full
    result columns (status ``STATUS_ANALYTIC``) for trials whose
    corruptions are all dead.  Returns the ascending indices of the
    live trials the campaign must actually simulate.

    Effective cycles follow the injection hooks exactly: a transient
    corrupts *before* the step at its fault cycle ``c`` (first
    observable access at cycle >= c), a CCF corrupts on the clock edge
    *ending* cycle ``c`` (first observable access at cycle >= c + 1).

    With a ``static_filter`` (:class:`repro.lint.masking.
    StaticMaskFilter`), each trial is first checked against the static
    masking proofs at its frontier program point: a statically-proven
    trial resolves to the golden outcome with status ``STATUS_STATIC``
    *without consulting the access log at all* (its ``death_cycle``
    stays -1: the proof is path-universal, not cycle-dated).  The
    static masked set is a subset of the dynamic one
    (``tests/test_lint_masking.py``), so this changes which status a
    trial gets, never its classification.
    """
    cols = batch.columns
    base = artifact.base
    cycles = batch.column("cycle")
    live: List[int] = []
    golden_class = CLASS_MASKED if base.finished else CLASS_HANG
    if not base.finished:
        # A truncated golden run cuts every path mid-flight: the
        # static proofs (which quantify over *complete* paths) no
        # longer imply anything about the truncated log — e.g. the
        # result register is read at the truncation point before the
        # write that would have made it dead.  The dynamic log stays
        # exact, so fall back to it alone.
        static_filter = None

    def frontier_at(core: int, cycle: int) -> int:
        trace = artifact.frontier[core]
        if cycle >= len(trace):
            # The run is over: nothing issues after the last step, so
            # only the halt-time checksum read remains.
            return FRONTIER_HALTED
        return trace[cycle]

    if batch.kind == "ccf":
        stimuli = batch.column("stimulus")
        reg0, bit0, reg1, bit1 = ccf_effects(
            artifact, cycles, stimuli, backend=batch.backend)
        for i in range(batch.n):
            cols["eff_reg0"][i] = reg0[i]
            cols["eff_bit0"][i] = bit0[i]
            cols["eff_reg1"][i] = reg1[i]
            cols["eff_bit1"][i] = bit1[i]
            cols["diversity"][i] = artifact.diversity[cycles[i]]
        effective = [c + 1 for c in cycles]
        for i in range(batch.n):
            if (static_filter is not None
                    and static_filter.is_masked(
                        frontier_at(0, effective[i]), reg0[i])
                    and static_filter.is_masked(
                        frontier_at(1, effective[i]), reg1[i])):
                _fill_analytic(batch, i, base, golden_class, -1,
                               status=STATUS_STATIC)
                continue
            fate0 = artifact.access[0].corruption_fate(reg0[i],
                                                       effective[i])
            fate1 = artifact.access[1].corruption_fate(reg1[i],
                                                       effective[i])
            if fate0[0] and fate1[0]:
                _fill_analytic(batch, i, base, golden_class,
                               max(fate0[1], fate1[1]))
            else:
                live.append(i)
        return live

    registers = batch.column("register")
    targets = batch.column("core")
    bits = batch.column("bit")
    for i in range(batch.n):
        cols["eff_reg0"][i] = registers[i]
        cols["eff_bit0"][i] = bits[i]
        if (static_filter is not None
                and static_filter.is_masked(
                    frontier_at(targets[i], cycles[i]), registers[i])):
            _fill_analytic(batch, i, base, golden_class, -1,
                           status=STATUS_STATIC)
            continue
        dead, death = artifact.access[targets[i]].corruption_fate(
            registers[i], cycles[i])
        if dead:
            _fill_analytic(batch, i, base, golden_class, death)
        else:
            live.append(i)
    return live


def _fill_analytic(batch: TrialBatch, i: int, base: GoldenArtifact,
                   classification: int, death_cycle: int,
                   status: int = STATUS_ANALYTIC):
    """Row ``i`` is provably masked: its run is bisimilar to the golden
    run, so every result field is the golden run's."""
    cols = batch.columns
    cols["status"][i] = status
    cols["classification"][i] = classification
    cols["no_diversity_cycles"][i] = base.no_diversity_cycles
    cols["finished"][i] = int(base.finished)
    cols["output0"][i] = base.outputs[0]
    cols["output1"][i] = base.outputs[1]
    cols["end_cycle"][i] = base.end_cycle
    cols["death_cycle"][i] = death_cycle
