"""Structure-of-arrays trial storage for Monte-Carlo campaigns.

A :class:`TrialBatch` holds N fault trials as parallel columns instead
of N :class:`~repro.fault.InjectionResult` objects: the classification
pass (:mod:`repro.montecarlo.golden`) then runs vectorized over whole
columns, and the statistics layer (:mod:`repro.montecarlo.stats`)
aggregates without materializing per-trial objects.

Columns live in numpy arrays when numpy is importable and as plain
Python lists otherwise; every operation produces bit-identical values
on both backends (``tests/test_montecarlo.py`` asserts this), so the
``repro[mc]`` extra is a speedup, never a behaviour change.  The
backend is chosen per batch: ``"auto"`` (numpy when available),
``"numpy"``, or ``"python"``; the ``REPRO_MC_PURE_PYTHON=1``
environment variable forces the fallback globally.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from ..baselines.unaware import compare_outputs
from ..fault.injector import InjectionResult
from ..fault.models import FaultEffect

try:  # pragma: no cover - exercised via both backends in tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Trial kinds a batch can hold.
KINDS = ("ccf", "transient")

#: Classification codes (column ``classification``).
CLASS_PENDING = -1
CLASS_MASKED = 0
CLASS_DETECTED = 1
CLASS_SILENT_CCF = 2
CLASS_HANG = 3
CLASS_TRAP = 4
CLASS_NAMES = ("masked", "detected", "silent_ccf", "hang", "trap")

#: Status codes (column ``status``).
STATUS_PENDING = 0
STATUS_ANALYTIC = 1   # classified from the golden run, no simulation
STATUS_SIMULATED = 2  # forked from a checkpoint and simulated
STATUS_STATIC = 3     # proven masked by static analysis alone: no
                      # simulation AND no dynamic access-log lookup

#: (name, numpy dtype) per column; the fallback stores plain int lists.
_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("cycle", "int64"),          # fault cycle
    ("stimulus", "uint64"),      # ccf stimulus (0 for transients)
    ("core", "int16"),           # transient target core (-1 for ccf)
    ("register", "int16"),       # transient target register (-1 for ccf)
    ("bit", "int16"),            # transient target bit (-1 for ccf)
    ("status", "int16"),
    ("classification", "int16"),
    ("diversity", "int16"),      # -1 unknown/None, 0 False, 1 True
    ("no_diversity_cycles", "int64"),
    ("finished", "int16"),
    ("output0", "uint64"),
    ("output1", "uint64"),
    ("eff_reg0", "int16"),       # applied corruption, core 0 (-1 none)
    ("eff_bit0", "int16"),
    ("eff_reg1", "int16"),       # applied corruption, core 1 (-1 none)
    ("eff_bit1", "int16"),
    ("end_cycle", "int64"),
    ("death_cycle", "int64"),    # cycle the perturbation stopped
)                                # mattering (-1 while pending)


def numpy_available() -> bool:
    """True when the numpy backend can be used at all."""
    return _np is not None and os.environ.get(
        "REPRO_MC_PURE_PYTHON") != "1"


def resolve_backend(backend: str = "auto") -> str:
    """Normalize a backend request to ``"numpy"`` or ``"python"``."""
    if backend == "auto":
        return "numpy" if numpy_available() else "python"
    if backend == "numpy":
        if _np is None:
            raise RuntimeError(
                "numpy backend requested but numpy is not installed "
                "(pip install 'repro[mc]')")
        return "numpy"
    if backend == "python":
        return "python"
    raise ValueError("unknown TrialBatch backend %r "
                     "(expected auto|numpy|python)" % (backend,))


class TrialBatch:
    """N fault trials stored column-wise.

    Input columns (``cycle``, ``stimulus`` or ``core``/``register``/
    ``bit``) are filled by the sampler; the campaign engine fills the
    result columns either analytically (status ``STATUS_ANALYTIC``)
    or from a simulated :class:`InjectionResult`
    (``STATUS_SIMULATED``).
    """

    __slots__ = ("kind", "n", "backend", "golden_checksum", "columns")

    def __init__(self, kind: str, n: int, backend: str = "auto",
                 golden_checksum: int = 0):
        if kind not in KINDS:
            raise ValueError("unknown trial kind %r" % (kind,))
        self.kind = kind
        self.n = int(n)
        self.backend = resolve_backend(backend)
        self.golden_checksum = golden_checksum
        self.columns: Dict[str, object] = {}
        for name, dtype in _COLUMNS:
            fill = -1 if name in ("core", "register", "bit",
                                  "classification", "diversity",
                                  "eff_reg0", "eff_bit0", "eff_reg1",
                                  "eff_bit1", "death_cycle") else 0
            if self.backend == "numpy":
                self.columns[name] = _np.full(self.n, fill, dtype=dtype)
            else:
                self.columns[name] = [fill] * self.n

    # -- column access -----------------------------------------------------

    def column(self, name: str) -> List[int]:
        """One column as a plain list of Python ints (both backends)."""
        col = self.columns[name]
        if self.backend == "numpy":
            return [int(v) for v in col.tolist()]
        return list(col)

    def as_dict(self) -> Dict[str, List[int]]:
        """Every column as plain lists — the batch's portable form."""
        return {name: self.column(name) for name, _ in _COLUMNS}

    # -- per-trial fill ----------------------------------------------------

    def set_ccf_trial(self, i: int, cycle: int, stimulus: int):
        self.columns["cycle"][i] = cycle
        self.columns["stimulus"][i] = stimulus

    def set_transient_trial(self, i: int, cycle: int, core: int,
                            register: int, bit: int):
        self.columns["cycle"][i] = cycle
        self.columns["core"][i] = core
        self.columns["register"][i] = register
        self.columns["bit"][i] = bit

    def fill_from_result(self, i: int, result: InjectionResult,
                         death_cycle: Optional[int] = None,
                         status: int = STATUS_SIMULATED):
        """Copy one scalar :class:`InjectionResult` into row ``i``."""
        cols = self.columns
        cols["status"][i] = status
        cols["diversity"][i] = (-1 if result.diversity_at_injection
                                is None
                                else int(result.diversity_at_injection))
        cols["no_diversity_cycles"][i] = result.no_diversity_cycles
        cols["finished"][i] = int(result.finished)
        cols["output0"][i] = result.outcome.output0
        cols["output1"][i] = result.outcome.output1
        cols["end_cycle"][i] = result.end_cycle
        effects = result.effects
        if len(effects) >= 1 and effects[0] is not None:
            cols["eff_reg0"][i] = effects[0].register
            cols["eff_bit0"][i] = effects[0].bit
        if len(effects) >= 2 and effects[1] is not None:
            cols["eff_reg1"][i] = effects[1].register
            cols["eff_bit1"][i] = effects[1].bit
        code = CLASS_NAMES.index(result.classification)
        cols["classification"][i] = code
        cols["death_cycle"][i] = (result.end_cycle
                                  if death_cycle is None
                                  else death_cycle)

    # -- per-trial views ---------------------------------------------------

    def effects(self, i: int) -> tuple:
        """Row ``i``'s applied corruptions as a scalar effects tuple."""
        cols = self.columns
        out = []
        if int(cols["eff_reg0"][i]) >= 0:
            out.append(FaultEffect(register=int(cols["eff_reg0"][i]),
                                   bit=int(cols["eff_bit0"][i])))
        if int(cols["eff_reg1"][i]) >= 0:
            out.append(FaultEffect(register=int(cols["eff_reg1"][i]),
                                   bit=int(cols["eff_bit1"][i])))
        return tuple(out)

    def result(self, i: int) -> InjectionResult:
        """Row ``i`` reconstituted as a scalar :class:`InjectionResult`.

        Field-for-field identical to what the per-trial fork path
        returns for the same fault (the batched/scalar equivalence the
        benchmark and tests assert).
        """
        cols = self.columns
        diversity = int(cols["diversity"][i])
        return InjectionResult(
            fault_cycle=int(cols["cycle"][i]),
            outcome=compare_outputs(int(cols["output0"][i]),
                                    int(cols["output1"][i]),
                                    self.golden_checksum),
            diversity_at_injection=(None if diversity < 0
                                    else bool(diversity)),
            no_diversity_cycles=int(cols["no_diversity_cycles"][i]),
            effects=self.effects(i),
            finished=bool(int(cols["finished"][i])),
            end_cycle=int(cols["end_cycle"][i]),
            trapped=(int(cols["classification"][i]) == CLASS_TRAP),
        )

    def effects_identical(self, i: int) -> bool:
        cols = self.columns
        return (int(cols["eff_reg0"][i]) >= 0
                and int(cols["eff_reg0"][i]) == int(cols["eff_reg1"][i])
                and int(cols["eff_bit0"][i]) == int(cols["eff_bit1"][i]))

    # -- aggregation -------------------------------------------------------

    def pending_indices(self) -> List[int]:
        """Trials not yet classified (ascending, canonical order)."""
        status = self.columns["status"]
        if self.backend == "numpy":
            return [int(i) for i in
                    _np.nonzero(status == STATUS_PENDING)[0]]
        return [i for i, s in enumerate(status) if s == STATUS_PENDING]

    def count_status(self, status: int) -> int:
        col = self.columns["status"]
        if self.backend == "numpy":
            return int(_np.count_nonzero(col == status))
        return sum(1 for s in col if s == status)

    def count(self, classification: str) -> int:
        code = CLASS_NAMES.index(classification)
        col = self.columns["classification"]
        if self.backend == "numpy":
            return int(_np.count_nonzero(col == code))
        return sum(1 for c in col if c == code)

    @property
    def masked(self) -> int:
        return self.count("masked")

    @property
    def detected(self) -> int:
        return self.count("detected")

    @property
    def silent_ccf(self) -> int:
        return self.count("silent_ccf")

    @property
    def hangs(self) -> int:
        return self.count("hang")

    @property
    def traps(self) -> int:
        return self.count("trap")

    @property
    def silent_despite_diversity(self) -> int:
        """Identical-effect silent escapes SafeDM called diverse — must
        be zero (the paper's no-false-negative property; see
        :class:`repro.fault.CampaignResult`)."""
        total = 0
        cls = self.columns["classification"]
        div = self.columns["diversity"]
        for i in range(self.n):
            if (int(cls[i]) == CLASS_SILENT_CCF and int(div[i]) == 1
                    and self.effects_identical(i)):
                total += 1
        return total

    @property
    def silent_via_shared_state(self) -> int:
        """Silent escapes with differing corruptions (only possible via
        shared writable state between the replicas)."""
        total = 0
        cls = self.columns["classification"]
        for i in range(self.n):
            if (int(cls[i]) == CLASS_SILENT_CCF
                    and not self.effects_identical(i)):
                total += 1
        return total

    @property
    def detected_or_flagged(self) -> int:
        """Caught by comparison or flagged by SafeDM at injection."""
        total = 0
        cls = self.columns["classification"]
        div = self.columns["diversity"]
        for i in range(self.n):
            code = int(cls[i])
            if code == CLASS_DETECTED or (code == CLASS_SILENT_CCF
                                          and int(div[i]) == 0):
                total += 1
        return total

    def counts(self) -> Dict[str, int]:
        """Classification counts plus the campaign cross-checks."""
        out = {name: self.count(name) for name in CLASS_NAMES}
        out["silent_despite_diversity"] = self.silent_despite_diversity
        out["silent_via_shared_state"] = self.silent_via_shared_state
        out["detected_or_flagged"] = self.detected_or_flagged
        return out

    def summary(self) -> str:
        counts = self.counts()
        return ("trials=%d masked=%d detected=%d silent_ccf=%d hang=%d "
                "trap=%d silent_despite_diversity=%d static=%d "
                "analytic=%d simulated=%d"
                % (self.n, counts["masked"], counts["detected"],
                   counts["silent_ccf"], counts["hang"], counts["trap"],
                   counts["silent_despite_diversity"],
                   self.count_status(STATUS_STATIC),
                   self.count_status(STATUS_ANALYTIC),
                   self.count_status(STATUS_SIMULATED)))
