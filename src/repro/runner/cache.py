"""Content-addressed run cache for the sweep engine.

Every simulated run is deterministic: its outcome is a pure function
of the program image, the platform configuration, and the run
parameters (staggering, late core, arbiter start, cycle budget,
reporting mode).  The cache therefore keys each :class:`RunResult` by
a SHA-256 digest of exactly those inputs and persists it as JSON under
``benchmarks/out/.runcache/`` — repeated sweeps and ablations skip
already-simulated cells entirely.

A cache entry never goes stale silently: any change to the program
bytes or to any field of :class:`~repro.soc.config.SocConfig`
(including nested core/bus/cache/signature geometry) changes the key.
``CACHE_SCHEMA_VERSION`` is baked into every key so behavioural
changes to the simulator can invalidate old entries wholesale.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pathlib
import tempfile
from typing import Optional

from ..isa.program import Program
from ..soc.config import SocConfig
from ..soc.experiment import RunResult

#: Bump to invalidate every previously cached run (e.g. after a change
#: that alters simulated behaviour rather than just the API).
CACHE_SCHEMA_VERSION = 1

#: Default persistent location, per the repo layout: benchmark outputs
#: live under benchmarks/out/.
DEFAULT_CACHE_DIR = (pathlib.Path(__file__).resolve().parents[3]
                     / "benchmarks" / "out" / ".runcache")


def _canonical(obj):
    """Recursively reduce ``obj`` to JSON-serializable canonical form."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {field.name: _canonical(getattr(obj, field.name))
                for field in dataclasses.fields(obj)}
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, dict):
        return {str(key): _canonical(value)
                for key, value in sorted(obj.items())}
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise TypeError("cannot canonicalize %r for cache digest" % (obj,))


def _sha256(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def config_digest(config: Optional[SocConfig]) -> str:
    """Stable digest of a full platform configuration."""
    resolved = config if config is not None else SocConfig()
    payload = json.dumps(_canonical(resolved), sort_keys=True,
                         separators=(",", ":"))
    return _sha256(payload.encode("utf-8"))


def program_digest(program: Program) -> str:
    """Digest of the bytes that actually reach simulated memory."""
    hasher = hashlib.sha256()
    hasher.update(b"base:%d;entry:%d;" % (program.base, program.entry))
    for start, blob in sorted(program.image.items()):
        hasher.update(b"@%d:" % start)
        hasher.update(blob)
    return hasher.hexdigest()


def run_key(program_dig: str, config_dig: str, *, benchmark: str,
            stagger_nops: int, late_core: int, rr_start: int,
            max_cycles: int, mode_value: str, threshold: int) -> str:
    """Cache key for one redundant run."""
    payload = json.dumps({
        "schema": CACHE_SCHEMA_VERSION,
        "program": program_dig,
        "config": config_dig,
        "benchmark": benchmark,
        "stagger_nops": stagger_nops,
        "late_core": late_core,
        "rr_start": rr_start,
        "max_cycles": max_cycles,
        "mode": mode_value,
        "threshold": threshold,
    }, sort_keys=True, separators=(",", ":"))
    return _sha256(payload.encode("utf-8"))


class RunCache:
    """Persistent key -> :class:`RunResult` store (one JSON file each).

    Writes are atomic (tempfile + rename), so concurrent sweeps sharing
    a cache directory at worst redo a run — they never corrupt it.
    """

    def __init__(self, root=None):
        self.root = pathlib.Path(root) if root is not None \
            else DEFAULT_CACHE_DIR
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.root / (key + ".json")

    def get(self, key: str) -> Optional[RunResult]:
        """Cached result for ``key``, or None (counted as a miss)."""
        try:
            raw = self._path(key).read_text()
            payload = json.loads(raw)
            if payload.get("schema") != CACHE_SCHEMA_VERSION:
                raise ValueError("schema mismatch")
            result = RunResult(**payload["result"])
        except (OSError, ValueError, TypeError, KeyError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: RunResult):
        """Persist ``result`` under ``key`` (atomic)."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload = json.dumps({
            "schema": CACHE_SCHEMA_VERSION,
            "result": dataclasses.asdict(result),
        }, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1

    def clear(self):
        """Delete every cached entry."""
        if not self.root.is_dir():
            return
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
            except OSError:
                pass

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))
