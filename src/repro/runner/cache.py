"""Content-addressed run and trace caches for the sweep engines.

Every simulated run is deterministic, and SafeDM is purely
observational — so a run's inputs split into two layers:

* the **simulation key**: program image, platform configuration *minus*
  the signature section, staggering, late core, arbiter start, cycle
  budget.  Everything the cores/bus/memory ever see.
* the **monitor key** layered on top: the signature geometry
  (:class:`~repro.core.signatures.SignatureConfig`), reporting mode,
  and episode threshold.  None of it can perturb the simulation.

:func:`run_key` composes the two: a :class:`RunResult` is cached under
the full (simulation + monitor) key, while a raw signature-stream
:class:`~repro.trace.stream_trace.StreamTrace` is cached under the
simulation key alone — one captured simulation serves every monitor
configuration via :mod:`repro.replay`.

Entries never go stale silently: any input change changes the key, and
``CACHE_SCHEMA_VERSION`` is baked into every key so behavioural changes
to the simulator can invalidate old entries wholesale.  Entries that
*do* turn out dead on read (corrupt JSON, old schema) are evicted from
disk immediately instead of missing forever.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pathlib
import tempfile
from typing import Optional

from ..core.signatures import SignatureConfig
from ..isa.program import Program
from ..soc.config import SocConfig
from ..soc.experiment import RunResult
from ..trace.stream_trace import StreamTrace

#: Bump to invalidate every previously cached run (e.g. after a change
#: that alters simulated behaviour rather than just the API).
#: 2: the key split into simulation + monitor layers.
#: 3: checkpoint snapshots and checkpoint indexes join the store.
CACHE_SCHEMA_VERSION = 3

#: Default persistent location, per the repo layout: benchmark outputs
#: live under benchmarks/out/.
DEFAULT_CACHE_DIR = (pathlib.Path(__file__).resolve().parents[3]
                     / "benchmarks" / "out" / ".runcache")


def _canonical(obj):
    """Recursively reduce ``obj`` to JSON-serializable canonical form."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {field.name: _canonical(getattr(obj, field.name))
                for field in dataclasses.fields(obj)}
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, dict):
        return {str(key): _canonical(value)
                for key, value in sorted(obj.items())}
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise TypeError("cannot canonicalize %r for cache digest" % (obj,))


def _sha256(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def _digest_payload(obj) -> str:
    return _sha256(json.dumps(_canonical(obj), sort_keys=True,
                              separators=(",", ":")).encode("utf-8"))


def config_digest(config: Optional[SocConfig]) -> str:
    """Stable digest of a full platform configuration."""
    return _digest_payload(config if config is not None else SocConfig())


def sim_config_digest(config: Optional[SocConfig]) -> str:
    """Digest of the platform configuration the *simulation* sees.

    The ``signature`` section is excluded: SafeDM only observes, so the
    signature geometry cannot change a single simulated cycle.  It is
    keyed separately by :func:`signature_digest` / :func:`monitor_key`.
    """
    resolved = config if config is not None else SocConfig()
    return _digest_payload({
        field.name: _canonical(getattr(resolved, field.name))
        for field in dataclasses.fields(resolved)
        if field.name != "signature"
    })


def signature_digest(signature: Optional[SignatureConfig]) -> str:
    """Stable digest of a signature-unit geometry."""
    return _digest_payload(signature if signature is not None
                           else SignatureConfig())


def program_digest(program: Program) -> str:
    """Digest of the bytes that actually reach simulated memory."""
    hasher = hashlib.sha256()
    hasher.update(b"base:%d;entry:%d;" % (program.base, program.entry))
    for start, blob in sorted(program.image.items()):
        hasher.update(b"@%d:" % start)
        hasher.update(blob)
    return hasher.hexdigest()


def simulation_key(program_dig: str, sim_cfg_dig: str, *, benchmark: str,
                   stagger_nops: int, late_core: int, rr_start: int,
                   max_cycles: int) -> str:
    """Cache key for one simulation (monitor-independent).

    Stream traces are content-addressed by this key: any monitor
    configuration replayed over the same simulation shares it.
    """
    payload = json.dumps({
        "schema": CACHE_SCHEMA_VERSION,
        "kind": "simulation",
        "program": program_dig,
        "config": sim_cfg_dig,
        "benchmark": benchmark,
        "stagger_nops": stagger_nops,
        "late_core": late_core,
        "rr_start": rr_start,
        "max_cycles": max_cycles,
    }, sort_keys=True, separators=(",", ":"))
    return _sha256(payload.encode("utf-8"))


def monitor_key(sim_key: str, *, signature_dig: str, mode_value: str,
                threshold: int) -> str:
    """Monitor-configuration key layered on a simulation key."""
    payload = json.dumps({
        "schema": CACHE_SCHEMA_VERSION,
        "kind": "monitor",
        "simulation": sim_key,
        "signature": signature_dig,
        "mode": mode_value,
        "threshold": threshold,
    }, sort_keys=True, separators=(",", ":"))
    return _sha256(payload.encode("utf-8"))


def checkpoint_key(sim_key: str, *, cycle: int, every: int) -> str:
    """Cache key for one mid-run snapshot of a simulation.

    Keyed by (simulation, cycle, cadence): a simulation's state at
    cycle ``c`` is deterministic, and including the cadence keeps
    differently-spaced checkpoint sets from shadowing each other's
    indexes.
    """
    payload = json.dumps({
        "schema": CACHE_SCHEMA_VERSION,
        "kind": "checkpoint",
        "simulation": sim_key,
        "cycle": cycle,
        "every": every,
    }, sort_keys=True, separators=(",", ":"))
    return _sha256(payload.encode("utf-8"))


def checkpoint_index_key(sim_key: str, *, every: int) -> str:
    """Cache key for the checkpoint index of one (simulation, cadence)."""
    payload = json.dumps({
        "schema": CACHE_SCHEMA_VERSION,
        "kind": "checkpoint_index",
        "simulation": sim_key,
        "every": every,
    }, sort_keys=True, separators=(",", ":"))
    return _sha256(payload.encode("utf-8"))


def run_key(program_dig: str, config: Optional[SocConfig] = None, *,
            benchmark: str, stagger_nops: int, late_core: int,
            rr_start: int, max_cycles: int, mode_value: str,
            threshold: int) -> str:
    """Full cache key for one redundant run: monitor over simulation."""
    resolved = config if config is not None else SocConfig()
    sim_key = simulation_key(program_dig, sim_config_digest(resolved),
                             benchmark=benchmark,
                             stagger_nops=stagger_nops,
                             late_core=late_core, rr_start=rr_start,
                             max_cycles=max_cycles)
    return monitor_key(sim_key,
                       signature_dig=signature_digest(resolved.signature),
                       mode_value=mode_value, threshold=threshold)


class _DiskStore:
    """Shared plumbing: atomic one-file-per-key stores under ``root``.

    Writes are atomic (tempfile + rename), so concurrent sweeps sharing
    a cache directory at worst redo a run — they never corrupt it.
    Entries that fail to decode are *evicted* (unlinked) rather than
    left to miss forever.
    """

    SUFFIX = ".json"

    def __init__(self, root=None):
        self.root = pathlib.Path(root) if root is not None \
            else DEFAULT_CACHE_DIR
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.root / (key + self.SUFFIX)

    def _read(self, key: str) -> Optional[bytes]:
        """Raw entry bytes, or None (a plain miss) when absent."""
        try:
            return self._path(key).read_bytes()
        except OSError:
            return None

    def _evict(self, key: str):
        """Drop a dead entry so it cannot keep missing forever."""
        try:
            self._path(key).unlink()
        except OSError:
            pass
        self.evictions += 1

    def _store(self, key: str, payload: bytes):
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_name, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1

    def clear(self):
        """Delete every cached entry."""
        if not self.root.is_dir():
            return
        for path in self.root.glob("*" + self.SUFFIX):
            try:
                path.unlink()
            except OSError:
                pass

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*" + self.SUFFIX))


class RunCache(_DiskStore):
    """Persistent full-key -> :class:`RunResult` store (JSON files)."""

    SUFFIX = ".json"

    def get(self, key: str) -> Optional[RunResult]:
        """Cached result for ``key``, or None (counted as a miss).

        Corrupt or stale-schema entries are deleted on the spot and
        counted in :attr:`evictions` (surfaced as the
        ``repro_runner_cache_evictions_total`` telemetry counter).
        """
        raw = self._read(key)
        if raw is None:
            self.misses += 1
            return None
        try:
            payload = json.loads(raw)
            if payload.get("schema") != CACHE_SCHEMA_VERSION:
                raise ValueError("schema mismatch")
            result = RunResult(**payload["result"])
        except (ValueError, TypeError, KeyError):
            self._evict(key)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: RunResult):
        """Persist ``result`` under ``key`` (atomic)."""
        payload = json.dumps({
            "schema": CACHE_SCHEMA_VERSION,
            "result": dataclasses.asdict(result),
        }, sort_keys=True)
        self._store(key, payload.encode("utf-8"))


class TraceCache(_DiskStore):
    """Persistent simulation-key -> :class:`StreamTrace` store.

    Lives alongside the run cache (same directory, ``.trace`` files).
    The trace carries its own schema version in its binary header, so
    decode failures — including format bumps — evict like the run
    cache's.
    """

    SUFFIX = ".trace"

    def get(self, sim_key: str) -> Optional[StreamTrace]:
        """Cached trace for ``sim_key``, or None (counted as a miss)."""
        raw = self._read(sim_key)
        if raw is None:
            self.misses += 1
            return None
        try:
            trace = StreamTrace.decode(raw)
        except (ValueError, TypeError, KeyError, EOFError):
            self._evict(sim_key)
            self.misses += 1
            return None
        self.hits += 1
        return trace

    def put(self, sim_key: str, trace: StreamTrace):
        """Persist ``trace`` under its simulation key (atomic)."""
        self._store(sim_key, trace.encode())


class CheckpointStore(_DiskStore):
    """Persistent checkpoint-key -> :class:`Snapshot` store.

    Lives alongside the run cache (same directory, ``.ckpt`` files).
    Snapshots carry their own schema version in the binary header
    (:data:`repro.checkpoint.CHECKPOINT_SCHEMA_VERSION`), so format
    bumps evict on read like the other stores.
    """

    SUFFIX = ".ckpt"

    def __init__(self, root=None):
        super().__init__(root)
        self.bytes_written = 0

    def get(self, key: str):
        """Cached snapshot for ``key``, or None (counted as a miss)."""
        from ..checkpoint import Snapshot
        raw = self._read(key)
        if raw is None:
            self.misses += 1
            return None
        try:
            snapshot = Snapshot.decode(raw)
        except (ValueError, TypeError, KeyError, EOFError):
            self._evict(key)
            self.misses += 1
            return None
        self.hits += 1
        return snapshot

    def get_blob(self, key: str) -> Optional[bytes]:
        """Like :meth:`get`, but return the validated encoded form.

        Used by consumers that decode lazily (e.g. the fork engine,
        which ships encoded snapshots to pool workers).
        """
        from ..checkpoint import Snapshot
        raw = self._read(key)
        if raw is None:
            self.misses += 1
            return None
        try:
            Snapshot.decode(raw)
        except (ValueError, TypeError, KeyError, EOFError):
            self._evict(key)
            self.misses += 1
            return None
        self.hits += 1
        return raw

    def put(self, key: str, snapshot):
        """Persist ``snapshot`` under ``key`` (atomic)."""
        self.put_blob(key, snapshot.encode())

    def put_blob(self, key: str, blob: bytes):
        """Persist an already-encoded snapshot under ``key`` (atomic)."""
        self._store(key, blob)
        self.bytes_written += len(blob)


class CheckpointIndexStore(_DiskStore):
    """Persistent index of one simulation's checkpoint set.

    The index (a small JSON payload: checkpoint cycles, golden-run
    summary, liveness masks) is what makes a checkpointed campaign
    warm-startable: if the index is present, the golden simulation can
    be skipped and the snapshots fetched lazily by key.
    """

    SUFFIX = ".ckidx"

    def get(self, key: str) -> Optional[dict]:
        """Cached index payload for ``key``, or None."""
        raw = self._read(key)
        if raw is None:
            self.misses += 1
            return None
        try:
            payload = json.loads(raw)
            if payload.get("schema") != CACHE_SCHEMA_VERSION:
                raise ValueError("schema mismatch")
            index = payload["index"]
        except (ValueError, TypeError, KeyError):
            self._evict(key)
            self.misses += 1
            return None
        self.hits += 1
        return index

    def put(self, key: str, index: dict):
        """Persist ``index`` under ``key`` (atomic)."""
        payload = json.dumps({
            "schema": CACHE_SCHEMA_VERSION,
            "index": index,
        }, sort_keys=True)
        self._store(key, payload.encode("utf-8"))
