"""Progress / ETA reporting for long sweeps.

One line per completed run on ``stderr`` (the tables themselves go to
``stdout``), with elapsed time, an ETA extrapolated from the measured
per-run throughput, and a running cache-hit count.
"""

from __future__ import annotations

import sys
import time


class SweepProgress:
    """Line-oriented progress reporter for a fixed-size run set."""

    def __init__(self, total: int, label: str = "sweep", stream=None):
        self.total = total
        self.label = label
        self.done = 0
        self.cached = 0
        self._stream = stream if stream is not None else sys.stderr
        self._start = time.perf_counter()

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self._start

    def eta(self) -> float:
        """Remaining seconds, extrapolated from completed work."""
        if not self.done:
            return 0.0
        return self.elapsed / self.done * (self.total - self.done)

    def update(self, description: str, cached: bool = False):
        """Record one finished run and print a progress line."""
        self.done += 1
        if cached:
            self.cached += 1
        width = len(str(self.total))
        print("[%*d/%d] %-28s %7.1fs elapsed, ETA %6.1fs%s"
              % (width, self.done, self.total, description,
                 self.elapsed, self.eta(),
                 (", %d cached" % self.cached) if self.cached else ""),
              file=self._stream)

    def finish(self):
        """Print the closing summary line."""
        print("%s: %d runs (%d cached) in %.1fs"
              % (self.label, self.done, self.cached, self.elapsed),
              file=self._stream)


class NullProgress:
    """No-op progress sink (same interface as :class:`SweepProgress`)."""

    def update(self, description: str, cached: bool = False):
        pass

    def finish(self):
        pass
