"""Process-pool sweep engine for the Table I experiment protocol.

The paper's headline artefact is an embarrassingly parallel workload:
29 kernels x 4 staggering values x 2 repeated runs, every run a fully
independent simulation.  :class:`ParallelSweep` fans those runs out
across worker processes and merges the results deterministically:

* work is expressed as :class:`RunSpec` values whose canonical order
  per cell mirrors the serial protocol in
  :func:`repro.soc.experiment.run_cell` exactly,
* results are merged by spec, never by completion order, so the
  produced :class:`CellResult` values are field-for-field identical to
  the serial path's no matter how the pool schedules the work,
* an optional content-addressed :class:`RunCache` skips runs whose
  (program bytes, SocConfig, run parameters) digest has been simulated
  before.

``jobs=1`` degrades to a plain in-process loop (no pool, no pickling),
which doubles as the serial reference implementation.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.monitor import ReportingMode
from ..isa.program import Program
from ..soc.config import SocConfig
from ..soc.experiment import (
    PAPER_STAGGER_VALUES,
    CellResult,
    RunResult,
    run_redundant,
)
from .cache import (
    RunCache,
    TraceCache,
    monitor_key,
    program_digest,
    signature_digest,
    sim_config_digest,
    simulation_key,
)
from .progress import NullProgress, SweepProgress


@dataclass(frozen=True)
class RunSpec:
    """One independent redundant run, identified by value.

    Benchmarks are referenced by registry name so a spec pickles as a
    few strings/ints; workers rebuild the program image locally.
    """

    benchmark: str
    stagger_nops: int
    late_core: int
    rr_start: int
    max_cycles: int

    def describe(self) -> str:
        return "%s nops=%d late=%d rr=%d" % (
            self.benchmark, self.stagger_nops, self.late_core,
            self.rr_start)


def cell_specs(benchmark: str, stagger_nops: int,
               max_cycles: int = 2_000_000) -> Tuple[RunSpec, ...]:
    """The canonical run list for one Table I cell.

    Mirrors :func:`repro.soc.experiment.run_cell`: without staggering,
    repeated runs vary the arbiter start; with staggering, one run per
    late-core choice.
    """
    if stagger_nops == 0:
        return tuple(RunSpec(benchmark, 0, 1, rr_start, max_cycles)
                     for rr_start in (0, 1))
    return tuple(RunSpec(benchmark, stagger_nops, late_core, 0,
                         max_cycles)
                 for late_core in (0, 1))


def merge_cell(benchmark: str, stagger_nops: int,
               runs: Sequence[RunResult]) -> CellResult:
    """Fold a cell's runs into its Table I entry (max across runs)."""
    return CellResult(
        benchmark=benchmark,
        stagger_nops=stagger_nops,
        zero_staggering_cycles=max(r.zero_staggering_cycles
                                   for r in runs),
        no_diversity_cycles=max(r.no_diversity_cycles for r in runs),
        runs=list(runs),
    )


def execute_spec(spec: RunSpec, config: Optional[SocConfig] = None,
                 mode: ReportingMode = ReportingMode.POLLING,
                 threshold: int = 1,
                 program: Optional[Program] = None,
                 engine: str = "reference") -> RunResult:
    """Simulate one spec (building the program image if not supplied)."""
    if program is None:
        from ..workloads import program as build_program
        program = build_program(spec.benchmark)
    return run_redundant(program, benchmark=spec.benchmark,
                         stagger_nops=spec.stagger_nops,
                         late_core=spec.late_core,
                         rr_start=spec.rr_start,
                         config=config, mode=mode, threshold=threshold,
                         max_cycles=spec.max_cycles, engine=engine)


# -- worker-process plumbing --------------------------------------------------

_WORKER: dict = {}


def _init_worker(config: Optional[SocConfig], mode: ReportingMode,
                 threshold: int, trace_dir=None,
                 engine: str = "reference"):
    """Pool initializer: stash per-sweep constants in the worker."""
    _WORKER["config"] = config
    _WORKER["mode"] = mode
    _WORKER["threshold"] = threshold
    _WORKER["programs"] = {}
    _WORKER["trace_dir"] = trace_dir
    _WORKER["prog_digs"] = {}
    _WORKER["engine"] = engine


def _worker_program(benchmark: str) -> Program:
    programs = _WORKER["programs"]
    program = programs.get(benchmark)
    if program is None:
        from ..workloads import program as build_program
        program = programs[benchmark] = build_program(benchmark)
    return program


def _run_spec_in_worker(spec: RunSpec) -> Tuple[RunResult, float]:
    """Execute one spec inside a pool worker (program image memoized).

    Returns the result together with the worker-side wall time, so the
    parent can report per-spec timings without trusting its own
    scheduling-noise-laden completion deltas.
    """
    program = _worker_program(spec.benchmark)
    start = time.perf_counter()
    result = execute_spec(spec, config=_WORKER["config"],
                          mode=_WORKER["mode"],
                          threshold=_WORKER["threshold"], program=program,
                          engine=_WORKER.get("engine", "reference"))
    return result, time.perf_counter() - start


def _capture_spec_in_worker(spec: RunSpec) -> Tuple[RunResult, float]:
    """Like :func:`_run_spec_in_worker`, but capture a stream trace.

    The worker writes the trace straight into the shared trace cache
    (atomic one-file-per-key store) instead of pickling megabytes of
    samples back to the parent; it recomputes the simulation key
    locally from the same inputs the parent would use.
    """
    from ..soc.experiment import run_redundant_captured
    program = _worker_program(spec.benchmark)
    config = _WORKER["config"]
    prog_digs = _WORKER["prog_digs"]
    prog_dig = prog_digs.get(spec.benchmark)
    if prog_dig is None:
        prog_dig = prog_digs[spec.benchmark] = program_digest(program)
    sim_key = simulation_key(prog_dig, sim_config_digest(config),
                             benchmark=spec.benchmark,
                             stagger_nops=spec.stagger_nops,
                             late_core=spec.late_core,
                             rr_start=spec.rr_start,
                             max_cycles=spec.max_cycles)
    start = time.perf_counter()
    result, trace = run_redundant_captured(
        program, benchmark=spec.benchmark,
        stagger_nops=spec.stagger_nops, late_core=spec.late_core,
        config=config, mode=_WORKER["mode"],
        threshold=_WORKER["threshold"], max_cycles=spec.max_cycles,
        rr_start=spec.rr_start, sim_key=sim_key,
        engine=_WORKER.get("engine", "reference"))
    seconds = time.perf_counter() - start
    TraceCache(_WORKER["trace_dir"]).put(sim_key, trace)
    return result, seconds


# -- the engine ---------------------------------------------------------------

class ParallelSweep:
    """Fan Table I cells out over a process pool, with result caching.

    Parameters
    ----------
    jobs:
        Worker-process count; ``None`` means ``os.cpu_count()``.
        ``jobs=1`` runs serially in-process (the reference path).
    use_cache:
        Consult/populate the content-addressed run cache.
    cache_dir:
        Cache location override (default:
        ``benchmarks/out/.runcache/``).
    progress:
        ``True`` for stderr progress/ETA lines, ``False`` for silence,
        or any object with ``update(description, cached)`` /
        ``finish()``.
    metrics:
        Optional :class:`repro.telemetry.MetricsRegistry`; every
        ``run_cells`` folds per-spec wall time, cache hits, and worker
        utilization into it.  Counter folds walk the canonical spec
        order — never completion order — so counter values are
        identical whatever ``jobs`` is (mirroring the result merge).
    tracer:
        Optional :class:`repro.telemetry.Tracer`; receives one span
        per executed run plus a ``sweep`` umbrella span.
    capture:
        Record every *executed* run's raw signature streams into the
        trace cache (keyed by simulation key), so later sweeps with a
        different monitor configuration can replay instead of
        re-simulate.
    replay:
        Before simulating a run-cache miss, look for a cached stream
        trace of the same simulation and recompute the result from it
        via :mod:`repro.replay` (bit-identical, orders of magnitude
        cheaper).
    engine:
        Execution tier for live simulations (:mod:`repro.engine`):
        ``"reference"`` or ``"fast"``.  Deliberately *not* part of the
        run-cache or trace-cache keys — the tiers are bit-identical,
        so a result simulated under one engine is valid for the other
        and cache entries stay shareable across engines.

    When ``jobs`` is unspecified, hosts without real parallelism
    (``os.cpu_count() <= 2``) clamp to serial in-process execution:
    BENCH_runtime.json on a 1-CPU container measured the pool *slower*
    than serial (speedup 0.959) because worker spawn and pickling buy
    nothing without spare cores.  The decision is recorded as the
    ``repro_runner_serial_fallback`` gauge.
    """

    #: ``os.cpu_count()`` at or below which ``jobs=None`` means serial.
    SERIAL_FALLBACK_CPUS = 2

    def __init__(self, jobs: Optional[int] = None, use_cache: bool = True,
                 cache_dir=None, progress=False,
                 mode: ReportingMode = ReportingMode.POLLING,
                 threshold: int = 1, metrics=None, tracer=None,
                 capture: bool = False, replay: bool = False,
                 engine: str = "reference"):
        self.serial_fallback = False
        if jobs is None:
            cpus = os.cpu_count() or 1
            if cpus <= self.SERIAL_FALLBACK_CPUS:
                jobs = 1
                self.serial_fallback = True
            else:
                jobs = cpus
        self.jobs = max(1, jobs)
        self.cache = RunCache(cache_dir) if use_cache else None
        self.capture = capture
        self.replay = replay
        self.traces = TraceCache(cache_dir) if (capture or replay) \
            else None
        self.mode = mode
        self.threshold = threshold
        self.engine = engine
        self.metrics = metrics
        if tracer is None:
            from ..telemetry import NULL_TRACER
            tracer = NULL_TRACER
        self.tracer = tracer
        self._progress_setting = progress
        #: Worker-side wall seconds per executed spec, last run_cells.
        self._timings: Dict[RunSpec, float] = {}
        self._cached_specs: set = set()
        self._replayed_specs: set = set()
        self._captured_specs: set = set()
        #: Evictions already folded into the metrics registry.
        self._evictions_folded = 0

    # -- public API -----------------------------------------------------

    def run_cells(self, work: Iterable[Tuple[str, int]],
                  config: Optional[SocConfig] = None,
                  max_cycles: int = 2_000_000
                  ) -> Dict[Tuple[str, int], CellResult]:
        """Run every ``(benchmark, stagger_nops)`` cell in ``work``.

        Returns cells keyed by ``(benchmark, stagger_nops)``; the
        mapping preserves the order work was given in, while execution
        order is whatever the pool decides — merging is keyed by spec,
        so the two never interact.
        """
        cells: List[Tuple[str, int]] = []
        for item in work:
            if item not in cells:
                cells.append(item)
        spec_lists = {cell: cell_specs(cell[0], cell[1], max_cycles)
                      for cell in cells}
        all_specs: List[RunSpec] = []
        for cell in cells:
            all_specs.extend(spec_lists[cell])

        progress = self._make_progress(len(all_specs))
        wall_start = time.perf_counter()
        with self.tracer.span("sweep", runs=len(all_specs),
                              jobs=self.jobs):
            results = self._execute(all_specs, config, progress)
        progress.finish()
        self._record_metrics(all_specs, results,
                             time.perf_counter() - wall_start)

        return {cell: merge_cell(cell[0], cell[1],
                                 [results[spec]
                                  for spec in spec_lists[cell]])
                for cell in cells}

    def run_table(self, names: Sequence[str],
                  stagger_values: Sequence[int] = PAPER_STAGGER_VALUES,
                  config: Optional[SocConfig] = None,
                  max_cycles: int = 2_000_000
                  ) -> Dict[str, List[CellResult]]:
        """Run full Table I rows; same shape as serial ``run_row`` maps."""
        work = [(name, nops) for name in names
                for nops in stagger_values]
        merged = self.run_cells(work, config=config,
                                max_cycles=max_cycles)
        return {name: [merged[(name, nops)] for nops in stagger_values]
                for name in names}

    # -- internals ------------------------------------------------------

    def _make_progress(self, total: int):
        setting = self._progress_setting
        if setting is True:
            return SweepProgress(total, label="sweep")
        if setting:
            return setting
        return NullProgress()

    def _execute(self, specs: Sequence[RunSpec],
                 config: Optional[SocConfig],
                 progress) -> Dict[RunSpec, RunResult]:
        results: Dict[RunSpec, RunResult] = {}
        keys: Dict[RunSpec, str] = {}
        sim_keys: Dict[RunSpec, str] = {}
        pending: List[RunSpec] = []
        self._timings = {}
        self._cached_specs = set()
        self._replayed_specs = set()
        self._captured_specs = set()

        if self.cache is not None or self.traces is not None:
            resolved = config if config is not None else SocConfig()
            sim_cfg_dig = sim_config_digest(resolved)
            sig_dig = signature_digest(resolved.signature)
            prog_digs: Dict[str, str] = {}
            from ..workloads import program as build_program
            for spec in specs:
                prog_dig = prog_digs.get(spec.benchmark)
                if prog_dig is None:
                    prog_dig = program_digest(build_program(spec.benchmark))
                    prog_digs[spec.benchmark] = prog_dig
                sim_key = simulation_key(prog_dig, sim_cfg_dig,
                                         benchmark=spec.benchmark,
                                         stagger_nops=spec.stagger_nops,
                                         late_core=spec.late_core,
                                         rr_start=spec.rr_start,
                                         max_cycles=spec.max_cycles)
                sim_keys[spec] = sim_key
                keys[spec] = monitor_key(sim_key, signature_dig=sig_dig,
                                         mode_value=self.mode.value,
                                         threshold=self.threshold)
                if self.cache is not None:
                    cached = self.cache.get(keys[spec])
                    if cached is not None:
                        results[spec] = cached
                        self._cached_specs.add(spec)
                        progress.update(spec.describe(), cached=True)
                        continue
                pending.append(spec)
        else:
            pending = list(specs)

        if self.replay and self.traces is not None and pending:
            pending = self._replay_pending(pending, config, results,
                                           progress, sim_keys)

        if pending:
            if self.jobs == 1:
                self._execute_serial(pending, config, results, progress,
                                     sim_keys)
            else:
                self._execute_pool(pending, config, results, progress)
            if self.capture and self.jobs > 1:
                self._captured_specs.update(pending)

        if self.cache is not None:
            for spec in pending:
                self.cache.put(keys[spec], results[spec])
            for spec in self._replayed_specs:
                self.cache.put(keys[spec], results[spec])
        return results

    def _replay_pending(self, pending: Sequence[RunSpec],
                        config: Optional[SocConfig],
                        results: Dict[RunSpec, RunResult],
                        progress,
                        sim_keys: Dict[RunSpec, str]) -> List[RunSpec]:
        """Answer run-cache misses from cached stream traces.

        Returns the specs still needing live simulation.  Imported
        lazily: ``repro.replay`` itself depends on this package.
        """
        from ..replay.engine import replay_run
        resolved = config if config is not None else SocConfig()
        still_pending: List[RunSpec] = []
        for spec in pending:
            trace = self.traces.get(sim_keys[spec])
            if trace is None:
                still_pending.append(spec)
                continue
            with self.tracer.span("replay", spec=spec.describe()):
                start = time.perf_counter()
                results[spec] = replay_run(
                    trace, signature=resolved.signature,
                    mode=self.mode, threshold=self.threshold)
                self._timings[spec] = time.perf_counter() - start
            self._replayed_specs.add(spec)
            progress.update(spec.describe(), cached=True)
        return still_pending

    def _record_metrics(self, all_specs: Sequence[RunSpec],
                        results: Dict[RunSpec, RunResult],
                        wall_seconds: float):
        """Fold one run_cells pass into the attached registry.

        Counter folds iterate ``all_specs`` (the canonical protocol
        order), exactly like result merging — so ``jobs=1`` and
        ``jobs=N`` sweeps produce identical counter values.  Gauges
        and the wall-time histogram carry the schedule-dependent part
        (timings, utilization) and are excluded from that guarantee.
        """
        registry = self.metrics
        if registry is None:
            return
        registry.gauge("repro_runner_jobs").set(self.jobs)
        registry.gauge("repro_runner_serial_fallback").set(
            1 if self.serial_fallback else 0)
        runs = registry.counter("repro_runner_runs_total")
        cached = registry.counter("repro_runner_cache_hits_total")
        executed = registry.counter("repro_runner_executed_total")
        cycles = registry.counter("repro_runner_simulated_cycles_total")
        committed = registry.counter("repro_runner_committed_total")
        no_div = registry.counter(
            "repro_runner_no_diversity_cycles_total")
        seconds = registry.histogram("repro_runner_run_seconds")
        for spec in all_specs:
            result = results[spec]
            runs.inc()
            cycles.inc(result.cycles)
            committed.inc(result.committed)
            no_div.inc(result.no_diversity_cycles)
            if spec in self._cached_specs:
                cached.inc()
            else:
                executed.inc()
                timing = self._timings.get(spec)
                if timing is not None:
                    seconds.observe(timing)
        if self.capture or self.replay:
            replays = registry.counter("repro_replay_replays_total")
            captures = registry.counter("repro_replay_captures_total")
            for spec in all_specs:
                if spec in self._replayed_specs:
                    replays.inc()
                if spec in self._captured_specs:
                    captures.inc()
        if self.cache is not None or self.traces is not None:
            seen = ((self.cache.evictions if self.cache is not None
                     else 0)
                    + (self.traces.evictions if self.traces is not None
                       else 0))
            registry.counter("repro_runner_cache_evictions_total").inc(
                seen - self._evictions_folded)
            self._evictions_folded = seen
        busy = sum(self._timings.values())
        if wall_seconds > 0:
            registry.gauge("repro_runner_worker_utilization").set(
                busy / (wall_seconds * self.jobs))

    def _execute_serial(self, pending, config, results, progress,
                        sim_keys=None):
        programs: Dict[str, Program] = {}
        capturing = self.capture and self.traces is not None \
            and sim_keys is not None
        from ..workloads import program as build_program
        if capturing:
            from ..soc.experiment import run_redundant_captured
        for spec in pending:
            program = programs.get(spec.benchmark)
            if program is None:
                program = programs[spec.benchmark] = \
                    build_program(spec.benchmark)
            with self.tracer.span("run", spec=spec.describe()):
                start = time.perf_counter()
                if capturing:
                    result, trace = run_redundant_captured(
                        program, benchmark=spec.benchmark,
                        stagger_nops=spec.stagger_nops,
                        late_core=spec.late_core, config=config,
                        mode=self.mode, threshold=self.threshold,
                        max_cycles=spec.max_cycles,
                        rr_start=spec.rr_start,
                        sim_key=sim_keys[spec],
                        engine=self.engine)
                    results[spec] = result
                    self.traces.put(sim_keys[spec], trace)
                    self._captured_specs.add(spec)
                else:
                    results[spec] = execute_spec(spec, config=config,
                                                 mode=self.mode,
                                                 threshold=self.threshold,
                                                 program=program,
                                                 engine=self.engine)
                self._timings[spec] = time.perf_counter() - start
            progress.update(spec.describe())

    def _execute_pool(self, pending, config, results, progress):
        capturing = self.capture and self.traces is not None
        # Captured traces are written worker-side straight into the
        # shared trace cache; shipping the trace dir (not the cache
        # object) keeps the initargs picklable and cheap.
        trace_dir = str(self.traces.root) if capturing else None
        run = _capture_spec_in_worker if capturing \
            else _run_spec_in_worker
        with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(pending)),
                initializer=_init_worker,
                initargs=(config, self.mode, self.threshold,
                          trace_dir, self.engine)) as pool:
            futures = {pool.submit(run, spec): spec
                       for spec in pending}
            for future in as_completed(futures):
                spec = futures[future]
                results[spec], seconds = future.result()
                self._timings[spec] = seconds
                # Worker-side duration, placed at the parent-observed
                # completion instant (start is therefore approximate).
                done_at = self.tracer.now()
                self.tracer.add_event("run", done_at - seconds, seconds,
                                      tid=1, spec=spec.describe())
                progress.update(spec.describe())
