"""Sweep engine: parallel execution, run caching, progress reporting.

The Table I sweep is a large set of independent simulations; this
package turns it from a serial loop into a cached, process-parallel
pipeline while keeping the produced cells bit-for-bit identical to the
serial protocol in :mod:`repro.soc.experiment`.
"""

from .cache import (
    CACHE_SCHEMA_VERSION,
    DEFAULT_CACHE_DIR,
    RunCache,
    TraceCache,
    config_digest,
    monitor_key,
    program_digest,
    run_key,
    signature_digest,
    sim_config_digest,
    simulation_key,
)
from .progress import NullProgress, SweepProgress
from .sweep import (
    ParallelSweep,
    RunSpec,
    cell_specs,
    execute_spec,
    merge_cell,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "NullProgress",
    "ParallelSweep",
    "RunCache",
    "RunSpec",
    "SweepProgress",
    "TraceCache",
    "cell_specs",
    "config_digest",
    "execute_spec",
    "merge_cell",
    "monitor_key",
    "program_digest",
    "run_key",
    "signature_digest",
    "sim_config_digest",
    "simulation_key",
]
