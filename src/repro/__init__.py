"""SafeDM reproduction: a hardware diversity monitor for redundant
execution on non-lockstepped cores (Bas et al., DATE 2022).

Top-level convenience surface:

* :class:`repro.soc.MPSoC` — the NOEL-V-like platform with SafeDM
* :class:`repro.core.DiversityMonitor` — SafeDM itself
* :func:`repro.soc.run_redundant` / :func:`repro.soc.run_row` — the
  paper's Table I experiment protocol
* :mod:`repro.workloads` — the 29 TACLe-suite kernels
* :mod:`repro.fault` — common-cause fault campaigns
* :mod:`repro.rtos` — the FTTI safety-concept layer
"""

from .core.monitor import DiversityMonitor, ReportingMode
from .core.signatures import IsVariant, SignatureConfig
from .soc.config import SocConfig
from .soc.experiment import run_cell, run_redundant, run_row
from .soc.mpsoc import MPSoC
from .workloads.registry import all_names
from .workloads.registry import program as workload_program

__version__ = "1.0.0"

__all__ = [
    "DiversityMonitor",
    "IsVariant",
    "MPSoC",
    "ReportingMode",
    "SignatureConfig",
    "SocConfig",
    "all_names",
    "run_cell",
    "run_redundant",
    "run_row",
    "workload_program",
    "__version__",
]
