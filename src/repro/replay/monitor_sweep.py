"""Monitor-parameter sweeps: one simulation, N replayed configurations.

The classic SafeDM design-space question — "which episode threshold /
IS variant / DS depth should the platform integrator program?" — needs
the *same* simulation evaluated under many monitor configurations.
Re-simulating per point wastes almost all of the work: the cores never
see the monitor.  :class:`MonitorSweep` instead

1. answers points whose full (simulation + monitor) key is already in
   the run cache,
2. captures the simulation **once** (live run with the first pending
   point's configuration, raw streams recorded) if no stream trace is
   cached for the simulation key — and cross-checks that replaying that
   point reproduces the live result bit for bit,
3. replays every remaining point from the trace through
   :class:`repro.replay.engine.ReplayEngine` (one accounting pass per
   distinct signature geometry, O(1) per mode/threshold point), and
4. populates the run cache so later sweeps skip even the replay.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.monitor import ReportingMode
from ..core.signatures import SignatureConfig
from ..runner.cache import (
    RunCache,
    TraceCache,
    monitor_key,
    program_digest,
    signature_digest,
    sim_config_digest,
    simulation_key,
)
from ..soc.config import SocConfig
from ..soc.experiment import RunResult, run_redundant_captured
from .engine import ReplayEngine


@dataclass(frozen=True)
class MonitorPoint:
    """One monitor configuration to evaluate."""

    mode: ReportingMode = ReportingMode.POLLING
    threshold: int = 1
    signature: SignatureConfig = field(default_factory=SignatureConfig)

    def describe(self) -> str:
        return "%s thr=%d is=%s ports=%d depth=%d" % (
            self.mode.value, self.threshold,
            self.signature.is_variant.value, self.signature.num_ports,
            self.signature.ds_depth)


def threshold_points(thresholds: Sequence[int],
                     mode: ReportingMode = (
                         ReportingMode.INTERRUPT_THRESHOLD),
                     signature: Optional[SignatureConfig] = None
                     ) -> Tuple[MonitorPoint, ...]:
    """Points for a plain threshold sweep (the common case)."""
    sig = signature or SignatureConfig()
    return tuple(MonitorPoint(mode=mode, threshold=t, signature=sig)
                 for t in thresholds)


@dataclass
class MonitorSweepResult:
    """Outcome of one monitor-parameter sweep over one simulation."""

    benchmark: str
    sim_key: str
    points: Tuple[MonitorPoint, ...]
    #: One RunResult per point, same order as ``points``.
    results: List[RunResult]
    #: True when this sweep ran the simulation live (trace not cached).
    captured: bool
    capture_seconds: float
    replay_seconds: float
    trace_bytes: int
    cycles: int
    #: Points answered straight from the run cache.
    cache_hits: int

    def by_point(self) -> Dict[MonitorPoint, RunResult]:
        return dict(zip(self.points, self.results))

    def speedup_estimate(self) -> Optional[float]:
        """Estimated speedup vs simulating every point live.

        Uses this sweep's own capture time as the per-point live cost
        (a capture *is* a live run, plus recording overhead — so the
        estimate is conservative).  None when nothing was captured or
        replayed this sweep (pure cache hits: nothing to compare).
        """
        replayed = len(self.points) - self.cache_hits
        if not self.captured or replayed <= 0:
            return None
        live_cost = self.capture_seconds * replayed
        actual = self.capture_seconds + self.replay_seconds
        if actual <= 0:
            return None
        return live_cost / actual


class ReplayMismatchError(AssertionError):
    """A replayed point disagreed with its live capture run."""


class MonitorSweep:
    """Capture-once / replay-many sweep driver (see module docstring).

    Parameters
    ----------
    use_cache:
        Consult/populate the run cache for full (sim + monitor) keys
        and the trace cache for captured simulations.  With
        ``use_cache=False`` every sweep captures fresh and nothing is
        persisted (still one capture for N points).
    cache_dir:
        Override for both caches' directory.
    metrics:
        Optional :class:`repro.telemetry.MetricsRegistry`; receives
        ``repro_replay_captures_total`` / ``repro_replay_replays_total``
        / ``repro_replay_cache_hits_total`` counters and the
        ``repro_replay_trace_bytes`` gauge.
    """

    def __init__(self, use_cache: bool = True, cache_dir=None,
                 metrics=None, tracer=None, engine: str = "reference"):
        self.use_cache = use_cache
        self.cache = RunCache(cache_dir) if use_cache else None
        self.traces = TraceCache(cache_dir) if use_cache else None
        #: Execution tier for the capture run (not part of any cache
        #: key: tiers are bit-identical, traces engine-independent).
        self.engine = engine
        self.metrics = metrics
        if tracer is None:
            from ..telemetry import NULL_TRACER
            tracer = NULL_TRACER
        self.tracer = tracer

    def sweep(self, benchmark: str, points: Sequence[MonitorPoint],
              stagger_nops: int = 0, late_core: int = 1,
              rr_start: int = 0, max_cycles: int = 2_000_000,
              config: Optional[SocConfig] = None,
              program=None) -> MonitorSweepResult:
        """Evaluate every monitor ``point`` over one simulation."""
        if not points:
            raise ValueError("monitor sweep needs at least one point")
        points = tuple(points)
        base_config = config if config is not None else SocConfig()
        if program is None:
            from ..workloads import program as build_program
            program = build_program(benchmark)
        sim_key = simulation_key(
            program_digest(program), sim_config_digest(base_config),
            benchmark=benchmark, stagger_nops=stagger_nops,
            late_core=late_core, rr_start=rr_start,
            max_cycles=max_cycles)
        keys = [monitor_key(sim_key,
                            signature_dig=signature_digest(p.signature),
                            mode_value=p.mode.value,
                            threshold=p.threshold)
                for p in points]

        results: Dict[int, RunResult] = {}
        pending: List[int] = []
        if self.cache is not None:
            for index, key in enumerate(keys):
                cached = self.cache.get(key)
                if cached is not None:
                    results[index] = cached
                else:
                    pending.append(index)
        else:
            pending = list(range(len(points)))
        cache_hits = len(points) - len(pending)

        captured = False
        capture_seconds = 0.0
        replay_seconds = 0.0
        trace = None
        trace_bytes = 0
        cycles = 0

        if pending:
            if self.traces is not None:
                trace = self.traces.get(sim_key)
            if trace is None:
                # Capture with the first pending point's configuration:
                # its live result doubles as a bit-exactness witness
                # for the replay path below.
                first = points[pending[0]]
                live_config = dataclasses.replace(
                    base_config, signature=first.signature)
                start = time.perf_counter()
                with self.tracer.span("capture", benchmark=benchmark,
                                      point=first.describe()):
                    live, trace = run_redundant_captured(
                        program, benchmark=benchmark,
                        stagger_nops=stagger_nops, late_core=late_core,
                        config=live_config, mode=first.mode,
                        threshold=first.threshold,
                        max_cycles=max_cycles, rr_start=rr_start,
                        sim_key=sim_key, engine=self.engine)
                capture_seconds = time.perf_counter() - start
                captured = True
                if self.traces is not None:
                    self.traces.put(sim_key, trace)
            else:
                live = None

            engine = ReplayEngine(trace)
            cycles = trace.meta.cycles
            start = time.perf_counter()
            with self.tracer.span("replay", benchmark=benchmark,
                                  points=len(pending)):
                for index in pending:
                    point = points[index]
                    replayed = engine.run_result(
                        signature=point.signature, mode=point.mode,
                        threshold=point.threshold)
                    if live is not None and index == pending[0]:
                        self._check(live, replayed, point)
                    results[index] = replayed
                    if self.cache is not None:
                        self.cache.put(keys[index], replayed)
            replay_seconds = time.perf_counter() - start
            trace_bytes = trace.byte_size()
        elif results:
            cycles = results[0].cycles if 0 in results else \
                next(iter(results.values())).cycles

        outcome = MonitorSweepResult(
            benchmark=benchmark,
            sim_key=sim_key,
            points=points,
            results=[results[index] for index in range(len(points))],
            captured=captured,
            capture_seconds=capture_seconds,
            replay_seconds=replay_seconds,
            trace_bytes=trace_bytes,
            cycles=cycles,
            cache_hits=cache_hits,
        )
        self._record_metrics(outcome, replayed=len(pending))
        return outcome

    @staticmethod
    def _check(live: RunResult, replayed: RunResult, point: MonitorPoint):
        """The capture point's replay must equal its live run exactly."""
        if dataclasses.asdict(live) != dataclasses.asdict(replayed):
            raise ReplayMismatchError(
                "replay diverged from live run at %s:\n live:   %r\n"
                " replay: %r" % (point.describe(), live, replayed))

    def _record_metrics(self, outcome: MonitorSweepResult, replayed: int):
        registry = self.metrics
        if registry is None:
            return
        labels = (("benchmark", outcome.benchmark),)
        if outcome.captured:
            registry.counter("repro_replay_captures_total", labels).inc()
        registry.counter("repro_replay_replays_total",
                         labels).inc(replayed)
        registry.counter("repro_replay_cache_hits_total",
                         labels).inc(outcome.cache_hits)
        if outcome.trace_bytes:
            registry.gauge("repro_replay_trace_bytes",
                           labels).set(outcome.trace_bytes)
        if self.cache is not None:
            registry.counter("repro_runner_cache_evictions_total").inc(
                self.cache.evictions + (self.traces.evictions
                                        if self.traces else 0))
            self.cache.evictions = 0
            if self.traces is not None:
                self.traces.evictions = 0
