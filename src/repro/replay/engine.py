"""Replay engine: monitor outcomes from captured streams, no simulator.

A :class:`~repro.trace.stream_trace.StreamTrace` is a pure function of
the *simulation* key (program bytes, platform-minus-signature config,
staggering, late core, arbiter start, cycle budget).  Replaying it is
bit-identical to a live run for any monitor configuration that

* monitors at most the register ports the trace captured (the default
  capture records every physical port), and
* does not feed back into the cores — the ``run_redundant`` protocol:
  nothing acknowledges or reacts to the SafeDM interrupt mid-run.

Anything else — more monitored ports than captured, an RTOS that
reschedules on the interrupt, a different platform geometry or cycle
budget — changes the simulation itself and requires re-simulation.

Two layers:

* :class:`ReplayMonitor` drives a real
  :class:`~repro.core.monitor.DiversityMonitor` through its normal
  per-cycle ``observe`` path using lightweight core-view adapters —
  the reference replay, bit-identical by construction.
* :class:`ReplayEngine` is the many-point fast path: it memoizes one
  accounting pass per signature configuration and derives each
  (mode, threshold) point in O(1) from it.  That derivation is exact:
  ``_report_loss`` only ever touches the interrupt line and its
  counter, every other counter and histogram is mode-independent, and
  during a captured run the line is never acknowledged, so it latches
  after the first raise — ``interrupts_raised`` is 1 iff the run's
  total no-diversity count reaches the (effective) threshold.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.history import HistoryModule
from ..core.instruction_diff import InstructionDiffStats
from ..core.monitor import DiversityMonitor, MonitorStats, ReportingMode
from ..core.signatures import SignatureConfig, inflight_from_stage_words
from ..soc.experiment import RunResult
from ..trace.stream_trace import StreamTrace


class _ReplayCore:
    """CoreView adapter over one core's captured taps for one cycle."""

    __slots__ = ("hold", "commits_this_cycle", "_ports", "_stages")

    def __init__(self):
        self.hold = False
        self.commits_this_cycle = 0
        self._ports = ()
        self._stages = ()

    @property
    def regfile(self):
        return self

    def port_samples(self):
        return self._ports

    def stage_words(self):
        return self._stages

    def inflight_words(self):
        return inflight_from_stage_words(self._stages)


def _result_from(meta, stats: MonitorStats,
                 diff_stats: InstructionDiffStats) -> RunResult:
    """A RunResult: simulation fields from the trace metadata, monitor
    fields from a replayed accounting."""
    return RunResult(
        benchmark=meta.benchmark,
        stagger_nops=meta.stagger_nops,
        late_core=meta.late_core,
        cycles=meta.cycles,
        committed=meta.committed,
        zero_staggering_cycles=diff_stats.zero_staggering_cycles,
        no_diversity_cycles=stats.no_diversity_cycles,
        no_data_diversity_cycles=stats.no_data_diversity_cycles,
        no_instruction_diversity_cycles=(
            stats.no_instruction_diversity_cycles),
        interrupts=stats.interrupts_raised,
        finished=meta.finished,
        ipc=meta.ipc,
    )


class ReplayMonitor:
    """Replay one monitor configuration cycle-exactly from a trace.

    Builds a real :class:`DiversityMonitor` (history attached, like
    :class:`~repro.soc.mpsoc.MPSoC` does) and feeds it the captured
    streams through its normal ``observe`` path — including the
    per-cycle reporting-mode logic — so stats, histograms, and the
    staggering counters come out bit-identical to a live run.
    """

    def __init__(self, trace: StreamTrace,
                 signature: Optional[SignatureConfig] = None,
                 mode: ReportingMode = ReportingMode.POLLING,
                 threshold: int = 1,
                 history_bin_size: int = 1, history_bins: int = 32):
        self.trace = trace
        self.monitor = DiversityMonitor(
            config=signature or SignatureConfig(), mode=mode,
            threshold=threshold,
            history=HistoryModule(bin_size=history_bin_size,
                                  num_bins=history_bins))
        self.monitor.instruction_diff.diff = trace.meta.diff_preload
        self._replayed = False

    def replay(self) -> DiversityMonitor:
        """Run the replay once; further calls return the same monitor."""
        if self._replayed:
            return self.monitor
        view0 = _ReplayCore()
        view1 = _ReplayCore()
        observe = self.monitor.observe
        for sample in self.trace.samples:
            tap0, tap1 = sample.cores
            view0.hold = tap0.hold
            view0.commits_this_cycle = tap0.commits
            view0._ports = tap0.ports
            view0._stages = tap0.stages
            view1.hold = tap1.hold
            view1.commits_this_cycle = tap1.commits
            view1._ports = tap1.ports
            view1._stages = tap1.stages
            observe(sample.cycle, view0, view1)
        self.monitor.finish()
        self._replayed = True
        return self.monitor

    @property
    def stats(self) -> MonitorStats:
        return self.replay().stats

    @property
    def history(self) -> HistoryModule:
        return self.replay().history

    @property
    def instruction_diff(self):
        return self.replay().instruction_diff

    def run_result(self) -> RunResult:
        monitor = self.replay()
        return _result_from(self.trace.meta, monitor.stats,
                            monitor.instruction_diff.stats)


@dataclass
class ReplayOutcome:
    """Monitor-side outcome of one replayed configuration point.

    ``history`` is shared between points with the same signature
    configuration (it is mode/threshold-independent); treat it as
    read-only.
    """

    stats: MonitorStats
    diff_stats: InstructionDiffStats
    history: HistoryModule


class ReplayEngine:
    """Capture-once / replay-many: N monitor points from one trace.

    One full accounting pass per distinct signature configuration
    (memoized), then O(1) per (mode, threshold) point on top — so a
    16-point threshold sweep costs one cheap replay, not sixteen.
    """

    def __init__(self, trace: StreamTrace, history_bin_size: int = 1,
                 history_bins: int = 32):
        self.trace = trace
        self.history_bin_size = history_bin_size
        self.history_bins = history_bins
        self._accounted: Dict[SignatureConfig, DiversityMonitor] = {}

    def _accounting(self, signature: SignatureConfig) -> DiversityMonitor:
        monitor = self._accounted.get(signature)
        if monitor is None:
            monitor = ReplayMonitor(
                self.trace, signature=signature,
                mode=ReportingMode.POLLING, threshold=1,
                history_bin_size=self.history_bin_size,
                history_bins=self.history_bins).replay()
            self._accounted[signature] = monitor
        return monitor

    @property
    def accounting_passes(self) -> int:
        """Distinct signature configurations replayed so far."""
        return len(self._accounted)

    def replay(self, signature: Optional[SignatureConfig] = None,
               mode: ReportingMode = ReportingMode.POLLING,
               threshold: int = 1) -> ReplayOutcome:
        """Outcome for one monitor configuration point."""
        monitor = self._accounting(signature or SignatureConfig())
        stats = monitor.stats
        no_div = stats.no_diversity_cycles
        if mode is ReportingMode.INTERRUPT_FIRST:
            raised = 1 if no_div >= 1 else 0
        elif mode is ReportingMode.INTERRUPT_THRESHOLD:
            # A threshold <= 0 fires on the first loss, like live:
            # _report_loss only runs on no-diversity cycles, when the
            # cumulative count is already >= 1.
            raised = 1 if no_div >= max(threshold, 1) else 0
        else:
            raised = 0
        return ReplayOutcome(
            stats=dataclasses.replace(stats, interrupts_raised=raised),
            diff_stats=monitor.instruction_diff.stats,
            history=monitor.history)

    def run_result(self, signature: Optional[SignatureConfig] = None,
                   mode: ReportingMode = ReportingMode.POLLING,
                   threshold: int = 1) -> RunResult:
        """A full :class:`RunResult` for one configuration point."""
        outcome = self.replay(signature=signature, mode=mode,
                              threshold=threshold)
        return _result_from(self.trace.meta, outcome.stats,
                            outcome.diff_stats)


def replay_run(trace: StreamTrace,
               signature: Optional[SignatureConfig] = None,
               mode: ReportingMode = ReportingMode.POLLING,
               threshold: int = 1) -> RunResult:
    """One-shot replay: the :class:`RunResult` a live run with this
    monitor configuration would have produced."""
    return ReplayEngine(trace).run_result(signature=signature,
                                          mode=mode, threshold=threshold)
