"""Capture-once / replay-many engine for SafeDM monitor sweeps.

SafeDM never perturbs the cores it monitors, so the raw per-cycle
signature streams a simulation produces are independent of the monitor
configuration consuming them.  This package exploits that: capture the
streams once (:mod:`repro.trace.stream_trace`), then recompute monitor
outcomes — bit-identical to live runs — for any number of monitor
configurations without touching the simulator again.

* :mod:`~repro.replay.engine` — the replay itself
  (:class:`ReplayMonitor` reference path, :class:`ReplayEngine` fast
  many-point path).
* :mod:`~repro.replay.monitor_sweep` — the sweep driver wiring replay
  into the run/trace caches and telemetry.
"""

from .engine import (
    ReplayEngine,
    ReplayMonitor,
    ReplayOutcome,
    replay_run,
)
from .monitor_sweep import (
    MonitorPoint,
    MonitorSweep,
    MonitorSweepResult,
    ReplayMismatchError,
    threshold_points,
)

__all__ = [
    "ReplayEngine",
    "ReplayMonitor",
    "ReplayOutcome",
    "replay_run",
    "MonitorPoint",
    "MonitorSweep",
    "MonitorSweepResult",
    "ReplayMismatchError",
    "threshold_points",
]
