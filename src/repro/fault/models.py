"""Fault models for the CCF campaign.

The paper's physical argument: a common-cause disturbance (voltage
droop, clock glitch) hits both cores, and *what it corrupts depends on
the electrical state of each core at that instant*.  If the two cores'
states are identical, the corruption is identical and the redundant
outputs still match — the undetectable CCF.  If the states differ in
anything, the corruptions differ and output comparison catches them.

We operationalize that with a state-dependent fault effect: the
corrupted register and bit are derived from a deterministic digest of
the core's full microarchitectural state, so identical states yield
identical corruptions and different states (almost surely) different
ones.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Tuple

from ..cpu.core import Core


def state_digest(core: Core) -> int:
    """Deterministic digest of a core's *active* electrical state.

    A physical disturbance couples into whatever is switching: the
    in-flight instructions (per-stage words), the fetch PC and the
    register-port traffic of the current cycle.  Idle storage (e.g. a
    register that has not been touched for many cycles) holds its value
    without switching and contributes negligibly to transient currents,
    so it does not steer *where* the corruption lands — although it can
    of course be the victim.

    This is deliberately the same state SafeDM's signatures observe:
    the model then realises the paper's argument that a diverse
    signature window implies electrically diverse cores, and hence
    differing corruption.
    """
    crc = 0
    for words in core.stage_words():
        if words:
            for word in words:
                crc = zlib.crc32(word.to_bytes(4, "little"), crc)
        crc = zlib.crc32(b"|", crc)
    crc = zlib.crc32(core.fetch_pc.to_bytes(8, "little"), crc)
    for enable, value in core.regfile.port_samples():
        crc = zlib.crc32(bytes([enable]) + value.to_bytes(8, "little"),
                         crc)
    return crc & 0xFFFFFFFF


@dataclass(frozen=True)
class FaultEffect:
    """A concrete corruption: flip ``bit`` of register ``register``."""

    register: int
    bit: int

    def apply(self, core: Core):
        if self.register == 0:
            return  # x0 is hardwired; the flip is absorbed
        core.regfile.values[self.register] ^= (1 << self.bit)


@dataclass(frozen=True)
class CommonCauseFault:
    """A single physical disturbance hitting both cores at one cycle.

    ``stimulus`` identifies the disturbance (droop amplitude/location);
    the actual corruption of each core is the stimulus *modulated by
    that core's state* via :func:`state_digest`.
    """

    cycle: int
    stimulus: int

    def effect_on(self, core: Core, activity: int = 0) -> FaultEffect:
        """Corruption produced on ``core`` by this disturbance.

        ``activity`` is a digest of the core's recent switching activity
        (the SafeDM-visible signature window): a droop's effect depends
        on the currents drawn over the last cycles, not just on the
        instantaneous register state.
        """
        mixed = ((state_digest(core) ^ activity) * 0x9E3779B1
                 + self.stimulus) & 0xFFFFFFFF
        # Avoid x0 so the corruption is never trivially absorbed.
        register = 1 + (mixed % 31)
        bit = (mixed >> 8) % 64
        return FaultEffect(register=register, bit=bit)

    def inject(self, core0: Core, core1: Core, activity0: int = 0,
               activity1: int = 0) -> Tuple[FaultEffect, FaultEffect]:
        """Apply the disturbance to both cores; returns both effects."""
        effect0 = self.effect_on(core0, activity0)
        effect1 = self.effect_on(core1, activity1)
        effect0.apply(core0)
        effect1.apply(core1)
        return effect0, effect1


@dataclass(frozen=True)
class TransientFault:
    """An independent single-core transient (classic SEU model)."""

    cycle: int
    core: int
    register: int
    bit: int

    def inject(self, target: Core) -> FaultEffect:
        effect = FaultEffect(register=self.register, bit=self.bit)
        effect.apply(target)
        return effect
