"""Fault-injection campaigns: CCF coverage of SafeDM vs plain redundancy.

A campaign sweeps common-cause injections across a run's timeline and
cross-references each silent escape with SafeDM's diversity verdict at
the injection instant.  The paper's no-false-negative claim translates
to: *every* silent CCF escape happens in a cycle where SafeDM reported
lack of diversity (SafeDM may over-report — false positives — but a
CCF cannot slip through a cycle SafeDM called diverse).

Execution modes (all bit-identical in their results):

* plain — every injection simulates its run from cycle 0,
* ``checkpoint_every > 0`` — one golden run drops snapshots; each
  injection forks from the nearest one (see
  :class:`repro.fault.injector.ForkEngine`),
* ``jobs > 1`` — injections fan out over a process pool; results and
  telemetry counters are folded in the canonical (stimulus-outer,
  cycle-inner) order, never completion order, so ``jobs=1`` and
  ``jobs=N`` campaigns are field-for-field identical,
* ``cache_dir`` — golden snapshots and their index persist in the
  content-addressed run-cache store, so a repeated campaign warm-starts
  without re-simulating the golden run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional

from ..isa.program import Program
from ..soc.config import SocConfig
from .injector import (
    ForkEngine,
    GoldenArtifact,
    InjectionResult,
    golden_run,
    golden_run_with_checkpoints,
    inject_common_cause,
)


@dataclass
class CampaignResult:
    """Aggregated campaign outcome."""

    injections: List[InjectionResult] = field(default_factory=list)

    def count(self, classification: str) -> int:
        return sum(1 for r in self.injections
                   if r.classification == classification)

    @property
    def masked(self) -> int:
        return self.count("masked")

    @property
    def detected(self) -> int:
        return self.count("detected")

    @property
    def silent_ccf(self) -> int:
        return self.count("silent_ccf")

    @property
    def silent_despite_diversity(self) -> int:
        """Identical-effect silent escapes in cycles SafeDM called
        diverse.  Must be zero for the paper's no-false-negative
        property: identical corruption implies identical core state,
        which SafeDM by construction reports as lack of diversity.
        """
        return sum(1 for r in self.injections
                   if r.classification == "silent_ccf"
                   and r.effects_identical
                   and r.diversity_at_injection is True)

    @property
    def silent_via_shared_state(self) -> int:
        """Silent escapes where the corruptions *differed* but still
        produced matching wrong outputs — only possible when replicas
        share writable state (one core's corrupted store poisons the
        data its twin reads).  A shared-input CCF channel outside any
        diversity scheme's reach; flags an unsound redundancy setup.
        """
        return sum(1 for r in self.injections
                   if r.classification == "silent_ccf"
                   and not r.effects_identical)

    @property
    def detected_or_flagged(self) -> int:
        """Faults either caught by comparison or flagged by SafeDM."""
        return sum(1 for r in self.injections
                   if r.classification == "detected"
                   or (r.classification == "silent_ccf"
                       and r.diversity_at_injection is False))

    def summary(self) -> str:
        total = len(self.injections)
        return ("injections=%d masked=%d detected=%d silent_ccf=%d "
                "silent_despite_diversity=%d silent_via_shared_state=%d"
                % (total, self.masked, self.detected, self.silent_ccf,
                   self.silent_despite_diversity,
                   self.silent_via_shared_state))

    def to_metrics(self, registry):
        """Fold per-classification counts into a telemetry registry."""
        for classification in ("masked", "detected", "silent_ccf",
                               "hang"):
            registry.counter(
                "repro_fault_injections_total",
                (("classification", classification),)
            ).inc(self.count(classification))
        registry.counter("repro_fault_silent_despite_diversity_total"
                         ).inc(self.silent_despite_diversity)
        registry.counter("repro_fault_silent_via_shared_state_total"
                         ).inc(self.silent_via_shared_state)
        registry.counter("repro_fault_detected_or_flagged_total"
                         ).inc(self.detected_or_flagged)


# -- golden artifact acquisition (with warm start) ----------------------------

def _index_payload(artifact: GoldenArtifact) -> dict:
    return {
        "every": artifact.checkpoint_every,
        "cycles": list(artifact.checkpoint_cycles),
        "exempt_masks": [[list(mask) for mask in pair]
                         for pair in artifact.exempt_masks],
        "monitored": list(artifact.monitored),
        "checksum": artifact.checksum,
        "outputs": list(artifact.outputs),
        "end_cycle": artifact.end_cycle,
        "finished": artifact.finished,
        "no_diversity_cycles": artifact.no_diversity_cycles,
    }


def _artifact_from_index(index: dict, sim_key: str, snapshots,
                         checkpoint_every: int
                         ) -> Optional[GoldenArtifact]:
    """Rebuild a :class:`GoldenArtifact` from a cached index, fetching
    each snapshot from the checkpoint store.  Any missing or stale
    snapshot voids the warm start (``None`` — rerun the golden run)."""
    from ..runner.cache import checkpoint_key
    try:
        cycles = [int(cycle) for cycle in index["cycles"]]
        if int(index["every"]) != checkpoint_every:
            return None
        blobs = []
        for cycle in cycles:
            blob = snapshots.get_blob(
                checkpoint_key(sim_key, cycle=cycle,
                               every=checkpoint_every))
            if blob is None:
                return None
            blobs.append(blob)
        return GoldenArtifact(
            checksum=int(index["checksum"]),
            outputs=tuple(int(v) for v in index["outputs"]),
            end_cycle=int(index["end_cycle"]),
            finished=bool(index["finished"]),
            no_diversity_cycles=int(index["no_diversity_cycles"]),
            monitored=tuple(int(c) for c in index["monitored"]),
            checkpoint_every=checkpoint_every,
            checkpoint_cycles=tuple(cycles),
            exempt_masks=tuple(
                tuple(tuple(int(r) for r in mask) for mask in pair)
                for pair in index["exempt_masks"]),
            snapshots=tuple(blobs),
            sim_key=sim_key,
        )
    except (KeyError, TypeError, ValueError):
        return None


def _golden_artifact(program: Program, config: Optional[SocConfig],
                     max_cycles: int, checkpoint_every: int,
                     cache_dir, benchmark: str,
                     engine: str = "reference"):
    """(artifact, warm): run the checkpointed golden run, or warm-start
    it from the persistent checkpoint store when ``cache_dir`` is set
    (``cache_dir=True`` selects the default run-cache location)."""
    if not cache_dir:
        return golden_run_with_checkpoints(
            program, config=config, max_cycles=max_cycles,
            checkpoint_every=checkpoint_every,
            benchmark=benchmark, engine=engine), False
    from ..runner.cache import (
        CheckpointIndexStore,
        CheckpointStore,
        checkpoint_index_key,
        checkpoint_key,
        program_digest,
        sim_config_digest,
        simulation_key,
    )
    root = None if cache_dir is True else cache_dir
    resolved = config if config is not None else SocConfig()
    sim_key = simulation_key(program_digest(program),
                             sim_config_digest(resolved),
                             benchmark=benchmark, stagger_nops=0,
                             late_core=1, rr_start=0,
                             max_cycles=max_cycles)
    indexes = CheckpointIndexStore(root)
    snapshots = CheckpointStore(root)
    index_key = checkpoint_index_key(sim_key, every=checkpoint_every)
    index = indexes.get(index_key)
    if index is not None:
        artifact = _artifact_from_index(index, sim_key, snapshots,
                                        checkpoint_every)
        if artifact is not None:
            return artifact, True
    artifact = golden_run_with_checkpoints(
        program, config=config, max_cycles=max_cycles,
        checkpoint_every=checkpoint_every, benchmark=benchmark,
        sim_key=sim_key, engine=engine)
    for cycle, blob in zip(artifact.checkpoint_cycles,
                           artifact.snapshots):
        snapshots.put_blob(checkpoint_key(sim_key, cycle=cycle,
                                          every=checkpoint_every), blob)
    indexes.put(index_key, _index_payload(artifact))
    return artifact, False


# -- worker-process plumbing --------------------------------------------------

_CAMPAIGN_WORKER: dict = {}


def _init_campaign_worker(program: Program,
                          config: Optional[SocConfig],
                          max_cycles: int, golden: int,
                          artifact: Optional[GoldenArtifact],
                          engine: str = "reference"):
    """Pool initializer: per-campaign constants plus a private fork
    engine."""
    fork = None
    if artifact is not None and artifact.snapshots:
        fork = ForkEngine(program, artifact, config=config)
    _CAMPAIGN_WORKER["program"] = program
    _CAMPAIGN_WORKER["config"] = config
    _CAMPAIGN_WORKER["max_cycles"] = max_cycles
    _CAMPAIGN_WORKER["golden"] = golden
    _CAMPAIGN_WORKER["fork"] = fork
    _CAMPAIGN_WORKER["engine"] = engine


def _run_campaign_task(task):
    """One (stimulus, cycle) injection inside a pool worker.

    Returns the result plus whether the convergence early-exit fired,
    so the parent can fold the counter in canonical task order.
    """
    stimulus, cycle = task
    worker = _CAMPAIGN_WORKER
    fork = worker["fork"]
    before = fork.converged if fork is not None else 0
    result = inject_common_cause(worker["program"], cycle, stimulus,
                                 worker["golden"],
                                 config=worker["config"],
                                 max_cycles=worker["max_cycles"],
                                 fork=fork,
                                 engine=worker.get("engine",
                                                   "reference"))
    converged = (fork.converged - before) if fork is not None else 0
    return result, converged


def _resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is not None:
        return max(1, jobs)
    from ..runner.sweep import ParallelSweep
    cpus = os.cpu_count() or 1
    return 1 if cpus <= ParallelSweep.SERIAL_FALLBACK_CPUS else cpus


# -- the campaign -------------------------------------------------------------

def run_ccf_campaign(program: Program, cycles: List[int],
                     stimuli: Optional[List[int]] = None,
                     config: Optional[SocConfig] = None,
                     max_cycles: int = 2_000_000,
                     metrics=None, tracer=None,
                     checkpoint_every: int = 0,
                     jobs: Optional[int] = 1,
                     cache_dir=None,
                     benchmark: str = "program",
                     engine: str = "reference") -> CampaignResult:
    """Inject one common-cause fault per (cycle, stimulus) pair.

    ``metrics``/``tracer`` are optional telemetry sinks: the tracer
    gets one span per injection (plus the golden run), the registry
    the per-classification counts of the finished campaign and — when
    checkpointing is on — the ``repro_checkpoint_*`` counters.
    ``jobs=None`` means one worker per core (serial on boxes without
    real parallelism, mirroring the sweep engine).  ``engine`` selects
    the execution tier (:mod:`repro.engine`) for the golden run and
    every fault-free stretch of the injected runs; results are
    bit-identical across tiers.
    """
    if tracer is None:
        from ..telemetry import NULL_TRACER
        tracer = NULL_TRACER
    stimuli = list(stimuli) if stimuli else [0x5EED]
    cycles = list(cycles)
    jobs = _resolve_jobs(jobs)

    fork = None
    artifact = None
    warm = False
    if checkpoint_every > 0:
        with tracer.span("golden_run",
                         checkpoint_every=checkpoint_every):
            artifact, warm = _golden_artifact(program, config,
                                              max_cycles,
                                              checkpoint_every,
                                              cache_dir, benchmark,
                                              engine=engine)
        golden = artifact.checksum
        fork = ForkEngine(program, artifact, config=config)
    else:
        with tracer.span("golden_run"):
            golden = golden_run(program, config=config,
                                max_cycles=max_cycles, engine=engine)

    tasks = [(stimulus, cycle) for stimulus in stimuli
             for cycle in cycles]
    result = CampaignResult()
    converged = 0
    if jobs > 1 and len(tasks) > 1:
        from concurrent.futures import ProcessPoolExecutor
        with tracer.span("injections", jobs=jobs, tasks=len(tasks)):
            with ProcessPoolExecutor(
                    max_workers=min(jobs, len(tasks)),
                    initializer=_init_campaign_worker,
                    initargs=(program, config, max_cycles, golden,
                              artifact, engine)) as pool:
                # executor.map preserves task order: the fold below is
                # canonical no matter how the pool schedules the work.
                for injection, conv in pool.map(_run_campaign_task,
                                                tasks):
                    result.injections.append(injection)
                    converged += conv
    else:
        for stimulus, cycle in tasks:
            with tracer.span("inject", cycle=cycle,
                             stimulus="%#x" % stimulus):
                result.injections.append(
                    inject_common_cause(program, cycle, stimulus,
                                        golden, config=config,
                                        max_cycles=max_cycles,
                                        fork=fork, engine=engine))
        if fork is not None:
            converged = fork.converged

    if metrics is not None:
        result.to_metrics(metrics)
        if artifact is not None:
            # Forks are a pure function of (tasks, checkpoint cycles),
            # so the counters match the serial engine's tallies and are
            # identical for jobs=1 and jobs=N.
            first = (artifact.checkpoint_cycles[0]
                     if artifact.checkpoint_cycles else None)
            forks = sum(1 for _, cycle in tasks
                        if first is not None and cycle >= first)
            if not warm:
                metrics.counter("repro_checkpoint_saves_total").inc(
                    len(artifact.snapshots))
                metrics.counter("repro_checkpoint_bytes_total").inc(
                    sum(len(blob) for blob in artifact.snapshots))
            metrics.counter("repro_checkpoint_index_hits_total").inc(
                1 if warm else 0)
            metrics.counter("repro_checkpoint_forks_total").inc(forks)
            metrics.counter("repro_checkpoint_restores_total").inc(forks)
            metrics.counter("repro_checkpoint_converged_total").inc(
                converged)
    return result


def run_scheme_matrix(program: Program, benchmark: str = "program",
                      schemes=None, config: Optional[SocConfig] = None,
                      num_faults: int = 8, stimuli=None,
                      max_cycles: int = 2_000_000,
                      metrics=None, tracer=None):
    """The matrix-mode CCF campaign: one shared fault grid, one
    coverage row per redundancy scheme.

    Where :func:`run_ccf_campaign` asks how well SafeDM protects *one*
    monitored pair, this asks the comparative question across every
    scheme in :data:`repro.schemes.SCHEME_KINDS` (or the given subset):
    each scheme replays the same (cycle fraction, stimulus) grid and
    classifies each trial with its own checker.  Returns the list of
    :class:`repro.schemes.matrix.SchemeMatrixRow`.
    """
    from ..schemes.matrix import DEFAULT_STIMULI, scheme_matrix
    from ..schemes.spec import SCHEME_KINDS
    if tracer is None:
        from ..telemetry import NULL_TRACER
        tracer = NULL_TRACER
    schemes = tuple(schemes) if schemes else SCHEME_KINDS
    stimuli = tuple(stimuli) if stimuli else DEFAULT_STIMULI
    with tracer.span("scheme_matrix", benchmark=benchmark,
                     schemes=",".join(str(s) for s in schemes)):
        return scheme_matrix(program, benchmark=benchmark,
                             schemes=schemes, config=config,
                             num_faults=num_faults, stimuli=stimuli,
                             max_cycles=max_cycles, metrics=metrics)


def spread_cycles(total_cycles: int, count: int,
                  start: int = 16) -> List[int]:
    """Deterministic injection instants spread across a run."""
    if count < 1:
        return []
    span = max(total_cycles - start, 1)
    return [start + (i * span) // count for i in range(count)]
