"""Fault-injection campaigns: CCF coverage of SafeDM vs plain redundancy.

A campaign sweeps common-cause injections across a run's timeline and
cross-references each silent escape with SafeDM's diversity verdict at
the injection instant.  The paper's no-false-negative claim translates
to: *every* silent CCF escape happens in a cycle where SafeDM reported
lack of diversity (SafeDM may over-report — false positives — but a
CCF cannot slip through a cycle SafeDM called diverse).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..isa.program import Program
from ..soc.config import SocConfig
from .injector import InjectionResult, golden_run, inject_common_cause


@dataclass
class CampaignResult:
    """Aggregated campaign outcome."""

    injections: List[InjectionResult] = field(default_factory=list)

    def count(self, classification: str) -> int:
        return sum(1 for r in self.injections
                   if r.classification == classification)

    @property
    def masked(self) -> int:
        return self.count("masked")

    @property
    def detected(self) -> int:
        return self.count("detected")

    @property
    def silent_ccf(self) -> int:
        return self.count("silent_ccf")

    @property
    def silent_despite_diversity(self) -> int:
        """Identical-effect silent escapes in cycles SafeDM called
        diverse.  Must be zero for the paper's no-false-negative
        property: identical corruption implies identical core state,
        which SafeDM by construction reports as lack of diversity.
        """
        return sum(1 for r in self.injections
                   if r.classification == "silent_ccf"
                   and r.effects_identical
                   and r.diversity_at_injection is True)

    @property
    def silent_via_shared_state(self) -> int:
        """Silent escapes where the corruptions *differed* but still
        produced matching wrong outputs — only possible when replicas
        share writable state (one core's corrupted store poisons the
        data its twin reads).  A shared-input CCF channel outside any
        diversity scheme's reach; flags an unsound redundancy setup.
        """
        return sum(1 for r in self.injections
                   if r.classification == "silent_ccf"
                   and not r.effects_identical)

    @property
    def detected_or_flagged(self) -> int:
        """Faults either caught by comparison or flagged by SafeDM."""
        return sum(1 for r in self.injections
                   if r.classification == "detected"
                   or (r.classification == "silent_ccf"
                       and r.diversity_at_injection is False))

    def summary(self) -> str:
        total = len(self.injections)
        return ("injections=%d masked=%d detected=%d silent_ccf=%d "
                "silent_despite_diversity=%d silent_via_shared_state=%d"
                % (total, self.masked, self.detected, self.silent_ccf,
                   self.silent_despite_diversity,
                   self.silent_via_shared_state))

    def to_metrics(self, registry):
        """Fold per-classification counts into a telemetry registry."""
        for classification in ("masked", "detected", "silent_ccf",
                               "hang"):
            registry.counter(
                "repro_fault_injections_total",
                (("classification", classification),)
            ).inc(self.count(classification))
        registry.counter("repro_fault_silent_despite_diversity_total"
                         ).inc(self.silent_despite_diversity)
        registry.counter("repro_fault_silent_via_shared_state_total"
                         ).inc(self.silent_via_shared_state)
        registry.counter("repro_fault_detected_or_flagged_total"
                         ).inc(self.detected_or_flagged)


def run_ccf_campaign(program: Program, cycles: List[int],
                     stimuli: Optional[List[int]] = None,
                     config: Optional[SocConfig] = None,
                     max_cycles: int = 2_000_000,
                     metrics=None, tracer=None) -> CampaignResult:
    """Inject one common-cause fault per (cycle, stimulus) pair.

    ``metrics``/``tracer`` are optional telemetry sinks: the tracer
    gets one span per injection (plus the golden run), the registry
    the per-classification counts of the finished campaign.
    """
    if tracer is None:
        from ..telemetry import NULL_TRACER
        tracer = NULL_TRACER
    with tracer.span("golden_run"):
        golden = golden_run(program, config=config,
                            max_cycles=max_cycles)
    stimuli = stimuli or [0x5EED]
    result = CampaignResult()
    for stimulus in stimuli:
        for cycle in cycles:
            with tracer.span("inject", cycle=cycle,
                             stimulus="%#x" % stimulus):
                result.injections.append(
                    inject_common_cause(program, cycle, stimulus,
                                        golden, config=config,
                                        max_cycles=max_cycles))
    if metrics is not None:
        result.to_metrics(metrics)
    return result


def spread_cycles(total_cycles: int, count: int,
                  start: int = 16) -> List[int]:
    """Deterministic injection instants spread across a run."""
    if count < 1:
        return []
    span = max(total_cycles - start, 1)
    return [start + (i * span) // count for i in range(count)]
