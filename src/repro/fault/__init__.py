"""Fault injection: transient and common-cause fault campaigns."""

from .campaign import (
    CampaignResult,
    run_ccf_campaign,
    run_scheme_matrix,
    spread_cycles,
)
from .injector import (
    ForkEngine,
    GoldenArtifact,
    InjectionResult,
    golden_run,
    golden_run_with_checkpoints,
    inject_common_cause,
    inject_transient,
    shared_address_config,
)
from .models import CommonCauseFault, FaultEffect, TransientFault, state_digest

__all__ = [
    "CampaignResult",
    "CommonCauseFault",
    "FaultEffect",
    "ForkEngine",
    "GoldenArtifact",
    "InjectionResult",
    "TransientFault",
    "golden_run",
    "golden_run_with_checkpoints",
    "inject_common_cause",
    "inject_transient",
    "run_ccf_campaign",
    "run_scheme_matrix",
    "shared_address_config",
    "spread_cycles",
    "state_digest",
]
