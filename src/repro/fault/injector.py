"""Single fault-injection runs on the MPSoC, plus the fork engine.

Historically every injection simulated its run from cycle 0, making a
campaign of N injections over a T-cycle run cost O(N * T).  The
snapshot protocol (:mod:`repro.checkpoint`) turns that into a
fork-from-checkpoint scheme:

* :func:`golden_run_with_checkpoints` performs ONE fault-free run,
  dropping a snapshot every K cycles and recording which registers are
  provably dead at each checkpoint,
* a :class:`ForkEngine` then starts each injection from the nearest
  snapshot at or before its fault cycle — O(T + N * K) — and, once the
  forked run's dynamic state re-converges with the golden run's at a
  later checkpoint, reconstructs the rest of the result analytically
  instead of simulating it.

Both mechanisms are exact: an engine-driven injection returns an
:class:`InjectionResult` field-for-field identical to the from-scratch
one (``tests/test_checkpoint.py`` asserts this over every kernel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..baselines.unaware import RedundancyOutcome, compare_outputs
from ..checkpoint import Snapshot, dynamic_view, jsonable
from ..cpu.core import SimulationError
from ..cpu.regfile import RegisterFile
from ..mem.memory import MemoryError_
from ..isa.program import Program
from ..isa.registers import NUM_REGISTERS, XMASK
from ..soc.config import SocConfig
from ..soc.mpsoc import MPSoC
from .models import CommonCauseFault, TransientFault


def _activity_digest(soc: MPSoC, index: int) -> int:
    """CRC of one core's SafeDM-visible signature window."""
    import zlib
    crc = 0
    for entry in soc.safedm.ds_units[index].signature():
        enable, value = entry
        crc = zlib.crc32(bytes([enable]) + value.to_bytes(8, "little"),
                         crc)
    for item in soc.safedm.is_units[index].signature():
        if isinstance(item, tuple):
            valid, word = item
            crc = zlib.crc32(bytes([valid]) + word.to_bytes(4, "little"),
                             crc)
        else:
            crc = zlib.crc32(int(item).to_bytes(4, "little"), crc)
    return crc & 0xFFFFFFFF

#: The kernels' checksum register (s0 == x8); read per core at halt so
#: outputs stay per-core even when both cores share one address space.
RESULT_REGISTER = 8


def _core_outputs(soc: MPSoC):
    """Per-replica checksums over the watched cores (the monitored
    pair by default; a scheme's full replica set when one overrode
    ``watched_cores``)."""
    return tuple(soc.cores[idx].regfile.values[RESULT_REGISTER]
                 for idx in soc._watched_indices())


def shared_address_config() -> SocConfig:
    """A (mis)configured redundancy where both cores share one data
    region — identical gp/sp, hence genuinely identical state during
    aligned execution.  This is the CCF-vulnerable deployment SafeDM
    exists to flag."""
    cfg = SocConfig()
    return SocConfig(data_bases=(cfg.data_bases[0], cfg.data_bases[0]))


@dataclass
class InjectionResult:
    """Outcome of one injected redundant run."""

    fault_cycle: int
    outcome: RedundancyOutcome
    #: SafeDM report at the injection cycle: True if diversity existed.
    diversity_at_injection: Optional[bool]
    #: Cumulative no-diversity cycles over the run.
    no_diversity_cycles: int
    effects: tuple
    finished: bool
    #: Cycle the run ended at (fault runs can end later than golden).
    #: Identical across scratch, fork, and batched Monte-Carlo paths.
    end_cycle: int = 0
    #: The corruption drove a replica into an architectural trap
    #: (misaligned access or illegal instruction) — a loudly-detected
    #: failure, reported as its own class.
    trapped: bool = False

    @property
    def effects_identical(self) -> bool:
        """True when the disturbance corrupted both cores identically."""
        return len(self.effects) == 2 and self.effects[0] == self.effects[1]

    @property
    def classification(self) -> str:
        if self.trapped:
            return "trap"
        if not self.finished:
            return "hang"
        if self.outcome.correct:
            return "masked"
        if self.outcome.detected:
            return "detected"
        return "silent_ccf"


def golden_run(program: Program, config: Optional[SocConfig] = None,
               max_cycles: int = 2_000_000,
               engine: str = "reference") -> int:
    """Fault-free redundant run; returns the golden checksum."""
    from ..engine import run_soc
    soc = MPSoC(config=config)
    soc.start_redundant(program)
    run_soc(soc, engine, program=program, max_cycles=max_cycles)
    golden0, golden1 = _core_outputs(soc)
    if golden0 != golden1:
        raise RuntimeError("golden run is not deterministic")
    return golden0


# -- the one injected-run loop -------------------------------------------------

def _tier_runner(soc: MPSoC, engine: str):
    """A :class:`~repro.engine.fast.FastRunner` for ``soc``, or ``None``.

    Mirrors :func:`repro.engine.run_soc`'s tier selection: the fast
    tier is used only when requested *and* supported for this SoC
    shape; otherwise the caller drives the reference interpreter.
    Engine statistics land on ``soc.engine_stats`` either way.
    """
    from ..engine import EngineStats, _fast_supported, resolve_engine
    engine = resolve_engine(engine)
    stats = EngineStats(engine=engine)
    soc.engine_stats = stats
    if engine != "fast":
        return None
    reason = _fast_supported(soc)
    if reason is not None:
        stats.fallback_reason = reason
        return None
    from ..engine.fast import FastRunner
    from ..engine.plan import ProgramPlan
    plan = ProgramPlan(soc.memory, soc.cores[0].config)
    runner = FastRunner(soc, plan, stats)
    return runner


def _drive(soc: MPSoC, cycle: int, golden: int, max_cycles: int,
           before_step=None, after_step=None,
           convergence=None, runner=None,
           probe_cycles=()) -> InjectionResult:
    """Drive one injected run to completion (or to convergence).

    ``before_step(soc)`` fires when ``soc.cycle == cycle`` — the
    transient model corrupts state and then simulates the cycle.
    ``after_step(soc)`` fires on the clock edge that ends the fault
    cycle — the common-cause corruption is modulated by the state
    SafeDM just sampled.  Either hook returns the fault effects.

    ``convergence(soc)`` (see :meth:`ForkEngine.convergence`) is
    consulted only after the fault has been applied; a non-``None``
    return is the analytically reconstructed
    ``(no_diversity_cycles, finished, outputs, end_cycle)`` tail of
    the run.

    ``runner`` (a :class:`~repro.engine.fast.FastRunner` over this SoC)
    switches the fault-free stretches to the fast tier: spans run to
    the fault cycle, between convergence probes, and to the budget.
    The fault cycle itself always executes under the reference
    interpreter so the injection hooks see mid-cycle reference state,
    and the runner is rebuilt afterwards (hooks mutate state behind
    the generated code's captured locals).  ``probe_cycles`` must list
    every cycle at which ``convergence`` can possibly return
    non-``None`` (the golden checkpoint cycles); the reference loop
    consults it every cycle but it is a no-op off the probe grid.

    The cycle budget is absolute (``soc.cycle < max_cycles``), so a SoC
    forked mid-run observes exactly the budget a from-scratch run would.
    """
    cores = [soc.cores[i] for i in soc.monitored]
    effects = ()
    diversity_at_injection = None

    def reconstruct(tail):
        no_diversity, finished, outputs, end_cycle = tail
        return InjectionResult(
            fault_cycle=cycle,
            outcome=compare_outputs(outputs[0], outputs[1], golden),
            diversity_at_injection=diversity_at_injection,
            no_diversity_cycles=no_diversity,
            effects=effects,
            finished=finished,
            end_cycle=end_cycle,
        )

    # A corruption can steer execution into an architectural trap
    # (misaligned access via a corrupted address register, illegal
    # instruction via a corrupted jump target).  The replica fails
    # loudly at that point: end the run there and report the trap as
    # its own outcome class.  ``soc.cycle`` still holds the trapping
    # cycle (it only advances on a completed step), so the result is
    # deterministic across scratch/fork and reference/fast paths.
    trapped = False
    try:
        if runner is not None:
            finished = runner.run_span(min(cycle, max_cycles))
            if not finished and soc.cycle == cycle \
                    and soc.cycle < max_cycles:
                if before_step is not None:
                    effects = before_step(soc)
                soc.step()
                if after_step is not None:
                    effects = after_step(soc)
                    if soc.safedm.last_report is not None:
                        diversity_at_injection = \
                            soc.safedm.last_report.diversity
                runner._rebuild()
                if convergence is not None:
                    tail = convergence(soc)
                    if tail is not None:
                        return reconstruct(tail)
                    for probe in probe_cycles:
                        if probe <= soc.cycle:
                            continue
                        if probe > max_cycles:
                            break
                        if runner.run_span(probe):
                            break
                        tail = convergence(soc)
                        if tail is not None:
                            return reconstruct(tail)
                runner.run_span(max_cycles)
        else:
            while soc.cycle < max_cycles:
                if all(core.finished for core in cores):
                    break
                if before_step is not None and soc.cycle == cycle:
                    effects = before_step(soc)
                soc.step()
                if after_step is not None and soc.cycle - 1 == cycle:
                    effects = after_step(soc)
                    if soc.safedm.last_report is not None:
                        diversity_at_injection = \
                            soc.safedm.last_report.diversity
                if convergence is not None and soc.cycle > cycle:
                    tail = convergence(soc)
                    if tail is not None:
                        return reconstruct(tail)
    except (MemoryError_, SimulationError):
        if runner is not None:
            # The fast tier's block granularity surfaces the trap at a
            # tier-dependent cycle (e.g. a group's eager fetch decodes
            # the corrupted path early).  The reference interpreter is
            # the oracle for trap timing: signal the injector to replay
            # this one trial without the fast tier.
            raise _FastTierTrap() from None
        trapped = True
    soc.safedm.finish()
    finished = all(core.finished for core in cores) and not trapped
    output0, output1 = _core_outputs(soc)
    return InjectionResult(
        fault_cycle=cycle,
        outcome=compare_outputs(output0, output1, golden),
        diversity_at_injection=diversity_at_injection,
        no_diversity_cycles=soc.safedm.stats.no_diversity_cycles,
        effects=effects,
        finished=finished,
        end_cycle=soc.cycle,
        trapped=trapped,
    )


class _FastTierTrap(Exception):
    """Internal: a corrupted run trapped inside the fast tier, where
    the mid-block machine state is not the reference oracle's.  The
    injectors catch this and replay the trial reference-tier (traps
    are rare — a few percent of live trials — so the retry is cheap).
    """


def _prepare(program: Program, cycle: int,
             config: Optional[SocConfig], fork, engine: str):
    """The SoC an injection runs on, its convergence probe, its tier."""
    if fork is not None:
        soc = fork.fork(cycle)
        return (soc, fork.convergence(),
                fork.artifact.checkpoint_cycles,
                _tier_runner(soc, engine))
    soc = MPSoC(config=config)
    soc.start_redundant(program)
    return soc, None, (), _tier_runner(soc, engine)


def inject_common_cause(program: Program, cycle: int, stimulus: int,
                        golden: int,
                        config: Optional[SocConfig] = None,
                        max_cycles: int = 2_000_000,
                        fork: Optional["ForkEngine"] = None,
                        engine: str = "reference") -> InjectionResult:
    """Run redundantly with one common-cause fault at ``cycle``.

    ``fork`` (a :class:`ForkEngine`) starts the run from the nearest
    golden checkpoint; ``engine`` picks the execution tier for the
    fault-free stretches (:mod:`repro.engine`).  Both are exact.
    """
    fault = CommonCauseFault(cycle=cycle, stimulus=stimulus)

    def after_step(soc):
        # Inject on the clock edge that ends the fault cycle: the
        # corruption is modulated by the state SafeDM just sampled.
        core0 = soc.cores[soc.monitored[0]]
        core1 = soc.cores[soc.monitored[1]]
        return fault.inject(core0, core1, _activity_digest(soc, 0),
                            _activity_digest(soc, 1))

    soc, convergence, probes, runner = _prepare(program, cycle, config,
                                                fork, engine)
    try:
        return _drive(soc, cycle, golden, max_cycles,
                      after_step=after_step, convergence=convergence,
                      runner=runner, probe_cycles=probes)
    except _FastTierTrap:
        soc, convergence, probes, _ = _prepare(program, cycle, config,
                                               fork, "reference")
        return _drive(soc, cycle, golden, max_cycles,
                      after_step=after_step, convergence=convergence,
                      probe_cycles=probes)


def inject_transient(program: Program, cycle: int, core: int,
                     register: int, bit: int, golden: int,
                     config: Optional[SocConfig] = None,
                     max_cycles: int = 2_000_000,
                     fork: Optional["ForkEngine"] = None,
                     engine: str = "reference") -> InjectionResult:
    """Run redundantly with one single-core transient at ``cycle``."""
    fault = TransientFault(cycle=cycle, core=core, register=register,
                           bit=bit)

    def before_step(soc):
        return (fault.inject(soc.cores[core]),)

    soc, convergence, probes, runner = _prepare(program, cycle, config,
                                                fork, engine)
    try:
        return _drive(soc, cycle, golden, max_cycles,
                      before_step=before_step, convergence=convergence,
                      runner=runner, probe_cycles=probes)
    except _FastTierTrap:
        soc, convergence, probes, _ = _prepare(program, cycle, config,
                                               fork, "reference")
        return _drive(soc, cycle, golden, max_cycles,
                      before_step=before_step, convergence=convergence,
                      probe_cycles=probes)


# -- golden run with checkpoints ----------------------------------------------

class _RecordingRegisterFile(RegisterFile):
    """A :class:`RegisterFile` that logs architectural accesses.

    Used only on the golden run, to drive the dead-register analysis:
    ``(0, r)`` = read of ``r``, ``(1, r)`` = write, ``(2, i)`` =
    checkpoint ``i`` was taken at this point in the access stream.
    Behaviour is bit-identical to the base class — the overrides only
    append to a list.
    """

    __slots__ = ("log",)

    def __init__(self, source: RegisterFile):
        super().__init__(num_read_ports=source.num_read_ports,
                         num_write_ports=source.num_write_ports)
        self.values = list(source.values)
        self.ready_cycle = list(source.ready_cycle)
        self.read_samples = list(source.read_samples)
        self.write_samples = list(source.write_samples)
        self.log: List[Tuple[int, int]] = []

    def read(self, index: int) -> int:
        if index:
            self.log.append((0, index))
            return self.values[index]
        return 0

    def write(self, index: int, value: int):
        if index:
            self.log.append((1, index))
            self.values[index] = value & XMASK


def _exempt_masks(log, num_checkpoints: int):
    """Per-checkpoint dead registers from one core's access log.

    Walking the log backwards, a register is exempt at a checkpoint iff
    its next architectural access afterwards is a write (or never
    comes): its value at the checkpoint then cannot influence anything
    observable, so a forked run may differ from the golden run in that
    register and still be bisimilar from the checkpoint on.

    Log kinds >= 3 (the Monte-Carlo engine's per-cycle markers, see
    :mod:`repro.montecarlo.golden`) are ignored here.
    """
    masks = [()] * num_checkpoints
    next_kind: Dict[int, int] = {}
    for kind, value in reversed(log):
        if kind == 2:
            masks[value] = tuple(
                register for register in range(1, NUM_REGISTERS)
                if next_kind.get(register, 1) != 0)
        elif kind < 2:
            next_kind[value] = kind
    return masks


@dataclass
class GoldenArtifact:
    """Everything a :class:`ForkEngine` needs from one golden run.

    Snapshots are kept encoded (``bytes``) so the artifact pickles
    cheaply to campaign pool workers; engines decode them lazily.
    """

    checksum: int
    outputs: Tuple[int, int]
    end_cycle: int
    finished: bool
    no_diversity_cycles: int
    monitored: Tuple[int, int]
    checkpoint_every: int
    #: Cycle each snapshot was taken at (ascending).
    checkpoint_cycles: Tuple[int, ...]
    #: Per checkpoint, per monitored core: registers provably dead there.
    exempt_masks: tuple
    #: Encoded snapshots, aligned with :attr:`checkpoint_cycles`.
    snapshots: Tuple[bytes, ...]
    sim_key: str = ""


def golden_run_with_checkpoints(program: Program,
                                config: Optional[SocConfig] = None,
                                max_cycles: int = 2_000_000,
                                checkpoint_every: int = 0,
                                benchmark: str = "program",
                                sim_key: str = "",
                                engine: str = "reference"
                                ) -> GoldenArtifact:
    """Fault-free run that drops snapshots and a dead-register map.

    With ``checkpoint_every == 0`` no snapshots are taken and the
    artifact only carries the golden summary (``checksum`` replaces a
    separate :func:`golden_run`).

    ``engine`` is accepted for interface symmetry but the recording
    register files make this run unsupported by the fast tier — the
    engine selector falls back to reference and records the reason.
    """
    soc = MPSoC(config=config)
    soc.start_redundant(program)
    # Swap in recording register files AFTER start_redundant: the
    # gp/sp/tp environment writes are initial state, not accesses the
    # dead-register analysis should see.
    recorders: List[_RecordingRegisterFile] = []
    for index in soc.monitored:
        core = soc.cores[index]
        recorder = _RecordingRegisterFile(core.regfile)
        core.regfile = recorder
        recorders.append(recorder)
    blobs: List[bytes] = []
    cycles: List[int] = []

    def on_checkpoint(snap_soc):
        index = len(blobs)
        for recorder in recorders:
            recorder.log.append((2, index))
        cycles.append(snap_soc.cycle)
        blobs.append(snap_soc.snapshot(
            benchmark=benchmark, checkpoint_every=checkpoint_every,
            sim_key=sim_key).encode())

    from ..engine import run_soc
    run_soc(soc, engine, program=program, max_cycles=max_cycles,
            checkpoint_every=checkpoint_every,
            on_checkpoint=on_checkpoint if checkpoint_every > 0
            else None)
    # The halt-time checksum readout is an architectural read.
    for recorder in recorders:
        recorder.log.append((0, RESULT_REGISTER))
    outputs = _core_outputs(soc)
    if outputs[0] != outputs[1]:
        raise RuntimeError("golden run is not deterministic")
    masks = [_exempt_masks(recorder.log, len(blobs))
             for recorder in recorders]
    return GoldenArtifact(
        checksum=outputs[0],
        outputs=outputs,
        end_cycle=soc.cycle,
        finished=all(soc.cores[i].finished for i in soc.monitored),
        no_diversity_cycles=soc.safedm.stats.no_diversity_cycles,
        monitored=tuple(soc.monitored),
        checkpoint_every=checkpoint_every,
        checkpoint_cycles=tuple(cycles),
        exempt_masks=tuple(zip(*masks)) if blobs else (),
        snapshots=tuple(blobs),
        sim_key=sim_key,
    )


# -- convergence views --------------------------------------------------------

def _campaign_view(state: dict, monitored, exempt_masks) -> dict:
    """Accumulator-free view of a (memory-less) state dict for the
    convergence compare: dead registers zeroed on the monitored cores,
    decode caches dropped (they influence only their own counters — a
    restored-then-dropped stale entry and a live stale entry both miss
    identically on their next access)."""
    view = dynamic_view(state)
    for entry in view["cores"]:
        entry.pop("fetch_cache", None)
    for core_id, mask in zip(monitored, exempt_masks):
        values = view["cores"][core_id]["regfile"]["values"]
        for register in mask:
            values[register] = 0
    return view


def _live_probe(soc: MPSoC, monitored, exempt_masks) -> tuple:
    """Cheap discriminator of a live SoC (subset of the full view)."""
    items = []
    for core_id, mask in zip(monitored, exempt_masks):
        core = soc.cores[core_id]
        values = list(core.regfile.values)
        for register in mask:
            values[register] = 0
        items.append((core.fetch_pc, bool(core.halted), tuple(values)))
    items.append(soc.safedm.instruction_diff.diff)
    return tuple(items)


def _state_probe(state: dict, monitored, exempt_masks) -> tuple:
    """:func:`_live_probe` computed from a decoded snapshot state."""
    items = []
    for core_id, mask in zip(monitored, exempt_masks):
        entry = state["cores"][core_id]
        values = [int(v) for v in entry["regfile"]["values"]]
        for register in mask:
            values[register] = 0
        items.append((int(entry["fetch_pc"]), bool(entry["halted"]),
                      tuple(values)))
    items.append(int(state["monitors"][0]["instruction_diff"]["diff"]))
    return tuple(items)


class _GoldenView:
    """Memoized convergence reference for one golden checkpoint."""

    __slots__ = ("probe", "rest", "pages", "versions", "no_div_at")

    def __init__(self, state: dict, monitored, exempt_masks):
        self.probe = _state_probe(state, monitored, exempt_masks)
        memory = state["memory"]
        self.pages = {int(key): bytes(page)
                      for key, page in memory["pages"].items()}
        self.versions = {int(key): int(version)
                         for key, version in memory["versions"].items()}
        rest = dict(state)
        del rest["memory"]
        self.rest = jsonable(_campaign_view(rest, monitored,
                                            exempt_masks))
        self.no_div_at = int(
            state["monitors"][0]["stats"]["no_diversity_cycles"])


class ForkEngine:
    """Fork injected runs from golden checkpoints instead of cycle 0.

    ``fork(cycle)`` restores the nearest golden snapshot at or before
    the fault cycle into a fresh :class:`MPSoC`; ``convergence()``
    builds the probe :func:`_drive` consults to cut a forked run short
    once its dynamic state provably rejoins the golden run's.
    """

    def __init__(self, program: Program, artifact: GoldenArtifact,
                 config: Optional[SocConfig] = None):
        self.program = program
        self.artifact = artifact
        self.config = config
        self._snapshots: Dict[int, Snapshot] = {}
        self._views: Dict[int, _GoldenView] = {}
        self._cycle_to_index = {
            cycle: index for index, cycle
            in enumerate(artifact.checkpoint_cycles)}
        self.forks = 0
        self.restores = 0
        self.scratch_runs = 0
        self.converged = 0

    # -- forking ----------------------------------------------------------

    def nearest_checkpoint(self, fault_cycle: int) -> Optional[int]:
        """Index of the latest checkpoint at or before ``fault_cycle``."""
        best = None
        for index, cycle in enumerate(self.artifact.checkpoint_cycles):
            if cycle > fault_cycle:
                break
            best = index
        return best

    def _snapshot(self, index: int) -> Snapshot:
        snapshot = self._snapshots.get(index)
        if snapshot is None:
            snapshot = Snapshot.decode(self.artifact.snapshots[index])
            self._snapshots[index] = snapshot
        return snapshot

    def fork(self, fault_cycle: int) -> MPSoC:
        """A SoC positioned to inject at ``fault_cycle``."""
        index = self.nearest_checkpoint(fault_cycle)
        if index is None:
            # Fault before the first checkpoint: plain from-scratch run.
            self.scratch_runs += 1
            soc = MPSoC(config=self.config)
            soc.start_redundant(self.program)
            return soc
        soc = MPSoC(config=self.config)
        soc.load_state_dict(self._snapshot(index).state)
        self.forks += 1
        self.restores += 1
        return soc

    # -- convergence ------------------------------------------------------

    def _golden_view(self, index: int) -> _GoldenView:
        view = self._views.get(index)
        if view is None:
            view = _GoldenView(self._snapshot(index).state,
                               self.artifact.monitored,
                               self.artifact.exempt_masks[index])
            self._views[index] = view
        return view

    def convergence(self):
        """A ``convergence(soc)`` callable for :func:`_drive`.

        At every golden checkpoint cycle the fork reaches (after the
        fault), compare its dynamic state against the golden run's,
        exempting provably dead registers.  A match means the two runs
        are bisimilar from here on, so the remaining cycles need not be
        simulated: the final counters are the fork's own (they include
        the restored golden prefix and the divergence window) plus the
        golden tail, and the outputs are the golden outputs.
        """
        artifact = self.artifact
        if not artifact.checkpoint_cycles:
            return None
        cycle_to_index = self._cycle_to_index

        def check(soc: MPSoC):
            index = cycle_to_index.get(soc.cycle)
            if index is None:
                return None
            golden = self._golden_view(index)
            mask = artifact.exempt_masks[index]
            if _live_probe(soc, artifact.monitored, mask) != golden.probe:
                return None
            # Memory compared natively (bytes, no JSON round trip) —
            # it dominates state size and almost always matches or
            # mismatches on the first page.
            pages = soc.memory._pages
            if pages.keys() != golden.pages.keys():
                return None
            for key, page in pages.items():
                if golden.pages[key] != page:
                    return None
            if soc.memory.page_versions != golden.versions:
                return None
            state = soc.state_dict()
            del state["memory"]
            if jsonable(_campaign_view(state, artifact.monitored,
                                       mask)) != golden.rest:
                return None
            self.converged += 1
            no_diversity = (soc.safedm.stats.no_diversity_cycles
                            + artifact.no_diversity_cycles
                            - golden.no_div_at)
            # A converged run is bisimilar to the golden run from this
            # checkpoint on, so it ends exactly when the golden run did.
            return (no_diversity, artifact.finished, artifact.outputs,
                    artifact.end_cycle)

        return check
