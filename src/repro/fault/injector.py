"""Single fault-injection runs on the MPSoC."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..baselines.unaware import RedundancyOutcome, compare_outputs
from ..isa.program import Program
from ..soc.config import SocConfig
from ..soc.mpsoc import MPSoC
from .models import CommonCauseFault, TransientFault


def _activity_digest(soc: MPSoC, index: int) -> int:
    """CRC of one core's SafeDM-visible signature window."""
    import zlib
    crc = 0
    for entry in soc.safedm.ds_units[index].signature():
        enable, value = entry
        crc = zlib.crc32(bytes([enable]) + value.to_bytes(8, "little"),
                         crc)
    for item in soc.safedm.is_units[index].signature():
        if isinstance(item, tuple):
            valid, word = item
            crc = zlib.crc32(bytes([valid]) + word.to_bytes(4, "little"),
                             crc)
        else:
            crc = zlib.crc32(int(item).to_bytes(4, "little"), crc)
    return crc & 0xFFFFFFFF

#: The kernels' checksum register (s0 == x8); read per core at halt so
#: outputs stay per-core even when both cores share one address space.
RESULT_REGISTER = 8


def _core_outputs(soc: MPSoC):
    c0 = soc.cores[soc.monitored[0]]
    c1 = soc.cores[soc.monitored[1]]
    return (c0.regfile.values[RESULT_REGISTER],
            c1.regfile.values[RESULT_REGISTER])


def shared_address_config() -> SocConfig:
    """A (mis)configured redundancy where both cores share one data
    region — identical gp/sp, hence genuinely identical state during
    aligned execution.  This is the CCF-vulnerable deployment SafeDM
    exists to flag."""
    cfg = SocConfig()
    return SocConfig(data_bases=(cfg.data_bases[0], cfg.data_bases[0]))


@dataclass
class InjectionResult:
    """Outcome of one injected redundant run."""

    fault_cycle: int
    outcome: RedundancyOutcome
    #: SafeDM report at the injection cycle: True if diversity existed.
    diversity_at_injection: Optional[bool]
    #: Cumulative no-diversity cycles over the run.
    no_diversity_cycles: int
    effects: tuple
    finished: bool

    @property
    def effects_identical(self) -> bool:
        """True when the disturbance corrupted both cores identically."""
        return len(self.effects) == 2 and self.effects[0] == self.effects[1]

    @property
    def classification(self) -> str:
        if not self.finished:
            return "hang"
        if self.outcome.correct:
            return "masked"
        if self.outcome.detected:
            return "detected"
        return "silent_ccf"


def golden_run(program: Program, config: Optional[SocConfig] = None,
               max_cycles: int = 2_000_000) -> int:
    """Fault-free redundant run; returns the golden checksum."""
    soc = MPSoC(config=config)
    soc.start_redundant(program)
    soc.run(max_cycles=max_cycles)
    golden0, golden1 = _core_outputs(soc)
    if golden0 != golden1:
        raise RuntimeError("golden run is not deterministic")
    return golden0


def inject_common_cause(program: Program, cycle: int, stimulus: int,
                        golden: int,
                        config: Optional[SocConfig] = None,
                        max_cycles: int = 2_000_000) -> InjectionResult:
    """Run redundantly with one common-cause fault at ``cycle``."""
    soc = MPSoC(config=config)
    soc.start_redundant(program)
    fault = CommonCauseFault(cycle=cycle, stimulus=stimulus)
    effects = ()
    diversity_at_injection = None
    start = soc.cycle
    while soc.cycle - start < max_cycles:
        if all(soc.cores[i].finished for i in soc.monitored):
            break
        soc.step()
        if soc.cycle - 1 == cycle:
            # Inject on the clock edge that ends the fault cycle: the
            # corruption is modulated by the state SafeDM just sampled.
            core0 = soc.cores[soc.monitored[0]]
            core1 = soc.cores[soc.monitored[1]]
            effects = fault.inject(core0, core1,
                                   _activity_digest(soc, 0),
                                   _activity_digest(soc, 1))
            if soc.safedm.last_report is not None:
                diversity_at_injection = soc.safedm.last_report.diversity
    soc.safedm.finish()
    finished = all(soc.cores[i].finished for i in soc.monitored)
    output0, output1 = _core_outputs(soc)
    outcome = compare_outputs(output0, output1, golden)
    return InjectionResult(
        fault_cycle=cycle,
        outcome=outcome,
        diversity_at_injection=diversity_at_injection,
        no_diversity_cycles=soc.safedm.stats.no_diversity_cycles,
        effects=effects,
        finished=finished,
    )


def inject_transient(program: Program, cycle: int, core: int,
                     register: int, bit: int, golden: int,
                     config: Optional[SocConfig] = None,
                     max_cycles: int = 2_000_000) -> InjectionResult:
    """Run redundantly with one single-core transient at ``cycle``."""
    soc = MPSoC(config=config)
    soc.start_redundant(program)
    fault = TransientFault(cycle=cycle, core=core, register=register,
                           bit=bit)
    effects = ()
    start = soc.cycle
    while soc.cycle - start < max_cycles:
        if all(soc.cores[i].finished for i in soc.monitored):
            break
        if soc.cycle == cycle:
            effects = (fault.inject(soc.cores[core]),)
        soc.step()
    soc.safedm.finish()
    finished = all(soc.cores[i].finished for i in soc.monitored)
    output0, output1 = _core_outputs(soc)
    outcome = compare_outputs(output0, output1, golden)
    return InjectionResult(
        fault_cycle=cycle,
        outcome=outcome,
        diversity_at_injection=None,
        no_diversity_cycles=soc.safedm.stats.no_diversity_cycles,
        effects=effects,
        finished=finished,
    )
