"""FTTI tracking — the safety-concept arithmetic of paper Section III-A.

"ASIL-D systems such as braking and steering are executed at high
frequency (e.g. every 50ms) and a hazard can occur if errors are not
detected within a larger period (e.g. 200ms), which is the Fault
Tolerant Time Interval (FTTI).  Hence, if a job of the braking task is
dropped, hence preserving the decision taken 50ms ago during 50
additional ms, the system still remains safe as long as new job drops
do not occur consecutively."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class JobRecord:
    """Outcome of one periodic job instance."""

    index: int
    release_ms: float
    dropped: bool
    reason: str = ""


@dataclass
class FttiTracker:
    """Tracks job drops against the task's FTTI budget.

    With period P and FTTI F, up to ``floor(F / P) - 1`` *consecutive*
    drops are tolerable: the last good actuation stays valid until the
    FTTI expires.
    """

    period_ms: float = 50.0
    ftti_ms: float = 200.0
    records: List[JobRecord] = field(default_factory=list)

    def __post_init__(self):
        if self.ftti_ms < self.period_ms:
            raise ValueError("FTTI shorter than the task period")

    @property
    def max_consecutive_drops(self) -> int:
        return int(self.ftti_ms / self.period_ms) - 1

    def record(self, dropped: bool, reason: str = "") -> JobRecord:
        record = JobRecord(index=len(self.records),
                           release_ms=len(self.records) * self.period_ms,
                           dropped=dropped, reason=reason)
        self.records.append(record)
        return record

    def consecutive_drops_ending_at(self, index: int) -> int:
        count = 0
        while index >= 0 and self.records[index].dropped:
            count += 1
            index -= 1
        return count

    @property
    def hazards(self) -> List[int]:
        """Job indices at which the FTTI budget was exceeded."""
        limit = self.max_consecutive_drops
        out = []
        for record in self.records:
            if record.dropped and \
                    self.consecutive_drops_ending_at(record.index) > limit:
                out.append(record.index)
        return out

    @property
    def safe(self) -> bool:
        return not self.hazards

    @property
    def drop_count(self) -> int:
        return sum(1 for r in self.records if r.dropped)

    def summary(self) -> str:
        return ("jobs=%d drops=%d max_consecutive_allowed=%d hazards=%s"
                % (len(self.records), self.drop_count,
                   self.max_consecutive_drops,
                   self.hazards or "none"))
