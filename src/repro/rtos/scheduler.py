"""Minimal RTOS layer: periodic redundant jobs with SafeDM supervision.

Implements the safety concept the paper sketches: the RTOS releases a
critical task periodically, runs it redundantly on two non-lockstepped
cores with SafeDM configured to interrupt on lack of diversity, and
*drops the job* when the interrupt fires ("applying the same safety
measure as if an error had occurred is a viable and simple strategy").
The :class:`~repro.rtos.safety.FttiTracker` then verifies that drops
never exceed the FTTI budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..core.monitor import ReportingMode
from ..isa.program import Program
from ..soc.config import SocConfig
from ..soc.mpsoc import MPSoC
from .safety import FttiTracker


@dataclass
class PeriodicTask:
    """A critical task released every ``period_ms``."""

    name: str
    program: Program
    period_ms: float = 50.0
    ftti_ms: float = 200.0
    #: SafeDM no-diversity cycle threshold that triggers the interrupt.
    diversity_threshold: int = 1


@dataclass
class JobOutcome:
    index: int
    cycles: int
    dropped: bool
    interrupts: int
    no_diversity_cycles: int
    output: Optional[int] = None


class RedundantJobRunner:
    """Releases jobs of a task redundantly under SafeDM supervision."""

    def __init__(self, task: PeriodicTask,
                 config: Optional[SocConfig] = None,
                 max_cycles_per_job: int = 2_000_000,
                 perturb_hook: Optional[Callable[[MPSoC, int], None]]
                 = None):
        self.task = task
        self.config = config
        self.max_cycles_per_job = max_cycles_per_job
        #: Optional per-job hook (soc, job_index) for tests to perturb
        #: a run (e.g. force both cores into identical state).
        self.perturb_hook = perturb_hook
        self.tracker = FttiTracker(period_ms=task.period_ms,
                                   ftti_ms=task.ftti_ms)
        self.outcomes: List[JobOutcome] = []

    def run_job(self, index: int) -> JobOutcome:
        """Run one redundant job instance; drop it on a SafeDM IRQ."""
        soc = MPSoC(config=self.config,
                    mode=ReportingMode.INTERRUPT_THRESHOLD,
                    threshold=self.task.diversity_threshold)
        soc.start_redundant(self.task.program)
        if self.perturb_hook is not None:
            self.perturb_hook(soc, index)
        cycles = soc.run(max_cycles=self.max_cycles_per_job)
        stats = soc.safedm.stats
        dropped = soc.safedm.irq.raised_count > 0
        output = None
        if not dropped:
            core0 = soc.cores[soc.monitored[0]]
            output = core0.regfile.values[8]  # kernel checksum register
        outcome = JobOutcome(index=index, cycles=cycles, dropped=dropped,
                             interrupts=soc.safedm.irq.raised_count,
                             no_diversity_cycles=stats.no_diversity_cycles,
                             output=output)
        self.outcomes.append(outcome)
        self.tracker.record(dropped,
                            reason="diversity interrupt" if dropped else "")
        return outcome

    def run(self, jobs: int) -> List[JobOutcome]:
        """Run ``jobs`` consecutive periodic releases."""
        for index in range(jobs):
            self.run_job(index)
        return self.outcomes

    def summary(self) -> str:
        return "%s: %s" % (self.task.name, self.tracker.summary())
