"""Safety-concept layer: periodic redundant jobs, FTTI tracking."""

from .safety import FttiTracker, JobRecord
from .scheduler import JobOutcome, PeriodicTask, RedundantJobRunner

__all__ = [
    "FttiTracker",
    "JobOutcome",
    "JobRecord",
    "PeriodicTask",
    "RedundantJobRunner",
]
