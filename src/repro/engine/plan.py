"""Static fetch-group plans for the fast execution tier.

The fast tier (see :mod:`repro.engine.fast`) keeps all mutable state in
the *same* objects the reference interpreter uses; what it specializes
away is the per-cycle re-derivation of facts that are static for a given
program image:

* what the fetch unit will produce at a given PC — which instruction
  words, whether they pair into a dual-issue group, and where fetch goes
  next (:class:`PlanEntry`),
* what issuing that group does — operand reads, the functional result,
  scoreboard updates, branch resolution (a per-entry *issue handler*
  generated as Python source and compiled once).

A plan entry is valid for exactly one (pc, page-version) and is checked
against the live :attr:`~repro.mem.memory.Memory.page_versions` on every
fetch; any mismatch (self-modifying or reloaded code) falls back to the
reference fetch path forever.  Entries are seeded from the basic blocks
:class:`repro.lint.cfg.ControlFlowGraph` computes over the assembled
image and built lazily for PCs outside it (stagger sleds).

Bit-identity contract: every statement an issue handler emits is a
transliteration of :meth:`repro.cpu.core.Core._issue` with the decoded
operands folded to constants.  Anything the transliteration cannot
prove static (unknown mnemonics, undecodable words, unallocated pages)
yields ``entry = None`` — the fast tier then delegates that PC to the
reference interpreter, reproducing even its error behaviour.
"""

from __future__ import annotations

from dataclasses import astuple
from typing import Dict, List, Optional, Tuple

from ..cpu.core import CoreConfig
from ..cpu.exec_unit import execute_alu
from ..cpu.pipeline import Group as _Group, can_pair
from ..isa.decoder import decode
from ..isa.instruction import FetchedInstruction, Instruction
from ..isa.opcodes import (
    CLASS_BRANCH,
    CLASS_DIV,
    CLASS_JUMP,
    CLASS_MUL,
)
from ..isa.program import Program
from ..lint.cfg import build_cfg
from ..mem.memory import PAGE_BITS, PAGE_MASK, Memory

#: Fetch-redirect kinds a plan entry can encode.
KIND_STATIC = 0   #: next fetch PC is a constant (sequential or jal)
KIND_JALR = 2     #: fetch blocks until the jalr issues
KIND_BRANCH = 3   #: next fetch PC depends on the branch predictor
KIND_HALT = 4     #: ecall/ebreak: fetch disables itself

_XMASK = "0xFFFFFFFFFFFFFFFF"
_PENDING = "0x4000000000000000"  # RegisterFile.PENDING == 1 << 62

# -- superblock trace-tier layout --------------------------------------
#
# A compiled fetch handler no longer returns a bare status code: on
# success it returns the *successor link* — the content of a one-slot
# link cell ``(next_pc, fetch_fn_or_None)`` — so steady-state execution
# threads directly from one compiled block to the next without any
# per-cycle dictionary dispatch.  Chains of these links across
# unconditional control flow and profile-biased branch directions are
# the superblocks; a link whose function half is still None is a
# *direction guard* whose failure side-exits to the block tier
# (dictionary dispatch in repro.engine.fast).  Failure codes stay
# integers: 0 = I-line fill requested in-line, 2 = page-version guard
# failed (self-modifying or reloaded code).

#: Consecutive direction-guard failures at one target before the
#: superblock former links the off-trace arm (adaptive recompilation).
GUARD_RELINK_THRESHOLD = 4

#: Re-specializations allowed per PC after page-version invalidations
#: (self-modifying code) before the PC is pinned to the reference path.
REBUILD_BUDGET = 4

# Deferred-counter slots shared between generated code and the fast
# tier's span loop (the ``acc`` list in repro.engine.fast).  Slots 0-12
# mirror CoreStats/EngineStats counters; 13-17 are the per-reason
# side-exit histogram feeding ``EngineStats.deopt_reasons``.
ACC_FETCH = 0     # stats.fetch_groups
ACC_IFMISS = 1    # stats.ifetch_miss_cycles (miss issuance)
ACC_DECHIT = 2    # stats.decode_cache_hits
ACC_DECMISS = 3   # stats.decode_cache_misses
ACC_COMMIT = 4    # stats.committed
ACC_LOADS = 5     # stats.committed_loads
ACC_STORES = 6    # stats.committed_stores
ACC_BRANCH = 7    # stats.committed_branches
ACC_MULDIV = 8    # stats.committed_muldiv
ACC_ISSUED = 9    # stats.issued_groups (block-tier dispatch)
ACC_DUAL = 10     # stats.dual_issued_groups (block-tier dispatch)
ACC_IFAST = 11    # estats.issue_fast (block-tier dispatch)
ACC_IREF = 12     # estats.issue_ref
ACC_PLAN = 13     # deopt reason: plan_miss
ACC_PAGE = 14     # deopt reason: page_version
ACC_SHAPE = 15    # deopt reason: issue_shape
ACC_MEM = 16      # deopt reason: mem_stage
ACC_GUARD = 17    # deopt reason: guard_fail (block-tier side exit)
ACC_SIZE = 18


class PlanEntry:
    """Everything static about fetching (and issuing) at one PC."""

    __slots__ = ("pc", "page", "version", "words", "i0", "i1", "n",
                 "fetch2", "kind", "next_pc", "btaken", "bfall", "bindex",
                 "issue_maker", "fetch_makers")

    def __init__(self, pc: int, page: int, version: int,
                 words: Tuple[int, ...], i0: Instruction,
                 i1: Optional[Instruction], n: int, fetch2: bool,
                 kind: int, next_pc: int, btaken: int = 0, bfall: int = 0,
                 bindex: int = 0):
        self.pc = pc
        self.page = page
        self.version = version
        self.words = words
        self.i0 = i0
        self.i1 = i1
        self.n = n
        #: True when the reference fetch also touches the decode cache
        #: for ``pc + 4`` (paired, or pair considered-and-rejected).
        self.fetch2 = fetch2
        self.kind = kind
        self.next_pc = next_pc
        self.btaken = btaken
        self.bfall = bfall
        self.bindex = bindex
        #: Lazily compiled closure factories (shared by both cores;
        #: each core instantiates its own closures over its own state).
        #: Fetch factories are keyed by branch bias — True specializes
        #: the predicted-taken arm as the fall-through trace direction,
        #: False the not-taken arm; non-branch entries only use False.
        self.issue_maker = None
        self.fetch_makers: Dict[bool, object] = {}


def _signed(var: str) -> str:
    return ("(%s - 0x10000000000000000 if %s >= 0x8000000000000000 "
            "else %s)" % (var, var, var))


def _s32(var: str) -> str:
    return "(((%s & 0xFFFFFFFF) ^ 0x80000000) - 0x80000000)" % var


def _wrap_w(expr: str) -> str:
    return ("(((((%s) & 0xFFFFFFFF) ^ 0x80000000) - 0x80000000) & %s"
            ")" % (expr, _XMASK))


def _alu_expr(instr: Instruction, a: str, b: str, sym) -> Optional[str]:
    """Constant-folded expression for ``execute_alu(instr, a, b)``.

    Immediates are lifted into the constant pool via ``sym`` so the
    expression text is shape-stable.  Returns None for mnemonics left
    to the interpreter fallback (the div/rem family — 20-cycle latency
    makes inlining pointless — and anything unknown, which must raise
    exactly like the reference).
    """
    name = instr.mnemonic
    imm = instr.imm
    if name == "addi":
        return "(%s + %s) & %s" % (a, sym(imm), _XMASK)
    if name == "slti":
        return "1 if %s < %s else 0" % (_signed(a), sym(imm))
    if name == "sltiu":
        return "1 if %s < %s else 0" % (a, sym(imm & 0xFFFFFFFFFFFFFFFF))
    if name == "xori":
        return "(%s ^ %s) & %s" % (a, sym(imm), _XMASK)
    if name == "ori":
        return "(%s | %s) & %s" % (a, sym(imm), _XMASK)
    if name == "andi":
        return "(%s & %s) & %s" % (a, sym(imm), _XMASK)
    if name == "slli":
        return "(%s << %s) & %s" % (a, sym(imm), _XMASK)
    if name == "srli":
        return "%s >> %s" % (a, sym(imm))
    if name == "srai":
        return "(%s >> %s) & %s" % (_signed(a), sym(imm), _XMASK)
    if name == "addiw":
        return _wrap_w("%s + %s" % (a, sym(imm)))
    if name == "slliw":
        return _wrap_w("%s << %s" % (a, sym(imm)))
    if name == "srliw":
        return _wrap_w("(%s & 0xFFFFFFFF) >> %s" % (a, sym(imm)))
    if name == "sraiw":
        return _wrap_w("%s >> %s" % (_s32(a), sym(imm)))
    if name == "add":
        return "(%s + %s) & %s" % (a, b, _XMASK)
    if name == "sub":
        return "(%s - %s) & %s" % (a, b, _XMASK)
    if name == "sll":
        return "(%s << (%s & 63)) & %s" % (a, b, _XMASK)
    if name == "slt":
        return "1 if %s < %s else 0" % (_signed(a), _signed(b))
    if name == "sltu":
        return "1 if %s < %s else 0" % (a, b)
    if name == "xor":
        return "%s ^ %s" % (a, b)
    if name == "srl":
        return "%s >> (%s & 63)" % (a, b)
    if name == "sra":
        return "(%s >> (%s & 63)) & %s" % (_signed(a), b, _XMASK)
    if name == "or":
        return "%s | %s" % (a, b)
    if name == "and":
        return "%s & %s" % (a, b)
    if name == "addw":
        return _wrap_w("%s + %s" % (a, b))
    if name == "subw":
        return _wrap_w("%s - %s" % (a, b))
    if name == "sllw":
        return _wrap_w("%s << (%s & 31)" % (a, b))
    if name == "srlw":
        return _wrap_w("(%s & 0xFFFFFFFF) >> (%s & 31)" % (a, b))
    if name == "sraw":
        return _wrap_w("%s >> (%s & 31)" % (_s32(a), b))
    if name == "mul":
        return "(%s * %s) & %s" % (a, b, _XMASK)
    if name == "mulh":
        return "((%s * %s) >> 64) & %s" % (_signed(a), _signed(b), _XMASK)
    if name == "mulhsu":
        return "((%s * %s) >> 64) & %s" % (_signed(a), b, _XMASK)
    if name == "mulhu":
        return "((%s * %s) >> 64) & %s" % (a, b, _XMASK)
    if name == "mulw":
        return _wrap_w("%s * %s" % (a, b))
    if name == "lui":
        return sym(imm & 0xFFFFFFFFFFFFFFFF)
    return None


def _emit_squash(lines: List[str], indent: str):
    """Transliteration of Core._squash_younger().

    ``stats`` and ``stages`` are factory-scope bindings of the owning
    core's objects (see build_issue_maker).
    """
    lines.append(indent + "stats.flushes += 1")
    lines.append(indent + "stages[0] = None")
    lines.append(indent + "stages[1] = None")
    lines.append(indent + "core._jalr_block = False")


_BRANCH_OPS = {"beq": "==", "bne": "!=", "bltu": "<", "bgeu": ">="}


class _ConstPool:
    """Collects per-entry constants during handler-source generation.

    Every call to :meth:`sym` replaces one concrete value (a register
    index, immediate, PC, decoded-instruction object, ...) with a fresh
    symbolic parameter name.  The generated source then depends only on
    the entry's *structure*, so entries that differ only in constants
    share one compiled code object via :data:`_SHAPE_CACHE` — which is
    what makes handler compilation cheap: a program has hundreds of
    plan entries but only a couple dozen shapes, and the shapes repeat
    across programs within a process.
    """

    def __init__(self):
        self.values: List[object] = []

    def sym(self, value) -> str:
        name = "K%d" % len(self.values)
        self.values.append(value)
        return name


#: handler source text -> compiled ``_make`` factory (module-wide).
_SHAPE_CACHE: Dict[str, object] = {}


def _shape_make(source: str):
    make = _SHAPE_CACHE.get(source)
    if make is None:
        namespace: Dict[str, object] = {}
        exec(compile(source, "<repro.engine shape>", "exec"), namespace)
        make = _SHAPE_CACHE[source] = namespace["_make"]
    return make


#: (id(program), config key) -> compiled template plan.  Programs are
#: cached per name by the workload registry, so identity keys are
#: stable; the template holds a strong reference to its program, which
#: keeps the id from being reused while the entry lives.
_PLAN_TEMPLATES: Dict[tuple, "ProgramPlan"] = {}
_PLAN_TEMPLATE_LIMIT = 16


class ProgramPlan:
    """Per-PC :class:`PlanEntry` table for one memory image."""

    def __init__(self, memory: Memory, core_config: CoreConfig):
        self.memory = memory
        self.config = core_config
        line_size = core_config.l1i.line_size
        self._line_shift = line_size.bit_length() - 1
        self._set_mask = core_config.l1i.num_sets - 1
        self._pred_mask = core_config.predictor_entries - 1
        #: pc -> PlanEntry, or None for PCs pinned to the reference
        #: path (undecodable, unallocated, page-crossing oddities).
        self.entries: Dict[int, Optional[PlanEntry]] = {}
        self.blocks_compiled = 0
        #: page -> version observed while compiling (template validity).
        self._page_versions: Dict[int, int] = {}
        self._program: Optional[Program] = None

    # -- construction -----------------------------------------------------

    @classmethod
    def for_soc(cls, memory: Memory, core_config: CoreConfig,
                program: Optional[Program] = None) -> "ProgramPlan":
        """A plan for one run, reusing compiled templates across runs.

        Entry compilation and handler-source generation cost ~8% of a
        fast-tier run when paid every time; the same program image run
        repeatedly (benchmark repeats, sweep points, campaign trials)
        produces byte-identical entries, so the compiled template is
        cached per (program identity, core config) and each run gets a
        shallow clone.  The clone owns its entry *dict* — lazily built
        entries (stagger sleds, whose content varies per run) stay
        private — while the :class:`PlanEntry` objects and their
        compiled factories are shared.  Reuse is guarded by the page
        versions recorded at compile time; deterministic loading gives
        every run of the same program the same versions, and any
        mismatch (mutated image) recompiles the template.
        """
        if program is None:
            return cls(memory, core_config)
        key = (id(program), astuple(core_config))
        template = _PLAN_TEMPLATES.get(key)
        if (template is None or template._program is not program
                or not template._versions_match(memory)):
            if len(_PLAN_TEMPLATES) >= _PLAN_TEMPLATE_LIMIT:
                _PLAN_TEMPLATES.clear()
            template = cls(memory, core_config)
            template.compile_program(program)
            template._program = program
            _PLAN_TEMPLATES[key] = template
        return template._instantiate(memory)

    def _versions_match(self, memory: Memory) -> bool:
        versions = memory.page_versions
        for page, version in self._page_versions.items():
            if versions.get(page, 0) != version:
                return False
        return True

    def _instantiate(self, memory: Memory) -> "ProgramPlan":
        clone = ProgramPlan(memory, self.config)
        clone.entries = dict(self.entries)
        clone.blocks_compiled = self.blocks_compiled
        return clone

    def compile_program(self, program: Program):
        """Seed entries for every instruction PC the CFG knows about.

        Uses the lint CFG's basic blocks so the plan covers exactly the
        decodable, non-data instruction stream (constant pools never
        produce entries), and counts compiled blocks for telemetry.
        Handler factories are pre-bound here too; thanks to the shape
        cache this is mostly dictionary lookups, not compilation.
        """
        for block in build_cfg(program).blocks():
            for pc, _ in block.instrs:
                if pc not in self.entries:
                    self.entries[pc] = self._build(pc)
        for entry in self.entries.values():
            if entry is not None:
                self.build_issue_maker(entry)
                self.build_fetch_maker(entry, False)

    def entry_at(self, pc: int) -> Optional[PlanEntry]:
        """The entry for ``pc``, built (and cached) on first use."""
        entry = self._build(pc)
        self.entries[pc] = entry
        return entry

    # -- superblock formation policy --------------------------------------

    def branch_bias(self, entry: PlanEntry, ptable: List[int]) -> bool:
        """Profile-biased trace direction for a branch entry.

        Reads the live 2-bit predictor counters, so superblocks formed
        mid-run chain the direction the program has actually been
        taking — the profile guidance of the trace tier.
        """
        if not self.config.predictor_enabled:
            return False
        return ptable[entry.bindex] >= 2

    def link_targets(self, entry: PlanEntry, ptable: List[int]):
        """(chained_pc, guarded_pc) for the superblock former.

        ``chained_pc`` is the successor the trace links eagerly (None
        when fetch blocks or halts after this entry); ``guarded_pc`` is
        a branch's off-trace direction, left behind a guard that
        side-exits to the block tier until adaptive recompilation links
        it too (see GUARD_RELINK_THRESHOLD).
        """
        kind = entry.kind
        if kind == KIND_STATIC:
            return entry.next_pc, None
        if kind == KIND_BRANCH:
            if self.branch_bias(entry, ptable):
                return entry.btaken, entry.bfall
            return entry.bfall, entry.btaken
        return None, None

    def _peek_word(self, address: int) -> Optional[int]:
        """Read an instruction word without allocating memory pages.

        The reference fetch path allocates a zero page on first touch;
        the plan builder must not, so an unallocated page simply pins
        the PC to the reference path (which then allocates — and fails
        to decode — exactly as it would have without a plan).
        """
        page = self.memory._pages.get(address >> PAGE_BITS)
        if page is None:
            return None
        start = address & PAGE_MASK
        return int.from_bytes(page[start:start + 4], "little")

    def _build(self, pc: int) -> Optional[PlanEntry]:
        if pc & 3:
            return None
        word0 = self._peek_word(pc)
        if word0 is None:
            return None
        try:
            i0 = decode(word0)
        except Exception:
            return None
        page = pc >> PAGE_BITS
        version = self.memory.page_versions.get(page, 0)
        self._page_versions[page] = version

        def entry(words, i1, n, fetch2, kind, next_pc,
                  btaken=0, bfall=0, bindex=0):
            self.blocks_compiled += 1
            return PlanEntry(pc, page, version, words, i0, i1, n, fetch2,
                             kind, next_pc, btaken, bfall, bindex)

        # First-slot redirects terminate the fetch group (mirrors
        # Core._redirect_after on the first fetched instruction).
        name = i0.mnemonic
        if name == "jal":
            return entry((word0,), None, 1, False, KIND_STATIC,
                         pc + i0.imm)
        if name == "jalr":
            return entry((word0,), None, 1, False, KIND_JALR, pc + 4)
        if i0.iclass == CLASS_BRANCH:
            return entry((word0,), None, 1, False, KIND_BRANCH, 0,
                         btaken=pc + i0.imm, bfall=pc + 4,
                         bindex=(pc >> 2) & self._pred_mask)
        if name in ("ecall", "ebreak"):
            return entry((word0,), None, 1, False, KIND_HALT, pc + 4)

        # Sequential first slot: the fetch unit tries to pair pc + 4
        # from the same cache line.  Same line implies same page, and —
        # because line presence is per-line — an icache hit on pc
        # guarantees the probe of pc + 4 hits too, so pairing is static.
        pc2 = pc + 4
        if (pc2 >> self._line_shift) != (pc >> self._line_shift):
            return entry((word0,), None, 1, False, KIND_STATIC, pc2)
        word1 = self._peek_word(pc2)
        if word1 is None:
            return None
        try:
            i1 = decode(word1)
        except Exception:
            return None  # reference raises SimulationError; delegate
        if not can_pair(FetchedInstruction(i0, pc),
                        FetchedInstruction(i1, pc2)):
            # Pair rejected: single-slot group, but the reference still
            # ran pc2 through the decode cache (fetch2 bookkeeping).
            return entry((word0,), i1, 1, True, KIND_STATIC, pc2)
        name1 = i1.mnemonic
        words = (word0, word1)
        if name1 == "jal":
            return entry(words, i1, 2, True, KIND_STATIC, pc2 + i1.imm)
        if name1 == "jalr":
            return entry(words, i1, 2, True, KIND_JALR, pc2 + 4)
        if i1.iclass == CLASS_BRANCH:
            return entry(words, i1, 2, True, KIND_BRANCH, 0,
                         btaken=pc2 + i1.imm, bfall=pc2 + 4,
                         bindex=(pc2 >> 2) & self._pred_mask)
        if name1 in ("ecall", "ebreak"):
            return entry(words, i1, 2, True, KIND_HALT, pc2 + 4)
        return entry(words, i1, 2, True, KIND_STATIC, pc2 + 4)

    # -- issue-handler generation -----------------------------------------

    def build_issue_maker(self, entry: PlanEntry):
        """The issue-handler factory for ``entry`` (cached on the entry).

        The factory has the contract::

            maker(core, values, ready, reads) -> fn
            fn(group, cycle) -> bool

        where ``values``/``ready``/``reads`` are the core's *live*
        regfile lists.  ``fn`` returns False (no state change) when a
        source or destination register is not ready — the same
        condition Core._sources_ready evaluates — and otherwise
        performs exactly what Core._issue does for this group, with
        operands, targets, and port indices bound to per-entry
        constants.  Code is compiled once per *shape* (see
        :class:`_ConstPool`); each core instantiates its own closure.
        """
        maker = entry.issue_maker
        if maker is not None:
            return maker
        source, consts = self._issue_maker_source(entry)
        make = _shape_make(source)
        args = (execute_alu, entry.i0, entry.i1) + tuple(consts)

        def maker(core, values, ready, reads, _make=make, _args=args):
            return _make(core, values, ready, reads, *_args)

        entry.issue_maker = maker
        return maker

    def _issue_maker_source(self, entry: PlanEntry):
        """(source, constants) for the ``_make`` issue factory.

        The source depends only on the entry's structure; every
        varying value is lifted into the constant pool and enters the
        compiled code as a parameter that the handler re-binds as a
        default argument (LOAD_FAST in the body).
        """
        pool = _ConstPool()
        sym = pool.sym
        slots = [(0, entry.i0, entry.pc)]
        if entry.n == 2:
            slots.append((1, entry.i1, entry.pc + 4))

        lines: List[str] = []
        guarded: Dict[int, None] = {}
        for _, instr, _ in slots:
            for reg in instr.sources():
                if reg:
                    guarded.setdefault(reg)
            dest = instr.destination()
            if dest is not None:
                guarded.setdefault(dest)
        for reg in guarded:
            lines.append("    if ready[%s] > cycle:" % sym(reg))
            lines.append("        return False")
        lines.append("    group.ex_done_cycle = cycle + 1")

        squash_slot = None
        for slot, instr, pc in slots:
            a = "a%d" % slot
            b = "b%d" % slot
            f = "f%d" % slot
            if instr.rs1 is not None:
                lines.append("    %s = %s" % (
                    a, "values[%s]" % sym(instr.rs1) if instr.rs1
                    else "0"))
                lines.append("    reads[%d] = (1, %s)" % (2 * slot, a))
            if instr.rs2 is not None:
                lines.append("    %s = %s" % (
                    b, "values[%s]" % sym(instr.rs2) if instr.rs2
                    else "0"))
                lines.append("    reads[%d] = (1, %s)" % (2 * slot + 1, b))

            iclass = instr.iclass
            name = instr.mnemonic
            if iclass == CLASS_BRANCH:
                op = _BRANCH_OPS.get(name)
                if op is not None:
                    taken = "%s %s %s" % (a, op, b)
                elif name == "blt":
                    taken = "%s < %s" % (_signed(a), _signed(b))
                else:  # bge
                    taken = "%s >= %s" % (_signed(a), _signed(b))
                lines.append("    t = %s" % taken)
                lines.append("    %s = group.instrs[%d]" % (f, slot))
                lines.append("    m = t != %s.predicted_taken" % f)
                # BranchPredictor.update, transliterated: misprediction
                # count, then the 2-bit saturating-counter train.
                lines.append("    if m:")
                lines.append("        predictor.mispredictions += 1")
                if self.config.predictor_enabled:
                    kidx = sym((pc >> 2) & self._pred_mask)
                    lines.append("    s = ptable[%s]" % kidx)
                    lines.append("    if t:")
                    lines.append("        if s < 3:")
                    lines.append("            ptable[%s] = s + 1" % kidx)
                    lines.append("    elif s:")
                    lines.append("        ptable[%s] = s - 1" % kidx)
                lines.append("    if m:")
                lines.append("        stats.branch_mispredicts += 1")
                _emit_squash(lines, "        ")
                lines.append("        core.fetch_pc = %s if t else %s"
                             % (sym(pc + instr.imm), sym(pc + 4)))
                lines.append("        core.fetch_enabled = not core.halted")
            elif iclass == CLASS_JUMP:
                klink = sym((pc + 4) & 0xFFFFFFFFFFFFFFFF)
                lines.append("    %s = group.instrs[%d]" % (f, slot))
                lines.append("    %s.result = %s" % (f, klink))
                if instr.rd:
                    krd = sym(instr.rd)
                    lines.append("    values[%s] = %s" % (krd, klink))
                    lines.append("    ready[%s] = cycle + 1" % krd)
                if name == "jalr":
                    _emit_squash(lines, "    ")
                    lines.append("    core.fetch_pc = (%s + %s) & -2"
                                 % (a, sym(instr.imm)))
                    lines.append("    core.fetch_enabled = not core.halted")
            elif iclass == "load":
                lines.append("    %s = group.instrs[%d]" % (f, slot))
                lines.append("    %s.effective_address = (%s + %s) & %s"
                             % (f, a, sym(instr.imm), _XMASK))
                if instr.destination() is not None:
                    lines.append("    ready[%s] = %s"
                                 % (sym(instr.rd), _PENDING))
            elif iclass == "store":
                lines.append("    %s = group.instrs[%d]" % (f, slot))
                lines.append("    %s.effective_address = (%s + %s) & %s"
                             % (f, a, sym(instr.imm), _XMASK))
                lines.append("    %s.store_value = %s" % (f, b))
            elif iclass == "system":
                if name in ("ecall", "ebreak"):
                    lines.append("    core.halted = True")
                    lines.append("    core.fetch_enabled = False")
                    _emit_squash(lines, "    ")
                    squash_slot = slot
                # fence: pipeline bubble, nothing to execute
            else:
                expr = _alu_expr(instr, a, b, sym)
                if expr is None:
                    expr = "_alu(I%d, %s, %s)" % (
                        slot,
                        a if instr.rs1 is not None else "0",
                        b if instr.rs2 is not None else "0")
                lines.append("    r = %s" % expr)
                lines.append("    %s = group.instrs[%d]" % (f, slot))
                lines.append("    %s.result = r" % f)
                if instr.rd:
                    lines.append("    values[%s] = r" % sym(instr.rd))
                if iclass == CLASS_MUL:
                    latency = self.config.mul_latency
                elif iclass == CLASS_DIV:
                    latency = self.config.div_latency
                    lines.append("    group.ex_done_cycle = cycle + %d"
                                 % latency)
                else:
                    latency = 1
                if instr.destination() is not None:
                    lines.append("    ready[%s] = cycle + %d"
                                 % (sym(instr.rd), latency))
        if squash_slot is not None:
            lines.append("    group.truncate(%d)" % squash_slot)
        # The truthy return doubles as the issue width so the span loop
        # can count dual issues without re-measuring the group.
        lines.append("    return %d" % entry.n)

        names = ["K%d" % index for index in range(len(pool.values))]
        tail = "".join(", %s" % name for name in names)
        rebind = "".join(", %s=%s" % (name, name) for name in names)
        source = (
            "def _make(core, values, ready, reads, _alu, I0, I1%s):\n"
            "    stats = core.stats\n"
            "    stages = core.stages\n"
            "    predictor = core.predictor\n"
            "    ptable = predictor._table\n"
            "    def _issue(group, cycle, core=core, values=values,"
            " ready=ready, reads=reads, stats=stats, stages=stages,"
            " predictor=predictor, ptable=ptable, _alu=_alu,"
            " I0=I0, I1=I1%s):\n"
            % (tail, rebind)
            + "\n".join("    " + line for line in lines)
            + "\n    return _issue")
        return source, pool.values

    # -- fetch-handler generation -----------------------------------------

    def build_fetch_maker(self, entry: PlanEntry, bias: bool = False):
        """The fetch-handler factory for ``entry`` (cached on the entry).

        The factory has the contract::

            maker(core, stages, stats, acc, isets, icstats, fcache,
                  versions, request_line, predictor, ptable,
                  ifn, mfn, rfn, link_t, link_f) -> fn
            fn(cycle) -> tuple | int

        ``fn`` performs one fetch attempt at this entry's PC with every
        static fact bound as a constant (cache set index, decode-cache
        keys, group shape, redirect target).  On success it stamps the
        new group with the attached stage handlers (``ifn``/``mfn``/
        ``rfn``) and returns the successor *link* — the content of the
        one-slot cell for the fetch direction actually taken
        (``link_t`` = taken/static successor, ``link_f`` = branch
        fall-through), a ``(next_pc, fetch_fn_or_None)`` tuple.
        Failure keeps the old integer codes: 0 when an I-line miss
        request was issued in-line, 2 when the page version no longer
        matches.  ``bias`` selects which branch arm the generated code
        tests first (the superblock trace direction); it is ignored for
        non-branch entries so they share one compiled shape.  ``acc``
        is the owning span loop's deferred-counter list (see
        repro.engine.fast and the ACC_* slots above).
        """
        if entry.kind != KIND_BRANCH:
            bias = False
        maker = entry.fetch_makers.get(bias)
        if maker is not None:
            return maker
        source, consts = self._fetch_maker_source(entry, bias)
        make = _shape_make(source)
        args = tuple(consts)

        def maker(core, stages, stats, acc, isets, icstats, fcache,
                  versions, request_line, predictor, ptable,
                  ifn, mfn, rfn, link_t, link_f,
                  _make=make, _args=args):
            return _make(core, stages, stats, acc, isets, icstats,
                         fcache, versions, request_line, predictor,
                         ptable, ifn, mfn, rfn, link_t, link_f, *_args)

        entry.fetch_makers[bias] = maker
        return maker

    def _fetch_maker_source(self, entry: PlanEntry, bias: bool):
        """(source, constants) for the ``_make`` fetch factory."""
        pool = _ConstPool()
        sym = pool.sym
        pc = entry.pc
        line = pc >> self._line_shift
        kpage = sym(entry.page)
        kver = sym(entry.version)
        kset = sym(line & self._set_mask)
        kline = sym(line)
        kpc = sym(pc)
        w = ["    if versions.get(%s, 0) != %s:" % (kpage, kver),
             "        return 2",
             "    tags = isets[%s]" % kset,
             "    if tags and tags[0] == %s:" % kline,
             "        icstats.hits += 1",
             "    elif %s in tags:" % kline,
             "        tags.remove(%s)" % kline,
             "        tags.insert(0, %s)" % kline,
             "        icstats.hits += 1",
             "    else:",
             "        icstats.misses += 1",
             "        core._ifetch_req = request_line(core_id, %s, cycle,"
             " is_ifetch=True)" % kpc,
             "        acc[1] += 1",  # ACC_IFMISS (miss issuance)
             "        return 0"]

        def decode_touch(kaddr, kcached):
            w.extend([
                "    c = fcache.get(%s)" % kaddr,
                "    if c is not None and c[1] == %s:" % kver,
                "        acc[2] += 1",   # ACC_DECHIT
                "    else:",
                "        acc[3] += 1",   # ACC_DECMISS
                "        fcache[%s] = %s" % (kaddr, kcached),
            ])

        decode_touch(kpc, sym((entry.i0, entry.version)))
        kpc2 = None
        if entry.fetch2:
            kpc2 = sym(pc + 4)
            decode_touch(kpc2, sym((entry.i1, entry.version)))

        w.append("    seq = core._seq")
        w.append("    core._seq = seq + %d" % (2 if entry.fetch2
                                               and entry.n == 2 else 1))
        kfi = sym(FetchedInstruction)
        for slot in range(entry.n):
            f = "f%d" % slot
            w.extend([
                "    %s = %s.__new__(%s)" % (f, kfi, kfi),
                "    %s.instr = %s" % (f, sym(entry.i0 if slot == 0
                                              else entry.i1)),
                "    %s.pc = %s" % (f, kpc if slot == 0 else kpc2),
                "    %s.seq = seq%s" % (f, " + %d" % slot if slot else ""),
                "    %s.effective_address = None" % f,
                "    %s.predicted_taken = False" % f,
                "    %s.result = None" % f,
                "    %s.store_value = None" % f,
            ])
        kg = sym(_Group)
        w.append("    g = %s.__new__(%s)" % (kg, kg))
        w.append("    g.instrs = [%s]" % ", ".join(
            "f%d" % s for s in range(entry.n)))
        w.append("    g.ex_done_cycle = 0")
        w.append("    g.me_initiated = False")
        w.append("    g.me_ready_cycle = None")
        w.append("    g.me_requests = []")
        w.append("    g.words_cache = %s" % sym(entry.words))
        w.append("    g.issue_fn = ifn")
        w.append("    g.me_fn = mfn")
        w.append("    g.retire_fn = rfn")

        last = "f%d" % (entry.n - 1)
        if entry.kind == KIND_BRANCH:
            if self.config.predictor_enabled:
                taken_arm = [
                    "%s.predicted_taken = True" % last,
                    "core.fetch_pc = %s" % sym(entry.btaken),
                    "nxt = link_t[0]",
                ]
                fall_arm = [
                    "core.fetch_pc = %s" % sym(entry.bfall),
                    "nxt = link_f[0]",
                ]
                kidx = sym(entry.bindex)
                if bias:
                    w.append("    if ptable[%s] >= 2:" % kidx)
                    first, second = taken_arm, fall_arm
                else:
                    w.append("    if ptable[%s] < 2:" % kidx)
                    first, second = fall_arm, taken_arm
                w.extend("        " + line for line in first)
                w.append("    else:")
                w.extend("        " + line for line in second)
                # predict_taken bumps the counter before reading the
                # table; order is irrelevant here since nothing raises.
                w.append("    predictor.predictions += 1")
            else:
                w.append("    core.fetch_pc = %s" % sym(entry.bfall))
                w.append("    nxt = link_f[0]")
        elif entry.kind == KIND_JALR:
            # Fetch blocks until the jalr issues; the successor PC is
            # dynamic, so the caller passes a dead link cell.
            w.append("    core._jalr_block = True")
            w.append("    core.fetch_pc = %s" % sym(entry.next_pc))
            w.append("    nxt = link_t[0]")
        elif entry.kind == KIND_HALT:
            w.append("    core.fetch_enabled = False")
            w.append("    core.fetch_pc = %s" % sym(entry.next_pc))
            w.append("    nxt = link_t[0]")
        else:
            w.append("    core.fetch_pc = %s" % sym(entry.next_pc))
            w.append("    nxt = link_t[0]")
        w.append("    stages[0] = g")
        w.append("    acc[0] += 1")   # ACC_FETCH
        w.append("    return nxt")

        names = ["K%d" % index for index in range(len(pool.values))]
        tail = "".join(", %s" % name for name in names)
        rebind = "".join(", %s=%s" % (name, name) for name in names)
        source = (
            "def _make(core, stages, stats, acc, isets, icstats,"
            " fcache, versions, request_line, predictor, ptable,"
            " ifn, mfn, rfn, link_t, link_f%s):\n"
            "    core_id = core.core_id\n"
            "    def _fetch(cycle, core=core, stages=stages, acc=acc,"
            " isets=isets, icstats=icstats, fcache=fcache,"
            " versions=versions, request_line=request_line,"
            " predictor=predictor, ptable=ptable, core_id=core_id,"
            " ifn=ifn, mfn=mfn, rfn=rfn,"
            " link_t=link_t, link_f=link_f%s):\n"
            % (tail, rebind)
            + "\n".join("    " + line for line in w)
            + "\n    return _fetch")
        return source, pool.values
