"""Tiered execution engine for the SafeDM platform model.

Two tiers drive the same :class:`~repro.soc.mpsoc.MPSoC` objects:

* ``reference`` — :meth:`MPSoC.run`, the interpreter in
  :mod:`repro.cpu`.  It is the oracle: every observable (architectural
  state, signatures, monitor statistics, histograms, telemetry
  counters, checkpoints, capture streams) is defined by it.
* ``fast`` — :class:`repro.engine.fast.FastRunner` over a
  :class:`repro.engine.plan.ProgramPlan`.  Straight-line fetch groups
  are specialized into generated per-PC step code operating on the
  *same live objects*; anything the specialization cannot prove static
  (cache misses, memory-stage traffic, self-modifying code, plan
  misses) deoptimizes to the corresponding reference method mid-cycle.
  The fast tier is bit-identical by construction — it never skips a
  cycle, because SafeDM samples signatures every cycle.

:func:`run_soc` is the engine selector used by
:func:`repro.soc.experiment.run_redundant` and everything above it.
Scheme-shaped SoCs (extra cores, multiple monitored pairs, scheme
taps) run the fast tier's ``"multi"`` span, which steps N cores in
generated code but observes monitors and scheme checkers through the
reference path.  Shapes the fast tier does not model at all
(instrumented register files, nonstandard monitor geometry on the
classic pair) silently fall back to the reference tier, recording
``fallback_reason``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core import signatures
from ..core.signatures import IsVariant
from ..cpu.regfile import RegisterFile

from .plan import ProgramPlan  # noqa: F401  (re-export)

#: Engines accepted by ``run_soc`` / the ``--engine`` CLI flag.
ENGINES: Tuple[str, ...] = ("reference", "fast")


def resolve_engine(name: Optional[str]) -> str:
    """Validate an engine name (None means reference)."""
    if name is None:
        return "reference"
    if name not in ENGINES:
        raise ValueError("unknown engine %r (expected one of %s)"
                         % (name, ", ".join(ENGINES)))
    return name


#: ``deopt_reasons`` keys that are delegations to *reference* code
#: paths.  ``guard_fail`` (superblock direction-guard side exits served
#: by the block tier) and ``recompile`` events stay outside this set:
#: they cost a dispatch, not a reference-method call.
REFERENCE_DEOPT_REASONS: Tuple[str, ...] = (
    "plan_miss", "page_version", "issue_shape", "mem_stage",
)


@dataclass
class EngineStats:
    """What the engine did for one run (exposed as ``soc.engine_stats``).

    Deopt accounting is split (one counter used to conflate both):

    * ``deopts`` — per-core-cycle deopt *events*: cycles in which a
      core left the generated code for a reference method at least
      once.  This is the number the benchmark deopt-rate gates use.
    * ``delegations`` — individual reference-method delegations, the
      sum of the reference-path entries of ``deopt_reasons``.
    * ``deopt_reasons`` — per-reason histogram over every side exit,
      including block-tier ones (``guard_fail``) and adaptive
      recompilations (``recompile``) that never touch reference code.

    ``issue_fast``/``issue_ref`` split issued groups by tier;
    ``superblock_links``/``chained_fetches``/``recompilations`` describe
    the superblock trace tier (links formed between compiled blocks,
    fetches served by following a link, and re-specializations after
    repeated guard failures or code-page invalidations).
    """

    engine: str = "reference"
    blocks_compiled: int = 0
    fast_cycles: int = 0
    deopts: int = 0
    delegations: int = 0
    issue_fast: int = 0
    issue_ref: int = 0
    superblock_links: int = 0
    chained_fetches: int = 0
    recompilations: int = 0
    deopt_reasons: Dict[str, int] = field(default_factory=dict)
    #: Why a requested fast run fell back to reference (None = ran fast).
    fallback_reason: Optional[str] = None

    @property
    def tier_hit_rate(self) -> float:
        """Fraction of issued groups handled by generated code."""
        total = self.issue_fast + self.issue_ref
        if total == 0:
            return 0.0
        return self.issue_fast / total

    def to_metrics(self, registry):
        """Publish engine counters into a telemetry registry."""
        if not getattr(registry, "enabled", True):
            return
        labels = (("engine", self.engine),)
        registry.counter("repro_engine_blocks_compiled_total",
                         labels).inc(self.blocks_compiled)
        registry.counter("repro_engine_fast_cycles_total",
                         labels).inc(self.fast_cycles)
        registry.counter("repro_engine_deopts_total",
                         labels).inc(self.deopts)
        registry.counter("repro_engine_delegations_total",
                         labels).inc(self.delegations)
        registry.counter("repro_engine_fast_issues_total",
                         labels).inc(self.issue_fast)
        registry.counter("repro_engine_reference_issues_total",
                         labels).inc(self.issue_ref)
        registry.counter("repro_engine_superblock_links_total",
                         labels).inc(self.superblock_links)
        registry.counter("repro_engine_chained_fetches_total",
                         labels).inc(self.chained_fetches)
        registry.counter("repro_engine_recompilations_total",
                         labels).inc(self.recompilations)
        for reason in sorted(self.deopt_reasons):
            registry.counter(
                "repro_engine_deopt_reasons_total",
                labels + (("reason", reason),)
            ).inc(self.deopt_reasons[reason])

    def as_dict(self) -> dict:
        return {
            "engine": self.engine,
            "blocks_compiled": self.blocks_compiled,
            "fast_cycles": self.fast_cycles,
            "deopts": self.deopts,
            "delegations": self.delegations,
            "deopt_reasons": dict(sorted(self.deopt_reasons.items())),
            "issue_fast": self.issue_fast,
            "issue_ref": self.issue_ref,
            "superblock_links": self.superblock_links,
            "chained_fetches": self.chained_fetches,
            "recompilations": self.recompilations,
            "tier_hit_rate": self.tier_hit_rate,
            "fallback_reason": self.fallback_reason,
        }


def _fast_supported(soc) -> Optional[str]:
    """None when the fast tier models this SoC exactly, else a reason.

    Structural guards (core shape, register file, debug modes) apply
    to every core.  The monitor-geometry guards bind only the classic
    two-core monitored-pair shape, whose generated span *inlines* the
    monitor; scheme-shaped SoCs (extra cores, multiple pairs, scheme
    taps, watched-core overrides) run the fast tier's ``"multi"`` span,
    which observes through the reference monitor path and therefore
    accepts any monitor configuration.
    """
    cores = soc.cores
    cfg0 = cores[0].config
    for core in cores[1:]:
        if core.config is not cfg0:
            return "cores use distinct configs"
    if cfg0.issue_width != 2:
        return "fast tier assumes dual issue"
    for core in cores:
        if len(core.stages) != 7:
            return "fast tier assumes the 7-stage pipeline"
        if type(core.regfile) is not RegisterFile:
            return "instrumented register file (%s)" \
                % type(core.regfile).__name__
    if signatures.DEBUG_SIGNATURE_CHECKS:
        return "SAFEDM_DEBUG_SIGNATURES structural checks enabled"
    from .fast import _classic_shape

    if not _classic_shape(soc):
        return None
    monitor = soc.safedm
    cfg = monitor.config
    if cfg.is_variant is not IsVariant.PER_STAGE:
        return "fast tier inlines only the PER_STAGE IS variant"
    if not cfg.sample_every_cycle:
        return "fast tier inlines only every-cycle DS sampling"
    if cfg.num_ports != cores[0].regfile.num_read_ports:
        return "DS ports do not match the register read ports"
    if cfg.pipeline_stages != 7:
        return "monitor geometry does not match the pipeline"
    return None


def run_soc(soc, engine: str = "reference", program=None,
            max_cycles: int = 2_000_000, checkpoint_every: int = 0,
            on_checkpoint=None):
    """Run ``soc`` to completion under the selected engine.

    Returns ``(cycles_run, EngineStats)`` and stores the stats on the
    SoC as ``soc.engine_stats``.  ``program`` (optional) lets the fast
    tier pre-compile every basic block up front; without it plans are
    built lazily per fetched PC.
    """
    engine = resolve_engine(engine)
    stats = EngineStats(engine=engine)
    soc.engine_stats = stats
    if engine == "fast":
        reason = _fast_supported(soc)
        if reason is None:
            from .fast import FastRunner

            plan = ProgramPlan.for_soc(soc.memory, soc.cores[0].config,
                                       program)
            runner = FastRunner(soc, plan, stats)
            cycles = runner.run(max_cycles=max_cycles,
                                checkpoint_every=checkpoint_every,
                                on_checkpoint=on_checkpoint)
            stats.blocks_compiled = plan.blocks_compiled
            return cycles, stats
        stats.fallback_reason = reason
    cycles = soc.run(max_cycles=max_cycles,
                     checkpoint_every=checkpoint_every,
                     on_checkpoint=on_checkpoint)
    return cycles, stats
