"""Validate the crypto kernels' round structure against hashlib.

The md5/sha kernel reference models mirror the assembly exactly; this
file independently validates that the *round structure itself* (tables,
rotations, state rotation) is the real MD5/SHA-1 — by running the same
compression over a standard padded message and comparing with hashlib.
"""

import hashlib
import struct

from repro.workloads.tacle.md5 import G_TAB, INIT, K_TAB, R_TAB, _rotl32
from repro.workloads.tacle import sha as sha_mod

M32 = 0xFFFFFFFF


def md5_compress(state, block_words):
    a, b, c, d = state
    for i in range(64):
        if i < 16:
            f = (b & c) | (~b & d)
        elif i < 32:
            f = (d & b) | (~d & c)
        elif i < 48:
            f = b ^ c ^ d
        else:
            f = c ^ (b | ~d)
        f &= M32
        x = (a + f + K_TAB[i] + block_words[G_TAB[i]]) & M32
        a, d, c, b = d, c, b, (b + _rotl32(x, R_TAB[i])) & M32
    return [(s + v) & M32 for s, v in zip(state, (a, b, c, d))]


def md5_digest(message: bytes) -> bytes:
    length = len(message)
    message += b"\x80"
    message += b"\x00" * ((56 - len(message)) % 64)
    message += struct.pack("<Q", 8 * length)
    state = list(INIT)
    for offset in range(0, len(message), 64):
        words = list(struct.unpack("<16I",
                                   message[offset:offset + 64]))
        state = md5_compress(state, words)
    return struct.pack("<4I", *state)


def sha1_compress(state, block_words):
    w = list(block_words)
    for t in range(16, 80):
        w.append(sha_mod._rotl32(w[t - 3] ^ w[t - 8] ^ w[t - 14]
                                 ^ w[t - 16], 1))
    a, b, c, d, e = state
    for t in range(80):
        if t < 20:
            f = (b & c) | (~b & d)
        elif t < 40:
            f = b ^ c ^ d
        elif t < 60:
            f = (b & c) | (b & d) | (c & d)
        else:
            f = b ^ c ^ d
        f &= M32
        temp = (sha_mod._rotl32(a, 5) + f + e
                + sha_mod.K_ROUND[t // 20] + w[t]) & M32
        e, d, c, b, a = d, c, sha_mod._rotl32(b, 30), a, temp
    return [(s + v) & M32 for s, v in zip(state, (a, b, c, d, e))]


def sha1_digest(message: bytes) -> bytes:
    length = len(message)
    message += b"\x80"
    message += b"\x00" * ((56 - len(message)) % 64)
    message += struct.pack(">Q", 8 * length)
    state = list(sha_mod.H_INIT)
    for offset in range(0, len(message), 64):
        words = list(struct.unpack(">16I",
                                   message[offset:offset + 64]))
        state = sha1_compress(state, words)
    return struct.pack(">5I", *state)


class TestMd5RoundStructure:
    def test_empty_message(self):
        assert md5_digest(b"") == hashlib.md5(b"").digest()

    def test_abc(self):
        assert md5_digest(b"abc") == hashlib.md5(b"abc").digest()

    def test_multi_block(self):
        message = b"The quick brown fox jumps over the lazy dog" * 3
        assert md5_digest(message) == hashlib.md5(message).digest()

    def test_table_values(self):
        # First four K constants from RFC 1321.
        assert K_TAB[:4] == [0xd76aa478, 0xe8c7b756, 0x242070db,
                             0xc1bdceee]


class TestSha1RoundStructure:
    def test_empty_message(self):
        assert sha1_digest(b"") == hashlib.sha1(b"").digest()

    def test_abc(self):
        assert sha1_digest(b"abc") == hashlib.sha1(b"abc").digest()

    def test_multi_block(self):
        message = bytes(range(256))
        assert sha1_digest(message) == hashlib.sha1(message).digest()

    def test_constants(self):
        assert sha_mod.H_INIT[0] == 0x67452301
        assert sha_mod.K_ROUND == (0x5A827999, 0x6ED9EBA1, 0x8F1BBCDC,
                                   0xCA62C1D6)
