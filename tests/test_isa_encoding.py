"""Encoder/decoder unit tests, including reference encodings."""

import pytest

from repro.isa.decoder import DecodeError, decode
from repro.isa.encoder import EncodingError, encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import NOP_WORD, SPECS


def _encode(name, **kwargs):
    return encode(Instruction(SPECS[name], **kwargs))


class TestReferenceEncodings:
    """Golden encodings cross-checked against the RISC-V spec."""

    def test_nop(self):
        assert _encode("addi", rd=0, rs1=0, imm=0) == NOP_WORD

    def test_addi(self):
        # addi a0, a1, 32 -> 0x02058513
        assert _encode("addi", rd=10, rs1=11, imm=32) == 0x02058513

    def test_add(self):
        # add a0, a1, a2 -> 0x00C58533
        assert _encode("add", rd=10, rs1=11, rs2=12) == 0x00C58533

    def test_sub(self):
        # sub t0, t1, t2 -> 0x407302B3
        assert _encode("sub", rd=5, rs1=6, rs2=7) == 0x407302B3

    def test_lui(self):
        # lui a0, 0x12345 -> 0x12345537
        assert _encode("lui", rd=10, imm=0x12345 << 12) == 0x12345537

    def test_ld(self):
        # ld a0, 8(sp) -> 0x00813503
        assert _encode("ld", rd=10, rs1=2, imm=8) == 0x00813503

    def test_sd(self):
        # sd a0, 8(sp) -> 0x00A13423
        assert _encode("sd", rs1=2, rs2=10, imm=8) == 0x00A13423

    def test_beq(self):
        # beq a0, a1, +16 -> 0x00B50863
        assert _encode("beq", rs1=10, rs2=11, imm=16) == 0x00B50863

    def test_jal(self):
        # jal ra, +2048 -> 0x001000EF
        assert _encode("jal", rd=1, imm=2048) == 0x001000EF

    def test_jalr(self):
        # jalr zero, 0(ra) (ret) -> 0x00008067
        assert _encode("jalr", rd=0, rs1=1, imm=0) == 0x00008067

    def test_srai_rv64_shamt(self):
        # srai a0, a0, 33 uses the 6-bit shamt encoding
        word = _encode("srai", rd=10, rs1=10, imm=33)
        assert word == 0x42155513

    def test_mul(self):
        # mul a0, a1, a2 -> 0x02C58533
        assert _encode("mul", rd=10, rs1=11, rs2=12) == 0x02C58533

    def test_ecall_ebreak_fence(self):
        assert _encode("ecall") == 0x00000073
        assert _encode("ebreak") == 0x00100073
        assert _encode("fence") == 0x0000000F


class TestEncodeErrors:
    def test_immediate_out_of_range(self):
        with pytest.raises(EncodingError):
            _encode("addi", rd=1, rs1=1, imm=2048)
        with pytest.raises(EncodingError):
            _encode("addi", rd=1, rs1=1, imm=-2049)

    def test_branch_offset_must_be_even(self):
        with pytest.raises(EncodingError):
            _encode("beq", rs1=0, rs2=0, imm=3)

    def test_branch_offset_range(self):
        with pytest.raises(EncodingError):
            _encode("beq", rs1=0, rs2=0, imm=1 << 12)

    def test_jump_offset_range(self):
        with pytest.raises(EncodingError):
            _encode("jal", rd=0, imm=1 << 20)

    def test_shift_amount_range(self):
        with pytest.raises(EncodingError):
            _encode("slli", rd=1, rs1=1, imm=64)
        with pytest.raises(EncodingError):
            _encode("slliw", rd=1, rs1=1, imm=32)

    def test_missing_register(self):
        with pytest.raises(EncodingError):
            _encode("add", rd=1, rs1=2, rs2=None)

    def test_u_type_low_bits(self):
        with pytest.raises(EncodingError):
            _encode("lui", rd=1, imm=0x1001)


class TestDecode:
    def test_decode_unknown_word(self):
        with pytest.raises(DecodeError):
            decode(0xFFFFFFFF)

    def test_decode_zero_word(self):
        with pytest.raises(DecodeError):
            decode(0)

    def test_decode_preserves_word(self):
        instr = decode(0x02C58533)
        assert instr.word == 0x02C58533
        assert instr.mnemonic == "mul"

    def test_decode_negative_immediate(self):
        # addi a0, a0, -1
        instr = decode(_encode("addi", rd=10, rs1=10, imm=-1))
        assert instr.imm == -1

    def test_decode_branch_negative_offset(self):
        instr = decode(_encode("bne", rs1=10, rs2=0, imm=-4))
        assert instr.imm == -4
        assert instr.mnemonic == "bne"

    def test_sraiw_vs_srliw(self):
        sraiw = decode(_encode("sraiw", rd=1, rs1=2, imm=5))
        srliw = decode(_encode("srliw", rd=1, rs1=2, imm=5))
        assert sraiw.mnemonic == "sraiw"
        assert srliw.mnemonic == "srliw"

    def test_sys_words(self):
        assert decode(0x00000073).mnemonic == "ecall"
        assert decode(0x00100073).mnemonic == "ebreak"
        assert decode(0x0000000F).mnemonic == "fence"


class TestInstructionModel:
    def test_sources_and_destination(self):
        instr = decode(_encode("add", rd=10, rs1=11, rs2=12))
        assert instr.sources() == (11, 12)
        assert instr.destination() == 10

    def test_x0_destination_is_none(self):
        instr = decode(NOP_WORD)
        assert instr.destination() is None
        assert instr.is_nop

    def test_store_has_no_destination(self):
        instr = decode(_encode("sd", rs1=2, rs2=10, imm=0))
        assert instr.destination() is None
        assert instr.sources() == (2, 10)

    def test_text_rendering(self):
        assert decode(0x00C58533).text() == "add a0, a1, a2"
        assert decode(NOP_WORD).text() == "addi zero, zero, 0"
