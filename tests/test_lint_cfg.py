"""Control-flow graph construction tests."""

from repro.isa import assemble
from repro.lint import EXIT, build_cfg


def cfg_of(source, base=0x1000):
    return build_cfg(assemble(source, base=base))


def starts(cfg):
    return [b.start for b in cfg.blocks()]


class TestBlockFormation:
    def test_straight_line_is_one_block(self):
        cfg = cfg_of("""
_start:
    addi t0, x0, 1
    addi t1, t0, 2
    ebreak
""")
        assert len(cfg.blocks()) == 1
        block = cfg.blocks()[0]
        assert len(block) == 3
        assert block.succs == [EXIT]

    def test_branch_splits_blocks(self):
        cfg = cfg_of("""
_start:
    beqz t0, skip
    addi t0, x0, 1
skip:
    ebreak
""")
        assert len(cfg.blocks()) == 3
        entry = cfg.entry_block
        assert sorted(entry.succs) == sorted(
            [cfg.program.symbol("skip"), entry.end])

    def test_branch_target_is_leader(self):
        cfg = cfg_of("""
_start:
    addi t0, x0, 4
loop:
    addi t0, t0, -1
    bnez t0, loop
    ebreak
""")
        loop = cfg.program.symbol("loop")
        assert loop in starts(cfg)
        loop_block = cfg.block(loop)
        assert loop in loop_block.succs  # back edge

    def test_block_containing(self):
        cfg = cfg_of("_start:\n    addi t0, x0, 1\n    ebreak\n")
        block = cfg.blocks()[0]
        assert cfg.block_containing(block.start + 4) is block
        assert cfg.block_containing(0xDEAD00) is None


class TestEdges:
    def test_jump_edge(self):
        cfg = cfg_of("""
_start:
    j out
    addi t0, x0, 1
out:
    ebreak
""")
        entry = cfg.entry_block
        assert entry.succs == [cfg.program.symbol("out")]

    def test_halt_edges_to_exit(self):
        cfg = cfg_of("_start:\n    ebreak\n")
        assert cfg.entry_block.succs == [EXIT]
        assert cfg.exit_block.preds == [cfg.entry]

    def test_call_and_return_edges(self):
        cfg = cfg_of("""
_start:
    call fn
    ebreak
fn:
    addi a0, a0, 1
    ret
""")
        fn = cfg.program.symbol("fn")
        assert cfg.entry_block.succs == [fn]
        # The ret returns to the instruction after the call.
        assert cfg.block(fn).succs == [cfg.entry + 4]

    def test_returns_grouped_per_callee(self):
        cfg = cfg_of("""
_start:
    call f
    call g
    ebreak
f:
    addi a0, a0, 1
    ret
g:
    addi a1, a1, 1
    ret
""")
        f = cfg.program.symbol("f")
        g = cfg.program.symbol("g")
        # f's ret only flows to f's return site, g's to g's.
        assert cfg.block(f).succs == [cfg.entry + 4]
        assert cfg.block(g).succs == [cfg.entry + 8]

    def test_invalid_target_recorded(self):
        cfg = cfg_of("_start:\n    beq x0, x0, 0x200\n    ebreak\n")
        assert len(cfg.invalid_targets) == 1
        pc, target = cfg.invalid_targets[0]
        assert pc == cfg.entry
        assert target == cfg.entry + 0x200

    def test_unknown_indirect_flagged(self):
        cfg = cfg_of("""
_start:
    jr a0
""")
        assert cfg.entry_block.has_unknown_target


class TestReachability:
    def test_unreachable_block_found(self):
        cfg = cfg_of("""
_start:
    j out
dead:
    addi t0, x0, 1
out:
    ebreak
""")
        reachable = cfg.reachable()
        assert cfg.program.symbol("dead") not in reachable
        assert cfg.program.symbol("out") in reachable

    def test_reaches_exit(self):
        cfg = cfg_of("""
_start:
spin:
    j spin
    ebreak
""")
        assert cfg.program.symbol("spin") not in cfg.reaches_exit()

    def test_data_words_not_decoded(self):
        cfg = cfg_of("""
_start:
    la a0, pool
    ebreak
pool:
    .dword 0x13
""")
        # 0x13 decodes as a nop, but the data directive excludes it.
        pool = cfg.program.symbol("pool")
        assert pool not in cfg.instrs


class TestRendering:
    def test_to_dot_mentions_every_block(self):
        cfg = cfg_of("""
_start:
    beqz t0, skip
    addi t0, x0, 1
skip:
    ebreak
""")
        dot = cfg.to_dot()
        assert dot.startswith("digraph")
        for block in cfg.blocks():
            assert "b%x" % block.start in dot
        assert "exit" in dot
